// Quickstart: mine the top-K largest frequent patterns from a synthetic
// network in ~30 lines of API surface.
//
//   $ ./examples/quickstart
//
// Builds a small Erdos-Renyi background, plants a 16-vertex pattern three
// times, runs SpiderMine and prints the recovered top patterns.

#include <cstdio>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "spidermine/miner.h"

int main() {
  using namespace spidermine;

  // 1. Build an input network: 500-vertex random background with a
  //    16-vertex pattern planted 3 times.
  Rng rng(2025);
  GraphBuilder builder = GenerateErdosRenyi(/*num_vertices=*/500,
                                            /*avg_degree=*/2.0,
                                            /*num_labels=*/30, &rng);
  Pattern planted = RandomConnectedPattern(/*num_vertices=*/16,
                                           /*extra_edge_fraction=*/0.15,
                                           /*num_labels=*/30, &rng);
  PatternInjector injector(&builder);
  if (Status s = injector.Inject(planted, /*num_embeddings=*/3, &rng);
      !s.ok()) {
    std::fprintf(stderr, "injection failed: %s\n", s.ToString().c_str());
    return 1;
  }
  Result<LabeledGraph> graph = builder.Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("network: %lld vertices, %lld edges; planted pattern: %d "
              "vertices x3\n",
              static_cast<long long>(graph->NumVertices()),
              static_cast<long long>(graph->NumEdges()),
              planted.NumVertices());

  // 2. Configure SpiderMine (paper Algorithm 1 inputs).
  MineConfig config;
  config.min_support = 2;   // sigma
  config.k = 5;             // top-K
  config.epsilon = 0.1;     // success probability >= 1 - epsilon
  config.dmax = 8;          // pattern diameter bound
  config.vmin = 16;         // "large" means >= 16 vertices
  config.rng_seed = 7;

  // 3. Mine.
  SpiderMiner miner(&*graph, config);
  Result<MineResult> result = miner.Mine();
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the result.
  const MineStats& stats = result->stats;
  std::printf("stage I mined %lld spiders; drew M=%lld seeds; "
              "%lld merges; %.3fs total\n",
              static_cast<long long>(stats.num_spiders),
              static_cast<long long>(stats.seed_count_m),
              static_cast<long long>(stats.merges), stats.total_seconds);
  std::printf("top-%zu patterns (size = |E| per the paper):\n",
              result->patterns.size());
  for (size_t i = 0; i < result->patterns.size(); ++i) {
    const MinedPattern& p = result->patterns[i];
    std::printf("  #%zu: |V|=%d |E|=%d support=%lld%s\n", i + 1,
                p.NumVertices(), p.NumEdges(),
                static_cast<long long>(p.support),
                p.from_merge ? " (recovered via merge)" : "");
  }
  return 0;
}
