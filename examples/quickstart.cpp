// Quickstart: mine Stage I once, then answer several top-K queries from
// the cached spider set in ~40 lines of API surface.
//
//   $ ./examples/quickstart
//
// Builds a small Erdos-Renyi background, plants a 16-vertex pattern three
// times, opens a MiningSession (the one-time Stage I pass over the
// network) and serves three queries against it — the serving shape the
// paper's cost split suggests: Stage I is the expensive pass, Stages
// II+III are cheap and randomized, so rerun them per request.

#include <cstdio>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "spidermine/session.h"

int main() {
  using namespace spidermine;

  // 1. Build an input network: 500-vertex random background with a
  //    16-vertex pattern planted 3 times.
  Rng rng(2025);
  GraphBuilder builder = GenerateErdosRenyi(/*num_vertices=*/500,
                                            /*avg_degree=*/2.0,
                                            /*num_labels=*/30, &rng);
  Pattern planted = RandomConnectedPattern(/*num_vertices=*/16,
                                           /*extra_edge_fraction=*/0.15,
                                           /*num_labels=*/30, &rng);
  PatternInjector injector(&builder);
  if (Status s = injector.Inject(planted, /*num_embeddings=*/3, &rng);
      !s.ok()) {
    std::fprintf(stderr, "injection failed: %s\n", s.ToString().c_str());
    return 1;
  }
  Result<LabeledGraph> graph = builder.Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("network: %lld vertices, %lld edges; planted pattern: %d "
              "vertices x3\n",
              static_cast<long long>(graph->NumVertices()),
              static_cast<long long>(graph->NumEdges()),
              planted.NumVertices());

  // 2. Open a session: Stage I (mine all r-spiders) runs exactly once
  //    here, no matter how many queries follow.
  SessionConfig session_config;
  session_config.min_support = 2;  // sigma floor of the mined spider set
  Result<MiningSession> session =
      MiningSession::Create(&*graph, session_config);
  if (!session.ok()) {
    std::fprintf(stderr, "stage I failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  std::printf("stage I mined %lld spiders once (%.3fs); serving queries\n",
              static_cast<long long>(session->stage1_stats().num_spiders),
              session->stage1_stats().stage1_seconds);

  // 3. Serve top-K queries against the cached store. Each query may vary
  //    k, dmax, vmin, the rng seed, restarts — everything query-scoped.
  for (uint64_t seed : {7, 8, 9}) {
    TopKQuery query;
    query.k = 5;            // top-K
    query.epsilon = 0.1;    // success probability >= 1 - epsilon
    query.dmax = 8;         // pattern diameter bound
    query.vmin = 16;        // "large" means >= 16 vertices
    query.rng_seed = seed;
    Result<QueryResult> result = session->RunQuery(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const MineStats& stats = result->stats;
    std::printf("query(seed=%llu): M=%lld seeds, %lld merges, %.3fs, "
                "top-%zu:\n",
                static_cast<unsigned long long>(seed),
                static_cast<long long>(stats.seed_count_m),
                static_cast<long long>(stats.merges), stats.total_seconds,
                result->patterns.size());
    for (size_t i = 0; i < result->patterns.size(); ++i) {
      const MinedPattern& p = result->patterns[i];
      std::printf("  #%zu: |V|=%d |E|=%d support=%lld%s\n", i + 1,
                  p.NumVertices(), p.NumEdges(),
                  static_cast<long long>(p.support),
                  p.from_merge ? " (recovered via merge)" : "");
    }
  }
  return 0;
}
