// Graph-transaction scenario (paper Sec. 5.1.2): mine the top-K largest
// patterns from a database of graphs, where support counts the number of
// transactions containing the pattern. Contrasts SpiderMine's transaction
// adapter with the ORIGAMI-style representative miner, mirroring the
// paper's Figures 14/15 ("ORIGAMI's result leans significantly towards
// smaller ones" once small patterns flood the database).
//
//   $ ./examples/transaction_mining

#include <algorithm>
#include <cstdio>

#include "baselines/origami.h"
#include "gen/transaction_gen.h"
#include "spidermine/txn_adapter.h"

int main() {
  using namespace spidermine;

  // The paper's setting scaled to run in seconds: 10 graphs, large
  // patterns of 30 vertices, plus 100 injected small patterns (the
  // Figure 15 stress).
  TransactionDatasetConfig gen;
  gen.num_graphs = 10;
  gen.vertices_per_graph = 500;
  gen.avg_degree = 3.0;
  gen.num_labels = 65;
  gen.num_large = 5;
  gen.large_vertices = 30;
  gen.large_txn_support = 6;
  gen.num_small = 100;
  gen.small_vertices = 5;
  gen.small_txn_support = 8;
  gen.seed = 77;
  Result<TransactionDataset> data = GenerateTransactionDataset(gen);
  if (!data.ok()) {
    std::fprintf(stderr, "generator failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  Result<TransactionGraph> txn = BuildTransactionGraph(data->database);
  if (!txn.ok()) {
    std::fprintf(stderr, "adapter failed: %s\n",
                 txn.status().ToString().c_str());
    return 1;
  }
  std::printf("database: %zu graphs; folded union: %lld vertices, %lld "
              "edges; planted: %d large (30v) + %d small (5v) patterns\n",
              data->database.size(),
              static_cast<long long>(txn->graph.NumVertices()),
              static_cast<long long>(txn->graph.NumEdges()), gen.num_large,
              gen.num_small);

  // SpiderMine, transaction support.
  MineConfig config;
  config.min_support = 4;  // transactions
  config.k = 10;
  config.dmax = 8;
  config.vmin = 25;
  config.rng_seed = 3;
  config.time_budget_seconds = 120;
  Result<MineResult> mined = MineTransactions(*txn, config);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSpiderMine top patterns (support = #transactions):\n");
  int shown = 0;
  for (const MinedPattern& p : mined->patterns) {
    if (shown++ >= 5) break;
    std::printf("  |V|=%2d |E|=%2d support=%lld\n", p.NumVertices(),
                p.NumEdges(), static_cast<long long>(p.support));
  }

  // ORIGAMI for contrast.
  OrigamiConfig origami;
  origami.min_support = 4;
  origami.num_samples = 150;
  origami.max_representatives = 10;
  origami.time_budget_seconds = 60;
  Result<OrigamiResult> rep = OrigamiMine(*txn, origami);
  if (rep.ok()) {
    int32_t origami_best = 0;
    for (const OrigamiPattern& p : rep->representatives) {
      origami_best = std::max(origami_best, p.pattern.NumVertices());
    }
    int32_t spidermine_best =
        mined->patterns.empty() ? 0 : mined->patterns.front().NumVertices();
    std::printf("\nlargest pattern: SpiderMine |V|=%d vs ORIGAMI |V|=%d "
                "(%zu orthogonal representatives from %zu sampled "
                "maximal patterns)\n",
                spidermine_best, origami_best, rep->representatives.size(),
                rep->sampled.size());
    if (origami_best < spidermine_best) {
      std::printf("=> the paper's Figure 15 effect: with many small "
                  "patterns, representative sampling misses the large "
                  "ones.\n");
    }
  }
  return 0;
}
