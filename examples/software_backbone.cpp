// Software-engineering scenario (paper Sec. C.2 "Jeti" and Appendix D):
// mine the "backbone" call-graph patterns of an instant-messaging
// application. Vertices are methods labeled with their class; a large
// frequent pattern is a cohesive cluster of classes whose methods call
// each other the same way in many places -- the paper's program-
// comprehension use case (Figure 24: GregorianCalendar / Calendar /
// SimpleDateFormat).
//
//   $ ./examples/software_backbone

#include <algorithm>
#include <cstdio>
#include <set>

#include "gen/callgraph_sim.h"
#include "graph/degree_stats.h"
#include "spidermine/session.h"

int main() {
  using namespace spidermine;

  CallGraphSimConfig sim;  // defaults match the paper's Jeti statistics
  Result<CallGraphDataset> data = GenerateCallGraphSim(sim);
  if (!data.ok()) {
    std::fprintf(stderr, "simulator failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  const LabeledGraph& g = data->graph;
  DegreeStats degrees = ComputeDegreeStats(g);
  std::printf("call graph: %lld methods, %lld call edges, %d classes, "
              "max degree %lld (paper: 835 / 1764 / 267 / 69)\n",
              static_cast<long long>(g.NumVertices()),
              static_cast<long long>(g.NumEdges()),
              static_cast<int>(g.NumLabels()),
              static_cast<long long>(degrees.max));

  // Paper settings for Jeti: minimum support 10. The session API is the
  // primary entry point: Stage I (all r-spiders of the call graph) is
  // mined once at session construction, and every subsequent analysis
  // question — different K, seed, diameter — is a cheap RunQuery against
  // the cached spider set (docs/SERVING.md).
  SessionConfig session_config;
  session_config.min_support = 10;
  Result<MiningSession> session = MiningSession::Create(&g, session_config);
  if (!session.ok()) {
    std::fprintf(stderr, "session build failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  TopKQuery query;
  query.k = 10;
  query.dmax = 8;
  query.vmin = 10;
  query.rng_seed = 23;
  query.time_budget_seconds = 60;
  Result<QueryResult> mined = session->RunQuery(query);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }

  std::printf("\nbackbone patterns (top %zu):\n", mined->patterns.size());
  int shown = 0;
  for (const MinedPattern& p : mined->patterns) {
    if (shown++ >= 5) break;
    // Cohesion report: how many distinct classes participate, and how
    // tightly they call each other (edges per vertex).
    std::set<LabelId> classes;
    for (VertexId v = 0; v < p.pattern.NumVertices(); ++v) {
      classes.insert(p.pattern.Label(v));
    }
    double cohesion = p.NumVertices() > 0
                          ? static_cast<double>(p.NumEdges()) /
                                static_cast<double>(p.NumVertices())
                          : 0.0;
    std::printf("  |V|=%2d |E|=%2d support=%lld classes=%zu "
                "cohesion=%.2f edges/method\n",
                p.NumVertices(), p.NumEdges(),
                static_cast<long long>(p.support), classes.size(), cohesion);
  }
  if (!mined->patterns.empty()) {
    const MinedPattern& top = mined->patterns.front();
    std::printf("\nlargest backbone involves %d methods; a design-smell "
                "review would check whether its %d classes should be this "
                "coupled (cf. paper's cohesion/coupling discussion).\n",
                top.NumVertices(),
                static_cast<int>(std::min<size_t>(
                    99, [&] {
                      std::set<LabelId> s;
                      for (VertexId v = 0; v < top.pattern.NumVertices(); ++v)
                        s.insert(top.pattern.Label(v));
                      return s.size();
                    }())));
  }
  return 0;
}
