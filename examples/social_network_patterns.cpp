// Social-network scenario (paper Sec. C.2, "DBLP"): mine large
// collaborative patterns from a co-authorship network whose vertices are
// authors labeled by seniority (Prolific / Senior / Junior / Beginner).
//
//   $ ./examples/social_network_patterns
//
// Uses the simulated DBLP network (see DESIGN.md Sec. 4 for the
// substitution rationale) and contrasts SpiderMine with SUBDUE, mirroring
// the paper's Figure 20 comparison and its Figure 22/23 discussion of
// common vs discriminative collaborative patterns.

#include <cstdio>

#include "baselines/subdue.h"
#include "gen/dblp_sim.h"
#include "graph/degree_stats.h"
#include "spidermine/session.h"

namespace {

const char* SeniorityName(spidermine::LabelId label) {
  switch (label) {
    case spidermine::kProlific:
      return "Prolific";
    case spidermine::kSenior:
      return "Senior";
    case spidermine::kJunior:
      return "Junior";
    case spidermine::kBeginner:
      return "Beginner";
    default:
      return "?";
  }
}

}  // namespace

int main() {
  using namespace spidermine;

  DblpSimConfig sim;
  sim.num_authors = 3000;  // laptop-scale slice of the 6508-author graph
  sim.target_edges = 11000;
  sim.num_communities = 120;
  Result<DblpDataset> data = GenerateDblpSim(sim);
  if (!data.ok()) {
    std::fprintf(stderr, "simulator failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  const LabeledGraph& g = data->graph;
  std::vector<int64_t> hist = LabelHistogram(g);
  std::printf("co-author network: %lld authors, %lld collaboration edges\n",
              static_cast<long long>(g.NumVertices()),
              static_cast<long long>(g.NumEdges()));
  for (LabelId l = 0; l < g.NumLabels(); ++l) {
    std::printf("  %-9s %lld authors\n", SeniorityName(l),
                static_cast<long long>(hist[l]));
  }

  // Paper settings for DBLP: min support 4, K = 20, Vmin = |V|/10. One
  // MiningSession pays the Stage I spider pass once; the top-K question
  // is then a cheap randomized query, rerun below with a second seed to
  // boost the success probability (Sec. 4.2.1) without re-mining —
  // exactly how the `serve` subcommand answers many users.
  SessionConfig session_config;
  session_config.min_support = 4;
  Result<MiningSession> session = MiningSession::Create(&g, session_config);
  if (!session.ok()) {
    std::fprintf(stderr, "session build failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  TopKQuery query;
  query.k = 20;
  query.dmax = 8;
  query.vmin = g.NumVertices() / 10;
  query.rng_seed = 11;
  query.time_budget_seconds = 90;
  Result<QueryResult> mined = session->RunQuery(query);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  // Warm rerun on the cached spider set: accumulate the best of both
  // draws (AccumulateTopK dedups isomorphic recoveries, keeps best
  // support). A tighter budget suffices — the expensive Stage I pass is
  // already paid.
  query.rng_seed = 12;
  query.time_budget_seconds = 30;
  Result<QueryResult> rerun = session->RunQuery(query);
  if (rerun.ok()) {
    AccumulateTopK(&mined->patterns, std::move(rerun->patterns), query.k);
  }
  std::printf("\nSpiderMine: %zu large collaborative patterns "
              "(largest |V|=%d; 2 query draws on one Stage I pass)\n",
              mined->patterns.size(),
              mined->patterns.empty() ? 0
                                      : mined->patterns.front().NumVertices());
  int shown = 0;
  for (const MinedPattern& p : mined->patterns) {
    if (shown++ >= 5) break;
    // Composition of the collaborative pattern by seniority.
    int counts[4] = {0, 0, 0, 0};
    for (VertexId v = 0; v < p.pattern.NumVertices(); ++v) {
      if (p.pattern.Label(v) < 4) ++counts[p.pattern.Label(v)];
    }
    std::printf("  |V|=%2d |E|=%2d support=%lld  composition: %dP %dS %dJ "
                "%dB\n",
                p.NumVertices(), p.NumEdges(),
                static_cast<long long>(p.support), counts[0], counts[1],
                counts[2], counts[3]);
  }

  // SUBDUE for contrast (Figure 20: it stays on small structures).
  SubdueConfig subdue_config;
  subdue_config.max_expansions = 4000;
  subdue_config.time_budget_seconds = 30;
  Result<SubdueResult> subdue = SubdueDiscover(g, subdue_config);
  if (subdue.ok() && !subdue->patterns.empty()) {
    int32_t best = 0;
    for (const SubduePattern& p : subdue->patterns) {
      best = std::max(best, p.pattern.NumVertices());
    }
    std::printf("\nSUBDUE (for contrast): best substructure |V|=%d -- the "
                "small-pattern bias the paper reports\n", best);
  }
  return 0;
}
