// Example: mining a network whose EDGES carry labels (paper Sec. 3: "Our
// method can also be applied to graphs with edge labels").
//
// The scenario is a miniature interaction network: vertices are accounts
// labeled by role (0 = user, 1 = bot, 2 = service, 3 = admin) and edges are
// labeled by interaction type (1 = follows, 2 = mentions, 3 = pays). We
// plant a "payment ring" structure three times, add decoy structures with
// the same VERTEX labels but different EDGE labels, and show that the miner
// separates the two: the recovered top pattern carries the planted edge
// labels and support 3, while a vertex-label-only view would conflate the
// decoys into it.
//
// Build: cmake --build build --target edge_labeled_mining
// Run:   ./build/examples/edge_labeled_mining

#include <cstdio>

#include "graph/graph_builder.h"
#include "spidermine/miner.h"

using namespace spidermine;

namespace {

constexpr EdgeLabelId kFollows = 1;
constexpr EdgeLabelId kMentions = 2;
constexpr EdgeLabelId kPays = 3;

void AddPaymentRing(GraphBuilder* builder) {
  // user -> bot -> service triangle with a paying admin attached.
  VertexId user = builder->AddVertex(0);
  VertexId bot = builder->AddVertex(1);
  VertexId service = builder->AddVertex(2);
  VertexId admin = builder->AddVertex(3);
  builder->AddEdge(user, bot, kFollows);
  builder->AddEdge(bot, service, kMentions);
  builder->AddEdge(user, service, kPays);
  builder->AddEdge(service, admin, kPays);
}

void AddDecoy(GraphBuilder* builder) {
  // Same vertex roles, but all interactions are "follows": without edge
  // labels this would be confused with the payment ring's triangle.
  VertexId user = builder->AddVertex(0);
  VertexId bot = builder->AddVertex(1);
  VertexId service = builder->AddVertex(2);
  builder->AddEdge(user, bot, kFollows);
  builder->AddEdge(bot, service, kFollows);
  builder->AddEdge(user, service, kFollows);
}

}  // namespace

int main() {
  GraphBuilder builder;
  for (int i = 0; i < 3; ++i) AddPaymentRing(&builder);
  for (int i = 0; i < 3; ++i) AddDecoy(&builder);
  Result<LabeledGraph> graph = builder.Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "graph construction failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("network: %lld accounts, %lld interactions, edge-labeled: %s\n",
              static_cast<long long>(graph->NumVertices()),
              static_cast<long long>(graph->NumEdges()),
              graph->HasEdgeLabels() ? "yes" : "no");

  MineConfig config;
  config.min_support = 3;
  config.k = 5;
  config.dmax = 4;
  config.vmin = 4;
  config.rng_seed = 7;
  config.restarts = 4;
  // This example deliberately shows the legacy one-shot shim (graph mined
  // once, thrown away); the session API (spidermine/session.h, see the
  // other examples) is the primary path when a graph serves many queries.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  Result<MineResult> result = SpiderMiner(&*graph, config).Mine();
#pragma GCC diagnostic pop
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("top %zu patterns:\n", result->patterns.size());
  for (size_t i = 0; i < result->patterns.size(); ++i) {
    const MinedPattern& p = result->patterns[i];
    std::printf("%zu. |V|=%d |E|=%d support=%lld  %s\n", i + 1,
                p.NumVertices(), p.NumEdges(),
                static_cast<long long>(p.support),
                p.pattern.ToString().c_str());
  }

  const MinedPattern& top = result->patterns.front();
  if (top.NumVertices() == 4 && top.support == 3 &&
      top.pattern.HasEdgeLabels()) {
    std::printf("=> recovered the planted payment ring with its edge labels "
                "(support 3, decoys excluded)\n");
    return 0;
  }
  std::printf("=> unexpected top pattern (see above)\n");
  return 1;
}
