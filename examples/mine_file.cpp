// Command-line miner: open a MiningSession over a graph file (Stage I runs
// once) and export the top-K patterns of one or more queries.
//
//   $ ./examples/mine_file --input graph.lg --sigma 2 --k 10 --dmax 8 --runs 3 --out patterns.txt
//
// The input format is the LG-style text of graph_io.h ("v <id> <label>" /
// "e <u> <v>"). With no --input, a demo graph is generated so the binary
// is runnable standalone. Patterns are written in pattern_io.h format.
// --runs N issues N queries (seeds seed, seed+1, ...) against the ONE
// cached Stage I spider set and exports the accumulated best patterns —
// the session amortization the fused SpiderMiner::Mine() shim cannot give.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "pattern/pattern_io.h"
#include "spidermine/closed_filter.h"
#include "spidermine/session.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--input graph.lg] [--out patterns.txt] [options]\n"
      "  --sigma N        minimum support (default 2)\n"
      "  --k N            number of patterns (default 10)\n"
      "  --dmax N         pattern diameter bound (default 8)\n"
      "  --epsilon F      error bound in (0,1) (default 0.1)\n"
      "  --vmin N         large-pattern vertex floor (default |V|/10)\n"
      "  --support NAME   mis-vertex | mis-edge | mni (default mis-vertex)\n"
      "  --restarts N     stage II+III repetitions per query (default 1)\n"
      "  --runs N         queries against the one session (default 1)\n"
      "  --budget SECONDS per-query wall-clock budget (default 120)\n"
      "  --seed N         RNG seed of the first query (default 42)\n"
      "  --closed-only    post-filter to closed patterns\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spidermine;

  std::string input_path;
  std::string out_path;
  SessionConfig session_config;
  TopKQuery query;
  query.time_budget_seconds = 120;
  query.dmax = 8;
  int runs = 1;
  uint64_t base_seed = 42;
  bool closed_only = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--input") {
      input_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--sigma") {
      session_config.min_support = std::atoll(next());
    } else if (arg == "--k") {
      query.k = std::atoi(next());
    } else if (arg == "--dmax") {
      query.dmax = std::atoi(next());
    } else if (arg == "--epsilon") {
      query.epsilon = std::atof(next());
    } else if (arg == "--vmin") {
      query.vmin = std::atoll(next());
    } else if (arg == "--restarts") {
      query.restarts = std::atoi(next());
    } else if (arg == "--runs") {
      runs = std::atoi(next());
    } else if (arg == "--budget") {
      query.time_budget_seconds = std::atof(next());
    } else if (arg == "--seed") {
      base_seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--closed-only") {
      closed_only = true;
    } else if (arg == "--support") {
      std::string name = next();
      if (name == "mis-vertex") {
        query.support_measure = SupportMeasureKind::kGreedyMisVertex;
      } else if (name == "mis-edge") {
        query.support_measure = SupportMeasureKind::kGreedyMisEdge;
      } else if (name == "mni") {
        query.support_measure = SupportMeasureKind::kMinImage;
      } else {
        std::fprintf(stderr, "unknown support measure '%s'\n", name.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  // Load or synthesize the input network.
  LabeledGraph graph;
  if (!input_path.empty()) {
    Result<LabeledGraph> loaded = LoadGraphText(input_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    std::fprintf(stderr,
                 "no --input; generating a 400-vertex demo graph with a "
                 "planted pattern\n");
    Rng rng(base_seed);
    GraphBuilder builder = GenerateErdosRenyi(400, 2.0, 30, &rng);
    Pattern planted = RandomConnectedPattern(14, 0.15, 30, &rng);
    PatternInjector injector(&builder);
    if (Status s = injector.Inject(planted, 3, &rng); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    Result<LabeledGraph> built = builder.Build();
    if (!built.ok()) return 1;
    graph = std::move(built).value();
  }
  std::fprintf(stderr, "graph: %lld vertices, %lld edges, %d labels\n",
               static_cast<long long>(graph.NumVertices()),
               static_cast<long long>(graph.NumEdges()),
               static_cast<int>(graph.NumLabels()));

  // One session: Stage I over the file happens here, once.
  Result<MiningSession> session =
      MiningSession::Create(&graph, session_config);
  if (!session.ok()) {
    std::fprintf(stderr, "stage I failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "stage I: %lld spiders in %.2fs (mined once)\n",
               static_cast<long long>(session->stage1_stats().num_spiders),
               session->stage1_stats().stage1_seconds);

  // N queries against the cached store; patterns of all runs accumulate
  // under the engine's own dedup/ordering semantics (AccumulateTopK), so
  // one pattern recovered by every run fills a single top-K slot.
  std::vector<MinedPattern> patterns;
  for (int run = 0; run < (runs < 1 ? 1 : runs); ++run) {
    query.rng_seed = base_seed + static_cast<uint64_t>(run);
    Result<QueryResult> result = session->RunQuery(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "query %d (seed=%llu): %zu patterns, M=%lld, %.2fs%s\n",
                 run + 1, static_cast<unsigned long long>(query.rng_seed),
                 result->patterns.size(),
                 static_cast<long long>(result->stats.seed_count_m),
                 result->stats.total_seconds,
                 result->stats.timed_out ? ", budget hit" : "");
    AccumulateTopK(&patterns, std::move(result->patterns), query.k);
  }
  if (closed_only) patterns = FilterToClosed(std::move(patterns));

  std::vector<Pattern> shapes;
  std::vector<int64_t> supports;
  for (const MinedPattern& p : patterns) {
    shapes.push_back(p.pattern);
    supports.push_back(p.support);
  }
  if (!out_path.empty()) {
    if (Status s = SavePatternsText(shapes, out_path, &supports); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  } else {
    std::fputs(PatternsToText(shapes, &supports).c_str(), stdout);
  }
  return 0;
}
