// Command-line miner: run SpiderMine over a graph file and export the
// top-K patterns.
//
//   $ ./examples/mine_file --input graph.lg --sigma 2 --k 10 --dmax 8 \
//         --out patterns.txt
//
// The input format is the LG-style text of graph_io.h ("v <id> <label>" /
// "e <u> <v>"). With no --input, a demo graph is generated so the binary
// is runnable standalone. Patterns are written in pattern_io.h format.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "pattern/pattern_io.h"
#include "spidermine/closed_filter.h"
#include "spidermine/miner.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--input graph.lg] [--out patterns.txt] [options]\n"
      "  --sigma N        minimum support (default 2)\n"
      "  --k N            number of patterns (default 10)\n"
      "  --dmax N         pattern diameter bound (default 8)\n"
      "  --epsilon F      error bound in (0,1) (default 0.1)\n"
      "  --vmin N         large-pattern vertex floor (default |V|/10)\n"
      "  --support NAME   mis-vertex | mis-edge | mni (default mis-vertex)\n"
      "  --restarts N     stage II+III repetitions (default 1)\n"
      "  --budget SECONDS wall-clock budget (default 120)\n"
      "  --seed N         RNG seed (default 42)\n"
      "  --closed-only    post-filter to closed patterns\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spidermine;

  std::string input_path;
  std::string out_path;
  MineConfig config;
  config.time_budget_seconds = 120;
  config.dmax = 8;
  bool closed_only = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--input") {
      input_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--sigma") {
      config.min_support = std::atoll(next());
    } else if (arg == "--k") {
      config.k = std::atoi(next());
    } else if (arg == "--dmax") {
      config.dmax = std::atoi(next());
    } else if (arg == "--epsilon") {
      config.epsilon = std::atof(next());
    } else if (arg == "--vmin") {
      config.vmin = std::atoll(next());
    } else if (arg == "--restarts") {
      config.restarts = std::atoi(next());
    } else if (arg == "--budget") {
      config.time_budget_seconds = std::atof(next());
    } else if (arg == "--seed") {
      config.rng_seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--closed-only") {
      closed_only = true;
    } else if (arg == "--support") {
      std::string name = next();
      if (name == "mis-vertex") {
        config.support_measure = SupportMeasureKind::kGreedyMisVertex;
      } else if (name == "mis-edge") {
        config.support_measure = SupportMeasureKind::kGreedyMisEdge;
      } else if (name == "mni") {
        config.support_measure = SupportMeasureKind::kMinImage;
      } else {
        std::fprintf(stderr, "unknown support measure '%s'\n", name.c_str());
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  // Load or synthesize the input network.
  LabeledGraph graph;
  if (!input_path.empty()) {
    Result<LabeledGraph> loaded = LoadGraphText(input_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    std::fprintf(stderr,
                 "no --input; generating a 400-vertex demo graph with a "
                 "planted pattern\n");
    Rng rng(config.rng_seed);
    GraphBuilder builder = GenerateErdosRenyi(400, 2.0, 30, &rng);
    Pattern planted = RandomConnectedPattern(14, 0.15, 30, &rng);
    PatternInjector injector(&builder);
    if (Status s = injector.Inject(planted, 3, &rng); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    Result<LabeledGraph> built = builder.Build();
    if (!built.ok()) return 1;
    graph = std::move(built).value();
  }
  std::fprintf(stderr, "graph: %lld vertices, %lld edges, %d labels\n",
               static_cast<long long>(graph.NumVertices()),
               static_cast<long long>(graph.NumEdges()),
               static_cast<int>(graph.NumLabels()));

  SpiderMiner miner(&graph, config);
  Result<MineResult> result = miner.Mine();
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::vector<MinedPattern> patterns = std::move(result->patterns);
  if (closed_only) patterns = FilterToClosed(std::move(patterns));

  std::fprintf(stderr,
               "mined %zu patterns (%lld spiders, M=%lld, %.2fs%s)\n",
               patterns.size(),
               static_cast<long long>(result->stats.num_spiders),
               static_cast<long long>(result->stats.seed_count_m),
               result->stats.total_seconds,
               result->stats.timed_out ? ", budget hit" : "");

  std::vector<Pattern> shapes;
  std::vector<int64_t> supports;
  for (const MinedPattern& p : patterns) {
    shapes.push_back(p.pattern);
    supports.push_back(p.support);
  }
  if (!out_path.empty()) {
    if (Status s = SavePatternsText(shapes, out_path, &supports); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  } else {
    std::fputs(PatternsToText(shapes, &supports).c_str(), stdout);
  }
  return 0;
}
