#include "tools/stage1_workers.h"

#include <errno.h>
#include <fcntl.h>
#include <limits.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/strings.h"
#include "common/timer.h"
#include "graph/graph_partition.h"
#include "spidermine/stage1_partition.h"
#include "tools/cli_commands.h"

namespace spidermine::cli {

namespace {

/// Stderr kept per worker attempt: enough for any Status::ToString plus a
/// stack of context lines, small enough to embed in an error message.
constexpr size_t kWorkerStderrCap = 64 * 1024;

std::string PartitionPath(const std::string& parts_dir, int32_t index) {
  return StrCat(parts_dir, "/part.", index, ".smgp");
}

std::string PartialPath(const std::string& parts_dir, int32_t index) {
  return StrCat(parts_dir, "/part.", index, ".sm2p");
}

Status MakeScratchDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return Status::IoError(
      StrCat("cannot create parts dir '", path, "': ", strerror(errno)));
}

/// Runs one partition's worker: up to two attempts (launch + validate),
/// deleting a bad partial before the retry so a truncated file from a
/// killed worker cannot satisfy the validator by accident.
Status MinePartitionViaWorker(const WorkerLauncher& launch,
                              const WorkerInvocation& invocation,
                              const std::string& partial_path,
                              int32_t num_partitions,
                              std::atomic<int32_t>* retries) {
  Status last_error;
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (attempt > 0) {
      retries->fetch_add(1, std::memory_order_relaxed);
      ::unlink(partial_path.c_str());
    }
    Result<WorkerOutcome> outcome = launch(invocation);
    if (!outcome.ok()) {
      last_error = Status::IoError(
          StrCat("stage1 worker for partition ", invocation.partition_index,
                 " could not be started: ", outcome.status().message()));
      continue;
    }
    if (outcome->exit_code != 0) {
      last_error = Status::IoError(StrCat(
          "stage1 worker for partition ", invocation.partition_index,
          " exited with code ", outcome->exit_code, "; stderr:\n",
          outcome->stderr_output.empty() ? "(empty)"
                                         : outcome->stderr_output));
      continue;
    }
    // Exit 0 is not trusted on its own: the eager .sm2p open re-checks
    // every CRC and invariant, so a truncated or corrupt partial (disk
    // full, worker killed between write and exit) fails HERE, not at the
    // merge of all partitions.
    Result<std::unique_ptr<MappedStage1Partial>> partial =
        MappedStage1Partial::Open(partial_path);
    if (!partial.ok()) {
      last_error = Status::IoError(
          StrCat("stage1 worker for partition ", invocation.partition_index,
                 " exited 0 but left an unreadable partial: ",
                 partial.status().message()));
      continue;
    }
    if ((*partial)->meta().partition_index != invocation.partition_index ||
        (*partial)->meta().num_partitions != num_partitions) {
      last_error = Status::IoError(StrCat(
          "stage1 worker for partition ", invocation.partition_index,
          " wrote a partial claiming partition ",
          (*partial)->meta().partition_index, "/",
          (*partial)->meta().num_partitions, " (mixed-up outputs?)"));
      continue;
    }
    return Status::Ok();
  }
  return last_error;
}

}  // namespace

Result<WorkerOutcome> ForkExecWorker(const WorkerInvocation& invocation) {
  if (invocation.argv.empty()) {
    return Status::InvalidArgument("worker invocation has an empty argv");
  }
  int stderr_pipe[2];
  if (::pipe(stderr_pipe) != 0) {
    return Status::IoError(
        StrCat("pipe() failed for worker stderr: ", strerror(errno)));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(stderr_pipe[0]);
    ::close(stderr_pipe[1]);
    return Status::IoError(StrCat("fork() failed: ", strerror(errno)));
  }
  if (pid == 0) {
    // Child: stdout AND stderr -> pipe, then exec. A worker's progress
    // line would otherwise interleave into the parent's stdout; captured
    // output is surfaced only in failure messages. Only async-signal-safe
    // calls between fork and exec; on exec failure report and _exit(127).
    ::close(stderr_pipe[0]);
    ::dup2(stderr_pipe[1], STDOUT_FILENO);
    ::dup2(stderr_pipe[1], STDERR_FILENO);
    ::close(stderr_pipe[1]);
    std::vector<char*> argv;
    argv.reserve(invocation.argv.size() + 1);
    for (const std::string& arg : invocation.argv) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    const char* prefix = "exec failed: ";
    (void)!::write(STDERR_FILENO, prefix, strlen(prefix));
    (void)!::write(STDERR_FILENO, invocation.argv[0].c_str(),
                   invocation.argv[0].size());
    (void)!::write(STDERR_FILENO, "\n", 1);
    ::_exit(127);
  }
  // Parent: drain stderr BEFORE waitpid — a worker writing more than the
  // pipe buffer would otherwise deadlock against our wait. Bytes past the
  // cap are read and dropped so the child never blocks on a full pipe.
  ::close(stderr_pipe[1]);
  WorkerOutcome outcome;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(stderr_pipe[0], buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    const size_t room = kWorkerStderrCap - std::min(
        kWorkerStderrCap, outcome.stderr_output.size());
    outcome.stderr_output.append(
        buffer, std::min(static_cast<size_t>(n), room));
  }
  ::close(stderr_pipe[0]);
  int wait_status = 0;
  pid_t waited;
  do {
    waited = ::waitpid(pid, &wait_status, 0);
  } while (waited < 0 && errno == EINTR);
  if (waited < 0) {
    return Status::IoError(
        StrCat("waitpid() failed for worker pid ", pid, ": ",
               strerror(errno)));
  }
  if (WIFEXITED(wait_status)) {
    outcome.exit_code = WEXITSTATUS(wait_status);
  } else if (WIFSIGNALED(wait_status)) {
    outcome.exit_code = 128 + WTERMSIG(wait_status);
  } else {
    outcome.exit_code = -1;
  }
  return outcome;
}

Result<std::string> ResolveWorkerBinary(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  const char* env = std::getenv("SPIDERMINE_CLI_BIN");
  if (env != nullptr && env[0] != '\0') return std::string(env);
  char buffer[PATH_MAX];
  const ssize_t len =
      ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len > 0) {
    buffer[len] = '\0';
    return std::string(buffer);
  }
  return Status::InvalidArgument(
      "cannot locate the spidermine binary for worker processes; pass "
      "--worker-binary or set SPIDERMINE_CLI_BIN");
}

Result<PartitionedStage1Stats> RunPartitionedStage1(
    const std::string& graph_path, const std::string& out_path,
    const PartitionedStage1Options& options, const WorkerLauncher& launcher,
    std::ostream* log) {
  if (options.num_workers < 1) {
    return Status::InvalidArgument(
        StrCat("--workers must be >= 1 (got ", options.num_workers, ")"));
  }
  const int32_t num_partitions = options.num_partitions > 0
                                     ? options.num_partitions
                                     : options.num_workers;
  const std::string parts_dir =
      options.parts_dir.empty() ? StrCat(out_path, ".parts")
                                : options.parts_dir;
  SM_RETURN_NOT_OK(MakeScratchDir(parts_dir));
  SM_ASSIGN_OR_RETURN(const std::string worker_binary,
                      ResolveWorkerBinary(options.worker_binary));
  const WorkerLauncher launch =
      launcher ? launcher : WorkerLauncher(&ForkExecWorker);

  PartitionedStage1Stats stats;
  stats.num_partitions = num_partitions;

  // Phase 1: load, cut, persist, FREE. The graph lives only inside this
  // block — after it, the parent holds no per-vertex state and each
  // worker's RSS is bounded by its own partition.
  {
    WallTimer timer;
    SM_ASSIGN_OR_RETURN(LabeledGraph graph, LoadGraphAuto(graph_path));
    SM_ASSIGN_OR_RETURN(
        PartitionPlan plan,
        MakePartitionPlan(graph, num_partitions, /*radius=*/1));
    for (int32_t p = 0; p < num_partitions; ++p) {
      SM_ASSIGN_OR_RETURN(GraphPartition part,
                          BuildGraphPartition(graph, plan, p));
      SM_RETURN_NOT_OK(SaveGraphPartition(part, PartitionPath(parts_dir, p)));
    }
    if (log != nullptr) {
      *log << "stage1: wrote " << num_partitions << " partitions to "
           << parts_dir << " in " << timer.ElapsedSeconds() << "s\n";
    }
  }

  // Phase 2: mine the partitions in worker processes, at most
  // num_workers at a time, claimed by atomic counter. The first failure
  // (after its retry) stops new claims; in-flight workers finish.
  {
    WallTimer timer;
    std::atomic<int32_t> next{0};
    std::atomic<int32_t> retries{0};
    std::mutex error_mu;
    Status first_error;
    auto worker_loop = [&] {
      for (;;) {
        const int32_t p = next.fetch_add(1, std::memory_order_relaxed);
        if (p >= num_partitions) return;
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error.ok()) return;
        }
        WorkerInvocation invocation;
        invocation.partition_index = p;
        invocation.argv = {
            worker_binary,
            "stage1-part",
            PartitionPath(parts_dir, p),
            StrCat("--support=", options.min_support),
            StrCat("--max-leaves=", options.max_star_leaves),
            StrCat("--max-spiders=", options.max_spiders),
            StrCat("--shard-grain=", options.shard_grain),
            StrCat("--threads=", options.worker_threads),
            StrCat("--out=", PartialPath(parts_dir, p)),
        };
        Status status =
            MinePartitionViaWorker(launch, invocation,
                                   PartialPath(parts_dir, p),
                                   num_partitions, &retries);
        if (!status.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = std::move(status);
          return;
        }
      }
    };
    const int32_t num_threads =
        std::min(options.num_workers, num_partitions);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(num_threads));
    for (int32_t t = 0; t < num_threads; ++t) {
      threads.emplace_back(worker_loop);
    }
    for (std::thread& thread : threads) thread.join();
    stats.worker_retries = retries.load(std::memory_order_relaxed);
    SM_RETURN_NOT_OK(first_error);
    if (log != nullptr) {
      *log << "stage1: " << num_partitions << " partials mined by up to "
           << num_threads << " workers in " << timer.ElapsedSeconds() << "s"
           << (stats.worker_retries > 0
                   ? StrCat(" (", stats.worker_retries, " retries)")
                   : "")
           << "\n";
    }
  }

  // Phase 3: merge. Graph-free — the partial metas carry the parent
  // identity, and the merged .sm2 is byte-identical to a single-process
  // `stage1` with the same parameters.
  {
    WallTimer timer;
    std::vector<std::string> partial_paths;
    partial_paths.reserve(static_cast<size_t>(num_partitions));
    for (int32_t p = 0; p < num_partitions; ++p) {
      partial_paths.push_back(PartialPath(parts_dir, p));
    }
    SM_ASSIGN_OR_RETURN(Stage1MergeStats merge,
                        MergeStage1PartialsToFile(partial_paths, out_path));
    stats.merged_spiders = merge.merged_spiders;
    stats.frequent_stars = merge.frequent_stars;
    stats.total_anchors = merge.total_anchors;
    stats.truncated = merge.truncated;
    if (log != nullptr) {
      *log << "stage1: merged " << num_partitions << " partials in "
           << timer.ElapsedSeconds() << "s\n";
    }
  }

  if (!options.keep_parts) {
    for (int32_t p = 0; p < num_partitions; ++p) {
      ::unlink(PartitionPath(parts_dir, p).c_str());
      ::unlink(PartialPath(parts_dir, p).c_str());
    }
    // Best effort: a user-supplied --parts-dir may hold other files.
    ::rmdir(parts_dir.c_str());
  }
  return stats;
}

}  // namespace spidermine::cli
