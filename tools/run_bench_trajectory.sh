#!/usr/bin/env bash
# Regenerates the committed benchmark artifacts from a fresh build, so a
# reviewer can reproduce the numbers behind the perf claims in the docs:
#
#   BENCH_artifact_load.json  — cold-start cost of the `.sm1`
#     copy-deserialize path vs the zero-copy mmap `.sm2` path; the
#     committed file must show cold_load_speedup >= 10.
#   BENCH_growth_engine.json  — per-candidate VF2 closure vs the carried
#     embedding-list engine on a 300k-vertex graph; the committed file
#     must show post_growth_speedup_8t >= 2 with byte-identical top-K
#     across modes and thread counts.
#   BENCH_serve_throughput.json — end-to-end queries/sec of the
#     multi-client socket server (RunServeServer) at 1..8 concurrent
#     connections, real unix-socket clients on the measured path. The
#     speedup bar (last row >= 2x the 1-connection row) is enforced only
#     on machines with >= 4 cores: with one worker-visible core the rows
#     legitimately flatline, and the artifact then records that shape.
#   BENCH_support_measures.json — queries/sec per support measure (the
#     per-query workload knob: greedy MIS / MNI / count / homomorphism /
#     transaction, sampled and not) against one resident session on a
#     50k-vertex graph; the committed file must show
#     hom_vs_mni_qps_ratio >= 0.2 with per-measure transcripts identical
#     across repeats.
#   BENCH_partition_stage1.json — out-of-core partitioned Stage I on a
#     2M-vertex BA graph: wall time + PER-PROCESS peak RSS of each phase
#     (partition / per-partition worker / merge, each a forked child
#     measured via wait4 rusage) vs the single-node baseline. The bar is
#     exactness: the merged .sm2 must be byte-identical to the baseline's
#     (exit 2 otherwise); RSS numbers are trajectory records.
#
#   $ tools/run_bench_trajectory.sh
#
# Numbers vary with hardware; the JSON is a trajectory record, not a test
# oracle. Each bench binary itself exits non-zero when its run misses the
# bar, which fails this script.
set -euo pipefail
cd "$(dirname "$0")/.."

for bench in bench_artifact_load bench_growth_engine bench_parallel_scaling \
             bench_support_measures bench_partition_stage1; do
  if [[ ! -x "build/${bench}" ]]; then
    echo "error: build/${bench} not found; build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
  fi
done

echo "=== bench_artifact_load (synthetic >=100 MB store; ~1 min)"
build/bench_artifact_load > BENCH_artifact_load.json
cat BENCH_artifact_load.json
echo "OK: wrote BENCH_artifact_load.json"

echo "=== bench_growth_engine (300k-vertex graph, 12 queries; ~2 min)"
build/bench_growth_engine > BENCH_growth_engine.json
cat BENCH_growth_engine.json
echo "OK: wrote BENCH_growth_engine.json"

echo "=== bench_parallel_scaling --concurrent-queries (socket server; ~1 min)"
cores="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"
speedup_bar_args=()
if [[ "${cores}" -ge 4 ]]; then
  speedup_bar_args+=(--min-conn-speedup=2.0)
else
  echo "note: ${cores} core(s) visible; serve-throughput speedup bar skipped"
fi
# The bench emits banner comments + one JSON row per connection count;
# strip the banner and wrap the rows into a single valid JSON array.
rows="$(build/bench_parallel_scaling --vertices=20000 --concurrent-queries=8 \
  --queries-per-round=32 "${speedup_bar_args[@]}" | grep -v '^#')"
{
  echo '['
  sed '$!s/$/,/' <<< "${rows}"
  echo ']'
} > BENCH_serve_throughput.json
cat BENCH_serve_throughput.json
echo "OK: wrote BENCH_serve_throughput.json"

echo "=== bench_support_measures (50k-vertex graph, 7 measures x 3; ~1 min)"
build/bench_support_measures > BENCH_support_measures.json
cat BENCH_support_measures.json
echo "OK: wrote BENCH_support_measures.json"

echo "=== bench_partition_stage1 (2M-vertex BA graph; ~5 min)"
build/bench_partition_stage1 > BENCH_partition_stage1.json
cat BENCH_partition_stage1.json
echo "OK: wrote BENCH_partition_stage1.json"
