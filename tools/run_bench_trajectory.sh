#!/usr/bin/env bash
# Regenerates the committed benchmark artifacts from a fresh build, so a
# reviewer can reproduce the numbers behind the perf claims in the docs.
# Currently: BENCH_artifact_load.json (cold-start cost of the `.sm1`
# copy-deserialize path vs the zero-copy mmap `.sm2` path; the committed
# file must show cold_load_speedup >= 10).
#
#   $ tools/run_bench_trajectory.sh
#
# Numbers vary with hardware; the JSON is a trajectory record, not a test
# oracle. The bench binary itself exits non-zero when the run misses the
# 10x bar, which fails this script.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ ! -x build/bench_artifact_load ]]; then
  echo "error: build/bench_artifact_load not found; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

echo "=== bench_artifact_load (synthetic >=100 MB store; ~1 min)"
build/bench_artifact_load > BENCH_artifact_load.json
cat BENCH_artifact_load.json
echo "OK: wrote BENCH_artifact_load.json"
