#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "support/support_measure.h"

/// \file cli_commands.h
/// The spidermine command-line tool, factored as a library so each
/// subcommand is unit-testable without spawning processes. The `main`
/// binary (spidermine_cli.cc) only dispatches to RunCli. Full user-facing
/// reference with copy-pasteable examples: docs/CLI.md.
///
/// Subcommands:
///   gen      generate a synthetic network (ER / BA / DBLP-sim / Jeti-sim)
///            with optional pattern injection, write it to a file
///   stats    print structural statistics of a graph file
///   mine     run SpiderMine over a graph file and print the top-K patterns
///            (one-shot: Stage I + one query)
///   stage1   mine Stage I once and save the spider-store artifact (.sm2);
///            with --workers N the graph is partitioned and mined by N
///            worker processes out-of-core, byte-identical result
///   partition    cut a graph into vertex-range partitions with r-hop
///                halos (.smgp), the inputs of stage1-part
///   stage1-part  mine one partition's Stage I contribution (.sm2p)
///   stage1-merge fold the .sm2p partials into the final .sm2,
///                byte-identical to a single-process stage1
///   query    answer a top-K query against a saved stage1 artifact without
///            re-mining; repeated queries take milliseconds-to-seconds
///   serve    keep one session resident and answer newline-delimited JSON
///            top-K queries concurrently (stdin/stdout or a unix socket)
///   baseline run a comparison miner (subdue / seus / grew / complete)
///   convert  convert between the text (.lg) and binary (.smg) formats

namespace spidermine::cli {

/// Dispatches `spidermine <subcommand> [flags]`. Writes normal output to
/// \p out and errors/usage to \p err; returns the process exit code.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

/// Parses a support-measure flag/request value ("vertex-mis", "edge-mis",
/// "mni", "count"); kInvalidArgument naming the unknown value otherwise.
/// Shared by the mine/query flag parsing and the serve JSON schema.
Result<SupportMeasureKind> ParseMeasure(const std::string& name);

/// Loads a graph choosing the decoder by file extension: ".smg" = binary
/// (graph/binary_io.h), anything else = LG text (graph/graph_io.h).
Result<LabeledGraph> LoadGraphAuto(const std::string& path);

/// Saves a graph choosing the encoder by file extension (see LoadGraphAuto).
Status SaveGraphAuto(const LabeledGraph& graph, const std::string& path);

/// Individual subcommands (args exclude the subcommand name).
Status CmdGen(const std::vector<std::string>& args, std::ostream& out);
Status CmdStats(const std::vector<std::string>& args, std::ostream& out);
Status CmdMine(const std::vector<std::string>& args, std::ostream& out);
Status CmdStage1(const std::vector<std::string>& args, std::ostream& out);
Status CmdPartition(const std::vector<std::string>& args, std::ostream& out);
Status CmdStage1Part(const std::vector<std::string>& args,
                     std::ostream& out);
Status CmdStage1Merge(const std::vector<std::string>& args,
                      std::ostream& out);
Status CmdQuery(const std::vector<std::string>& args, std::ostream& out);
Status CmdBaseline(const std::vector<std::string>& args, std::ostream& out);
Status CmdConvert(const std::vector<std::string>& args, std::ostream& out);

/// Cheap fail-fast check of a stage1 artifact path: the file must be
/// readable and carry a recognized format magic ("SMS2" zero-copy or
/// "SMS1" legacy). `serve` runs it before the graph is loaded and the
/// worker pool is built, so a typo'd --artifact path fails in
/// milliseconds, not after seconds of graph loading. kIoError otherwise.
Status PrecheckStage1Artifact(const std::string& path);

/// `serve`: builds (or loads) a session, then answers newline-delimited
/// JSON queries from \p in on \p out until EOF or {"cmd":"shutdown"},
/// running up to --max-inflight queries concurrently; diagnostics and the
/// final latency summary go to \p err. With --socket=<path> and/or
/// --tcp=<port> a multi-client event-loop server (tools/serve_loop.h)
/// replaces the streams: any number of concurrent connections, a global
/// --max-inflight admission gate ("overloaded" rejections), and a shared
/// result cache (--cache-entries/--cache-bytes) answering repeated
/// queries without recomputation. The streams are parameters (RunCli
/// passes std::cin/std::cout) so tests drive the full command without a
/// process. See tools/serve_loop.h for the protocol.
Status CmdServe(const std::vector<std::string>& args, std::istream& in,
                std::ostream& out, std::ostream& err);

}  // namespace spidermine::cli
