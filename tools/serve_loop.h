#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "spidermine/result_cache.h"
#include "spidermine/session.h"

/// \file serve_loop.h
/// The long-lived query-serving loop behind `spidermine serve`: one
/// resident `MiningSession`, newline-delimited JSON requests in,
/// newline-delimited JSON responses out, up to `max_inflight` queries
/// executing concurrently on the session (RunQuery is const and
/// thread-safe; see spidermine/session.h and docs/SERVING.md).
///
/// The loop is a library so it is unit-testable over string streams and
/// reusable by the unix-socket transport. Protocol (full schema with
/// examples in docs/CLI.md):
///
///   request:  {"id": 1, "k": 5, "dmax": 4, "seed": 7}
///   response: {"id":1,"line":1,"ok":true,"patterns":[{"vertices":..,
///              "edges":..,"support":..,"pattern":".."}],"seconds":..,
///              "timed_out":false}
///   error:    {"id":1,"line":1,"ok":false,"error":"..."}
///   shutdown: {"cmd": "shutdown"}   (drains in-flight queries, then exits;
///             the acknowledgment is the final response line)
///
/// Concurrent queries complete out of order, so every response carries
/// two correlation keys: "id" echoes the request's id verbatim (null when
/// the request had none or did not parse), and "line" is the 1-based
/// PHYSICAL input line number (blank lines advance it; they just get no
/// response) — always present and always unambiguous, even when
/// client-chosen ids collide.

namespace spidermine::cli {

/// A parsed flat JSON value: the serve protocol needs null/bool/number/
/// string only; nested containers are rejected at parse time.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
};

/// A flat JSON object (string keys, scalar values), in key order.
using JsonObject = std::map<std::string, JsonValue>;

/// Parses one request line as a flat JSON object. kInvalidArgument (with
/// the offending position/context) on malformed input, nested
/// objects/arrays, duplicate keys, or trailing garbage.
Result<JsonObject> ParseJsonObject(std::string_view line);

/// Escapes \p raw for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string EscapeJsonString(std::string_view raw);

/// Builds a TopKQuery from a parsed request object. Recognized keys:
/// "support", "k", "dmax", "epsilon", "vmin", "seed", "seed_count",
/// "restarts", "time_budget" (numbers), "measure" (string),
/// "strict_dmax" (bool) — each optional, defaulting as the `query`
/// subcommand does; "id" and "cmd" are protocol keys and ignored here.
/// kInvalidArgument on unknown keys, wrong value types, or non-integral
/// values for integer fields (range errors surface later, from
/// QueryConfig::Validate / RunQuery, so the error texts stay identical to
/// the CLI's).
Result<TopKQuery> QueryFromJson(const JsonObject& request);

/// Options of one serve loop.
struct ServeOptions {
  /// Queries allowed to execute concurrently on the session (the worker
  /// count of the loop). Must be >= 1. The stream loop applies it as
  /// blocking back-pressure (reading pauses when the queue is full); the
  /// socket/TCP server applies it as an admission gate (excess requests
  /// are rejected immediately with "overloaded" + retry_after_ms).
  int32_t max_inflight = 1;
  /// Print the end-of-loop aggregate line (requests, errors, latency,
  /// session serving stats) to the error stream.
  bool summary = true;
  /// Optional result cache (borrowed; outlives the loop). A repeated
  /// query whose canonical hash + Stage I content key match a cached
  /// entry is answered from the cache without touching RunQuery — the
  /// response is byte-identical to a recomputation except for its
  /// "seconds" field (results are deterministic; see result_cache.h).
  /// null (or a cache with a 0 cap) disables caching.
  ResultCache* cache = nullptr;
};

/// Counters of one serve loop, filled when the loop exits.
struct ServeStats {
  int64_t requests = 0;       ///< request lines read (incl. malformed)
  int64_t answered = 0;       ///< responses with "ok":true
  int64_t errors = 0;         ///< responses with "ok":false (incl. rejected)
  int64_t rejected = 0;       ///< admission-gate "overloaded" rejections
  double wall_seconds = 0.0;  ///< loop duration
  bool shutdown_requested = false;  ///< exited via {"cmd":"shutdown"}
};

/// Runs the serve loop: reads newline-delimited JSON requests from \p in
/// until EOF or a shutdown command, answers each on \p out (exactly one
/// response line per request line, interleaved by completion order), and
/// executes up to `options.max_inflight` queries concurrently against
/// \p session. Malformed requests produce an "ok":false response and
/// never abort the loop. Returns kInvalidArgument only for invalid
/// \p options; request-level failures are protocol responses, not
/// statuses.
Status RunServeLoop(const MiningSession& session, std::istream& in,
                    std::ostream& out, std::ostream& err,
                    const ServeOptions& options, ServeStats* stats = nullptr);

/// What a server actually bound: the socket path verbatim and the real
/// TCP port (the ephemeral one when tcp_port was 0); -1 / empty = that
/// transport is off.
struct ServeEndpoints {
  std::string socket_path;
  int32_t tcp_port = -1;
};

/// Where a multi-client server listens. At least one transport must be
/// enabled (a non-empty socket_path and/or tcp_port >= 0).
struct ServeTransportOptions {
  /// Unix-domain socket path; empty = no unix listener. A stale socket
  /// file at the path is replaced; an existing path that is NOT a socket
  /// is refused with kInvalidArgument, never deleted.
  std::string socket_path;
  /// TCP port, bound to 127.0.0.1 only (serving is a local-trust
  /// protocol; fronting it to a network is a proxy's job). -1 = no TCP
  /// listener; 0 = pick an ephemeral port (reported via on_ready).
  int32_t tcp_port = -1;
  /// Invoked once on the serving thread after every listener is bound and
  /// before the first accept — the only way to learn an ephemeral TCP
  /// port. Tests connect from here (or from another thread afterwards).
  std::function<void(const ServeEndpoints&)> on_ready;
};

/// Runs the multi-client serve server: an event loop (epoll on Linux,
/// poll elsewhere) multiplexing any number of concurrent connections
/// across the enabled transports, with `options.max_inflight` worker
/// threads executing admitted queries on \p session. Per connection the
/// protocol is exactly RunServeLoop's (newline-delimited requests,
/// responses in completion order, "line" = 1-based physical line number
/// within that connection); across connections:
///
///   - admission: a query arriving while max_inflight queries are already
///     executing (on any connection) is rejected immediately with
///     {"id":..,"line":..,"ok":false,"error":"overloaded",
///      "retry_after_ms":N} — N is derived from the session's observed
///     mean query latency. A slow or idle client never stalls the others.
///   - shutdown: {"cmd":"shutdown"} from any connection stops admission
///     ("server is shutting down" errors), drains every in-flight query
///     on every connection, acknowledges the requester with the final
///     response line, flushes all connections and exits.
///   - robustness: SIGPIPE is ignored process-wide (a mid-response
///     disconnect surfaces as EPIPE and closes that connection only);
///     accept/read/write retry on EINTR.
///
/// kIoError on listener setup failures; per-connection I/O errors close
/// that connection and never abort the server.
Status RunServeServer(const MiningSession& session,
                      const ServeTransportOptions& transport,
                      std::ostream& err, const ServeOptions& options,
                      ServeStats* stats = nullptr);

/// Serves over a unix domain socket at \p socket_path instead of
/// stdin/stdout: RunServeServer with only the unix transport enabled
/// (kept as the stable single-transport entry point). Concurrent
/// connections are multiplexed; a client sending {"cmd":"shutdown"}
/// stops the server for everyone. kIoError on socket failures.
Status RunServeSocket(const MiningSession& session,
                      const std::string& socket_path, std::ostream& err,
                      const ServeOptions& options);

}  // namespace spidermine::cli
