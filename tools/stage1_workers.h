#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"

/// \file stage1_workers.h
/// The multi-process partitioned Stage I driver behind
/// `spidermine stage1 --workers N`: partition the graph to disk, fork one
/// `stage1-part` worker process per partition (at most N concurrently),
/// validate and merge the partial artifacts into a `.sm2` byte-identical
/// to a single-process run.
///
/// Why processes and not threads: the in-process miner already scales
/// across threads; what a worker process adds is an ADDRESS-SPACE bound.
/// The parent loads the graph once, writes the partitions, and frees it
/// before any worker starts — from then on the largest resident set in
/// play is one partition plus its mining state, not the whole graph. That
/// is the out-of-core story: the `.smgp` partition files and `.sm2p`
/// partials stream through the page cache, never coexisting in one heap.
///
/// The launcher is injectable so the scheduling, retry and validation
/// logic is unit-testable without fork/exec: tests substitute a
/// WorkerLauncher that runs RunCli in-process or fails on purpose. The
/// default launcher (ForkExecWorker) forks, pipes the child's stderr
/// (capped), execs and reaps — a worker killed by a signal reports
/// 128+signo, exec failure 127, matching shell conventions.

namespace spidermine::cli {

/// One worker process to run: the full argv (argv[0] = the binary) plus
/// the partition index it serves, for error attribution.
struct WorkerInvocation {
  std::vector<std::string> argv;
  int32_t partition_index = 0;
};

/// What a finished worker left behind. exit_code 0 is success; nonzero
/// exits, 128+signo deaths and 127 exec failures all carry the captured
/// output (stdout+stderr combined) for the error message.
struct WorkerOutcome {
  int32_t exit_code = 0;
  std::string stderr_output;
};

/// Runs one worker to completion. A Status (rather than a nonzero exit)
/// means the worker could not even be started.
using WorkerLauncher =
    std::function<Result<WorkerOutcome>(const WorkerInvocation&)>;

/// The default launcher: fork, redirect the child's stdout AND stderr
/// into a pipe (first 64 KiB kept; surfaced only in failure messages),
/// execv, waitpid. Never throws; never blocks on a worker that writes
/// more output than the cap.
Result<WorkerOutcome> ForkExecWorker(const WorkerInvocation& invocation);

/// Resolves the binary workers should exec: \p flag_value
/// (--worker-binary) if non-empty, else $SPIDERMINE_CLI_BIN, else this
/// process's own image via /proc/self/exe.
Result<std::string> ResolveWorkerBinary(const std::string& flag_value);

struct PartitionedStage1Options {
  int32_t num_partitions = 0;  // 0 = num_workers
  int32_t num_workers = 1;
  int64_t min_support = 2;
  int32_t max_star_leaves = 8;
  int64_t max_spiders = 0;
  int64_t shard_grain = 0;
  /// --threads passed to each worker (workers multiply this!).
  int32_t worker_threads = 1;
  /// Scratch directory for .smgp/.sm2p files; "" = "<out_path>.parts".
  std::string parts_dir;
  /// Keep the scratch files after a successful merge.
  bool keep_parts = false;
  /// Binary to exec; "" = ResolveWorkerBinary fallback chain.
  std::string worker_binary;
};

struct PartitionedStage1Stats {
  int64_t merged_spiders = 0;
  int64_t frequent_stars = 0;
  int64_t total_anchors = 0;
  bool truncated = false;
  int32_t num_partitions = 0;
  /// Worker attempts beyond the first, across all partitions (each
  /// partition gets exactly one deterministic retry before the run fails).
  int32_t worker_retries = 0;
};

/// The full driver: load + partition + free the graph, mine every
/// partition in worker processes (at most num_workers concurrent, one
/// retry per partition, truncated/corrupt partials detected by the eager
/// `.sm2p` open), merge to \p out_path, clean up the scratch dir unless
/// keep_parts. \p launcher defaults to ForkExecWorker when empty.
/// Progress lines go to \p log when non-null. On worker failure the error
/// carries the partition index, exit code and captured stderr.
Result<PartitionedStage1Stats> RunPartitionedStage1(
    const std::string& graph_path, const std::string& out_path,
    const PartitionedStage1Options& options,
    const WorkerLauncher& launcher = {}, std::ostream* log = nullptr);

}  // namespace spidermine::cli
