#include "tools/cli_commands.h"

#include <algorithm>
#include <iostream>
#include <optional>

#include "baselines/complete_miner.h"
#include "baselines/grew.h"
#include "baselines/seus.h"
#include "baselines/subdue.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "gen/barabasi_albert.h"
#include "gen/callgraph_sim.h"
#include "gen/dblp_sim.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/binary_format.h"
#include "graph/binary_io.h"
#include "graph/degree_stats.h"
#include "graph/graph_io.h"
#include "graph/graph_metrics.h"
#include "graph/graph_partition.h"
#include "spidermine/miner.h"
#include "spidermine/session.h"
#include "spidermine/stage1_partition.h"
#include "spidermine/txn_adapter.h"
#include "spidermine/variants.h"
#include "tools/serve_loop.h"
#include "tools/stage1_workers.h"

namespace spidermine::cli {

namespace {

bool HasExtension(const std::string& path, std::string_view ext) {
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

/// Upper clamps for the parallelism flags: values beyond these cannot help
/// (more threads than the machine meaningfully schedules; a grain larger
/// than any vertex list is one shard anyway) and are treated as "as large
/// as useful" rather than an error.
constexpr int64_t kMaxShardGrainFlag = int64_t{1} << 31;

/// Validates `--threads`: negatives are rejected with a clear error,
/// absurdly large values are clamped to 8x the hardware threads (capped at
/// 1024). 0 = all hardware threads.
Result<int32_t> ValidateThreadsFlag(int64_t threads) {
  if (threads < 0) {
    return Status::InvalidArgument(
        StrCat("--threads must be >= 0 (got ", threads,
               "); 0 selects all hardware threads"));
  }
  const int64_t max_threads = std::min<int64_t>(
      1024, 8LL * std::max(1, ThreadPool::DefaultThreads()));
  return static_cast<int32_t>(std::min(threads, max_threads));
}

/// Validates `--shard-grain`: negatives are rejected with a clear error,
/// absurdly large values are clamped. 0 = automatic grain. Mined results
/// are identical at any accepted value.
Result<int64_t> ValidateShardGrainFlag(int64_t grain) {
  if (grain < 0) {
    return Status::InvalidArgument(
        StrCat("--shard-grain must be >= 0 (got ", grain,
               "); 0 selects the automatic vertex-range grain"));
  }
  return std::min(grain, kMaxShardGrainFlag);
}

void PrintPatternRow(std::ostream& out, size_t rank, const Pattern& pattern,
                     int64_t support) {
  out << rank << ". |V|=" << pattern.NumVertices()
      << " |E|=" << pattern.NumEdges() << " support=" << support << "  "
      << pattern.ToString() << "\n";
}

/// Loads the optional `--txn-map` file into \p storage (which the caller
/// keeps alive for the session's lifetime) and returns the borrowed
/// pointer to wire into the config; an empty path yields nullptr.
Result<const VertexTxnMap*> MaybeLoadTxnMap(const std::string& path,
                                            const LabeledGraph& graph,
                                            VertexTxnMap* storage) {
  if (path.empty()) return static_cast<const VertexTxnMap*>(nullptr);
  SM_ASSIGN_OR_RETURN(*storage, LoadVertexTxnMap(path, graph.NumVertices()));
  return static_cast<const VertexTxnMap*>(storage);
}

constexpr char kMeasureHelp[] =
    "support measure: vertex-mis | edge-mis | mni | count | homomorphism | "
    "transaction";
constexpr char kTxnMapHelp[] =
    "per-vertex transaction payload file ('<vertex> <txn_id>' lines; "
    "enables --measure=transaction on a single network)";
constexpr char kTxnSampleHelp[] =
    "count only a per-run uniform sample of this many transactions "
    "(0 = all; requires --measure=transaction)";

}  // namespace

Result<SupportMeasureKind> ParseMeasure(const std::string& name) {
  if (name == "vertex-mis") return SupportMeasureKind::kGreedyMisVertex;
  if (name == "edge-mis") return SupportMeasureKind::kGreedyMisEdge;
  if (name == "mni") return SupportMeasureKind::kMinImage;
  if (name == "count") return SupportMeasureKind::kEmbeddingCount;
  if (name == "homomorphism") return SupportMeasureKind::kHomomorphism;
  if (name == "transaction") return SupportMeasureKind::kTransaction;
  return Status::InvalidArgument(
      StrCat("unknown measure '", name,
             "' (expected vertex-mis, edge-mis, mni, count, homomorphism "
             "or transaction)"));
}

Result<LabeledGraph> LoadGraphAuto(const std::string& path) {
  if (HasExtension(path, ".smg")) return LoadGraphBinary(path);
  return LoadGraphText(path);
}

Status SaveGraphAuto(const LabeledGraph& graph, const std::string& path) {
  if (HasExtension(path, ".smg")) return SaveGraphBinary(graph, path);
  return SaveGraphText(graph, path);
}

Status CmdGen(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags("spidermine gen",
                "generate a synthetic network and write it to --out");
  flags.AddString("model", "er", "er | ba | dblp | jeti")
      .AddInt("vertices", 1000, "vertex count (er/ba)")
      .AddDouble("avg-degree", 3.0, "average degree (er)")
      .AddInt("ba-edges", 2, "edges per new vertex (ba)")
      .AddInt("labels", 20, "number of vertex labels (er/ba)")
      .AddInt("seed", 42, "rng seed")
      .AddInt("inject-vertices", 0, "plant a pattern with this many vertices")
      .AddInt("inject-count", 2, "number of planted embeddings")
      .AddInt("inject-diameter", 4, "planted pattern diameter bound")
      .AddString("out", "", "output path (.smg binary, otherwise LG text)");
  SM_RETURN_NOT_OK(flags.Parse(args));
  const std::string out_path = flags.GetString("out");
  if (out_path.empty()) {
    return Status::InvalidArgument(StrCat("--out is required\n", flags.Usage()));
  }

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  const std::string model = flags.GetString("model");
  LabeledGraph graph;
  if (model == "er" || model == "ba") {
    GraphBuilder builder =
        model == "er"
            ? GenerateErdosRenyi(flags.GetInt("vertices"),
                                 flags.GetDouble("avg-degree"),
                                 static_cast<LabelId>(flags.GetInt("labels")),
                                 &rng)
            : GenerateBarabasiAlbert(
                  flags.GetInt("vertices"),
                  static_cast<int32_t>(flags.GetInt("ba-edges")),
                  static_cast<LabelId>(flags.GetInt("labels")), &rng);
    if (flags.GetInt("inject-vertices") > 0) {
      Pattern planted = RandomPatternWithDiameter(
          static_cast<int32_t>(flags.GetInt("inject-vertices")),
          static_cast<int32_t>(flags.GetInt("inject-diameter")),
          static_cast<LabelId>(flags.GetInt("labels")), &rng);
      PatternInjector injector(&builder);
      SM_RETURN_NOT_OK(injector.Inject(
          planted, static_cast<int32_t>(flags.GetInt("inject-count")), &rng));
      out << "injected pattern: |V|=" << planted.NumVertices()
          << " |E|=" << planted.NumEdges() << " x"
          << flags.GetInt("inject-count") << "\n";
    }
    SM_ASSIGN_OR_RETURN(graph, builder.Build());
  } else if (model == "dblp") {
    DblpSimConfig config;
    config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
    SM_ASSIGN_OR_RETURN(DblpDataset dataset, GenerateDblpSim(config));
    graph = std::move(dataset.graph);
  } else if (model == "jeti") {
    CallGraphSimConfig config;
    SM_ASSIGN_OR_RETURN(CallGraphDataset dataset,
                        GenerateCallGraphSim(config));
    graph = std::move(dataset.graph);
  } else {
    return Status::InvalidArgument(
        StrCat("unknown model '", model, "' (expected er, ba, dblp, jeti)"));
  }

  SM_RETURN_NOT_OK(SaveGraphAuto(graph, out_path));
  out << "wrote " << out_path << ": |V|=" << graph.NumVertices()
      << " |E|=" << graph.NumEdges() << " labels=" << graph.NumLabels()
      << "\n";
  return Status::Ok();
}

Status CmdStats(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags("spidermine stats", "print structural statistics of a graph");
  flags.AddInt("diameter-sources", 32,
               "BFS sources for the effective-diameter estimate (0 skips)")
      .AddInt("seed", 1, "rng seed for sampling");
  SM_RETURN_NOT_OK(flags.Parse(args));
  if (flags.positional().size() != 1) {
    return Status::InvalidArgument(
        StrCat("expected exactly one graph file\n", flags.Usage()));
  }
  SM_ASSIGN_OR_RETURN(LabeledGraph graph,
                      LoadGraphAuto(flags.positional()[0]));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  GraphSummary summary =
      Summarize(graph, &rng,
                static_cast<int32_t>(flags.GetInt("diameter-sources")));
  out << summary.ToString();
  DegreeStats degrees = ComputeDegreeStats(graph);
  out << "degree min/avg/max: " << degrees.min << "/" << degrees.average
      << "/" << degrees.max << "\n";
  return Status::Ok();
}

Status CmdMine(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags("spidermine mine", "run SpiderMine over a graph file");
  flags.AddInt("support", 2, "support threshold sigma")
      .AddInt("k", 10, "number of top patterns K")
      .AddInt("dmax", 4, "pattern diameter bound Dmax")
      .AddDouble("epsilon", 0.1, "error bound epsilon")
      .AddInt("vmin", 0, "minimum large-pattern vertices (0 = |V|/10)")
      .AddInt("seed", 42, "rng seed")
      .AddInt("restarts", 1, "independent stage II+III runs")
      .AddInt("threads", 1,
              "worker threads for all stages (0 = all cores); results are "
              "identical at any value")
      .AddInt("shard-grain", 0,
              "Stage I vertex-range shard grain (0 = auto); results are "
              "identical at any value")
      .AddString("measure", "vertex-mis", kMeasureHelp)
      .AddString("txn-map", "", kTxnMapHelp)
      .AddInt("txn-sample", 0, kTxnSampleHelp)
      .AddDouble("time-budget", 0.0, "wall-clock budget seconds (0 = off)")
      .AddInt("emb-budget", 4096,
              "per-lineage carried embedding-list budget (0 = VF2-only "
              "closure); results are identical at any value")
      .AddBool("strict-dmax", false,
               "drop results whose diameter exceeds dmax (Definition 2)")
      .AddBool("maximal", false, "keep only maximal patterns")
      .AddBool("variants", false, "print Fig.23-style variant groups")
      .AddBool("stats", false, "print mining statistics")
      .AddString("out", "",
                 "write top patterns to <out>.<rank>.smp (binary pattern "
                 "files; empty = do not save)");
  SM_RETURN_NOT_OK(flags.Parse(args));
  if (flags.positional().size() != 1) {
    return Status::InvalidArgument(
        StrCat("expected exactly one graph file\n", flags.Usage()));
  }
  SM_ASSIGN_OR_RETURN(LabeledGraph graph,
                      LoadGraphAuto(flags.positional()[0]));

  MineConfig config;
  config.min_support = flags.GetInt("support");
  config.k = static_cast<int32_t>(flags.GetInt("k"));
  config.dmax = static_cast<int32_t>(flags.GetInt("dmax"));
  config.epsilon = flags.GetDouble("epsilon");
  config.vmin = flags.GetInt("vmin");
  config.rng_seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.restarts = static_cast<int32_t>(flags.GetInt("restarts"));
  SM_ASSIGN_OR_RETURN(config.num_threads,
                      ValidateThreadsFlag(flags.GetInt("threads")));
  SM_ASSIGN_OR_RETURN(config.stage1_shard_grain,
                      ValidateShardGrainFlag(flags.GetInt("shard-grain")));
  config.time_budget_seconds = flags.GetDouble("time-budget");
  config.embedding_list_budget = flags.GetInt("emb-budget");
  config.enforce_dmax_on_results = flags.GetBool("strict-dmax");
  SM_ASSIGN_OR_RETURN(config.support_measure,
                      ParseMeasure(flags.GetString("measure")));
  config.txn_sample = flags.GetInt("txn-sample");
  VertexTxnMap txn_map_storage;  // must outlive miner.Mine()
  SM_ASSIGN_OR_RETURN(
      config.txn_map,
      MaybeLoadTxnMap(flags.GetString("txn-map"), graph, &txn_map_storage));

  SpiderMiner miner(&graph, config);
  // `mine` IS the one-shot fused path the shim exists for; the session
  // lifecycle is served by `stage1` / `query` / `serve`.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  SM_ASSIGN_OR_RETURN(MineResult result, miner.Mine());
#pragma GCC diagnostic pop

  std::vector<MinedPattern> patterns = std::move(result.patterns);
  if (flags.GetBool("maximal")) patterns = FilterMaximal(std::move(patterns));

  out << "top " << patterns.size() << " patterns ("
      << SupportMeasureName(config.support_measure) << " support):\n";
  for (size_t i = 0; i < patterns.size(); ++i) {
    PrintPatternRow(out, i + 1, patterns[i].pattern, patterns[i].support);
  }
  if (flags.GetBool("variants")) {
    std::vector<VariantGroup> groups = GroupVariants(patterns);
    out << "variant groups:\n" << VariantGroupsToString(patterns, groups);
  }
  if (flags.GetBool("stats")) {
    out << result.stats.ToString();
  }
  if (!flags.GetString("out").empty()) {
    const std::string& prefix = flags.GetString("out");
    for (size_t i = 0; i < patterns.size(); ++i) {
      const std::string path = StrCat(prefix, ".", i + 1, ".smp");
      SM_RETURN_NOT_OK(SavePatternBinary(patterns[i].pattern, path));
    }
    out << "wrote " << patterns.size() << " pattern files to " << prefix
        << ".*.smp\n";
  }
  return Status::Ok();
}

Status CmdStage1(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags("spidermine stage1",
                "mine the Stage I spider set once and save it to --out; "
                "`query` then answers top-K requests without re-mining");
  flags.AddInt("support", 2, "support floor sigma of the mined spider set")
      .AddInt("max-leaves", 8, "max leaves per star spider")
      .AddInt("max-spiders", 0, "global spider budget (0 = unlimited)")
      .AddInt("threads", 1,
              "worker threads (0 = all cores); results are identical at "
              "any value")
      .AddInt("shard-grain", 0,
              "Stage I vertex-range shard grain (0 = auto); results are "
              "identical at any value")
      .AddDouble("time-budget", 0.0,
                 "Stage I wall-clock budget seconds (0 = off); an expired "
                 "budget saves a truncated but usable artifact; "
                 "incompatible with --workers")
      .AddInt("workers", 0,
              "mine out-of-core via N concurrent worker PROCESSES over "
              "graph partitions (0 = in-process); the artifact is "
              "byte-identical either way, but no worker ever holds the "
              "whole graph")
      .AddInt("partitions", 0,
              "graph partitions in --workers mode (0 = one per worker); "
              "more partitions than workers bounds per-worker memory "
              "further")
      .AddString("parts-dir", "",
                 "scratch directory for the .smgp/.sm2p intermediates "
                 "(default <out>.parts; removed after a successful merge)")
      .AddBool("keep-parts", false,
               "keep the partition/partial scratch files after the merge")
      .AddString("worker-binary", "",
                 "binary worker processes exec (default: this binary, via "
                 "$SPIDERMINE_CLI_BIN or /proc/self/exe)")
      .AddBool("stats", false, "print Stage I statistics")
      .AddString("out", "",
                 "artifact output path (conventionally .sm2; written in "
                 "the zero-copy mmap format of docs/FORMATS.md)");
  SM_RETURN_NOT_OK(flags.Parse(args));
  if (flags.positional().size() != 1) {
    return Status::InvalidArgument(
        StrCat("expected exactly one graph file\n", flags.Usage()));
  }
  const std::string out_path = flags.GetString("out");
  if (out_path.empty()) {
    return Status::InvalidArgument(
        StrCat("--out is required\n", flags.Usage()));
  }

  const int64_t workers = flags.GetInt("workers");
  const int64_t partitions = flags.GetInt("partitions");
  if (workers < 0 || workers > 1024 || partitions < 0 ||
      partitions > 1 << 20) {
    return Status::InvalidArgument(
        StrCat("--workers must be in [0, 1024] and --partitions in [0, "
               "1048576] (got ",
               workers, " / ", partitions, ")"));
  }
  if (workers == 0 &&
      (partitions > 0 || flags.GetBool("keep-parts") ||
       !flags.GetString("parts-dir").empty() ||
       !flags.GetString("worker-binary").empty())) {
    return Status::InvalidArgument(
        "--partitions/--parts-dir/--keep-parts/--worker-binary require "
        "--workers >= 1");
  }
  if (workers > 0) {
    if (flags.WasSet("time-budget")) {
      return Status::InvalidArgument(
          "--time-budget cannot be combined with --workers: a wall-clock "
          "cutoff is nondeterministic across processes and the merged "
          "artifact must be exact; budget the run with --max-spiders "
          "instead");
    }
    PartitionedStage1Options options;
    options.num_workers = static_cast<int32_t>(workers);
    options.num_partitions = static_cast<int32_t>(partitions);
    options.min_support = flags.GetInt("support");
    options.max_star_leaves =
        static_cast<int32_t>(flags.GetInt("max-leaves"));
    options.max_spiders = flags.GetInt("max-spiders");
    SM_ASSIGN_OR_RETURN(options.worker_threads,
                        ValidateThreadsFlag(flags.GetInt("threads")));
    SM_ASSIGN_OR_RETURN(options.shard_grain,
                        ValidateShardGrainFlag(flags.GetInt("shard-grain")));
    options.parts_dir = flags.GetString("parts-dir");
    options.keep_parts = flags.GetBool("keep-parts");
    options.worker_binary = flags.GetString("worker-binary");
    SM_ASSIGN_OR_RETURN(
        PartitionedStage1Stats stats,
        RunPartitionedStage1(flags.positional()[0], out_path, options, {},
                             flags.GetBool("stats") ? &out : nullptr));
    out << "stage1: merged " << stats.merged_spiders << " spiders from "
        << stats.num_partitions << " partitions via " << workers
        << " workers" << (stats.truncated ? " (truncated)" : "")
        << "; wrote " << out_path << "\n";
    return Status::Ok();
  }
  SM_ASSIGN_OR_RETURN(LabeledGraph graph,
                      LoadGraphAuto(flags.positional()[0]));

  SessionConfig config;
  config.min_support = flags.GetInt("support");
  config.max_star_leaves = static_cast<int32_t>(flags.GetInt("max-leaves"));
  config.max_spiders = flags.GetInt("max-spiders");
  SM_ASSIGN_OR_RETURN(config.num_threads,
                      ValidateThreadsFlag(flags.GetInt("threads")));
  SM_ASSIGN_OR_RETURN(config.stage1_shard_grain,
                      ValidateShardGrainFlag(flags.GetInt("shard-grain")));
  config.stage1_time_budget_seconds = flags.GetDouble("time-budget");

  SM_ASSIGN_OR_RETURN(MiningSession session,
                      MiningSession::Create(&graph, config));
  SM_RETURN_NOT_OK(session.SaveStage1(out_path));
  const MineStats& stats = session.stage1_stats();
  out << "stage1: mined " << stats.num_spiders << " spiders ("
      << stats.num_closed_spiders << " closed) in " << stats.stage1_seconds
      << "s" << (session.stage1_truncated() ? " (truncated)" : "")
      << "; wrote " << out_path << " ("
      << stats.stage1_store_bytes / 1024 << " KiB store)\n";
  if (flags.GetBool("stats")) out << stats.ToString();
  return Status::Ok();
}

Status CmdPartition(const std::vector<std::string>& args,
                    std::ostream& out) {
  FlagSet flags("spidermine partition",
                "cut a graph into vertex-range partitions with r-hop "
                "halos (the manual first step of the out-of-core Stage I "
                "pipeline; `stage1 --workers` runs all three steps)");
  flags.AddInt("parts", 2, "number of partitions")
      .AddInt("radius", 1,
              "halo radius in hops; must cover the radius of what is "
              "mined per partition (1 for Stage I star spiders)")
      .AddBool("uniform", false,
               "balance partitions by vertex count instead of by degree "
               "(degree balancing approximates equal edge work)")
      .AddString("out", "", "output prefix; writes <out>.<i>.smgp");
  SM_RETURN_NOT_OK(flags.Parse(args));
  if (flags.positional().size() != 1) {
    return Status::InvalidArgument(
        StrCat("expected exactly one graph file\n", flags.Usage()));
  }
  const std::string prefix = flags.GetString("out");
  if (prefix.empty()) {
    return Status::InvalidArgument(
        StrCat("--out is required\n", flags.Usage()));
  }
  SM_ASSIGN_OR_RETURN(LabeledGraph graph,
                      LoadGraphAuto(flags.positional()[0]));
  SM_ASSIGN_OR_RETURN(
      PartitionPlan plan,
      MakePartitionPlan(graph, static_cast<int32_t>(flags.GetInt("parts")),
                        static_cast<int32_t>(flags.GetInt("radius")),
                        !flags.GetBool("uniform")));
  int64_t total_ghosts = 0;
  for (int32_t p = 0; p < plan.num_partitions; ++p) {
    SM_ASSIGN_OR_RETURN(GraphPartition part,
                        BuildGraphPartition(graph, plan, p));
    const std::string path = StrCat(prefix, ".", p, ".smgp");
    SM_RETURN_NOT_OK(SaveGraphPartition(part, path));
    out << "  part " << p << ": owned [" << part.owned_begin << ", "
        << part.owned_end << ") + " << part.num_ghosts()
        << " ghosts -> " << path << "\n";
    total_ghosts += part.num_ghosts();
  }
  out << "partition: wrote " << plan.num_partitions
      << " partitions (radius " << plan.radius << ") covering "
      << graph.NumVertices() << " vertices; " << total_ghosts
      << " ghosts total ("
      << (graph.NumVertices() > 0
              ? 100.0 * static_cast<double>(total_ghosts) /
                    static_cast<double>(graph.NumVertices())
              : 0.0)
      << "% replication)\n";
  return Status::Ok();
}

Status CmdStage1Part(const std::vector<std::string>& args,
                     std::ostream& out) {
  FlagSet flags("spidermine stage1-part",
                "mine ONE partition's Stage I contribution into a .sm2p "
                "partial (the worker step of `stage1 --workers`; sigma "
                "and --max-spiders are recorded but applied at merge)");
  flags.AddInt("support", 2, "global support floor sigma (merge-time)")
      .AddInt("max-leaves", 8, "max leaves per star spider")
      .AddInt("max-spiders", 0,
              "global spider budget (0 = unlimited; merge-time)")
      .AddInt("threads", 1,
              "worker threads (0 = all cores); results are identical at "
              "any value")
      .AddInt("shard-grain", 0,
              "Stage I vertex-range shard grain (0 = auto); results are "
              "identical at any value")
      .AddString("out", "", "partial output path (conventionally .sm2p)");
  SM_RETURN_NOT_OK(flags.Parse(args));
  if (flags.positional().size() != 1) {
    return Status::InvalidArgument(
        StrCat("expected exactly one .smgp partition file\n",
               flags.Usage()));
  }
  const std::string out_path = flags.GetString("out");
  if (out_path.empty()) {
    return Status::InvalidArgument(
        StrCat("--out is required\n", flags.Usage()));
  }
  SM_ASSIGN_OR_RETURN(GraphPartition part,
                      LoadGraphPartition(flags.positional()[0]));

  Stage1PartialConfig config;
  config.min_support = flags.GetInt("support");
  config.max_star_leaves = static_cast<int32_t>(flags.GetInt("max-leaves"));
  config.max_spiders = flags.GetInt("max-spiders");
  SM_ASSIGN_OR_RETURN(config.shard_grain,
                      ValidateShardGrainFlag(flags.GetInt("shard-grain")));
  SM_ASSIGN_OR_RETURN(const int32_t threads,
                      ValidateThreadsFlag(flags.GetInt("threads")));
  ThreadPool pool(threads > 0 ? threads : ThreadPool::DefaultThreads());
  SM_ASSIGN_OR_RETURN(Stage1PartialResult result,
                      MineStage1Partial(part, config, &pool));

  Stage1PartialMeta meta;
  meta.min_support = config.min_support;
  meta.spider_radius = 1;
  meta.max_star_leaves = config.max_star_leaves;
  meta.max_spiders = config.max_spiders;
  meta.num_graph_vertices = part.parent_num_vertices;
  meta.graph_hash = part.parent_hash;
  meta.partition_index = part.partition_index;
  meta.num_partitions = part.num_partitions;
  meta.owned_begin = part.owned_begin;
  meta.owned_end = part.owned_end;
  SM_RETURN_NOT_OK(SaveStage1Partial(result.store, meta, out_path));
  out << "stage1-part: partition " << part.partition_index << "/"
      << part.num_partitions << " mined " << result.store.size()
      << " owned-anchor stars (" << result.local_stars
      << " enumerated locally); wrote " << out_path << "\n";
  return Status::Ok();
}

Status CmdStage1Merge(const std::vector<std::string>& args,
                      std::ostream& out) {
  FlagSet flags("spidermine stage1-merge",
                "fold all .sm2p partials of one partitioned run into the "
                "final .sm2, byte-identical to a single-process `stage1`");
  flags.AddString("out", "",
                  "artifact output path (conventionally .sm2)");
  SM_RETURN_NOT_OK(flags.Parse(args));
  if (flags.positional().empty()) {
    return Status::InvalidArgument(
        StrCat("expected the .sm2p partials of one run\n", flags.Usage()));
  }
  const std::string out_path = flags.GetString("out");
  if (out_path.empty()) {
    return Status::InvalidArgument(
        StrCat("--out is required\n", flags.Usage()));
  }
  SM_ASSIGN_OR_RETURN(
      Stage1MergeStats stats,
      MergeStage1PartialsToFile(flags.positional(), out_path));
  out << "stage1-merge: " << flags.positional().size() << " partials -> "
      << stats.merged_spiders << " spiders (" << stats.frequent_stars
      << " frequent" << (stats.truncated ? ", truncated" : "")
      << "); wrote " << out_path << "\n";
  return Status::Ok();
}

Status CmdQuery(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags("spidermine query",
                "answer a top-K query against a saved stage1 artifact");
  flags.AddInt("support", 0,
               "query support threshold (0 = the artifact's mined floor; "
               "values below the floor are rejected)")
      .AddInt("k", 10, "number of top patterns K")
      .AddInt("dmax", 4, "pattern diameter bound Dmax")
      .AddDouble("epsilon", 0.1, "error bound epsilon")
      .AddInt("vmin", 0, "minimum large-pattern vertices (0 = |V|/10)")
      .AddInt("seed", 42, "rng seed")
      .AddInt("restarts", 1, "independent stage II+III runs")
      .AddInt("threads", 1,
              "worker threads (0 = all cores); results are identical at "
              "any value")
      .AddString("measure", "vertex-mis", kMeasureHelp)
      .AddString("txn-map", "", kTxnMapHelp)
      .AddInt("txn-sample", 0, kTxnSampleHelp)
      .AddDouble("time-budget", 0.0, "wall-clock budget seconds (0 = off)")
      .AddInt("emb-budget", 4096,
              "per-lineage carried embedding-list budget (0 = VF2-only "
              "closure); results are identical at any value")
      .AddBool("strict-dmax", false,
               "drop results whose diameter exceeds dmax (Definition 2)")
      .AddBool("maximal", false, "keep only maximal patterns")
      .AddBool("variants", false, "print Fig.23-style variant groups")
      .AddBool("stats", false, "print query statistics")
      .AddString("out", "",
                 "write top patterns to <out>.<rank>.smp (binary pattern "
                 "files; empty = do not save)");
  SM_RETURN_NOT_OK(flags.Parse(args));
  if (flags.positional().size() != 2) {
    return Status::InvalidArgument(
        StrCat("expected <graph file> <stage1 artifact>\n", flags.Usage()));
  }
  SM_ASSIGN_OR_RETURN(LabeledGraph graph,
                      LoadGraphAuto(flags.positional()[0]));

  SessionConfig session_config;
  SM_ASSIGN_OR_RETURN(session_config.num_threads,
                      ValidateThreadsFlag(flags.GetInt("threads")));
  VertexTxnMap txn_map_storage;  // must outlive the session
  SM_ASSIGN_OR_RETURN(
      session_config.txn_map,
      MaybeLoadTxnMap(flags.GetString("txn-map"), graph, &txn_map_storage));
  SM_ASSIGN_OR_RETURN(
      MiningSession session,
      MiningSession::LoadStage1(&graph, session_config,
                                flags.positional()[1]));

  TopKQuery query;
  query.min_support = flags.GetInt("support");
  query.k = static_cast<int32_t>(flags.GetInt("k"));
  query.dmax = static_cast<int32_t>(flags.GetInt("dmax"));
  query.epsilon = flags.GetDouble("epsilon");
  query.vmin = flags.GetInt("vmin");
  query.rng_seed = static_cast<uint64_t>(flags.GetInt("seed"));
  query.restarts = static_cast<int32_t>(flags.GetInt("restarts"));
  query.time_budget_seconds = flags.GetDouble("time-budget");
  query.embedding_list_budget = flags.GetInt("emb-budget");
  query.enforce_dmax_on_results = flags.GetBool("strict-dmax");
  SM_ASSIGN_OR_RETURN(query.support_measure,
                      ParseMeasure(flags.GetString("measure")));
  query.txn_sample = flags.GetInt("txn-sample");

  SM_ASSIGN_OR_RETURN(QueryResult result, session.RunQuery(query));

  std::vector<MinedPattern> patterns = std::move(result.patterns);
  if (flags.GetBool("maximal")) patterns = FilterMaximal(std::move(patterns));

  out << "top " << patterns.size() << " patterns ("
      << SupportMeasureName(query.support_measure) << " support, "
      << session.store().size() << " cached spiders):\n";
  for (size_t i = 0; i < patterns.size(); ++i) {
    PrintPatternRow(out, i + 1, patterns[i].pattern, patterns[i].support);
  }
  if (flags.GetBool("variants")) {
    std::vector<VariantGroup> groups = GroupVariants(patterns);
    out << "variant groups:\n" << VariantGroupsToString(patterns, groups);
  }
  if (flags.GetBool("stats")) {
    out << "artifact load: "
        << Stage1LoadModeName(session.stage1_load_mode()) << " in "
        << session.stage1_load_seconds() << "s\n";
    out << result.stats.ToString();
  }
  if (!flags.GetString("out").empty()) {
    const std::string& prefix = flags.GetString("out");
    for (size_t i = 0; i < patterns.size(); ++i) {
      const std::string path = StrCat(prefix, ".", i + 1, ".smp");
      SM_RETURN_NOT_OK(SavePatternBinary(patterns[i].pattern, path));
    }
    out << "wrote " << patterns.size() << " pattern files to " << prefix
        << ".*.smp\n";
  }
  return Status::Ok();
}

Status PrecheckStage1Artifact(const std::string& path) {
  const std::string magic = binary_format::PeekMagic(path);
  if (magic.empty()) {
    return Status::IoError(
        StrCat("cannot read stage1 artifact '", path, "'"));
  }
  if (magic != std::string(kSm2Magic, 4) &&
      magic != std::string(kSm1Magic, 4)) {
    return Status::IoError(
        StrCat("'", path,
               "' is not a stage1 artifact (unrecognized format magic)"));
  }
  return Status::Ok();
}

Status CmdServe(const std::vector<std::string>& args, std::istream& in,
                std::ostream& out, std::ostream& err) {
  FlagSet flags("spidermine serve",
                "answer newline-delimited JSON top-K queries from a "
                "resident session (see docs/CLI.md for the schema)");
  flags.AddInt("support", 2,
               "support floor sigma when mining at startup (a stage1 "
               "artifact carries its own floor and ignores this)")
      .AddInt("max-leaves", 8, "max leaves per star spider (mining only)")
      .AddInt("max-spiders", 0,
              "global spider budget when mining (0 = unlimited)")
      .AddInt("threads", 1,
              "worker threads shared by all in-flight queries (0 = all "
              "cores); results are identical at any value")
      .AddInt("shard-grain", 0,
              "Stage I vertex-range shard grain (0 = auto; mining only)")
      .AddString("txn-map", "", kTxnMapHelp)
      .AddInt("max-inflight", 1,
              "queries executed concurrently on the session; over a "
              "socket/TCP transport this is also the admission gate "
              "(excess requests get an \"overloaded\" rejection)")
      .AddString("socket", "",
                 "serve over a unix domain socket at this path instead of "
                 "stdin/stdout (combinable with --tcp)")
      .AddInt("tcp", -1,
              "also serve over TCP on 127.0.0.1:<port> (0 = ephemeral; "
              "-1 = off); combinable with --socket")
      .AddInt("cache-entries", 256,
              "result cache capacity in entries (0 disables the cache)")
      .AddInt("cache-bytes", 64 * 1024 * 1024,
              "result cache capacity in payload bytes (0 disables the "
              "cache)")
      .AddBool("quiet", false, "suppress the end-of-loop summary line");
  SM_RETURN_NOT_OK(flags.Parse(args));
  if (flags.positional().size() != 1 && flags.positional().size() != 2) {
    return Status::InvalidArgument(
        StrCat("expected <graph file> [<stage1 artifact>]\n", flags.Usage()));
  }
  const int64_t inflight = flags.GetInt("max-inflight");
  if (inflight < 1 || inflight > 1024) {
    return Status::InvalidArgument(
        StrCat("--max-inflight must be in [1, 1024] (got ", inflight, ")"));
  }
  const int64_t tcp_port = flags.GetInt("tcp");
  if (tcp_port < -1 || tcp_port > 65535) {
    return Status::InvalidArgument(
        StrCat("--tcp must be a port in [0, 65535], or -1 = off (got ",
               tcp_port, ")"));
  }
  const int64_t cache_entries = flags.GetInt("cache-entries");
  const int64_t cache_bytes = flags.GetInt("cache-bytes");
  if (cache_entries < 0 || cache_bytes < 0) {
    return Status::InvalidArgument(
        StrCat("--cache-entries/--cache-bytes must be >= 0 (got ",
               cache_entries, " / ", cache_bytes, ")"));
  }
  // A missing or unrecognizable artifact fails here — before the graph is
  // loaded or any worker pool exists — so a bad path costs milliseconds.
  if (flags.positional().size() == 2) {
    SM_RETURN_NOT_OK(PrecheckStage1Artifact(flags.positional()[1]));
  }
  SM_ASSIGN_OR_RETURN(LabeledGraph graph,
                      LoadGraphAuto(flags.positional()[0]));

  SessionConfig config;
  SM_ASSIGN_OR_RETURN(config.num_threads,
                      ValidateThreadsFlag(flags.GetInt("threads")));
  VertexTxnMap txn_map_storage;  // must outlive the serving session
  SM_ASSIGN_OR_RETURN(
      config.txn_map,
      MaybeLoadTxnMap(flags.GetString("txn-map"), graph, &txn_map_storage));
  std::optional<MiningSession> session;
  if (flags.positional().size() == 2) {
    // Warm start: adopt a precomputed artifact (its mining parameters
    // override the config's Stage I knobs).
    SM_ASSIGN_OR_RETURN(
        MiningSession loaded,
        MiningSession::LoadStage1(&graph, config, flags.positional()[1]));
    session.emplace(std::move(loaded));
  } else {
    // Cold start: mine Stage I here, once, before serving begins.
    config.min_support = flags.GetInt("support");
    config.max_star_leaves = static_cast<int32_t>(flags.GetInt("max-leaves"));
    config.max_spiders = flags.GetInt("max-spiders");
    SM_ASSIGN_OR_RETURN(config.stage1_shard_grain,
                        ValidateShardGrainFlag(flags.GetInt("shard-grain")));
    SM_ASSIGN_OR_RETURN(MiningSession mined,
                        MiningSession::Create(&graph, config));
    session.emplace(std::move(mined));
  }
  err << "serve: session ready (stage1 "
      << Stage1LoadModeName(session->stage1_load_mode());
  if (session->stage1_load_mode() != Stage1LoadMode::kMined) {
    err << " in " << session->stage1_load_seconds() << "s";
  }
  err << "), " << session->store().size()
      << " cached spiders (support floor "
      << session->config().min_support << "), max "
      << inflight << " in-flight queries\n";

  // The cache outlives the loop it is handed to; every transport of this
  // process shares it (hits cross connections and transports).
  ResultCacheConfig cache_config;
  cache_config.max_entries = cache_entries;
  cache_config.max_bytes = cache_bytes;
  ResultCache cache(cache_config);

  ServeOptions options;
  options.max_inflight = static_cast<int32_t>(inflight);
  options.summary = !flags.GetBool("quiet");
  options.cache = &cache;
  if (!flags.GetString("socket").empty() || tcp_port >= 0) {
    ServeTransportOptions transport;
    transport.socket_path = flags.GetString("socket");
    transport.tcp_port = static_cast<int32_t>(tcp_port);
    return RunServeServer(*session, transport, err, options);
  }
  return RunServeLoop(*session, in, out, err, options);
}

Status CmdBaseline(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags("spidermine baseline", "run a comparison miner");
  flags.AddString("algo", "subdue", "subdue | seus | grew | complete")
      .AddInt("support", 2, "support threshold")
      .AddInt("k", 10, "patterns reported")
      .AddDouble("time-budget", 60.0, "wall-clock budget seconds");
  SM_RETURN_NOT_OK(flags.Parse(args));
  if (flags.positional().size() != 1) {
    return Status::InvalidArgument(
        StrCat("expected exactly one graph file\n", flags.Usage()));
  }
  SM_ASSIGN_OR_RETURN(LabeledGraph graph,
                      LoadGraphAuto(flags.positional()[0]));
  const std::string algo = flags.GetString("algo");
  const int64_t support = flags.GetInt("support");
  const auto k = static_cast<size_t>(flags.GetInt("k"));

  if (algo == "subdue") {
    SubdueConfig config;
    config.max_best = static_cast<int32_t>(k);
    config.time_budget_seconds = flags.GetDouble("time-budget");
    SM_ASSIGN_OR_RETURN(SubdueResult result, SubdueDiscover(graph, config));
    out << "subdue: " << result.patterns.size() << " substructures\n";
    for (size_t i = 0; i < result.patterns.size() && i < k; ++i) {
      PrintPatternRow(out, i + 1, result.patterns[i].pattern,
                      result.patterns[i].instances);
    }
  } else if (algo == "seus") {
    SeusConfig config;
    config.min_support = support;
    SM_ASSIGN_OR_RETURN(SeusResult result, SeusDiscover(graph, config));
    out << "seus: " << result.patterns.size() << " structures\n";
    for (size_t i = 0; i < result.patterns.size() && i < k; ++i) {
      PrintPatternRow(out, i + 1, result.patterns[i].pattern,
                      result.patterns[i].support);
    }
  } else if (algo == "grew") {
    GrewConfig config;
    config.min_support = support;
    SM_ASSIGN_OR_RETURN(GrewResult result, GrewDiscover(graph, config));
    out << "grew: " << result.patterns.size() << " patterns\n";
    for (size_t i = 0; i < result.patterns.size() && i < k; ++i) {
      PrintPatternRow(out, i + 1, result.patterns[i].pattern,
                      result.patterns[i].support);
    }
  } else if (algo == "complete") {
    CompleteMinerConfig config;
    config.min_support = support;
    config.time_budget_seconds = flags.GetDouble("time-budget");
    SM_ASSIGN_OR_RETURN(CompleteMineResult result,
                        MineComplete(graph, config));
    out << "complete: " << result.patterns.size() << " frequent patterns"
        << (result.aborted ? " (budget hit; prefix only)" : "") << "\n";
    std::sort(result.patterns.begin(), result.patterns.end(),
              [](const CompletePattern& a, const CompletePattern& b) {
                return a.pattern.NumEdges() > b.pattern.NumEdges();
              });
    for (size_t i = 0; i < result.patterns.size() && i < k; ++i) {
      PrintPatternRow(out, i + 1, result.patterns[i].pattern,
                      result.patterns[i].support);
    }
  } else {
    return Status::InvalidArgument(
        StrCat("unknown algo '", algo,
               "' (expected subdue, seus, grew, complete)"));
  }
  return Status::Ok();
}

Status CmdConvert(const std::vector<std::string>& args, std::ostream& out) {
  FlagSet flags("spidermine convert",
                "convert between text and binary graph formats");
  SM_RETURN_NOT_OK(flags.Parse(args));
  if (flags.positional().size() != 2) {
    return Status::InvalidArgument(
        StrCat("expected <input> <output>\n", flags.Usage()));
  }
  SM_ASSIGN_OR_RETURN(LabeledGraph graph,
                      LoadGraphAuto(flags.positional()[0]));
  SM_RETURN_NOT_OK(SaveGraphAuto(graph, flags.positional()[1]));
  out << "converted " << flags.positional()[0] << " -> "
      << flags.positional()[1] << " (|V|=" << graph.NumVertices()
      << " |E|=" << graph.NumEdges() << ")\n";
  return Status::Ok();
}

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  static constexpr char kUsage[] =
      "usage: spidermine <gen|stats|mine|stage1|partition|stage1-part|"
      "stage1-merge|query|serve|baseline|convert> [flags]\n"
      "run `spidermine <subcommand> --help` semantics: any flag error "
      "prints the subcommand's flag list\n";
  if (args.empty()) {
    err << kUsage;
    return 2;
  }
  const std::string& command = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  Status status;
  if (command == "gen") {
    status = CmdGen(rest, out);
  } else if (command == "stats") {
    status = CmdStats(rest, out);
  } else if (command == "mine") {
    status = CmdMine(rest, out);
  } else if (command == "stage1") {
    status = CmdStage1(rest, out);
  } else if (command == "partition") {
    status = CmdPartition(rest, out);
  } else if (command == "stage1-part") {
    status = CmdStage1Part(rest, out);
  } else if (command == "stage1-merge") {
    status = CmdStage1Merge(rest, out);
  } else if (command == "query") {
    status = CmdQuery(rest, out);
  } else if (command == "serve") {
    status = CmdServe(rest, std::cin, out, err);
  } else if (command == "baseline") {
    status = CmdBaseline(rest, out);
  } else if (command == "convert") {
    status = CmdConvert(rest, out);
  } else {
    err << "unknown subcommand '" << command << "'\n" << kUsage;
    return 2;
  }
  if (!status.ok()) {
    err << status.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace spidermine::cli
