#!/usr/bin/env bash
# Executes every `$ `-prefixed example line of the CLI documentation, in
# file order, from the repository root. The docs promise the examples are
# copy-pasteable against a fresh `cmake --build build`; CI runs this
# script so a flag rename or output change cannot silently rot them.
#
#   $ tools/run_doc_examples.sh
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ ! -x build/spidermine ]]; then
  echo "error: build/spidermine not found; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

for doc in docs/SERVING.md docs/CLI.md; do
  echo "=== ${doc}"
  # Each example is a single line beginning "$ "; pipelines are allowed.
  while IFS= read -r example; do
    echo "+ ${example}"
    bash -c "${example}"
  done < <(sed -n 's/^\$ //p' "${doc}")
done
echo "OK: every documented example ran successfully"
