// The spidermine command-line tool. All logic lives in cli_commands.cc so
// subcommands are unit-testable; this file only adapts argv.
//
// Examples:
//   spidermine gen --model=er --vertices=2000 --avg-degree=3 --labels=30 --inject-vertices=25 --inject-count=3 --out=/tmp/g.smg
//   spidermine stats /tmp/g.smg
//   spidermine mine /tmp/g.smg --support=3 --k=10 --dmax=4 --variants --stats
//   spidermine stage1 /tmp/g.smg --support=3 --out=/tmp/g.sm1
//   spidermine query /tmp/g.smg /tmp/g.sm1 --k=10 --dmax=4 --seed=7
//   echo '{"id":1,"k":10,"seed":7}' | spidermine serve /tmp/g.smg /tmp/g.sm1 --max-inflight=4
//   spidermine baseline /tmp/g.smg --algo=subdue
//   spidermine convert /tmp/g.smg /tmp/g.lg
//
// Full reference with the serve JSON schema: docs/CLI.md.

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli_commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? static_cast<size_t>(argc - 1) : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return spidermine::cli::RunCli(args, std::cout, std::cerr);
}
