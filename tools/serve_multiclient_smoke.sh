#!/usr/bin/env bash
# Multi-client serving smoke, run by CI against the real binary: one
# resident `serve` process listening on BOTH transports (unix socket +
# ephemeral TCP), three concurrent clients — two over TCP (bash /dev/tcp),
# one over the unix socket (python3 stdlib) — each sending the same query
# twice, overlapping in flight. Verifies:
#   * every client's responses are byte-identical across clients and
#     transports after stripping the timing field ("seconds");
#   * the repeated query is answered by the result cache: the shutdown
#     summary must report >= 1 cache hit;
#   * {"cmd":"shutdown"} is acked and the server exits with status 0.
#
#   $ tools/serve_multiclient_smoke.sh [path/to/spidermine]
set -euo pipefail
cd "$(dirname "$0")/.."
BIN="${1:-build/spidermine}"
if [[ ! -x "${BIN}" ]]; then
  echo "error: ${BIN} not found; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

work="$(mktemp -d)"
server_pid=""
cleanup() {
  [[ -n "${server_pid}" ]] && kill "${server_pid}" 2>/dev/null || true
  rm -rf "${work}"
}
trap cleanup EXIT

echo "=== generate graph + stage1 artifact"
"${BIN}" gen --model=er --vertices=400 --avg-degree=1.8 --labels=15 \
  --seed=5 --inject-vertices=12 --inject-count=3 --out="${work}/g.smg"
"${BIN}" stage1 "${work}/g.smg" --support=3 --threads=0 \
  --out="${work}/g.sm2"

echo "=== start the server on unix socket + ephemeral TCP"
sock="${work}/serve.sock"
"${BIN}" serve "${work}/g.smg" "${work}/g.sm2" --threads=0 \
  --socket="${sock}" --tcp=0 --max-inflight=4 \
  </dev/null 2>"${work}/server.err" &
server_pid=$!
for _ in $(seq 1 100); do
  grep -q 'serve: listening on' "${work}/server.err" 2>/dev/null && break
  kill -0 "${server_pid}" 2>/dev/null || {
    echo "server died at startup:" >&2; cat "${work}/server.err" >&2; exit 1
  }
  sleep 0.1
done
grep 'serve: listening on' "${work}/server.err"
port="$(sed -n 's/.*tcp 127\.0\.0\.1:\([0-9]*\).*/\1/p' "${work}/server.err")"
test -n "${port}"

# Every client sends the SAME two-request script (ids 1 and 2, identical
# query bytes), so after stripping "seconds" the three transcripts must be
# byte-identical — same ids, same per-connection line numbers, same
# patterns. The second request is a guaranteed cache hit: the client only
# sends it after reading the first response, by which point the entry is
# resident.
request1='{"id":1,"k":5,"dmax":4,"vmin":12,"seed":2}'
request2='{"id":2,"k":5,"dmax":4,"vmin":12,"seed":2}'

tcp_client() {
  local out="$1"
  exec 3<>"/dev/tcp/127.0.0.1/${port}"
  printf '%s\n' "${request1}" >&3
  IFS= read -r line1 <&3
  printf '%s\n' "${request2}" >&3
  IFS= read -r line2 <&3
  exec 3<&- 3>&-
  printf '%s\n%s\n' "${line1}" "${line2}" > "${out}"
}

unix_client() {
  local out="$1"
  python3 - "${sock}" "${request1}" "${request2}" > "${out}" <<'PY'
import socket, sys
path, requests = sys.argv[1], sys.argv[2:]
client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
client.connect(path)
reader = client.makefile("r")
for request in requests:
    client.sendall((request + "\n").encode())
    sys.stdout.write(reader.readline())
client.close()
PY
}

echo "=== three concurrent clients (2 tcp + 1 unix), overlapping queries"
tcp_client "${work}/tcp1.txt" &
c1=$!
tcp_client "${work}/tcp2.txt" &
c2=$!
unix_client "${work}/unix.txt" &
c3=$!
wait "${c1}" "${c2}" "${c3}"

for f in tcp1 tcp2 unix; do
  test "$(grep -c '"ok":true' "${work}/${f}.txt")" = 2
done
strip() { sed 's/"seconds":[0-9.]*//' "$1"; }
diff <(strip "${work}/tcp1.txt") <(strip "${work}/tcp2.txt")
diff <(strip "${work}/tcp1.txt") <(strip "${work}/unix.txt")
echo "OK: responses byte-identical across clients and transports"

echo "=== shutdown acks and the server exits cleanly"
exec 3<>"/dev/tcp/127.0.0.1/${port}"
printf '{"cmd":"shutdown"}\n' >&3
IFS= read -r ack <&3
exec 3<&- 3>&-
echo "${ack}"
grep -q '"shutdown":true' <<< "${ack}"
wait "${server_pid}"
server_pid=""

cat "${work}/server.err"
hits="$(sed -n 's/.*cache \([0-9]*\) hits.*/\1/p' "${work}/server.err")"
test -n "${hits}" && test "${hits}" -ge 1
test ! -e "${sock}"  # the socket file is unlinked on exit
echo "OK: ${hits} cache hits, clean shutdown"
