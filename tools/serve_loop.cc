#include "tools/serve_loop.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#if defined(__linux__)
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // macOS: SIGPIPE is already SIG_IGN'd process-wide
#endif
#endif

#include "common/strings.h"
#include "common/timer.h"
#include "tools/cli_commands.h"

namespace spidermine::cli {

namespace {

// ------------------------------------------------------------- JSON parse

/// Shared cursor of the line parser; every error reports the byte offset.
struct JsonCursor {
  std::string_view text;
  size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\r' ||
            text[pos] == '\n')) {
      ++pos;
    }
  }
  bool AtEnd() {
    SkipWs();
    return pos >= text.size();
  }
  Status Fail(std::string_view what) const {
    return Status::InvalidArgument(
        StrCat("bad JSON request at byte ", pos, ": ", what));
  }
};

/// Parses a JSON string literal (cursor on the opening quote). Handles the
/// standard escapes including \uXXXX for BMP code points (encoded as
/// UTF-8); surrogate pairs are rejected — the serve protocol has no use
/// for astral-plane identifiers and the restriction keeps the parser
/// obviously correct.
Result<std::string> ParseString(JsonCursor* c) {
  if (c->pos >= c->text.size() || c->text[c->pos] != '"') {
    return c->Fail("expected '\"'");
  }
  ++c->pos;
  std::string out;
  while (true) {
    if (c->pos >= c->text.size()) return c->Fail("unterminated string");
    char ch = c->text[c->pos];
    if (ch == '"') {
      ++c->pos;
      return out;
    }
    if (static_cast<unsigned char>(ch) < 0x20) {
      return c->Fail("raw control character inside string");
    }
    if (ch != '\\') {
      out.push_back(ch);
      ++c->pos;
      continue;
    }
    ++c->pos;
    if (c->pos >= c->text.size()) return c->Fail("unterminated escape");
    char esc = c->text[c->pos];
    ++c->pos;
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (c->pos + 4 > c->text.size()) return c->Fail("truncated \\u escape");
        uint32_t code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = c->text[c->pos + static_cast<size_t>(i)];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<uint32_t>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<uint32_t>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<uint32_t>(h - 'A' + 10);
          else return c->Fail("non-hex digit in \\u escape");
        }
        c->pos += 4;
        if (code >= 0xD800 && code <= 0xDFFF) {
          return c->Fail("surrogate-pair \\u escapes are not supported");
        }
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        return c->Fail(StrCat("unknown escape '\\", std::string(1, esc), "'"));
    }
  }
}

Result<JsonValue> ParseValue(JsonCursor* c) {
  c->SkipWs();
  if (c->pos >= c->text.size()) return c->Fail("expected a value");
  JsonValue value;
  char ch = c->text[c->pos];
  if (ch == '"') {
    SM_ASSIGN_OR_RETURN(value.string_value, ParseString(c));
    value.kind = JsonValue::Kind::kString;
    return value;
  }
  if (ch == '{' || ch == '[') {
    return c->Fail(
        "nested objects/arrays are not part of the serve request schema "
        "(flat key/value objects only; see docs/CLI.md)");
  }
  auto literal = [c](std::string_view word) {
    return c->text.substr(c->pos, word.size()) == word;
  };
  if (literal("true")) {
    c->pos += 4;
    value.kind = JsonValue::Kind::kBool;
    value.bool_value = true;
    return value;
  }
  if (literal("false")) {
    c->pos += 5;
    value.kind = JsonValue::Kind::kBool;
    value.bool_value = false;
    return value;
  }
  if (literal("null")) {
    c->pos += 4;
    value.kind = JsonValue::Kind::kNull;
    return value;
  }
  // Number. The token is matched against the JSON number grammar first —
  // strtod alone would also accept inf/nan/hex, which are not JSON and
  // would be echoed back as invalid response lines.
  const std::string_view text = c->text;
  size_t p = c->pos;
  auto digit = [&text](size_t i) {
    return i < text.size() && text[i] >= '0' && text[i] <= '9';
  };
  if (p < text.size() && text[p] == '-') ++p;
  const size_t int_begin = p;
  while (digit(p)) ++p;
  if (p == int_begin) return c->Fail("expected a value");
  if (p < text.size() && text[p] == '.') {
    ++p;
    const size_t frac_begin = p;
    while (digit(p)) ++p;
    if (p == frac_begin) return c->Fail("digits required after '.'");
  }
  if (p < text.size() && (text[p] == 'e' || text[p] == 'E')) {
    ++p;
    if (p < text.size() && (text[p] == '+' || text[p] == '-')) ++p;
    const size_t exp_begin = p;
    while (digit(p)) ++p;
    if (p == exp_begin) return c->Fail("digits required in exponent");
  }
  const std::string token(text.substr(c->pos, p - c->pos));
  double parsed = std::strtod(token.c_str(), nullptr);
  if (!std::isfinite(parsed)) return c->Fail("number out of range");
  c->pos = p;
  value.kind = JsonValue::Kind::kNumber;
  value.number_value = parsed;
  return value;
}

const JsonValue* Find(const JsonObject& object, std::string_view key) {
  auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

// ------------------------------------------------------------ JSON render

/// Renders a number the way the protocol echoes ids: integers without a
/// fraction, everything else with enough digits to round-trip.
std::string NumberToJson(double value) {
  if (value == std::floor(value) && std::abs(value) < 9.0e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string ValueToJson(const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return value.bool_value ? "true" : "false";
    case JsonValue::Kind::kNumber: return NumberToJson(value.number_value);
    case JsonValue::Kind::kString:
      return StrCat("\"", EscapeJsonString(value.string_value), "\"");
  }
  return "null";
}

/// The response "id": the request's id verbatim, or null when the request
/// carried none (or did not parse far enough to have one). The fallback
/// is deliberately NOT the request sequence number — that could collide
/// with another request's explicit numeric id; the separate "line" field
/// is the always-unambiguous correlation key.
std::string RenderId(const JsonValue* id) {
  return id != nullptr ? ValueToJson(*id) : "null";
}

/// The response envelope shared by every response shape: the echoed id
/// plus the 1-based request line number.
std::string ResponseHead(const std::string& id_json, int64_t line) {
  return StrCat("{\"id\":", id_json, ",\"line\":", line);
}

std::string ErrorResponse(const std::string& id_json, int64_t line,
                          const Status& status) {
  return StrCat(ResponseHead(id_json, line), ",\"ok\":false,\"error\":\"",
                EscapeJsonString(status.ToString()), "\"}");
}

/// The deterministic middle of an "ok" response — everything between the
/// per-request envelope (id, line) and the per-request timing (seconds,
/// timed_out): the patterns array and its count. Byte-deterministic for a
/// given (query, Stage I artifact) pair, which is exactly what the result
/// cache stores and replays.
std::string OkBody(const QueryResult& result) {
  std::string body = ",\"ok\":true,\"patterns\":[";
  for (size_t i = 0; i < result.patterns.size(); ++i) {
    const MinedPattern& p = result.patterns[i];
    if (i > 0) body += ",";
    body += StrCat("{\"vertices\":", p.NumVertices(),
                   ",\"edges\":", p.NumEdges(), ",\"support\":", p.support,
                   ",\"pattern\":\"", EscapeJsonString(p.pattern.ToString()),
                   "\"}");
  }
  body += StrCat("],\"count\":", result.patterns.size());
  return body;
}

/// Assembles a full "ok" response line around a (possibly cached) body.
std::string OkResponseFromBody(const std::string& id_json,
                               int64_t request_line, const std::string& body,
                               double seconds, bool timed_out) {
  char seconds_text[32];
  std::snprintf(seconds_text, sizeof(seconds_text), "%.6f", seconds);
  return StrCat(ResponseHead(id_json, request_line), body,
                ",\"seconds\":", seconds_text,
                ",\"timed_out\":", timed_out ? "true" : "false", "}");
}

/// One executed request: the rendered response line plus what it was.
struct Executed {
  std::string response;
  bool ok = false;
  bool cache_hit = false;
};

/// Runs one admitted query against the session, consulting \p cache
/// first. A hit replays the cached deterministic body (bypassing RunQuery
/// entirely); a miss computes, then caches the body unless the query
/// timed out (a truncated result is wall-clock-dependent, so replaying it
/// would pin one machine's bad luck forever). Shared by the stream loop
/// and the multi-client server so both transports have identical caching
/// semantics.
Executed ExecuteQuery(const MiningSession& session, ResultCache* cache,
                      const TopKQuery& query, const std::string& id_json,
                      int64_t line) {
  WallTimer timer;
  const bool use_cache = cache != nullptr && cache->enabled();
  ResultCache::Key key;
  if (use_cache) {
    key.query_hash = query.CanonicalHash(session.config().min_support,
                                         session.graph().NumVertices());
    key.stage1_key = session.stage1_content_key();
    if (std::optional<std::string> hit = cache->Lookup(key)) {
      return Executed{OkResponseFromBody(id_json, line, *hit,
                                         timer.ElapsedSeconds(),
                                         /*timed_out=*/false),
                      /*ok=*/true, /*cache_hit=*/true};
    }
  }
  Result<QueryResult> result = session.RunQuery(query);
  const double seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    return Executed{ErrorResponse(id_json, line, result.status()), false,
                    false};
  }
  std::string body = OkBody(*result);
  if (use_cache && !result->stats.timed_out) cache->Insert(key, body);
  return Executed{OkResponseFromBody(id_json, line, body, seconds,
                                     result->stats.timed_out),
                  /*ok=*/true, /*cache_hit=*/false};
}

/// The session's serving aggregate with the result cache's counters folded
/// in (the cache lives beside the session, so the session's own snapshot
/// leaves them at 0) — what every summary line renders.
SessionServingStats SnapshotWithCache(const MiningSession& session,
                                      const ResultCache* cache) {
  SessionServingStats snapshot = session.serving_stats();
  if (cache != nullptr) {
    ResultCacheStats cache_stats = cache->stats();
    snapshot.cache_hits = cache_stats.hits;
    snapshot.cache_misses = cache_stats.misses;
    snapshot.cache_evictions = cache_stats.evictions;
    snapshot.cache_bytes = cache_stats.bytes;
  }
  return snapshot;
}

}  // namespace

Result<JsonObject> ParseJsonObject(std::string_view line) {
  JsonCursor c{line};
  c.SkipWs();
  if (c.pos >= c.text.size() || c.text[c.pos] != '{') {
    return c.Fail("expected '{' (one JSON object per line)");
  }
  ++c.pos;
  JsonObject object;
  c.SkipWs();
  if (c.pos < c.text.size() && c.text[c.pos] == '}') {
    ++c.pos;
  } else {
    while (true) {
      c.SkipWs();
      SM_ASSIGN_OR_RETURN(std::string key, ParseString(&c));
      c.SkipWs();
      if (c.pos >= c.text.size() || c.text[c.pos] != ':') {
        return c.Fail("expected ':' after key");
      }
      ++c.pos;
      SM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(&c));
      if (!object.emplace(std::move(key), std::move(value)).second) {
        return c.Fail("duplicate key");
      }
      c.SkipWs();
      if (c.pos >= c.text.size()) return c.Fail("unterminated object");
      if (c.text[c.pos] == ',') {
        ++c.pos;
        continue;
      }
      if (c.text[c.pos] == '}') {
        ++c.pos;
        break;
      }
      return c.Fail("expected ',' or '}'");
    }
  }
  if (!c.AtEnd()) return c.Fail("trailing garbage after object");
  return object;
}

std::string EscapeJsonString(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char ch : raw) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buffer;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

Result<TopKQuery> QueryFromJson(const JsonObject& request) {
  TopKQuery query;
  auto integer = [](std::string_view key, const JsonValue& value,
                    int64_t* out) -> Status {
    if (value.kind != JsonValue::Kind::kNumber) {
      return Status::InvalidArgument(StrCat("\"", key, "\" must be a number"));
    }
    double d = value.number_value;
    if (d != std::floor(d) || std::abs(d) > 9.0e15) {
      return Status::InvalidArgument(
          StrCat("\"", key, "\" must be an integer"));
    }
    *out = static_cast<int64_t>(d);
    return Status::Ok();
  };
  // int32 fields reject out-of-range values loudly — a silent
  // static_cast would wrap 2^32+3 to k=3 and "succeed" wrongly.
  auto integer32 = [&integer](std::string_view key, const JsonValue& value,
                              int32_t* out) -> Status {
    int64_t wide = 0;
    SM_RETURN_NOT_OK(integer(key, value, &wide));
    if (wide < std::numeric_limits<int32_t>::min() ||
        wide > std::numeric_limits<int32_t>::max()) {
      return Status::InvalidArgument(
          StrCat("\"", key, "\" is out of range (", wide, ")"));
    }
    *out = static_cast<int32_t>(wide);
    return Status::Ok();
  };
  for (const auto& [key, value] : request) {
    int64_t n = 0;
    if (key == "id" || key == "cmd") {
      continue;  // protocol envelope, not query parameters
    } else if (key == "support") {
      SM_RETURN_NOT_OK(integer(key, value, &query.min_support));
    } else if (key == "k") {
      SM_RETURN_NOT_OK(integer32(key, value, &query.k));
    } else if (key == "dmax") {
      SM_RETURN_NOT_OK(integer32(key, value, &query.dmax));
    } else if (key == "vmin") {
      SM_RETURN_NOT_OK(integer(key, value, &query.vmin));
    } else if (key == "seed") {
      SM_RETURN_NOT_OK(integer(key, value, &n));
      query.rng_seed = static_cast<uint64_t>(n);
    } else if (key == "seed_count") {
      SM_RETURN_NOT_OK(integer(key, value, &query.seed_count_override));
    } else if (key == "restarts") {
      SM_RETURN_NOT_OK(integer32(key, value, &query.restarts));
    } else if (key == "emb_budget") {
      SM_RETURN_NOT_OK(integer(key, value, &query.embedding_list_budget));
    } else if (key == "epsilon") {
      if (value.kind != JsonValue::Kind::kNumber) {
        return Status::InvalidArgument("\"epsilon\" must be a number");
      }
      query.epsilon = value.number_value;
    } else if (key == "time_budget") {
      if (value.kind != JsonValue::Kind::kNumber) {
        return Status::InvalidArgument("\"time_budget\" must be a number");
      }
      query.time_budget_seconds = value.number_value;
    } else if (key == "measure") {
      if (value.kind != JsonValue::Kind::kString) {
        return Status::InvalidArgument("\"measure\" must be a string");
      }
      SM_ASSIGN_OR_RETURN(query.support_measure,
                          ParseMeasure(value.string_value));
    } else if (key == "txn_sample") {
      SM_RETURN_NOT_OK(integer(key, value, &query.txn_sample));
    } else if (key == "strict_dmax") {
      if (value.kind != JsonValue::Kind::kBool) {
        return Status::InvalidArgument("\"strict_dmax\" must be a boolean");
      }
      query.enforce_dmax_on_results = value.bool_value;
    } else {
      return Status::InvalidArgument(
          StrCat("unknown request key \"", key,
                 "\" (see the serve schema in docs/CLI.md)"));
    }
  }
  return query;
}

Status RunServeLoop(const MiningSession& session, std::istream& in,
                    std::ostream& out, std::ostream& err,
                    const ServeOptions& options, ServeStats* stats) {
  if (options.max_inflight < 1) {
    return Status::InvalidArgument(
        StrCat("max_inflight must be >= 1 (got ", options.max_inflight, ")"));
  }
  WallTimer timer;
  ServeStats local;

  // One response line per request line, written atomically and flushed
  // immediately (clients block on responses; concurrent queries complete
  // out of order and interleave here).
  std::mutex out_mu;
  auto emit = [&out, &out_mu, &local](const std::string& line, bool answered) {
    std::lock_guard<std::mutex> lock(out_mu);
    out << line << "\n" << std::flush;
    if (answered) {
      ++local.answered;
    } else {
      ++local.errors;
    }
  };

  // A bounded job queue feeding max_inflight worker threads, each running
  // RunQuery on the shared (const, thread-safe) session. The bound gives
  // back-pressure: a client streaming thousands of requests holds at most
  // 2x max_inflight parsed queries in memory.
  struct Job {
    int64_t line = 0;  // 1-based physical input line (the correlation key)
    std::string id_json;
    TopKQuery query;
  };
  std::deque<Job> queue;
  std::mutex queue_mu;
  std::condition_variable can_push;
  std::condition_variable can_pop;
  bool closed = false;
  const size_t queue_cap = 2 * static_cast<size_t>(options.max_inflight);

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(options.max_inflight));
  for (int32_t w = 0; w < options.max_inflight; ++w) {
    workers.emplace_back([&session, &options, &queue, &queue_mu, &can_push,
                          &can_pop, &closed, &emit] {
      for (;;) {
        Job job;
        {
          std::unique_lock<std::mutex> lock(queue_mu);
          can_pop.wait(lock, [&] { return !queue.empty() || closed; });
          if (queue.empty()) return;  // closed and drained
          job = std::move(queue.front());
          queue.pop_front();
        }
        can_push.notify_one();
        Executed executed = ExecuteQuery(session, options.cache, job.query,
                                         job.id_json, job.line);
        emit(executed.response, executed.ok);
      }
    });
  }

  std::string line;
  std::string shutdown_id_json;
  int64_t shutdown_line = 0;
  // The response "line" key is the PHYSICAL 1-based input line number —
  // blank lines advance it (they just get no response) so a client can
  // correlate by counting its own output lines; local.requests counts
  // only actual requests for the stats.
  int64_t physical_line = 0;
  while (std::getline(in, line)) {
    ++physical_line;
    if (StripAsciiWhitespace(line).empty()) continue;
    ++local.requests;
    Result<JsonObject> request = ParseJsonObject(line);
    if (!request.ok()) {
      emit(ErrorResponse("null", physical_line, request.status()), false);
      continue;
    }
    const std::string id_json = RenderId(Find(*request, "id"));
    if (const JsonValue* cmd = Find(*request, "cmd")) {
      if (cmd->kind == JsonValue::Kind::kString &&
          cmd->string_value == "shutdown") {
        local.shutdown_requested = true;
        shutdown_id_json = id_json;
        shutdown_line = physical_line;
        break;  // drain in-flight queries below, then acknowledge
      }
      emit(ErrorResponse(
               id_json, physical_line,
               Status::InvalidArgument(
                   "unknown \"cmd\" (only \"shutdown\" exists)")),
           false);
      continue;
    }
    Result<TopKQuery> query = QueryFromJson(*request);
    if (!query.ok()) {
      emit(ErrorResponse(id_json, physical_line, query.status()), false);
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(queue_mu);
      can_push.wait(lock, [&] { return queue.size() < queue_cap; });
      queue.push_back(Job{physical_line, id_json, *std::move(query)});
    }
    can_pop.notify_one();
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu);
    closed = true;
  }
  can_pop.notify_all();
  for (std::thread& worker : workers) worker.join();

  // The shutdown acknowledgment is the last response line: once the client
  // reads it, every query it sent has been answered.
  if (local.shutdown_requested) {
    emit(StrCat(ResponseHead(shutdown_id_json, shutdown_line),
                ",\"ok\":true,\"shutdown\":true}"),
         true);
  }

  local.wall_seconds = timer.ElapsedSeconds();
  if (options.summary) {
    err << "serve: " << local.requests << " requests in "
        << local.wall_seconds << "s (" << local.answered << " answered, "
        << local.errors << " errors); session total: "
        << SnapshotWithCache(session, options.cache).ToString() << "\n";
  }
  if (stats != nullptr) *stats = local;
  return Status::Ok();
}

#if defined(__unix__) || defined(__APPLE__)

namespace {

// --------------------------------------------------- multi-client server
//
// One event-loop thread owns every fd (listeners, connections, the wakeup
// pipe) and all connection state; max_inflight worker threads own nothing
// but the job they are executing. Workers hand finished responses back
// through a mutex-guarded completion vector and a self-pipe byte, so all
// socket writes happen on the loop thread — no fd is ever touched from
// two threads.

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(StrCat("fcntl(O_NONBLOCK): ", std::strerror(errno)));
  }
  return Status::Ok();
}

/// Readiness event, normalized across the two poller backends. A hangup
/// reports as readable so the regular read path observes the EOF.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
};

#if defined(__linux__)

/// epoll-backed poller (level-triggered, matching the poll() fallback).
class Poller {
 public:
  Poller() : epoll_fd_(::epoll_create1(0)) {}
  ~Poller() {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }
  bool ok() const { return epoll_fd_ >= 0; }

  void Watch(int fd, bool want_read, bool want_write) {
    epoll_event event{};
    event.events = (want_read ? static_cast<uint32_t>(EPOLLIN) : 0u) |
                   (want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    event.data.fd = fd;
    const int op =
        watched_.insert(fd).second ? EPOLL_CTL_ADD : EPOLL_CTL_MOD;
    ::epoll_ctl(epoll_fd_, op, fd, &event);
  }
  void Unwatch(int fd) {
    if (watched_.erase(fd) > 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    }
  }
  /// Blocks until readiness (timeout_ms < 0 = forever), EINTR-retrying.
  /// Returns the event count, < 0 on a poller failure.
  int Wait(std::vector<PollEvent>* out, int timeout_ms) {
    epoll_event events[64];
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    out->clear();
    for (int i = 0; i < n; ++i) {
      PollEvent event;
      event.fd = events[i].data.fd;
      event.readable =
          (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0;
      event.writable = (events[i].events & EPOLLOUT) != 0;
      out->push_back(event);
    }
    return n;
  }

 private:
  int epoll_fd_;
  std::unordered_set<int> watched_;
};

#else

/// poll()-backed fallback for non-Linux unix platforms. The interest set
/// is rebuilt into a pollfd array per wait — fine at serving fan-ins.
class Poller {
 public:
  bool ok() const { return true; }

  void Watch(int fd, bool want_read, bool want_write) {
    interest_[fd] = static_cast<short>((want_read ? POLLIN : 0) |
                                       (want_write ? POLLOUT : 0));
  }
  void Unwatch(int fd) { interest_.erase(fd); }
  int Wait(std::vector<PollEvent>* out, int timeout_ms) {
    std::vector<pollfd> fds;
    fds.reserve(interest_.size());
    for (const auto& [fd, events] : interest_) {
      fds.push_back(pollfd{fd, events, 0});
    }
    int n;
    do {
      n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    } while (n < 0 && errno == EINTR);
    out->clear();
    if (n <= 0) return n;
    for (const pollfd& p : fds) {
      if (p.revents == 0) continue;
      PollEvent event;
      event.fd = p.fd;
      event.readable = (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
      event.writable = (p.revents & POLLOUT) != 0;
      out->push_back(event);
    }
    return n;
  }

 private:
  std::unordered_map<int, short> interest_;
};

#endif

/// Binds + listens on a unix socket, replacing only a genuinely stale
/// *socket* at the path — a typo'd --socket pointing at a regular file
/// must not delete it.
Result<int> ListenUnix(const std::string& socket_path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(address.sun_path)) {
    return Status::InvalidArgument(
        StrCat("socket path is too long for sun_path (", socket_path.size(),
               " >= ", sizeof(address.sun_path), ")"));
  }
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);
  struct stat existing{};
  if (::lstat(socket_path.c_str(), &existing) == 0) {
    if (!S_ISSOCK(existing.st_mode)) {
      return Status::InvalidArgument(
          StrCat("refusing to replace ", socket_path,
                 ": it exists and is not a socket"));
    }
    ::unlink(socket_path.c_str());
  }
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::IoError(StrCat("socket(): ", std::strerror(errno)));
  }
  if (::bind(listener, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listener, 64) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listener);
    return Status::IoError(StrCat("bind/listen(", socket_path, "): ", detail));
  }
  return listener;
}

/// Binds + listens on 127.0.0.1:\p port (0 = ephemeral) and reports the
/// actually bound port through \p bound_port.
Result<int> ListenTcp(int32_t port, int32_t* bound_port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::IoError(StrCat("socket(tcp): ", std::strerror(errno)));
  }
  const int reuse = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listener, 64) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listener);
    return Status::IoError(
        StrCat("bind/listen(127.0.0.1:", port, "): ", detail));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listener, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listener);
    return Status::IoError(StrCat("getsockname(): ", detail));
  }
  *bound_port = static_cast<int32_t>(ntohs(bound.sin_port));
  return listener;
}

/// Per-connection state, owned by the loop thread. `id` (not the fd) is
/// the identity completions carry back: fds are reused by the kernel the
/// moment a connection closes, ids never are.
struct ServerConnection {
  int fd = -1;
  std::string read_buffer;   ///< bytes received, not yet newline-framed
  std::string write_buffer;  ///< rendered responses not yet accepted by send
  int64_t physical_line = 0; ///< 1-based request line counter (per conn)
  int64_t inflight = 0;      ///< this connection's executing queries
  bool read_open = true;     ///< false after EOF / read error / oversize
  bool write_ok = true;      ///< false after a send error (EPIPE etc.)
};

/// A request line longer than this is a protocol violation, answered once
/// and then the connection is dropped — an unframed client must not grow
/// the buffer without bound.
constexpr size_t kMaxRequestBytes = 1 << 20;

}  // namespace

Status RunServeServer(const MiningSession& session,
                      const ServeTransportOptions& transport,
                      std::ostream& err, const ServeOptions& options,
                      ServeStats* stats) {
  if (options.max_inflight < 1) {
    return Status::InvalidArgument(
        StrCat("max_inflight must be >= 1 (got ", options.max_inflight, ")"));
  }
  if (transport.socket_path.empty() && transport.tcp_port < 0) {
    return Status::InvalidArgument(
        "the serve server needs at least one transport (a unix socket path "
        "and/or a TCP port)");
  }
  // A client that disconnects mid-response must surface as an EPIPE return
  // value on this connection, not kill the whole server.
  ::signal(SIGPIPE, SIG_IGN);

  int unix_listener = -1;
  int tcp_listener = -1;
  ServeEndpoints endpoints;
  auto close_listeners = [&] {
    if (unix_listener >= 0) {
      ::close(unix_listener);
      unix_listener = -1;
    }
    if (tcp_listener >= 0) {
      ::close(tcp_listener);
      tcp_listener = -1;
    }
  };
  if (!transport.socket_path.empty()) {
    SM_ASSIGN_OR_RETURN(unix_listener, ListenUnix(transport.socket_path));
    endpoints.socket_path = transport.socket_path;
  }
  if (transport.tcp_port >= 0) {
    Result<int> tcp = ListenTcp(transport.tcp_port, &endpoints.tcp_port);
    if (!tcp.ok()) {
      close_listeners();
      if (!transport.socket_path.empty()) {
        ::unlink(transport.socket_path.c_str());
      }
      return tcp.status();
    }
    tcp_listener = *tcp;
  }
  for (int listener : {unix_listener, tcp_listener}) {
    if (listener >= 0) (void)SetNonBlocking(listener);
  }

  // Workers hand completions back through this pipe: one byte per batch is
  // enough (the loop drains the whole completion vector per wakeup).
  int wake_fds[2] = {-1, -1};
  if (::pipe(wake_fds) != 0) {
    const std::string detail = std::strerror(errno);
    close_listeners();
    if (!transport.socket_path.empty()) {
      ::unlink(transport.socket_path.c_str());
    }
    return Status::IoError(StrCat("pipe(): ", detail));
  }
  (void)SetNonBlocking(wake_fds[0]);
  (void)SetNonBlocking(wake_fds[1]);

  err << "serve: listening on";
  if (unix_listener >= 0) err << " unix socket " << endpoints.socket_path;
  if (unix_listener >= 0 && tcp_listener >= 0) err << " and";
  if (tcp_listener >= 0) err << " tcp 127.0.0.1:" << endpoints.tcp_port;
  err << " (send {\"cmd\":\"shutdown\"} to stop)\n";
  if (transport.on_ready) transport.on_ready(endpoints);

  // ----- worker pool: max_inflight threads, a job queue, a completion
  // vector. Admission happens on the loop thread, so the queue never holds
  // more than max_inflight jobs and every admitted job starts immediately.
  struct ServerJob {
    int64_t conn_id = 0;
    int64_t line = 0;
    std::string id_json;
    TopKQuery query;
  };
  struct Completion {
    int64_t conn_id = 0;
    std::string response;
    bool ok = false;
  };
  std::deque<ServerJob> jobs;
  std::mutex jobs_mu;
  std::condition_variable jobs_cv;
  bool jobs_closed = false;
  std::vector<Completion> completions;
  std::mutex completions_mu;

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(options.max_inflight));
  for (int32_t w = 0; w < options.max_inflight; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        ServerJob job;
        {
          std::unique_lock<std::mutex> lock(jobs_mu);
          jobs_cv.wait(lock, [&] { return !jobs.empty() || jobs_closed; });
          if (jobs.empty()) return;  // closed and drained
          job = std::move(jobs.front());
          jobs.pop_front();
        }
        Executed executed = ExecuteQuery(session, options.cache, job.query,
                                         job.id_json, job.line);
        {
          std::lock_guard<std::mutex> lock(completions_mu);
          completions.push_back(Completion{job.conn_id,
                                           std::move(executed.response),
                                           executed.ok});
        }
        // EAGAIN means a wakeup byte is already pending — good enough.
        ssize_t n;
        do {
          n = ::write(wake_fds[1], "x", 1);
        } while (n < 0 && errno == EINTR);
      }
    });
  }

  // ----- loop state (loop-thread-only; no locks needed).
  Poller poller;
  std::unordered_map<int64_t, ServerConnection> connections;
  std::unordered_map<int, int64_t> conn_of_fd;
  int64_t next_conn_id = 1;
  int64_t global_inflight = 0;
  bool shutting_down = false;
  bool shutdown_acked = false;
  int64_t shutdown_conn = -1;
  std::string shutdown_id_json = "null";
  int64_t shutdown_line = 0;
  WallTimer timer;
  WallTimer drain_timer;  // restarted when the shutdown ack is emitted
  ServeStats local;
  Status status = Status::Ok();

  if (!poller.ok()) {
    status = Status::IoError("epoll_create1() failed");
  }
  poller.Watch(wake_fds[0], /*want_read=*/true, /*want_write=*/false);
  if (unix_listener >= 0) poller.Watch(unix_listener, true, false);
  if (tcp_listener >= 0) poller.Watch(tcp_listener, true, false);

  // Re-arms a connection's poll interest from its current state: read
  // while the client may still send, write only while bytes are queued
  // (level-triggered EPOLLOUT on an empty buffer would spin).
  auto update_interest = [&](ServerConnection& conn) {
    poller.Watch(conn.fd, conn.read_open,
                 conn.write_ok && !conn.write_buffer.empty());
  };

  // Pushes queued bytes into the socket until it would block. A send
  // failure (EPIPE after SIG_IGN, ECONNRESET) kills the write side only;
  // close bookkeeping happens in maybe_close.
  auto flush_writes = [&](ServerConnection& conn) {
    while (conn.write_ok && !conn.write_buffer.empty()) {
      ssize_t n = ::send(conn.fd, conn.write_buffer.data(),
                         conn.write_buffer.size(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.write_buffer.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      conn.write_ok = false;
      conn.write_buffer.clear();
    }
  };

  /// Queues one response line on a connection (dropped silently when the
  /// connection died first — the counters still record the outcome).
  auto emit_response = [&](int64_t conn_id, const std::string& response,
                           bool answered) {
    if (answered) {
      ++local.answered;
    } else {
      ++local.errors;
    }
    auto it = connections.find(conn_id);
    if (it == connections.end() || !it->second.write_ok) return;
    it->second.write_buffer.append(response);
    it->second.write_buffer.push_back('\n');
    flush_writes(it->second);
    update_interest(it->second);
  };

  /// Closes and forgets a connection once nothing more can happen on it:
  /// the write side is dead, or the client is gone and every admitted
  /// query has been answered and flushed.
  auto maybe_close = [&](int64_t conn_id) {
    auto it = connections.find(conn_id);
    if (it == connections.end()) return;
    ServerConnection& conn = it->second;
    const bool write_done = !conn.write_ok || conn.write_buffer.empty();
    const bool done =
        conn.inflight == 0 && (!conn.write_ok || (!conn.read_open && write_done));
    if (!done) return;
    poller.Unwatch(conn.fd);
    ::close(conn.fd);
    conn_of_fd.erase(conn.fd);
    connections.erase(it);
  };

  /// The "overloaded" hint: the session's observed mean query latency in
  /// milliseconds (clamped to [10ms, 60s]; 100ms before any history).
  auto retry_after_ms = [&] {
    SessionServingStats snapshot = session.serving_stats();
    double mean_seconds =
        snapshot.queries_run > 0
            ? snapshot.total_query_seconds /
                  static_cast<double>(snapshot.queries_run)
            : 0.1;
    return std::clamp<int64_t>(static_cast<int64_t>(mean_seconds * 1000.0),
                               10, 60000);
  };

  /// Handles one framed request line of one connection.
  auto process_line = [&](int64_t conn_id, const std::string& text) {
    auto conn_it = connections.find(conn_id);
    if (conn_it == connections.end()) return;
    ServerConnection& conn = conn_it->second;
    ++conn.physical_line;
    if (StripAsciiWhitespace(text).empty()) return;
    ++local.requests;
    Result<JsonObject> request = ParseJsonObject(text);
    if (!request.ok()) {
      emit_response(conn_id,
                    ErrorResponse("null", conn.physical_line,
                                  request.status()),
                    false);
      return;
    }
    const std::string id_json = RenderId(Find(*request, "id"));
    if (const JsonValue* cmd = Find(*request, "cmd")) {
      if (cmd->kind == JsonValue::Kind::kString &&
          cmd->string_value == "shutdown") {
        if (shutting_down) {
          emit_response(conn_id,
                        ErrorResponse(id_json, conn.physical_line,
                                      Status::InvalidArgument(
                                          "shutdown already in progress")),
                        false);
          return;
        }
        // Stop accepting (listeners close now, so new connects fail fast),
        // drain every in-flight query, then acknowledge — the ack is the
        // requester's final line.
        shutting_down = true;
        local.shutdown_requested = true;
        shutdown_conn = conn_id;
        shutdown_id_json = id_json;
        shutdown_line = conn.physical_line;
        if (unix_listener >= 0) poller.Unwatch(unix_listener);
        if (tcp_listener >= 0) poller.Unwatch(tcp_listener);
        close_listeners();
        return;
      }
      emit_response(conn_id,
                    ErrorResponse(id_json, conn.physical_line,
                                  Status::InvalidArgument(
                                      "unknown \"cmd\" (only \"shutdown\" "
                                      "exists)")),
                    false);
      return;
    }
    Result<TopKQuery> query = QueryFromJson(*request);
    if (!query.ok()) {
      emit_response(conn_id,
                    ErrorResponse(id_json, conn.physical_line,
                                  query.status()),
                    false);
      return;
    }
    if (shutting_down) {
      emit_response(conn_id,
                    ErrorResponse(id_json, conn.physical_line,
                                  Status::InvalidArgument(
                                      "server is shutting down")),
                    false);
      return;
    }
    if (global_inflight >= options.max_inflight) {
      // The admission gate: reject instead of queueing, so a burst can
      // never build an unbounded backlog and the client learns to back
      // off immediately.
      ++local.rejected;
      emit_response(conn_id,
                    StrCat(ResponseHead(id_json, conn.physical_line),
                           ",\"ok\":false,\"error\":\"overloaded\","
                           "\"retry_after_ms\":", retry_after_ms(), "}"),
                    false);
      return;
    }
    ++global_inflight;
    ++conn.inflight;
    {
      std::lock_guard<std::mutex> lock(jobs_mu);
      jobs.push_back(ServerJob{conn_id, conn.physical_line, id_json,
                               *std::move(query)});
    }
    jobs_cv.notify_one();
  };

  /// Drains readable bytes and processes every complete line. EOF (or a
  /// read error, or an oversize line) closes the read side; queries
  /// already admitted still complete and flush before the fd closes.
  auto handle_readable = [&](int64_t conn_id) {
    auto it = connections.find(conn_id);
    if (it == connections.end()) return;
    ServerConnection& conn = it->second;
    char buffer[4096];
    while (conn.read_open) {
      ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
      if (n > 0) {
        conn.read_buffer.append(buffer, static_cast<size_t>(n));
        if (conn.read_buffer.size() > kMaxRequestBytes &&
            conn.read_buffer.find('\n') == std::string::npos) {
          ++conn.physical_line;
          ++local.requests;
          emit_response(conn_id,
                        ErrorResponse("null", conn.physical_line,
                                      Status::InvalidArgument(StrCat(
                                          "request line exceeds ",
                                          kMaxRequestBytes, " bytes"))),
                        false);
          conn.read_open = false;
          conn.read_buffer.clear();
        }
        continue;
      }
      if (n == 0) {
        conn.read_open = false;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn.read_open = false;  // ECONNRESET and friends
      break;
    }
    // Frame and process the complete lines received so far. process_line
    // never inserts into `connections`, so `conn` stays valid.
    size_t start = 0;
    size_t newline;
    while ((newline = conn.read_buffer.find('\n', start)) !=
           std::string::npos) {
      process_line(conn_id, conn.read_buffer.substr(start, newline - start));
      start = newline + 1;
    }
    conn.read_buffer.erase(0, start);
    if (!conn.read_open && !conn.read_buffer.empty()) {
      // Final unterminated line before EOF: serve it anyway, matching the
      // stream loop's std::getline behavior.
      process_line(conn_id, conn.read_buffer);
      conn.read_buffer.clear();
    }
    update_interest(conn);
    maybe_close(conn_id);
  };

  /// Accepts every pending connection on a listener (level-triggered:
  /// accept until EAGAIN).
  auto handle_accept = [&](int listener) {
    for (;;) {
      int fd;
      do {
        fd = ::accept(listener, nullptr, nullptr);
      } while (fd < 0 && errno == EINTR);
      if (fd < 0) break;  // EAGAIN, or a transient accept error: retry later
      if (shutting_down || !SetNonBlocking(fd).ok()) {
        ::close(fd);
        continue;
      }
      const int64_t conn_id = next_conn_id++;
      ServerConnection conn;
      conn.fd = fd;
      connections.emplace(conn_id, std::move(conn));
      conn_of_fd[fd] = conn_id;
      poller.Watch(fd, /*want_read=*/true, /*want_write=*/false);
    }
  };

  /// Applies finished queries: write their responses, release admission
  /// slots. Runs on the loop thread only.
  auto drain_completions = [&] {
    char discard[64];
    ssize_t n;
    do {
      n = ::read(wake_fds[0], discard, sizeof(discard));
    } while (n > 0 || (n < 0 && errno == EINTR));
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completions_mu);
      batch.swap(completions);
    }
    for (Completion& completion : batch) {
      --global_inflight;
      auto it = connections.find(completion.conn_id);
      if (it != connections.end() && it->second.inflight > 0) {
        --it->second.inflight;
      }
      emit_response(completion.conn_id, completion.response, completion.ok);
      maybe_close(completion.conn_id);
    }
  };

  // ----- the event loop.
  std::vector<PollEvent> events;
  while (status.ok()) {
    // Shutdown completes in two steps: ack once the last in-flight query
    // finished, then exit once every connection's responses are flushed
    // (bounded by a drain deadline so one stuck client can't wedge exit).
    if (shutting_down && !shutdown_acked && global_inflight == 0) {
      shutdown_acked = true;
      emit_response(shutdown_conn,
                    StrCat(ResponseHead(shutdown_id_json, shutdown_line),
                           ",\"ok\":true,\"shutdown\":true}"),
                    true);
      drain_timer.Restart();
    }
    if (shutdown_acked) {
      bool pending = false;
      for (auto& [conn_id, conn] : connections) {
        if (conn.write_ok && !conn.write_buffer.empty()) pending = true;
      }
      if (!pending || drain_timer.ElapsedSeconds() > 5.0) break;
    }
    const int timeout_ms = shutdown_acked ? 50 : -1;
    const int n = poller.Wait(&events, timeout_ms);
    if (n < 0) {
      status = Status::IoError(StrCat("poll wait: ", std::strerror(errno)));
      break;
    }
    for (const PollEvent& event : events) {
      if (event.fd == wake_fds[0]) {
        drain_completions();
      } else if (event.fd == unix_listener || event.fd == tcp_listener) {
        handle_accept(event.fd);
      } else {
        auto fd_it = conn_of_fd.find(event.fd);
        if (fd_it == conn_of_fd.end()) continue;  // closed earlier this batch
        const int64_t conn_id = fd_it->second;
        if (event.writable) {
          auto it = connections.find(conn_id);
          if (it != connections.end()) {
            flush_writes(it->second);
            update_interest(it->second);
          }
        }
        if (event.readable) handle_readable(conn_id);
        maybe_close(conn_id);
      }
    }
  }

  // ----- teardown: stop the workers, close every fd, free the path.
  {
    std::lock_guard<std::mutex> lock(jobs_mu);
    jobs_closed = true;
  }
  jobs_cv.notify_all();
  for (std::thread& worker : workers) worker.join();
  for (auto& [conn_id, conn] : connections) ::close(conn.fd);
  connections.clear();
  conn_of_fd.clear();
  close_listeners();
  ::close(wake_fds[0]);
  ::close(wake_fds[1]);
  if (!transport.socket_path.empty()) {
    ::unlink(transport.socket_path.c_str());
  }

  local.wall_seconds = timer.ElapsedSeconds();
  if (options.summary) {
    err << "serve: " << local.requests << " requests in "
        << local.wall_seconds << "s (" << local.answered << " answered, "
        << local.errors << " errors";
    if (local.rejected > 0) err << ", " << local.rejected << " rejected";
    err << "); session total: "
        << SnapshotWithCache(session, options.cache).ToString() << "\n";
  }
  if (stats != nullptr) *stats = local;
  return status;
}

Status RunServeSocket(const MiningSession& session,
                      const std::string& socket_path, std::ostream& err,
                      const ServeOptions& options) {
  ServeTransportOptions transport;
  transport.socket_path = socket_path;
  return RunServeServer(session, transport, err, options, nullptr);
}

#else  // no unix sockets / poll on this platform

Status RunServeServer(const MiningSession&, const ServeTransportOptions&,
                      std::ostream&, const ServeOptions&, ServeStats*) {
  return Status::InvalidArgument(
      "the serve server requires unix sockets/poll, unavailable on this "
      "platform; use the stdin/stdout transport");
}

Status RunServeSocket(const MiningSession&, const std::string&,
                      std::ostream&, const ServeOptions&) {
  return Status::InvalidArgument(
      "--socket requires unix domain sockets, unavailable on this platform; "
      "use the stdin/stdout transport");
}

#endif

}  // namespace spidermine::cli
