#include "tools/serve_loop.h"

#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <limits>
#include <istream>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

#include "common/strings.h"
#include "common/timer.h"
#include "tools/cli_commands.h"

namespace spidermine::cli {

namespace {

// ------------------------------------------------------------- JSON parse

/// Shared cursor of the line parser; every error reports the byte offset.
struct JsonCursor {
  std::string_view text;
  size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\r' ||
            text[pos] == '\n')) {
      ++pos;
    }
  }
  bool AtEnd() {
    SkipWs();
    return pos >= text.size();
  }
  Status Fail(std::string_view what) const {
    return Status::InvalidArgument(
        StrCat("bad JSON request at byte ", pos, ": ", what));
  }
};

/// Parses a JSON string literal (cursor on the opening quote). Handles the
/// standard escapes including \uXXXX for BMP code points (encoded as
/// UTF-8); surrogate pairs are rejected — the serve protocol has no use
/// for astral-plane identifiers and the restriction keeps the parser
/// obviously correct.
Result<std::string> ParseString(JsonCursor* c) {
  if (c->pos >= c->text.size() || c->text[c->pos] != '"') {
    return c->Fail("expected '\"'");
  }
  ++c->pos;
  std::string out;
  while (true) {
    if (c->pos >= c->text.size()) return c->Fail("unterminated string");
    char ch = c->text[c->pos];
    if (ch == '"') {
      ++c->pos;
      return out;
    }
    if (static_cast<unsigned char>(ch) < 0x20) {
      return c->Fail("raw control character inside string");
    }
    if (ch != '\\') {
      out.push_back(ch);
      ++c->pos;
      continue;
    }
    ++c->pos;
    if (c->pos >= c->text.size()) return c->Fail("unterminated escape");
    char esc = c->text[c->pos];
    ++c->pos;
    switch (esc) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (c->pos + 4 > c->text.size()) return c->Fail("truncated \\u escape");
        uint32_t code = 0;
        for (int i = 0; i < 4; ++i) {
          char h = c->text[c->pos + static_cast<size_t>(i)];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<uint32_t>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<uint32_t>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<uint32_t>(h - 'A' + 10);
          else return c->Fail("non-hex digit in \\u escape");
        }
        c->pos += 4;
        if (code >= 0xD800 && code <= 0xDFFF) {
          return c->Fail("surrogate-pair \\u escapes are not supported");
        }
        if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        return c->Fail(StrCat("unknown escape '\\", std::string(1, esc), "'"));
    }
  }
}

Result<JsonValue> ParseValue(JsonCursor* c) {
  c->SkipWs();
  if (c->pos >= c->text.size()) return c->Fail("expected a value");
  JsonValue value;
  char ch = c->text[c->pos];
  if (ch == '"') {
    SM_ASSIGN_OR_RETURN(value.string_value, ParseString(c));
    value.kind = JsonValue::Kind::kString;
    return value;
  }
  if (ch == '{' || ch == '[') {
    return c->Fail(
        "nested objects/arrays are not part of the serve request schema "
        "(flat key/value objects only; see docs/CLI.md)");
  }
  auto literal = [c](std::string_view word) {
    return c->text.substr(c->pos, word.size()) == word;
  };
  if (literal("true")) {
    c->pos += 4;
    value.kind = JsonValue::Kind::kBool;
    value.bool_value = true;
    return value;
  }
  if (literal("false")) {
    c->pos += 5;
    value.kind = JsonValue::Kind::kBool;
    value.bool_value = false;
    return value;
  }
  if (literal("null")) {
    c->pos += 4;
    value.kind = JsonValue::Kind::kNull;
    return value;
  }
  // Number. The token is matched against the JSON number grammar first —
  // strtod alone would also accept inf/nan/hex, which are not JSON and
  // would be echoed back as invalid response lines.
  const std::string_view text = c->text;
  size_t p = c->pos;
  auto digit = [&text](size_t i) {
    return i < text.size() && text[i] >= '0' && text[i] <= '9';
  };
  if (p < text.size() && text[p] == '-') ++p;
  const size_t int_begin = p;
  while (digit(p)) ++p;
  if (p == int_begin) return c->Fail("expected a value");
  if (p < text.size() && text[p] == '.') {
    ++p;
    const size_t frac_begin = p;
    while (digit(p)) ++p;
    if (p == frac_begin) return c->Fail("digits required after '.'");
  }
  if (p < text.size() && (text[p] == 'e' || text[p] == 'E')) {
    ++p;
    if (p < text.size() && (text[p] == '+' || text[p] == '-')) ++p;
    const size_t exp_begin = p;
    while (digit(p)) ++p;
    if (p == exp_begin) return c->Fail("digits required in exponent");
  }
  const std::string token(text.substr(c->pos, p - c->pos));
  double parsed = std::strtod(token.c_str(), nullptr);
  if (!std::isfinite(parsed)) return c->Fail("number out of range");
  c->pos = p;
  value.kind = JsonValue::Kind::kNumber;
  value.number_value = parsed;
  return value;
}

const JsonValue* Find(const JsonObject& object, std::string_view key) {
  auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

// ------------------------------------------------------------ JSON render

/// Renders a number the way the protocol echoes ids: integers without a
/// fraction, everything else with enough digits to round-trip.
std::string NumberToJson(double value) {
  if (value == std::floor(value) && std::abs(value) < 9.0e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string ValueToJson(const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return value.bool_value ? "true" : "false";
    case JsonValue::Kind::kNumber: return NumberToJson(value.number_value);
    case JsonValue::Kind::kString:
      return StrCat("\"", EscapeJsonString(value.string_value), "\"");
  }
  return "null";
}

/// The response "id": the request's id verbatim, or null when the request
/// carried none (or did not parse far enough to have one). The fallback
/// is deliberately NOT the request sequence number — that could collide
/// with another request's explicit numeric id; the separate "line" field
/// is the always-unambiguous correlation key.
std::string RenderId(const JsonValue* id) {
  return id != nullptr ? ValueToJson(*id) : "null";
}

/// The response envelope shared by every response shape: the echoed id
/// plus the 1-based request line number.
std::string ResponseHead(const std::string& id_json, int64_t line) {
  return StrCat("{\"id\":", id_json, ",\"line\":", line);
}

std::string ErrorResponse(const std::string& id_json, int64_t line,
                          const Status& status) {
  return StrCat(ResponseHead(id_json, line), ",\"ok\":false,\"error\":\"",
                EscapeJsonString(status.ToString()), "\"}");
}

std::string OkResponse(const std::string& id_json, int64_t request_line,
                       const QueryResult& result, double seconds) {
  std::string line =
      StrCat(ResponseHead(id_json, request_line), ",\"ok\":true,\"patterns\":[");
  for (size_t i = 0; i < result.patterns.size(); ++i) {
    const MinedPattern& p = result.patterns[i];
    if (i > 0) line += ",";
    line += StrCat("{\"vertices\":", p.NumVertices(),
                   ",\"edges\":", p.NumEdges(), ",\"support\":", p.support,
                   ",\"pattern\":\"", EscapeJsonString(p.pattern.ToString()),
                   "\"}");
  }
  char seconds_text[32];
  std::snprintf(seconds_text, sizeof(seconds_text), "%.6f", seconds);
  line += StrCat("],\"count\":", result.patterns.size(),
                 ",\"seconds\":", seconds_text, ",\"timed_out\":",
                 result.stats.timed_out ? "true" : "false", "}");
  return line;
}

}  // namespace

Result<JsonObject> ParseJsonObject(std::string_view line) {
  JsonCursor c{line};
  c.SkipWs();
  if (c.pos >= c.text.size() || c.text[c.pos] != '{') {
    return c.Fail("expected '{' (one JSON object per line)");
  }
  ++c.pos;
  JsonObject object;
  c.SkipWs();
  if (c.pos < c.text.size() && c.text[c.pos] == '}') {
    ++c.pos;
  } else {
    while (true) {
      c.SkipWs();
      SM_ASSIGN_OR_RETURN(std::string key, ParseString(&c));
      c.SkipWs();
      if (c.pos >= c.text.size() || c.text[c.pos] != ':') {
        return c.Fail("expected ':' after key");
      }
      ++c.pos;
      SM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(&c));
      if (!object.emplace(std::move(key), std::move(value)).second) {
        return c.Fail("duplicate key");
      }
      c.SkipWs();
      if (c.pos >= c.text.size()) return c.Fail("unterminated object");
      if (c.text[c.pos] == ',') {
        ++c.pos;
        continue;
      }
      if (c.text[c.pos] == '}') {
        ++c.pos;
        break;
      }
      return c.Fail("expected ',' or '}'");
    }
  }
  if (!c.AtEnd()) return c.Fail("trailing garbage after object");
  return object;
}

std::string EscapeJsonString(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char ch : raw) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buffer;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

Result<TopKQuery> QueryFromJson(const JsonObject& request) {
  TopKQuery query;
  auto integer = [](std::string_view key, const JsonValue& value,
                    int64_t* out) -> Status {
    if (value.kind != JsonValue::Kind::kNumber) {
      return Status::InvalidArgument(StrCat("\"", key, "\" must be a number"));
    }
    double d = value.number_value;
    if (d != std::floor(d) || std::abs(d) > 9.0e15) {
      return Status::InvalidArgument(
          StrCat("\"", key, "\" must be an integer"));
    }
    *out = static_cast<int64_t>(d);
    return Status::Ok();
  };
  // int32 fields reject out-of-range values loudly — a silent
  // static_cast would wrap 2^32+3 to k=3 and "succeed" wrongly.
  auto integer32 = [&integer](std::string_view key, const JsonValue& value,
                              int32_t* out) -> Status {
    int64_t wide = 0;
    SM_RETURN_NOT_OK(integer(key, value, &wide));
    if (wide < std::numeric_limits<int32_t>::min() ||
        wide > std::numeric_limits<int32_t>::max()) {
      return Status::InvalidArgument(
          StrCat("\"", key, "\" is out of range (", wide, ")"));
    }
    *out = static_cast<int32_t>(wide);
    return Status::Ok();
  };
  for (const auto& [key, value] : request) {
    int64_t n = 0;
    if (key == "id" || key == "cmd") {
      continue;  // protocol envelope, not query parameters
    } else if (key == "support") {
      SM_RETURN_NOT_OK(integer(key, value, &query.min_support));
    } else if (key == "k") {
      SM_RETURN_NOT_OK(integer32(key, value, &query.k));
    } else if (key == "dmax") {
      SM_RETURN_NOT_OK(integer32(key, value, &query.dmax));
    } else if (key == "vmin") {
      SM_RETURN_NOT_OK(integer(key, value, &query.vmin));
    } else if (key == "seed") {
      SM_RETURN_NOT_OK(integer(key, value, &n));
      query.rng_seed = static_cast<uint64_t>(n);
    } else if (key == "seed_count") {
      SM_RETURN_NOT_OK(integer(key, value, &query.seed_count_override));
    } else if (key == "restarts") {
      SM_RETURN_NOT_OK(integer32(key, value, &query.restarts));
    } else if (key == "emb_budget") {
      SM_RETURN_NOT_OK(integer(key, value, &query.embedding_list_budget));
    } else if (key == "epsilon") {
      if (value.kind != JsonValue::Kind::kNumber) {
        return Status::InvalidArgument("\"epsilon\" must be a number");
      }
      query.epsilon = value.number_value;
    } else if (key == "time_budget") {
      if (value.kind != JsonValue::Kind::kNumber) {
        return Status::InvalidArgument("\"time_budget\" must be a number");
      }
      query.time_budget_seconds = value.number_value;
    } else if (key == "measure") {
      if (value.kind != JsonValue::Kind::kString) {
        return Status::InvalidArgument("\"measure\" must be a string");
      }
      SM_ASSIGN_OR_RETURN(query.support_measure,
                          ParseMeasure(value.string_value));
    } else if (key == "strict_dmax") {
      if (value.kind != JsonValue::Kind::kBool) {
        return Status::InvalidArgument("\"strict_dmax\" must be a boolean");
      }
      query.enforce_dmax_on_results = value.bool_value;
    } else {
      return Status::InvalidArgument(
          StrCat("unknown request key \"", key,
                 "\" (see the serve schema in docs/CLI.md)"));
    }
  }
  return query;
}

Status RunServeLoop(const MiningSession& session, std::istream& in,
                    std::ostream& out, std::ostream& err,
                    const ServeOptions& options, ServeStats* stats) {
  if (options.max_inflight < 1) {
    return Status::InvalidArgument(
        StrCat("max_inflight must be >= 1 (got ", options.max_inflight, ")"));
  }
  WallTimer timer;
  ServeStats local;

  // One response line per request line, written atomically and flushed
  // immediately (clients block on responses; concurrent queries complete
  // out of order and interleave here).
  std::mutex out_mu;
  auto emit = [&out, &out_mu, &local](const std::string& line, bool answered) {
    std::lock_guard<std::mutex> lock(out_mu);
    out << line << "\n" << std::flush;
    if (answered) {
      ++local.answered;
    } else {
      ++local.errors;
    }
  };

  // A bounded job queue feeding max_inflight worker threads, each running
  // RunQuery on the shared (const, thread-safe) session. The bound gives
  // back-pressure: a client streaming thousands of requests holds at most
  // 2x max_inflight parsed queries in memory.
  struct Job {
    int64_t line = 0;  // 1-based physical input line (the correlation key)
    std::string id_json;
    TopKQuery query;
  };
  std::deque<Job> queue;
  std::mutex queue_mu;
  std::condition_variable can_push;
  std::condition_variable can_pop;
  bool closed = false;
  const size_t queue_cap = 2 * static_cast<size_t>(options.max_inflight);

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(options.max_inflight));
  for (int32_t w = 0; w < options.max_inflight; ++w) {
    workers.emplace_back([&session, &queue, &queue_mu, &can_push, &can_pop,
                          &closed, &emit] {
      for (;;) {
        Job job;
        {
          std::unique_lock<std::mutex> lock(queue_mu);
          can_pop.wait(lock, [&] { return !queue.empty() || closed; });
          if (queue.empty()) return;  // closed and drained
          job = std::move(queue.front());
          queue.pop_front();
        }
        can_push.notify_one();
        WallTimer query_timer;
        Result<QueryResult> result = session.RunQuery(job.query);
        const double seconds = query_timer.ElapsedSeconds();
        if (result.ok()) {
          emit(OkResponse(job.id_json, job.line, *result, seconds), true);
        } else {
          emit(ErrorResponse(job.id_json, job.line, result.status()), false);
        }
      }
    });
  }

  std::string line;
  std::string shutdown_id_json;
  int64_t shutdown_line = 0;
  // The response "line" key is the PHYSICAL 1-based input line number —
  // blank lines advance it (they just get no response) so a client can
  // correlate by counting its own output lines; local.requests counts
  // only actual requests for the stats.
  int64_t physical_line = 0;
  while (std::getline(in, line)) {
    ++physical_line;
    if (StripAsciiWhitespace(line).empty()) continue;
    ++local.requests;
    Result<JsonObject> request = ParseJsonObject(line);
    if (!request.ok()) {
      emit(ErrorResponse("null", physical_line, request.status()), false);
      continue;
    }
    const std::string id_json = RenderId(Find(*request, "id"));
    if (const JsonValue* cmd = Find(*request, "cmd")) {
      if (cmd->kind == JsonValue::Kind::kString &&
          cmd->string_value == "shutdown") {
        local.shutdown_requested = true;
        shutdown_id_json = id_json;
        shutdown_line = physical_line;
        break;  // drain in-flight queries below, then acknowledge
      }
      emit(ErrorResponse(
               id_json, physical_line,
               Status::InvalidArgument(
                   "unknown \"cmd\" (only \"shutdown\" exists)")),
           false);
      continue;
    }
    Result<TopKQuery> query = QueryFromJson(*request);
    if (!query.ok()) {
      emit(ErrorResponse(id_json, physical_line, query.status()), false);
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(queue_mu);
      can_push.wait(lock, [&] { return queue.size() < queue_cap; });
      queue.push_back(Job{physical_line, id_json, *std::move(query)});
    }
    can_pop.notify_one();
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu);
    closed = true;
  }
  can_pop.notify_all();
  for (std::thread& worker : workers) worker.join();

  // The shutdown acknowledgment is the last response line: once the client
  // reads it, every query it sent has been answered.
  if (local.shutdown_requested) {
    emit(StrCat(ResponseHead(shutdown_id_json, shutdown_line),
                ",\"ok\":true,\"shutdown\":true}"),
         true);
  }

  local.wall_seconds = timer.ElapsedSeconds();
  if (options.summary) {
    err << "serve: " << local.requests << " requests in "
        << local.wall_seconds << "s (" << local.answered << " answered, "
        << local.errors << " errors); session total: "
        << session.serving_stats().ToString() << "\n";
  }
  if (stats != nullptr) *stats = local;
  return Status::Ok();
}

#if defined(__unix__) || defined(__APPLE__)

namespace {

/// Minimal read-side streambuf over a connected socket fd.
class FdInBuf : public std::streambuf {
 public:
  explicit FdInBuf(int fd) : fd_(fd) { setg(buffer_, buffer_, buffer_); }

 protected:
  int underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
      n = ::read(fd_, buffer_, sizeof(buffer_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(buffer_, buffer_, buffer_ + n);
    return traits_type::to_int_type(*gptr());
  }

 private:
  int fd_;
  char buffer_[4096];
};

/// Minimal write-side streambuf over a connected socket fd.
class FdOutBuf : public std::streambuf {
 public:
  explicit FdOutBuf(int fd) : fd_(fd) { setp(buffer_, buffer_ + sizeof(buffer_)); }

 protected:
  int overflow(int ch) override {
    if (Flush() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }
  int sync() override { return Flush(); }

 private:
  int Flush() {
    const char* data = pbase();
    size_t left = static_cast<size_t>(pptr() - pbase());
    while (left > 0) {
      ssize_t n = ::write(fd_, data, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      data += n;
      left -= static_cast<size_t>(n);
    }
    setp(buffer_, buffer_ + sizeof(buffer_));
    return 0;
  }

  int fd_;
  char buffer_[4096];
};

}  // namespace

Status RunServeSocket(const MiningSession& session,
                      const std::string& socket_path, std::ostream& err,
                      const ServeOptions& options) {
  if (options.max_inflight < 1) {
    return Status::InvalidArgument(
        StrCat("max_inflight must be >= 1 (got ", options.max_inflight, ")"));
  }
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(address.sun_path)) {
    return Status::InvalidArgument(
        StrCat("socket path is too long for sun_path (",
               socket_path.size(), " >= ", sizeof(address.sun_path), ")"));
  }
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);

  // Replace only a genuinely stale *socket* at the path — a typo'd
  // --socket pointing at a regular file must not delete it.
  struct stat existing{};
  if (::lstat(socket_path.c_str(), &existing) == 0) {
    if (!S_ISSOCK(existing.st_mode)) {
      return Status::InvalidArgument(
          StrCat("refusing to replace ", socket_path,
                 ": it exists and is not a socket"));
    }
    ::unlink(socket_path.c_str());
  }

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::IoError(StrCat("socket(): ", std::strerror(errno)));
  }
  if (::bind(listener, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listener, 8) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listener);
    return Status::IoError(
        StrCat("bind/listen(", socket_path, "): ", detail));
  }
  err << "serve: listening on unix socket " << socket_path
      << " (send {\"cmd\":\"shutdown\"} to stop)\n";

  Status status = Status::Ok();
  for (;;) {
    int connection;
    do {
      connection = ::accept(listener, nullptr, nullptr);
    } while (connection < 0 && errno == EINTR);
    if (connection < 0) {
      status = Status::IoError(StrCat("accept(): ", std::strerror(errno)));
      break;
    }
    FdInBuf in_buf(connection);
    FdOutBuf out_buf(connection);
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    ServeStats connection_stats;
    status = RunServeLoop(session, in, out, err, options, &connection_stats);
    out.flush();
    ::close(connection);
    if (!status.ok() || connection_stats.shutdown_requested) break;
  }
  ::close(listener);
  ::unlink(socket_path.c_str());
  return status;
}

#else  // no unix sockets on this platform

Status RunServeSocket(const MiningSession&, const std::string&,
                      std::ostream&, const ServeOptions&) {
  return Status::InvalidArgument(
      "--socket requires unix domain sockets, unavailable on this platform; "
      "use the stdin/stdout transport");
}

#endif

}  // namespace spidermine::cli
