#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// A fixed-size worker pool used to parallelize embarrassingly parallel
/// library work (Stage I star verification, support evaluation over
/// independent candidates, benchmark sweeps). Tasks are void() closures;
/// completion is observed via WaitIdle(). The pool is deliberately simple:
/// no futures, no work stealing -- determinism of *results* is preserved by
/// having callers write to pre-sized output slots.

namespace spidermine {

/// Fixed-size thread pool. Construction spawns the workers; destruction
/// drains outstanding tasks and joins.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers; values < 1 are clamped to 1.
  explicit ThreadPool(int32_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains pending tasks, then joins all workers.
  ~ThreadPool();

  /// Enqueues a task. Tasks must not throw (library code is no-except by
  /// convention) and must not enqueue recursively from within themselves
  /// while the destructor might be running.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished executing.
  void WaitIdle();

  /// Number of worker threads.
  int32_t num_threads() const { return num_threads_; }

  /// Runs `body(i)` for i in [0, n) across the pool and waits for all
  /// iterations; the calling thread also participates. Iterations are
  /// distributed in contiguous chunks to limit synchronization.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body);

  /// A sensible default parallelism: hardware_concurrency, at least 1.
  static int32_t DefaultThreads();

 private:
  void WorkerLoop();

  const int32_t num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  int64_t in_flight_ = 0;  // queued + currently running tasks
  bool shutdown_ = false;
};

}  // namespace spidermine
