#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/timer.h"

/// \file thread_pool.h
/// A fixed-size worker pool used to parallelize embarrassingly parallel
/// library work (Stage I star shards, per-lineage growth, closure, benchmark
/// sweeps). Tasks are void() closures; completion is observed via WaitIdle().
/// The pool is deliberately simple: no futures, no work stealing --
/// determinism of *results* is preserved by having callers write to
/// pre-sized output slots, so scheduling order never influences output.
///
/// Concurrent callers: one pool may be shared by any number of caller
/// threads (the serving scenario: many in-flight queries fanning out over
/// one session pool). Schedule() is thread-safe, and each
/// ParallelFor/ParallelForChunks call tracks its own helper tasks with a
/// per-call latch, so a call returns exactly when *its* iterations are
/// done -- never blocking on (or being blocked by) another caller's work.
/// WaitIdle() remains pool-global: it observes every caller's tasks.
///
/// Cooperative cancellation: long-running stages poll a CancellationToken
/// (optionally bound to a Deadline) so a time budget stops workers
/// mid-stage instead of only between stages.

namespace spidermine {

/// A cooperative cancellation flag shared between a coordinator and pool
/// workers. Thread-safe. Optionally bound to a Deadline, in which case the
/// token reports cancelled once the deadline expires (the expiry latches so
/// later polls skip the clock read).
class CancellationToken {
 public:
  CancellationToken() = default;

  /// A token that also trips when \p deadline (borrowed; may be null)
  /// expires.
  explicit CancellationToken(const Deadline* deadline) : deadline_(deadline) {}

  /// Requests cancellation; all subsequent IsCancelled() calls return true.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancellation was requested or the bound deadline expired.
  bool IsCancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (deadline_ != nullptr && deadline_->Expired()) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  const Deadline* deadline_ = nullptr;
};

/// Fixed-size thread pool. Construction spawns the workers; destruction
/// drains outstanding tasks and joins.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers; values < 1 are clamped to 1.
  explicit ThreadPool(int32_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains pending tasks, then joins all workers.
  ~ThreadPool();

  /// Enqueues a task. Tasks must not throw (library code is no-except by
  /// convention) and must not enqueue recursively from within themselves
  /// while the destructor might be running.
  void Schedule(std::function<void()> task);

  /// Blocks until every scheduled task has finished executing.
  void WaitIdle();

  /// Number of worker threads.
  int32_t num_threads() const { return num_threads_; }

  /// Runs `body(i)` for i in [0, n) across the pool and waits for all
  /// iterations; the calling thread also participates. Iterations are
  /// distributed in contiguous chunks to limit synchronization. When
  /// \p token is non-null and becomes cancelled, chunks not yet started are
  /// skipped (iterations already running finish; callers observe partial
  /// output only through their own slots). Safe to call concurrently from
  /// multiple threads on one pool: the call waits only for its own
  /// iterations (per-call latch), not for other callers' tasks.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body,
                   const CancellationToken* token = nullptr);

  /// Chunked variant with explicit grain-size control: runs
  /// `body(begin, end)` over contiguous ranges of at most \p grain
  /// iterations (grain < 1 selects an automatic ~4-chunks-per-thread
  /// grain). Use a large grain for cheap iterations to amortize dispatch,
  /// grain = 1 for expensive skewed iterations. Cancellation and
  /// concurrent-caller safety as in ParallelFor.
  void ParallelForChunks(int64_t n, int64_t grain,
                         const std::function<void(int64_t, int64_t)>& body,
                         const CancellationToken* token = nullptr);

  /// A sensible default parallelism: hardware_concurrency, at least 1.
  static int32_t DefaultThreads();

 private:
  void WorkerLoop();

  const int32_t num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  int64_t in_flight_ = 0;  // queued + currently running tasks
  bool shutdown_ = false;
};

}  // namespace spidermine
