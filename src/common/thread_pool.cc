#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace spidermine {

ThreadPool::ThreadPool(int32_t num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int32_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body) {
  if (n <= 0) return;
  // Chunked dynamic scheduling: workers (and this thread) claim the next
  // chunk from a shared cursor. Chunk count ~4x threads balances skewed
  // iteration costs against synchronization overhead.
  const int64_t chunks = std::min<int64_t>(n, 4LL * (num_threads_ + 1));
  const int64_t chunk_size = (n + chunks - 1) / chunks;
  auto cursor = std::make_shared<std::atomic<int64_t>>(0);
  auto run_chunks = [cursor, n, chunk_size, &body] {
    for (;;) {
      const int64_t begin = cursor->fetch_add(chunk_size);
      if (begin >= n) return;
      const int64_t end = std::min(n, begin + chunk_size);
      for (int64_t i = begin; i < end; ++i) body(i);
    }
  };
  for (int32_t t = 0; t < num_threads_; ++t) Schedule(run_chunks);
  run_chunks();  // the caller helps
  WaitIdle();
}

int32_t ThreadPool::DefaultThreads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int32_t>(hc);
}

}  // namespace spidermine
