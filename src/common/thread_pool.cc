#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace spidermine {

ThreadPool::ThreadPool(int32_t num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int32_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::ParallelForChunks(
    int64_t n, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body,
    const CancellationToken* token) {
  if (n <= 0) return;
  if (token != nullptr && token->IsCancelled()) return;
  if (grain < 1) {
    // Automatic grain: ~4 chunks per participant balances skewed iteration
    // costs against synchronization overhead.
    const int64_t chunks = std::min<int64_t>(n, 4LL * (num_threads_ + 1));
    grain = (n + chunks - 1) / chunks;
  }
  if (n <= grain || num_threads_ == 1) {
    // Serial fast path: nothing to gain from dispatch; still honor the
    // token between chunks so a deadline bounds even the inline loop.
    for (int64_t begin = 0; begin < n; begin += grain) {
      if (token != nullptr && token->IsCancelled()) return;
      body(begin, std::min(n, begin + grain));
    }
    return;
  }
  // Chunked dynamic scheduling: workers (and this thread) claim the next
  // chunk from a shared cursor. Scheduling order varies between runs, but
  // callers write only to pre-sized per-index slots, so results do not.
  //
  // Completion is a per-call latch, NOT pool-global WaitIdle(): with
  // several concurrent callers (in-flight queries sharing a session pool)
  // a global wait would block each call on every other caller's tasks --
  // and `body`, captured by reference, must stay alive until precisely
  // this call's helpers have finished.
  const int64_t chunk_size = grain;
  struct CallLatch {
    std::atomic<int64_t> cursor{0};
    std::mutex mu;
    std::condition_variable done;
    int32_t pending_helpers = 0;
  };
  auto latch = std::make_shared<CallLatch>();
  auto run_chunks = [latch, n, chunk_size, token, &body] {
    for (;;) {
      if (token != nullptr && token->IsCancelled()) return;
      const int64_t begin = latch->cursor.fetch_add(chunk_size);
      if (begin >= n) return;
      body(begin, std::min(n, begin + chunk_size));
    }
  };
  // Spawn at most one task per chunk so tiny loops do not wake every worker.
  const int64_t num_chunks = (n + chunk_size - 1) / chunk_size;
  const int32_t helpers = static_cast<int32_t>(
      std::min<int64_t>(num_threads_, num_chunks - 1));
  latch->pending_helpers = helpers;
  for (int32_t t = 0; t < helpers; ++t) {
    Schedule([latch, run_chunks] {
      run_chunks();
      std::unique_lock<std::mutex> lock(latch->mu);
      if (--latch->pending_helpers == 0) latch->done.notify_all();
    });
  }
  run_chunks();  // the caller helps
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->done.wait(lock, [&latch] { return latch->pending_helpers == 0; });
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body,
                             const CancellationToken* token) {
  ParallelForChunks(
      n, /*grain=*/-1,
      [&body](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) body(i);
      },
      token);
}

int32_t ThreadPool::DefaultThreads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int32_t>(hc);
}

}  // namespace spidermine
