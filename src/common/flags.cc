#include "common/flags.h"

#include <cassert>
#include <charconv>
#include <sstream>

#include "common/strings.h"

namespace spidermine {

namespace {

// Parses a full int64 from text; rejects trailing garbage and empty input.
bool ParseInt64(std::string_view text, int64_t* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end && !text.empty();
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  // std::from_chars for double is unreliable across libstdc++ versions for
  // some formats; strtod with end-pointer validation is portable.
  std::string owned(text);
  char* end = nullptr;
  *out = std::strtod(owned.c_str(), &end);
  return end == owned.c_str() + owned.size();
}

bool ParseBool(std::string_view text, bool* out) {
  if (text == "true" || text == "1" || text == "yes") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

FlagSet::FlagSet(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

FlagSet& FlagSet::AddInt(std::string_view name, int64_t default_value,
                         std::string_view help) {
  Flag flag;
  flag.type = Type::kInt;
  flag.help = std::string(help);
  flag.int_value = default_value;
  flags_.emplace(std::string(name), std::move(flag));
  return *this;
}

FlagSet& FlagSet::AddDouble(std::string_view name, double default_value,
                            std::string_view help) {
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = std::string(help);
  flag.double_value = default_value;
  flags_.emplace(std::string(name), std::move(flag));
  return *this;
}

FlagSet& FlagSet::AddString(std::string_view name,
                            std::string_view default_value,
                            std::string_view help) {
  Flag flag;
  flag.type = Type::kString;
  flag.help = std::string(help);
  flag.string_value = std::string(default_value);
  flags_.emplace(std::string(name), std::move(flag));
  return *this;
}

FlagSet& FlagSet::AddBool(std::string_view name, bool default_value,
                          std::string_view help) {
  Flag flag;
  flag.type = Type::kBool;
  flag.help = std::string(help);
  flag.bool_value = default_value;
  flags_.emplace(std::string(name), std::move(flag));
  return *this;
}

Status FlagSet::SetFromText(Flag* flag, std::string_view name,
                            std::string_view text) {
  switch (flag->type) {
    case Type::kInt:
      if (!ParseInt64(text, &flag->int_value)) {
        return Status::InvalidArgument(
            StrCat("flag --", name, ": expected integer, got '", text, "'"));
      }
      break;
    case Type::kDouble:
      if (!ParseDouble(text, &flag->double_value)) {
        return Status::InvalidArgument(
            StrCat("flag --", name, ": expected number, got '", text, "'"));
      }
      break;
    case Type::kString:
      flag->string_value = std::string(text);
      break;
    case Type::kBool:
      if (!ParseBool(text, &flag->bool_value)) {
        return Status::InvalidArgument(StrCat(
            "flag --", name, ": expected true/false, got '", text, "'"));
      }
      break;
  }
  flag->was_set = true;
  return Status::Ok();
}

Status FlagSet::Parse(const std::vector<std::string>& args) {
  bool flags_done = false;
  for (size_t i = 0; i < args.size(); ++i) {
    std::string_view arg = args[i];
    if (flags_done || arg.size() < 2 || arg.substr(0, 2) != "--") {
      positional_.emplace_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string_view body = arg.substr(2);
    std::string_view name = body;
    std::optional<std::string_view> inline_value;
    if (size_t eq = body.find('='); eq != std::string_view::npos) {
      name = body.substr(0, eq);
      inline_value = body.substr(eq + 1);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument(StrCat("unknown flag --", name));
    }
    Flag& flag = it->second;
    if (flag.was_set) {
      return Status::InvalidArgument(StrCat("flag --", name, " repeated"));
    }
    if (inline_value.has_value()) {
      SM_RETURN_NOT_OK(SetFromText(&flag, name, *inline_value));
      continue;
    }
    if (flag.type == Type::kBool) {
      // Bare boolean flag.
      flag.bool_value = true;
      flag.was_set = true;
      continue;
    }
    if (i + 1 >= args.size()) {
      return Status::InvalidArgument(StrCat("flag --", name, " needs a value"));
    }
    SM_RETURN_NOT_OK(SetFromText(&flag, name, args[++i]));
  }
  return Status::Ok();
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? static_cast<size_t>(argc - 1) : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return Parse(args);
}

const FlagSet::Flag* FlagSet::Find(std::string_view name, Type type) const {
  auto it = flags_.find(name);
  assert(it != flags_.end() && "flag not registered");
  if (it == flags_.end()) return nullptr;
  assert(it->second.type == type && "flag accessed with the wrong type");
  if (it->second.type != type) return nullptr;
  return &it->second;
}

int64_t FlagSet::GetInt(std::string_view name) const {
  const Flag* flag = Find(name, Type::kInt);
  return flag != nullptr ? flag->int_value : 0;
}

double FlagSet::GetDouble(std::string_view name) const {
  const Flag* flag = Find(name, Type::kDouble);
  return flag != nullptr ? flag->double_value : 0.0;
}

const std::string& FlagSet::GetString(std::string_view name) const {
  static const std::string kEmpty;
  const Flag* flag = Find(name, Type::kString);
  return flag != nullptr ? flag->string_value : kEmpty;
}

bool FlagSet::GetBool(std::string_view name) const {
  const Flag* flag = Find(name, Type::kBool);
  return flag != nullptr && flag->bool_value;
}

bool FlagSet::WasSet(std::string_view name) const {
  auto it = flags_.find(name);
  return it != flags_.end() && it->second.was_set;
}

std::string FlagSet::Usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags] [args]\n";
  if (!description_.empty()) os << description_ << "\n";
  os << "flags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    switch (flag.type) {
      case Type::kInt:
        os << "=<int> (default " << flag.int_value << ")";
        break;
      case Type::kDouble:
        os << "=<num> (default " << flag.double_value << ")";
        break;
      case Type::kString:
        os << "=<str> (default \"" << flag.string_value << "\")";
        break;
      case Type::kBool:
        os << " (default " << (flag.bool_value ? "true" : "false") << ")";
        break;
    }
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace spidermine
