#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

/// \file result.h
/// Result<T>: a Status or a value, in the style of arrow::Result.

namespace spidermine {

/// Holds either a successfully produced T or the Status explaining why no
/// value could be produced. Accessing the value of a failed Result is a
/// programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding \p value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Constructs a failed result from a non-OK status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Borrows the contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  /// Mutable access to the contained value. Requires ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  /// Moves the contained value out. Requires ok().
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out of a successful result. Requires ok().
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value, or \p fallback when failed.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace spidermine

/// Assigns the value of a Result expression to `lhs`, or returns its Status.
#define SM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

#define SM_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define SM_ASSIGN_OR_RETURN_NAME(a, b) SM_ASSIGN_OR_RETURN_CONCAT(a, b)
#define SM_ASSIGN_OR_RETURN(lhs, expr) \
  SM_ASSIGN_OR_RETURN_IMPL(SM_ASSIGN_OR_RETURN_NAME(_sm_result_, __LINE__), lhs, expr)
