#pragma once

#include <iostream>
#include <string_view>

/// \file logging.h
/// Minimal leveled logging. Intended for the mining drivers and benches;
/// default level is kWarning so library use is quiet.

namespace spidermine {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum level that is emitted.
LogLevel GetLogLevel();

/// Sets the process-wide minimum level that is emitted.
void SetLogLevel(LogLevel level);

/// Emits \p message to stderr when \p level passes the filter.
void Log(LogLevel level, std::string_view message);

}  // namespace spidermine
