#include "common/strings.h"

namespace spidermine {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripAsciiWhitespace(std::string_view text) {
  const char* ws = " \t\r\n\f\v";
  size_t begin = text.find_first_not_of(ws);
  if (begin == std::string_view::npos) return std::string_view();
  size_t end = text.find_last_not_of(ws);
  return text.substr(begin, end - begin + 1);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace spidermine
