#pragma once

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

/// \file rng.h
/// Deterministic seeded random number generation. Every randomized component
/// of the library draws from an explicitly seeded Rng so that experiments are
/// exactly reproducible.

namespace spidermine {

/// A seeded pseudo-random source (mersenne twister) with the sampling
/// helpers the miners and generators need.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// A uniformly chosen element index for a container of size n (n > 0).
  size_t Index(size_t n) {
    assert(n > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// k distinct values sampled uniformly from {0, ..., n-1} (k <= n),
  /// returned in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      std::swap((*items)[i - 1], (*items)[Index(i)]);
    }
  }

  /// Derives an independent child generator. Successive calls yield distinct
  /// substreams, so components seeded from one parent do not correlate.
  Rng Fork() { return Rng(engine_() ^ (0x9e3779b97f4a7c15ULL + (++forks_))); }

  /// The raw engine, for std distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t forks_ = 0;
};

}  // namespace spidermine
