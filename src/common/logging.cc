#include "common/logging.h"

#include <atomic>

namespace spidermine {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  std::cerr << "[" << LevelName(level) << "] " << message << "\n";
}

}  // namespace spidermine
