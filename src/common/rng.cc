#include "common/rng.h"

#include <unordered_set>

namespace spidermine {

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // Dense case: partial Fisher-Yates over an explicit index array.
  if (k * 3 >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + Index(n - i);
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  // Sparse case: rejection sampling.
  std::unordered_set<size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    size_t v = Index(n);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace spidermine
