#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

/// \file strings.h
/// Small string helpers (gcc 12 lacks std::format).

namespace spidermine {

namespace internal {
inline void StrAppendOne(std::ostringstream& os) { (void)os; }
template <typename T, typename... Rest>
void StrAppendOne(std::ostringstream& os, const T& first, const Rest&... rest) {
  os << first;
  StrAppendOne(os, rest...);
}
}  // namespace internal

/// Concatenates the streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal::StrAppendOne(os, args...);
  return os.str();
}

/// Splits \p text on \p sep, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view text);

/// Joins the elements of \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace spidermine
