#pragma once

#include <chrono>

/// \file timer.h
/// Wall-clock timing for the benchmark harnesses and MineStats.

namespace spidermine {

/// Measures elapsed wall time from construction (or the last Restart()).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since the epoch.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since the epoch.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline: components that honor budgets poll Expired().
class Deadline {
 public:
  /// A deadline \p seconds from now; non-positive means "no deadline".
  explicit Deadline(double seconds) : seconds_(seconds) {}

  /// An unlimited deadline.
  static Deadline Unlimited() { return Deadline(0.0); }

  /// True once the budget has elapsed (never true for unlimited deadlines).
  bool Expired() const {
    return seconds_ > 0.0 && timer_.ElapsedSeconds() >= seconds_;
  }

  /// Remaining seconds (0 when expired; a large value when unlimited).
  double RemainingSeconds() const {
    if (seconds_ <= 0.0) return 1e18;
    double rem = seconds_ - timer_.ElapsedSeconds();
    return rem > 0.0 ? rem : 0.0;
  }

 private:
  double seconds_;
  WallTimer timer_;
};

}  // namespace spidermine
