#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/result.h"

/// \file mapped_file.h
/// Read-only memory-mapped file access for the zero-copy Stage I artifact
/// path (spider/spider_store_mmap.h). On POSIX hosts the file is mmap'd
/// PROT_READ, so N processes serving the same artifact share one copy of
/// the bytes in page cache instead of N heap copies, and "loading" is an
/// mmap + header check instead of a copy-deserialization pass. Hosts
/// without mmap (or files mmap refuses, e.g. some pseudo-filesystems)
/// fall back transparently to reading the file into a heap buffer — same
/// interface, same bytes, no page-cache sharing.

namespace spidermine {

/// An open read-only mapping (or heap copy) of one file. Movable, not
/// copyable; the bytes stay valid and immutable until destruction. Spans
/// handed out by bytes() are invalidated by destruction/move-from.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Opens \p path read-only and maps (or reads) its entire content.
  /// kIoError when the file cannot be opened, stat'd, or read. An empty
  /// file yields an empty, valid mapping.
  static Result<MappedFile> Open(const std::string& path);

  /// The file's bytes. Valid for the lifetime of this object.
  std::span<const uint8_t> bytes() const {
    return {static_cast<const uint8_t*>(data_), size_};
  }

  size_t size() const { return size_; }

  /// True when the bytes are an actual mmap (page-cache shared) rather
  /// than the heap-buffer fallback.
  bool is_mapped() const { return mapped_; }

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;

  void Release();
};

}  // namespace spidermine
