#pragma once

#include <cstdint>
#include <span>
#include <string_view>

/// \file crc32.h
/// CRC-32 (IEEE 802.3 polynomial, reflected) used to checksum the binary
/// graph/pattern file format (graph/binary_io.h). Table-driven, one byte at
/// a time; fast enough for the file sizes this library writes.

namespace spidermine {

/// Extends a running CRC-32 with \p data. Start from crc = 0.
uint32_t Crc32Extend(uint32_t crc, std::span<const uint8_t> data);

/// CRC-32 of a byte span.
inline uint32_t Crc32(std::span<const uint8_t> data) {
  return Crc32Extend(0, data);
}

/// CRC-32 of a string's bytes.
uint32_t Crc32(std::string_view data);

}  // namespace spidermine
