#include "common/crc32.h"

#include <array>

namespace spidermine {

namespace {

// Reflected CRC-32 (polynomial 0xEDB88320), the variant used by zlib/PNG.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  return kTable;
}

}  // namespace

uint32_t Crc32Extend(uint32_t crc, std::span<const uint8_t> data) {
  const auto& table = Table();
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::string_view data) {
  return Crc32Extend(
      0, {reinterpret_cast<const uint8_t*>(data.data()), data.size()});
}

}  // namespace spidermine
