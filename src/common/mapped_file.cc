#include "common/mapped_file.h"

#include <cstdlib>
#include <fstream>
#include <utility>

#include "common/strings.h"

#if defined(__unix__) || defined(__APPLE__)
#define SPIDERMINE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace spidermine {

MappedFile::~MappedFile() { Release(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

void MappedFile::Release() {
#if SPIDERMINE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    munmap(data_, size_);
  }
#endif
  if (!mapped_ && data_ != nullptr) {
    std::free(data_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
#if SPIDERMINE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    const bool regular = fstat(fd, &st) == 0 && S_ISREG(st.st_mode);
    if (!regular) {
      ::close(fd);
      return Status::IoError(StrCat("'", path, "' is not a regular file"));
    }
    MappedFile file;
    file.size_ = static_cast<size_t>(st.st_size);
    if (file.size_ == 0) {
      ::close(fd);
      return file;
    }
    void* addr = mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (addr != MAP_FAILED) {
      file.data_ = addr;
      file.mapped_ = true;
      return file;
    }
    // mmap refused the file (unusual filesystem); fall through to the
    // heap-buffer path, which serves the same bytes without sharing.
  }
#endif
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IoError(StrCat("cannot open '", path, "' for reading"));
  }
  const std::streamoff length = in.tellg();
  if (length < 0) {
    return Status::IoError(StrCat("cannot size '", path, "'"));
  }
  in.seekg(0);
  MappedFile file;
  file.size_ = static_cast<size_t>(length);
  if (file.size_ == 0) return file;
  file.data_ = std::malloc(file.size_);
  if (file.data_ == nullptr) {
    file.size_ = 0;
    return Status::IoError(
        StrCat("cannot allocate ", length, " bytes for '", path, "'"));
  }
  in.read(static_cast<char*>(file.data_),
          static_cast<std::streamsize>(file.size_));
  if (!in) {
    return Status::IoError(StrCat("short read on '", path, "'"));
  }
  return file;
}

}  // namespace spidermine
