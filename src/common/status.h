#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

/// \file status.h
/// Error model for the spidermine library. Library code does not throw;
/// fallible operations return Status (or Result<T>, see result.h), in the
/// style of Apache Arrow / RocksDB.

namespace spidermine {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kIoError,
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode.
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus a human-readable message.
///
/// An OK status carries no message and is cheap to copy. Non-OK statuses
/// carry a message describing the failure for the caller or the logs.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns the OK status.
  static Status Ok() { return Status(); }
  /// Returns a kInvalidArgument status with \p message.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Returns a kNotFound status with \p message.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Returns a kAlreadyExists status with \p message.
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  /// Returns a kOutOfRange status with \p message.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Returns a kResourceExhausted status with \p message.
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  /// Returns a kIoError status with \p message.
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  /// Returns a kInternal status with \p message.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The failure message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace spidermine

/// Propagates a non-OK Status to the caller.
#define SM_RETURN_NOT_OK(expr)                   \
  do {                                           \
    ::spidermine::Status _sm_status = (expr);    \
    if (!_sm_status.ok()) return _sm_status;     \
  } while (false)
