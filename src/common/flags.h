#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// \file flags.h
/// A small command-line flag parser for the tools and bench binaries.
/// Flags are `--name=value` or `--name value`; bare `--name` sets a boolean
/// flag to true. Everything that is not a flag is a positional argument.
/// The parser is declarative: callers register typed flags with defaults and
/// help text, then Parse() validates the command line against them.

namespace spidermine {

/// One registered flag: name, help text, and a typed default.
class FlagSet {
 public:
  /// Creates a flag set for a program; \p description heads the usage text.
  explicit FlagSet(std::string program, std::string description = "");

  /// Registers an int64 flag. Returns *this for chaining.
  FlagSet& AddInt(std::string_view name, int64_t default_value,
                  std::string_view help);
  /// Registers a double flag.
  FlagSet& AddDouble(std::string_view name, double default_value,
                     std::string_view help);
  /// Registers a string flag.
  FlagSet& AddString(std::string_view name, std::string_view default_value,
                     std::string_view help);
  /// Registers a boolean flag (bare `--name` means true; `--name=false`
  /// clears it).
  FlagSet& AddBool(std::string_view name, bool default_value,
                   std::string_view help);

  /// Parses \p args (excluding argv[0]). Unknown flags, malformed values and
  /// repeated flags are kInvalidArgument. `--` stops flag parsing; later
  /// tokens are positional.
  Status Parse(const std::vector<std::string>& args);

  /// Convenience overload for main(argc, argv); skips argv[0].
  Status Parse(int argc, const char* const* argv);

  /// Typed accessors. Requires that the flag was registered with the same
  /// type; unknown names abort in debug builds and return the zero value.
  int64_t GetInt(std::string_view name) const;
  double GetDouble(std::string_view name) const;
  const std::string& GetString(std::string_view name) const;
  bool GetBool(std::string_view name) const;

  /// True iff the flag appeared on the command line (vs. default).
  bool WasSet(std::string_view name) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders a usage/help string listing all flags with defaults.
  std::string Usage() const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };

  struct Flag {
    Type type;
    std::string help;
    // Current value (default until Parse overwrites it).
    int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
    bool was_set = false;
  };

  Status SetFromText(Flag* flag, std::string_view name, std::string_view text);
  const Flag* Find(std::string_view name, Type type) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace spidermine
