#include "support/exact_mis.h"

#include <algorithm>
#include <unordered_set>

namespace spidermine {

namespace {

/// Builds the conflict adjacency as bitsets over embeddings.
std::vector<std::vector<bool>> BuildConflicts(
    const Pattern& pattern, const std::vector<Embedding>& embeddings,
    MisConflict conflict) {
  const size_t n = embeddings.size();
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  if (conflict == MisConflict::kSharedVertex) {
    std::vector<std::vector<VertexId>> images;
    images.reserve(n);
    for (const Embedding& e : embeddings) images.push_back(SortedImage(e));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (ImagesIntersect(images[i], images[j])) {
          adj[i][j] = adj[j][i] = true;
        }
      }
    }
  } else {
    auto edge_key = [](VertexId a, VertexId b) {
      if (a > b) std::swap(a, b);
      return (static_cast<uint64_t>(a) << 32) | static_cast<uint32_t>(b);
    };
    const auto pattern_edges = pattern.Edges();
    std::vector<std::vector<uint64_t>> edge_sets(n);
    for (size_t i = 0; i < n; ++i) {
      for (const auto& [pu, pv] : pattern_edges) {
        edge_sets[i].push_back(edge_key(embeddings[i][pu], embeddings[i][pv]));
      }
      std::sort(edge_sets[i].begin(), edge_sets[i].end());
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        // Sorted-merge intersection test.
        size_t a = 0;
        size_t b = 0;
        bool hit = false;
        while (a < edge_sets[i].size() && b < edge_sets[j].size()) {
          if (edge_sets[i][a] == edge_sets[j][b]) {
            hit = true;
            break;
          }
          if (edge_sets[i][a] < edge_sets[j][b]) {
            ++a;
          } else {
            ++b;
          }
        }
        if (hit) adj[i][j] = adj[j][i] = true;
      }
    }
  }
  return adj;
}

struct MisSearch {
  const std::vector<std::vector<bool>>* adj;
  int64_t max_nodes;
  int64_t nodes = 0;
  bool truncated = false;
  int64_t best = 0;

  /// Branch and bound over candidate order: candidates[pos..] are still
  /// selectable; `chosen` counts the current independent set.
  void Recurse(std::vector<int32_t> candidates, int64_t chosen) {
    if (++nodes > max_nodes) {
      truncated = true;
      return;
    }
    best = std::max(best, chosen);
    // Bound: even taking all remaining candidates cannot beat best.
    if (chosen + static_cast<int64_t>(candidates.size()) <= best) return;
    while (!candidates.empty()) {
      if (truncated) return;
      // Take the first candidate; filter the rest; recurse; then also
      // explore skipping it.
      int32_t v = candidates.front();
      candidates.erase(candidates.begin());
      std::vector<int32_t> filtered;
      filtered.reserve(candidates.size());
      for (int32_t u : candidates) {
        if (!(*adj)[v][u]) filtered.push_back(u);
      }
      Recurse(std::move(filtered), chosen + 1);
      // The loop continues == the "skip v" branch, with the same bound.
      if (chosen + static_cast<int64_t>(candidates.size()) <= best) return;
    }
  }
};

}  // namespace

Result<ExactMisResult> ComputeExactMisSupport(
    const Pattern& pattern, const std::vector<Embedding>& embeddings,
    MisConflict conflict, int64_t max_nodes) {
  if (conflict == MisConflict::kSharedEdge && pattern.NumEdges() == 0) {
    return Status::InvalidArgument(
        "edge-conflict MIS needs a pattern with edges");
  }
  ExactMisResult result;
  if (embeddings.empty()) return result;

  std::vector<std::vector<bool>> adj =
      BuildConflicts(pattern, embeddings, conflict);

  // Order candidates by conflict degree ascending: low-conflict embeddings
  // first tightens the bound quickly.
  std::vector<int32_t> order(embeddings.size());
  for (size_t i = 0; i < embeddings.size(); ++i) {
    order[i] = static_cast<int32_t>(i);
  }
  std::vector<int32_t> degree(embeddings.size(), 0);
  for (size_t i = 0; i < embeddings.size(); ++i) {
    for (size_t j = 0; j < embeddings.size(); ++j) {
      if (adj[i][j]) ++degree[i];
    }
  }
  std::sort(order.begin(), order.end(),
            [&](int32_t a, int32_t b) { return degree[a] < degree[b]; });

  MisSearch search;
  search.adj = &adj;
  search.max_nodes = max_nodes > 0 ? max_nodes : 1000000;
  search.Recurse(order, 0);

  result.support = search.best;
  result.truncated = search.truncated;
  result.nodes_explored = search.nodes;
  return result;
}

}  // namespace spidermine
