#pragma once

#include <cstdint>

#include "common/result.h"
#include "pattern/embedding.h"
#include "pattern/pattern.h"
#include "support/support_measure.h"

/// \file exact_mis.h
/// Exact overlap-aware support: the true maximum independent set of the
/// embedding conflict graph (conflict = shared vertex or shared edge),
/// computed by branch and bound. This is the measure the greedy
/// approximations in support_measure.h stand in for; it is NP-hard in
/// general, so a node budget bounds the search. Useful for validating the
/// greedy measures on small embedding sets (see the accuracy tests) and
/// for exact support of the final top-K patterns.

namespace spidermine {

/// Conflict definition for the exact computation.
enum class MisConflict {
  kSharedVertex,  ///< embeddings conflict iff they share a graph vertex
  kSharedEdge,    ///< embeddings conflict iff they map a shared graph edge
};

/// Result of an exact MIS computation.
struct ExactMisResult {
  int64_t support = 0;
  /// True when the node budget ended the search early; `support` is then
  /// a lower bound (the best independent set found).
  bool truncated = false;
  int64_t nodes_explored = 0;
};

/// Computes the exact MIS support of \p embeddings under \p conflict.
/// \p max_nodes bounds the branch-and-bound search (<= 0: a generous
/// default of 1e6). Fails with kInvalidArgument for empty patterns when
/// edge conflicts are requested.
Result<ExactMisResult> ComputeExactMisSupport(
    const Pattern& pattern, const std::vector<Embedding>& embeddings,
    MisConflict conflict, int64_t max_nodes = 0);

}  // namespace spidermine
