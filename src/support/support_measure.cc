#include "support/support_measure.h"

#include <algorithm>
#include <iterator>
#include <unordered_set>

namespace spidermine {

std::string_view SupportMeasureName(SupportMeasureKind kind) {
  switch (kind) {
    case SupportMeasureKind::kEmbeddingCount:
      return "embedding-count";
    case SupportMeasureKind::kMinImage:
      return "min-image";
    case SupportMeasureKind::kGreedyMisVertex:
      return "greedy-mis-vertex";
    case SupportMeasureKind::kGreedyMisEdge:
      return "greedy-mis-edge";
    case SupportMeasureKind::kTransaction:
      return "transaction";
    case SupportMeasureKind::kHomomorphism:
      return "homomorphism";
  }
  return "?";
}

namespace {

int64_t MinImageSupport(const Pattern& pattern,
                        const std::vector<Embedding>& embeddings) {
  if (embeddings.empty()) return 0;
  int64_t min_images = INT64_MAX;
  std::unordered_set<VertexId> images;
  for (VertexId pv = 0; pv < pattern.NumVertices(); ++pv) {
    images.clear();
    for (const Embedding& e : embeddings) images.insert(e[pv]);
    min_images = std::min(min_images, static_cast<int64_t>(images.size()));
  }
  return min_images;
}

int64_t GreedyMisVertexSupport(const std::vector<Embedding>& embeddings) {
  std::unordered_set<VertexId> used;
  int64_t count = 0;
  for (const Embedding& e : embeddings) {
    bool conflict = false;
    for (VertexId v : e) {
      if (used.count(v)) {
        conflict = true;
        break;
      }
    }
    if (conflict) continue;
    for (VertexId v : e) used.insert(v);
    ++count;
  }
  return count;
}

int64_t GreedyMisEdgeSupport(const Pattern& pattern,
                             const std::vector<Embedding>& embeddings) {
  auto pattern_edges = pattern.Edges();
  auto edge_key = [](VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | static_cast<uint32_t>(b);
  };
  std::unordered_set<uint64_t> used;
  int64_t count = 0;
  for (const Embedding& e : embeddings) {
    bool conflict = false;
    for (const auto& [pu, pv] : pattern_edges) {
      if (used.count(edge_key(e[pu], e[pv]))) {
        conflict = true;
        break;
      }
    }
    if (conflict) continue;
    for (const auto& [pu, pv] : pattern_edges) {
      used.insert(edge_key(e[pu], e[pv]));
    }
    ++count;
  }
  return count;
}

/// True when the sample whitelist admits \p t (no whitelist = all pass).
bool SampleAdmits(const SupportContext& context, int32_t t) {
  return context.txn_sample == nullptr ||
         std::binary_search(context.txn_sample->begin(),
                            context.txn_sample->end(), t);
}

int64_t TransactionSupport(const std::vector<Embedding>& embeddings,
                           const SupportContext& context) {
  if (context.txn_map != nullptr) {
    // Per-vertex payloads: an embedding covers t iff every image vertex
    // carries t — the intersection of the images' sorted id lists.
    std::unordered_set<int32_t> covered;
    std::vector<int32_t> common;
    std::vector<int32_t> next;
    for (const Embedding& e : embeddings) {
      if (e.empty()) continue;
      std::span<const int32_t> first = context.txn_map->TxnsOf(e[0]);
      common.assign(first.begin(), first.end());
      for (size_t i = 1; i < e.size() && !common.empty(); ++i) {
        std::span<const int32_t> other = context.txn_map->TxnsOf(e[i]);
        next.clear();
        std::set_intersection(common.begin(), common.end(), other.begin(),
                              other.end(), std::back_inserter(next));
        common.swap(next);
      }
      for (int32_t t : common) {
        if (SampleAdmits(context, t)) covered.insert(t);
      }
    }
    return static_cast<int64_t>(covered.size());
  }
  if (context.txn_of_vertex == nullptr) return 0;
  std::unordered_set<int32_t> txns;
  for (const Embedding& e : embeddings) {
    if (e.empty()) continue;
    const int32_t t = (*context.txn_of_vertex)[e[0]];
    if (SampleAdmits(context, t)) txns.insert(t);
  }
  return static_cast<int64_t>(txns.size());
}

}  // namespace

int64_t ComputeSupport(SupportMeasureKind kind, const Pattern& pattern,
                       const std::vector<Embedding>& embeddings,
                       const SupportContext& context) {
  switch (kind) {
    case SupportMeasureKind::kEmbeddingCount:
      return static_cast<int64_t>(embeddings.size());
    case SupportMeasureKind::kMinImage:
      return MinImageSupport(pattern, embeddings);
    case SupportMeasureKind::kGreedyMisVertex:
      return GreedyMisVertexSupport(embeddings);
    case SupportMeasureKind::kGreedyMisEdge:
      // A pattern with no edges has no edge conflicts; fall back to the
      // vertex measure so single-vertex patterns keep sensible support.
      if (pattern.NumEdges() == 0) return GreedyMisVertexSupport(embeddings);
      return GreedyMisEdgeSupport(pattern, embeddings);
    case SupportMeasureKind::kTransaction:
      return TransactionSupport(embeddings, context);
    case SupportMeasureKind::kHomomorphism:
      // Minimum-image count over whatever list the caller passes: the
      // homomorphism support on a complete homomorphic E[P], and the
      // anti-monotone growth-time bound on an injective occurrence list.
      return MinImageSupport(pattern, embeddings);
  }
  return 0;
}

void DedupEmbeddingsByImage(std::vector<Embedding>* embeddings) {
  std::unordered_set<uint64_t> seen;
  std::vector<Embedding> kept;
  kept.reserve(embeddings->size());
  std::vector<std::vector<VertexId>> images;
  for (Embedding& e : *embeddings) {
    uint64_t fp = ImageFingerprint(e);
    if (!seen.insert(fp).second) {
      // Possible fingerprint collision: confirm by comparing sorted images
      // against kept embeddings with the same fingerprint (rare path).
      bool duplicate = false;
      std::vector<VertexId> image = SortedImage(e);
      for (const Embedding& k : kept) {
        if (ImageFingerprint(k) == fp && SortedImage(k) == image) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
    }
    kept.push_back(std::move(e));
  }
  *embeddings = std::move(kept);
}

}  // namespace spidermine
