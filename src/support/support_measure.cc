#include "support/support_measure.h"

#include <algorithm>
#include <unordered_set>

namespace spidermine {

std::string_view SupportMeasureName(SupportMeasureKind kind) {
  switch (kind) {
    case SupportMeasureKind::kEmbeddingCount:
      return "embedding-count";
    case SupportMeasureKind::kMinImage:
      return "min-image";
    case SupportMeasureKind::kGreedyMisVertex:
      return "greedy-mis-vertex";
    case SupportMeasureKind::kGreedyMisEdge:
      return "greedy-mis-edge";
    case SupportMeasureKind::kTransaction:
      return "transaction";
  }
  return "?";
}

namespace {

int64_t MinImageSupport(const Pattern& pattern,
                        const std::vector<Embedding>& embeddings) {
  if (embeddings.empty()) return 0;
  int64_t min_images = INT64_MAX;
  std::unordered_set<VertexId> images;
  for (VertexId pv = 0; pv < pattern.NumVertices(); ++pv) {
    images.clear();
    for (const Embedding& e : embeddings) images.insert(e[pv]);
    min_images = std::min(min_images, static_cast<int64_t>(images.size()));
  }
  return min_images;
}

int64_t GreedyMisVertexSupport(const std::vector<Embedding>& embeddings) {
  std::unordered_set<VertexId> used;
  int64_t count = 0;
  for (const Embedding& e : embeddings) {
    bool conflict = false;
    for (VertexId v : e) {
      if (used.count(v)) {
        conflict = true;
        break;
      }
    }
    if (conflict) continue;
    for (VertexId v : e) used.insert(v);
    ++count;
  }
  return count;
}

int64_t GreedyMisEdgeSupport(const Pattern& pattern,
                             const std::vector<Embedding>& embeddings) {
  auto pattern_edges = pattern.Edges();
  auto edge_key = [](VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | static_cast<uint32_t>(b);
  };
  std::unordered_set<uint64_t> used;
  int64_t count = 0;
  for (const Embedding& e : embeddings) {
    bool conflict = false;
    for (const auto& [pu, pv] : pattern_edges) {
      if (used.count(edge_key(e[pu], e[pv]))) {
        conflict = true;
        break;
      }
    }
    if (conflict) continue;
    for (const auto& [pu, pv] : pattern_edges) {
      used.insert(edge_key(e[pu], e[pv]));
    }
    ++count;
  }
  return count;
}

int64_t TransactionSupport(const std::vector<Embedding>& embeddings,
                           const SupportContext& context) {
  if (context.txn_of_vertex == nullptr) return 0;
  std::unordered_set<int32_t> txns;
  for (const Embedding& e : embeddings) {
    if (!e.empty()) txns.insert((*context.txn_of_vertex)[e[0]]);
  }
  return static_cast<int64_t>(txns.size());
}

}  // namespace

int64_t ComputeSupport(SupportMeasureKind kind, const Pattern& pattern,
                       const std::vector<Embedding>& embeddings,
                       const SupportContext& context) {
  switch (kind) {
    case SupportMeasureKind::kEmbeddingCount:
      return static_cast<int64_t>(embeddings.size());
    case SupportMeasureKind::kMinImage:
      return MinImageSupport(pattern, embeddings);
    case SupportMeasureKind::kGreedyMisVertex:
      return GreedyMisVertexSupport(embeddings);
    case SupportMeasureKind::kGreedyMisEdge:
      // A pattern with no edges has no edge conflicts; fall back to the
      // vertex measure so single-vertex patterns keep sensible support.
      if (pattern.NumEdges() == 0) return GreedyMisVertexSupport(embeddings);
      return GreedyMisEdgeSupport(pattern, embeddings);
    case SupportMeasureKind::kTransaction:
      return TransactionSupport(embeddings, context);
  }
  return 0;
}

void DedupEmbeddingsByImage(std::vector<Embedding>* embeddings) {
  std::unordered_set<uint64_t> seen;
  std::vector<Embedding> kept;
  kept.reserve(embeddings->size());
  std::vector<std::vector<VertexId>> images;
  for (Embedding& e : *embeddings) {
    uint64_t fp = ImageFingerprint(e);
    if (!seen.insert(fp).second) {
      // Possible fingerprint collision: confirm by comparing sorted images
      // against kept embeddings with the same fingerprint (rare path).
      bool duplicate = false;
      std::vector<VertexId> image = SortedImage(e);
      for (const Embedding& k : kept) {
        if (ImageFingerprint(k) == fp && SortedImage(k) == image) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
    }
    kept.push_back(std::move(e));
  }
  *embeddings = std::move(kept);
}

}  // namespace spidermine
