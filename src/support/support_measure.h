#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "pattern/embedding.h"
#include "pattern/pattern.h"

/// \file support_measure.h
/// Pattern support in the single-graph setting. Overlapping embeddings make
/// raw embedding counts non-anti-monotone, which is the core complication
/// the paper highlights (Sec. 1/2). SpiderMine adopts the overlap-aware
/// support of Fiedler & Borgelt [9]; the tractable realization used here is
/// a greedy maximum-independent-set over the embedding conflict graph
/// (vertex- or edge-sharing conflicts), alongside the minimum-image (MNI)
/// measure and plain counts. Exact harmful-overlap support is NP-hard; the
/// substitution is documented in DESIGN.md §4.

namespace spidermine {

/// Available support definitions.
enum class SupportMeasureKind {
  /// |E[P]|: raw embedding count. Not anti-monotone; diagnostics only.
  kEmbeddingCount,
  /// Minimum over pattern vertices of the number of distinct image
  /// vertices (MNI). Anti-monotone.
  kMinImage,
  /// Greedy max independent set of embeddings, conflict = shared vertex
  /// (vertex-disjoint support in the spirit of GREW [20]). Default.
  kGreedyMisVertex,
  /// Greedy MIS, conflict = shared edge (edge-disjoint support in the
  /// spirit of Vanetik et al. [31] / harmful overlap [9]).
  kGreedyMisEdge,
  /// Number of distinct transaction ids covered (graph-transaction
  /// setting; requires SupportContext::txn_of_vertex or
  /// SupportContext::txn_map).
  kTransaction,
  /// Minimum-image count over HOMOMORPHIC embeddings (label-preserving
  /// maps that need not be injective), after Dries & Nijssen. Computed
  /// exactly like kMinImage — the measure's value on a homomorphic E[P] is
  /// the homomorphism support; on an injective occurrence list (what
  /// growth carries) it is the anti-monotone growth-time bound. The
  /// session's closure phase recounts over the complete homomorphic list
  /// (carried hom-mode embedding list or VF2 homomorphism fallback).
  kHomomorphism,
};

/// Per-vertex transaction payloads (Lei et al.: a transaction database
/// attached to the network's vertices), CSR-packed: vertex v carries the
/// transaction ids txn_ids[offsets[v] .. offsets[v+1]), sorted ascending.
/// An embedding covers transaction t iff EVERY image vertex carries t.
struct VertexTxnMap {
  /// num_vertices + 1 non-decreasing offsets into txn_ids.
  std::vector<int64_t> offsets;
  /// Sorted transaction ids per vertex (duplicates within a vertex are
  /// not allowed).
  std::vector<int32_t> txn_ids;
  /// Number of distinct transactions (= max id + 1).
  int32_t num_transactions = 0;

  int64_t NumVertices() const {
    return offsets.empty() ? 0 : static_cast<int64_t>(offsets.size()) - 1;
  }
  /// Sorted transaction ids carried by vertex \p v.
  std::span<const int32_t> TxnsOf(VertexId v) const {
    return std::span<const int32_t>(txn_ids).subspan(
        static_cast<size_t>(offsets[v]),
        static_cast<size_t>(offsets[v + 1] - offsets[v]));
  }
};

/// Extra inputs some measures need.
struct SupportContext {
  /// For kTransaction: transaction id of every graph vertex of the
  /// disjoint-union graph (see spidermine/txn_adapter.h). An embedding
  /// covers the transaction of its first image vertex (connected patterns
  /// never straddle transactions in the disjoint union).
  const std::vector<int32_t>* txn_of_vertex = nullptr;
  /// For kTransaction with per-vertex payloads: takes precedence over
  /// txn_of_vertex. An embedding covers a transaction iff every image
  /// vertex carries it.
  const VertexTxnMap* txn_map = nullptr;
  /// Optional sorted whitelist of transaction ids (the sampling-based
  /// top-K mode): transactions outside it are ignored by kTransaction.
  /// nullptr = count all transactions.
  const std::vector<int32_t>* txn_sample = nullptr;
};

/// Human-readable measure name (for bench output).
std::string_view SupportMeasureName(SupportMeasureKind kind);

/// Computes the support of a pattern given its embedding list.
///
/// \p pattern supplies the edge structure needed by kGreedyMisEdge; other
/// measures only read \p embeddings.
int64_t ComputeSupport(SupportMeasureKind kind, const Pattern& pattern,
                       const std::vector<Embedding>& embeddings,
                       const SupportContext& context = {});

/// Removes duplicate embeddings that map to the identical image vertex-set
/// (automorphic re-discoveries), keeping first occurrences in order.
void DedupEmbeddingsByImage(std::vector<Embedding>* embeddings);

}  // namespace spidermine
