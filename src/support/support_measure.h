#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "pattern/embedding.h"
#include "pattern/pattern.h"

/// \file support_measure.h
/// Pattern support in the single-graph setting. Overlapping embeddings make
/// raw embedding counts non-anti-monotone, which is the core complication
/// the paper highlights (Sec. 1/2). SpiderMine adopts the overlap-aware
/// support of Fiedler & Borgelt [9]; the tractable realization used here is
/// a greedy maximum-independent-set over the embedding conflict graph
/// (vertex- or edge-sharing conflicts), alongside the minimum-image (MNI)
/// measure and plain counts. Exact harmful-overlap support is NP-hard; the
/// substitution is documented in DESIGN.md §4.

namespace spidermine {

/// Available support definitions.
enum class SupportMeasureKind {
  /// |E[P]|: raw embedding count. Not anti-monotone; diagnostics only.
  kEmbeddingCount,
  /// Minimum over pattern vertices of the number of distinct image
  /// vertices (MNI). Anti-monotone.
  kMinImage,
  /// Greedy max independent set of embeddings, conflict = shared vertex
  /// (vertex-disjoint support in the spirit of GREW [20]). Default.
  kGreedyMisVertex,
  /// Greedy MIS, conflict = shared edge (edge-disjoint support in the
  /// spirit of Vanetik et al. [31] / harmful overlap [9]).
  kGreedyMisEdge,
  /// Number of distinct transaction ids covered (graph-transaction
  /// setting; requires SupportContext::txn_of_vertex).
  kTransaction,
};

/// Extra inputs some measures need.
struct SupportContext {
  /// For kTransaction: transaction id of every graph vertex of the
  /// disjoint-union graph (see spidermine/txn_adapter.h).
  const std::vector<int32_t>* txn_of_vertex = nullptr;
};

/// Human-readable measure name (for bench output).
std::string_view SupportMeasureName(SupportMeasureKind kind);

/// Computes the support of a pattern given its embedding list.
///
/// \p pattern supplies the edge structure needed by kGreedyMisEdge; other
/// measures only read \p embeddings.
int64_t ComputeSupport(SupportMeasureKind kind, const Pattern& pattern,
                       const std::vector<Embedding>& embeddings,
                       const SupportContext& context = {});

/// Removes duplicate embeddings that map to the identical image vertex-set
/// (automorphic re-discoveries), keeping first occurrences in order.
void DedupEmbeddingsByImage(std::vector<Embedding>* embeddings);

}  // namespace spidermine
