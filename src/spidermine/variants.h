#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pattern/pattern.h"
#include "spidermine/miner.h"

/// \file variants.h
/// Result post-processing for presentation and analysis, modeled on how the
/// paper reads its own output:
///
/// * Maximality filtering -- the top-K list naturally contains patterns
///   nested inside larger ones; FilterMaximal keeps only patterns that are
///   not subgraphs of a larger returned pattern (the view SPIN/MARGIN [27,
///   30] produce, cited as the maximal-pattern alternative in Sec. 2).
/// * Variant grouping -- Figure 23 presents each discriminative pattern as
///   a solid "main pattern present in all embeddings" plus dotted "pattern
///   variants, extra edges each appearing in some embeddings". GroupVariants
///   reconstructs that view: results are clustered around a core pattern
///   with members that extend the core by at most a few edges.

namespace spidermine {

/// True iff \p sub is subgraph-isomorphic to \p super (label-aware).
bool IsSubPattern(const Pattern& sub, const Pattern& super);

/// Keeps only maximal patterns: a pattern is dropped iff it is a subgraph
/// of a kept pattern with at least as many edges. Order: input must be the
/// miner's size-sorted list; output preserves that order.
std::vector<MinedPattern> FilterMaximal(std::vector<MinedPattern> patterns);

/// One variant cluster: indices into the input pattern list.
struct VariantGroup {
  /// The core (Fig. 23's solid "main pattern"): contained in every member.
  size_t core_index = 0;
  /// Members extending the core (excluding the core itself), each by at
  /// most VariantOptions::max_extra_edges edges.
  std::vector<size_t> variant_indices;
  /// Total embeddings across the group (Fig. 23 reports this per cluster).
  int64_t total_embeddings = 0;
};

/// Knobs for GroupVariants.
struct VariantOptions {
  /// A pattern joins a core's group when it contains the core and has at
  /// most this many extra edges (Fig. 23's variants "only differ slightly").
  int32_t max_extra_edges = 2;
};

/// Greedily clusters \p patterns into variant groups. Every index appears
/// in exactly one group (singletons allowed). Cores are chosen to maximize
/// group size (ties: smaller index), so dominant collaboration structures
/// surface first, as in Figure 23.
std::vector<VariantGroup> GroupVariants(
    const std::vector<MinedPattern>& patterns,
    const VariantOptions& options = {});

/// Renders groups for CLI/example output: one line per group with core
/// size, variant count and total embeddings.
std::string VariantGroupsToString(const std::vector<MinedPattern>& patterns,
                                  const std::vector<VariantGroup>& groups);

}  // namespace spidermine
