#include "spidermine/growth.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <unordered_set>

#include "pattern/dfs_code.h"
#include "pattern/vf2.h"
#include "support/support_measure.h"

namespace spidermine {

namespace {

/// A star leaf as the growth engine keys it: the connecting edge's label
/// plus the leaf vertex label. For edge-unlabeled graphs the edge label is
/// always 0 and everything degenerates to plain vertex-label handling.
/// Identical to the SpiderStore leaf representation, so store spans are
/// consumed without materialization.
using LeafKey = SpiderLeafKey;

/// Sorted multiset difference a - b (b must be a sub-multiset of a for the
/// difference to capture "new leaves"; extra b elements are ignored).
std::vector<LeafKey> MultisetDifference(std::span<const LeafKey> a,
                                        std::span<const LeafKey> b) {
  std::vector<LeafKey> out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size()) {
    if (j < b.size() && a[i] == b[j]) {
      ++i;
      ++j;
    } else if (j < b.size() && b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
    }
  }
  return out;
}

/// True iff sorted multiset \p sub is contained in sorted multiset \p super.
bool MultisetContains(std::span<const LeafKey> super,
                      std::span<const LeafKey> sub) {
  size_t i = 0;
  size_t j = 0;
  while (j < sub.size()) {
    if (i >= super.size()) return false;
    if (super[i] == sub[j]) {
      ++i;
      ++j;
    } else if (super[i] < sub[j]) {
      ++i;
    } else {
      return false;
    }
  }
  return true;
}

/// (edge label, vertex label) keys of the pattern-neighbors of \p v, sorted
/// (the keys of N_P(v), the edges a spider must cover under the Maximal
/// Overlap condition).
std::vector<LeafKey> PatternNeighborKeys(const Pattern& p, VertexId v) {
  std::vector<LeafKey> keys;
  for (VertexId u : p.Neighbors(v)) {
    keys.emplace_back(p.EdgeLabel(v, u), p.Label(u));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

uint64_t MergeKey(int32_t spider_id, VertexId anchor) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(spider_id)) << 32) |
         static_cast<uint32_t>(anchor);
}

/// The SpiderSetCheck fold: moves \p embeddings into duplicate \p other up
/// to the per-pattern cap, then re-dedups by image. Callers recompute
/// other->support when they need it fresh (the coordinator batches that).
void FoldEmbeddings(GrowthPattern* other, std::vector<Embedding>&& embeddings,
                    int64_t max_embeddings) {
  for (Embedding& e : embeddings) {
    if (static_cast<int64_t>(other->embeddings.size()) >= max_embeddings) {
      break;
    }
    other->embeddings.push_back(std::move(e));
  }
  DedupEmbeddingsByImage(&other->embeddings);
}

/// Spider-set dedup (SpiderSetCheck) against an arbitrary pattern pool:
/// returns the pool index of an isomorphic existing pattern or -1. Counter
/// pointers let both worker lineages (local counters) and the coordinator
/// (shared MineStats) reuse the scan.
int64_t FindDuplicateIn(
    std::deque<GrowthPattern>& pool,
    const std::unordered_map<uint64_t, std::vector<int64_t>>& dedup,
    GrowthPattern& candidate, int64_t* iso_checks_skipped,
    int64_t* iso_checks_run) {
  auto it = dedup.find(candidate.spider_set.digest());
  if (it == dedup.end()) return -1;
  for (int64_t idx : it->second) {
    GrowthPattern& other = pool[static_cast<size_t>(idx)];
    if (!(other.spider_set == candidate.spider_set)) {
      ++*iso_checks_skipped;  // digest collision, filter rejected
      continue;
    }
    // Iso-hash prefilter: WL fingerprints are computed at most once per
    // pattern (cached) and a mismatch certifies non-isomorphism, so the
    // exponential-worst-case VF2 test runs only on true hash collisions.
    if (candidate.iso_hash == 0) {
      candidate.iso_hash = PatternIsoHash(candidate.pattern);
    }
    if (other.iso_hash == 0) other.iso_hash = PatternIsoHash(other.pattern);
    if (other.iso_hash != candidate.iso_hash) {
      ++*iso_checks_skipped;  // fingerprint mismatch, filter rejected
      continue;
    }
    ++*iso_checks_run;
    if (ArePatternsIsomorphic(other.pattern, candidate.pattern)) return idx;
  }
  return -1;
}

}  // namespace

/// Stat counters a worker accumulates privately; the coordinator folds them
/// into the shared MineStats in input order, so totals are identical at any
/// thread count.
struct GrowthEngine::LocalStats {
  int64_t extend_calls = 0;
  int64_t growth_steps = 0;
  int64_t iso_checks_skipped = 0;
  int64_t iso_checks_run = 0;
  int64_t nonclosed_dropped = 0;
  int64_t embedding_cap_hits = 0;
  int64_t pattern_cap_hits = 0;
  int64_t emb_extensions = 0;

  void FoldInto(MineStats* stats) const {
    stats->extend_calls += extend_calls;
    stats->growth_steps += growth_steps;
    stats->iso_checks_skipped += iso_checks_skipped;
    stats->iso_checks_run += iso_checks_run;
    stats->nonclosed_dropped += nonclosed_dropped;
    stats->embedding_cap_hits += embedding_cap_hits;
    stats->pattern_cap_hits += pattern_cap_hits;
    stats->emb_extensions += emb_extensions;
  }
};

/// The intra-round expansion state of ONE input pattern, owned entirely by
/// the worker expanding it. pool[0] is the input; later entries are the
/// extensions discovered this round. Registry values are LOCAL pool
/// indices; the coordinator rewrites them to global pattern ids.
struct GrowthEngine::Lineage {
  std::deque<GrowthPattern> pool;  // stable storage (deque: no realloc moves)
  std::vector<char> dead;
  std::deque<int64_t> queue;
  // spider-set digest -> pool indices (dedup buckets)
  std::unordered_map<uint64_t, std::vector<int64_t>> dedup;
  // (spider id, anchor) key -> local pool indices that used it
  std::unordered_map<uint64_t, std::vector<int64_t>> registry;
  LocalStats stats;
  bool any_growth = false;
  bool truncated = false;

  int64_t Admit(GrowthPattern gp) {
    int64_t idx = static_cast<int64_t>(pool.size());
    dedup[gp.spider_set.digest()].push_back(idx);
    pool.push_back(std::move(gp));
    dead.push_back(0);
    return idx;
  }
};

/// Coordinator-side round state: the union of all lineages after stable
/// cross-lineage dedup, plus the merge machinery (Algorithm 4 buffers).
struct GrowthEngine::RoundState {
  std::deque<GrowthPattern> pool;
  std::vector<char> dead;
  // spider-set digest -> pool indices (dedup buckets)
  std::unordered_map<uint64_t, std::vector<int64_t>> dedup;
  // pattern id -> pool index (for resolving merge-registry entries)
  std::unordered_map<int64_t, int64_t> id_to_pool;
  MergeRegistry registry;
  bool any_growth = false;
  bool truncated = false;

  int64_t Admit(GrowthPattern gp) {
    int64_t idx = static_cast<int64_t>(pool.size());
    dedup[gp.spider_set.digest()].push_back(idx);
    id_to_pool[gp.id] = idx;
    pool.push_back(std::move(gp));
    dead.push_back(0);
    return idx;
  }
};

GrowthEngine::GrowthEngine(const LabeledGraph* graph, const SpiderIndex* index,
                           const SessionConfig* session,
                           const QueryConfig* query, MineStats* stats,
                           const Deadline* deadline, ThreadPool* pool,
                           const CancellationToken* token)
    : graph_(graph),
      index_(index),
      session_(session),
      query_(query),
      stats_(stats),
      deadline_(deadline),
      pool_(pool),
      token_(token) {
  list_budget_ = query_->embedding_list_budget;
  if (list_budget_ > 0 && query_->max_embeddings_per_pattern > 0) {
    list_budget_ =
        std::min(list_budget_, query_->max_embeddings_per_pattern);
  }
  homomorphic_ =
      query_->support_measure == SupportMeasureKind::kHomomorphism;
}

bool GrowthEngine::Cancelled() const {
  if (token_ != nullptr && token_->IsCancelled()) return true;
  return deadline_ != nullptr && deadline_->Expired();
}

int64_t GrowthEngine::Support(const GrowthPattern& gp) const {
  SupportContext ctx;
  ctx.txn_of_vertex = session_->txn_of_vertex;
  ctx.txn_map = session_->txn_map;
  ctx.txn_sample = txn_sample_;
  return ComputeSupport(query_->support_measure, gp.pattern, gp.embeddings,
                        ctx);
}

GrowthPattern GrowthEngine::BuildSeed(int32_t spider_id,
                                      LocalStats* local) const {
  const SpiderStore& store = index_->store();
  GrowthPattern gp;
  gp.pattern = store.PatternOf(spider_id);

  const std::span<const LeafKey> leaves = store.leaves(spider_id);
  const auto groups = GroupLeafKeys(leaves);
  for (VertexId anchor : store.anchors(spider_id)) {
    if (static_cast<int64_t>(gp.embeddings.size()) >=
        query_->max_embeddings_per_pattern) {
      ++local->embedding_cap_hits;
      break;
    }
    if (groups.empty()) {
      gp.embeddings.push_back({anchor});
      continue;
    }
    // Availability lists per label group.
    std::vector<std::vector<VertexId>> avail(groups.size());
    for (VertexId x : graph_->Neighbors(anchor)) {
      const LeafKey key{graph_->EdgeLabel(anchor, x), graph_->Label(x)};
      for (size_t g = 0; g < groups.size(); ++g) {
        if (key == groups[g].first) avail[g].push_back(x);
      }
    }
    int64_t emitted_here = 0;
    std::vector<VertexId> chosen;
    EnumerateLeafCombinations(
        groups, avail, &chosen, 0, [&](const std::vector<VertexId>& leafs) {
          Embedding e;
          e.reserve(1 + leafs.size());
          e.push_back(anchor);
          for (VertexId x : leafs) e.push_back(x);
          gp.embeddings.push_back(std::move(e));
          ++emitted_here;
          return emitted_here < query_->max_seed_embeddings_per_anchor &&
                 static_cast<int64_t>(gp.embeddings.size()) <
                     query_->max_embeddings_per_pattern;
        });
  }
  DedupEmbeddingsByImage(&gp.embeddings);
  gp.support = Support(gp);
  if (list_budget_ > 0) {
    // Carried complete list: every arrangement over every store anchor.
    // Serial on purpose — BuildSeed runs inside pool workers, where a
    // nested ParallelForChunks could deadlock the pool.
    gp.full_list =
        BuildStarEmbeddingList(*graph_, store, spider_id, list_budget_,
                               /*pool=*/nullptr, /*token=*/nullptr,
                               /*grain=*/0, homomorphic_);
    ++local->emb_extensions;
  }
  // Boundary: the outermost layer (leaves), or the head for 0-leaf spiders.
  if (gp.pattern.NumVertices() == 1) {
    gp.boundary = {0};
  } else {
    for (VertexId v = 1; v < gp.pattern.NumVertices(); ++v) {
      gp.boundary.push_back(v);
    }
  }
  gp.spider_set = SpiderSetRepr::Compute(gp.pattern, session_->spider_radius);
  return gp;
}

GrowthPattern GrowthEngine::SeedFromSpider(int32_t spider_id) {
  LocalStats local;
  GrowthPattern gp = BuildSeed(spider_id, &local);
  local.FoldInto(stats_);
  gp.id = next_id_++;
  return gp;
}

std::vector<GrowthPattern> GrowthEngine::SeedPatterns(
    const std::vector<int32_t>& picks) {
  const int64_t n = static_cast<int64_t>(picks.size());
  std::vector<GrowthPattern> out(picks.size());
  std::vector<LocalStats> local(picks.size());
  auto build = [this, &picks, &out, &local](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      out[i] = BuildSeed(picks[i], &local[i]);
    }
  };
  if (pool_ != nullptr && n > 1) {
    // Grain 1: per-seed embedding enumeration is highly skewed (hub
    // anchors).
    pool_->ParallelForChunks(n, /*grain=*/1, build, token_);
  } else {
    build(0, n);
  }
  // Serial epilogue in input order: id assignment and stat folding match a
  // sequential SeedFromSpider loop exactly.
  for (int64_t i = 0; i < n; ++i) {
    local[i].FoldInto(stats_);
    out[i].id = next_id_++;
  }
  return out;
}

bool GrowthEngine::TryExtend(
    Lineage* ls, int64_t base_idx, VertexId v, int32_t spider_id,
    const std::vector<std::vector<VertexId>>& sorted_images,
    bool* support_preserved) const {
  ++ls->stats.extend_calls;
  const SpiderStore& store = index_->store();
  const GrowthPattern& base = ls->pool[base_idx];

  const std::vector<LeafKey> np_labels =
      PatternNeighborKeys(base.pattern, v);
  const std::span<const LeafKey> spider_leaves = store.leaves(spider_id);
  // Maximal Overlap (condition I): the spider must cover N_P(v).
  if (!MultisetContains(spider_leaves, np_labels)) return false;
  const std::vector<LeafKey> new_leaves =
      MultisetDifference(spider_leaves, np_labels);
  if (new_leaves.empty()) return false;

  GrowthPattern q;
  q.pattern = base.pattern;
  std::vector<VertexId> new_vertices;
  for (const LeafKey& leaf : new_leaves) {
    VertexId nv = q.pattern.AddVertex(leaf.second);
    q.pattern.AddEdge(v, nv, leaf.first);
    new_vertices.push_back(nv);
  }

  // Embedding extension (Algorithm 3): for each base embedding whose image
  // of v anchors the spider, assign the new leaves to distinct fresh
  // neighbors (Internal Integrity, condition II: never reuse an image
  // vertex, so no edge between existing vertices is introduced).
  const auto groups = GroupLeafKeys(new_leaves);
  std::vector<VertexId> anchors_used;
  bool cap_hit = false;
  for (size_t ei = 0; ei < base.embeddings.size(); ++ei) {
    if (cap_hit) break;
    const Embedding& e = base.embeddings[ei];
    VertexId gv = e[v];
    if (!store.IsAnchoredAt(spider_id, gv)) continue;
    const std::vector<VertexId>& image = sorted_images[ei];
    std::vector<std::vector<VertexId>> avail(groups.size());
    for (VertexId x : graph_->Neighbors(gv)) {
      if (std::binary_search(image.begin(), image.end(), x)) continue;
      const LeafKey key{graph_->EdgeLabel(gv, x), graph_->Label(x)};
      for (size_t g = 0; g < groups.size(); ++g) {
        if (key == groups[g].first) avail[g].push_back(x);
      }
    }
    bool emitted_for_anchor = false;
    std::vector<VertexId> chosen;
    EnumerateLeafCombinations(
        groups, avail, &chosen, 0, [&](const std::vector<VertexId>& leafs) {
          Embedding extended = e;
          for (VertexId x : leafs) extended.push_back(x);
          q.embeddings.push_back(std::move(extended));
          emitted_for_anchor = true;
          if (static_cast<int64_t>(q.embeddings.size()) >=
              query_->max_embeddings_per_pattern) {
            cap_hit = true;
            return false;
          }
          return true;
        });
    if (emitted_for_anchor) anchors_used.push_back(gv);
  }
  if (cap_hit) ++ls->stats.embedding_cap_hits;
  if (static_cast<int64_t>(q.embeddings.size()) < query_->min_support &&
      query_->support_measure != SupportMeasureKind::kTransaction) {
    return false;
  }
  DedupEmbeddingsByImage(&q.embeddings);
  q.support = Support(q);
  if (q.support < query_->min_support) return false;
  if (q.support == base.support) *support_preserved = true;

  ++ls->stats.growth_steps;
  // Incremental spider-set maintenance (paper Sec. 4.2.2: "update those
  // spiders whose heads are within distance r to the common boundary"):
  // only pre-existing vertices within distance r of the extension site v
  // have a changed r-ball; new leaves are computed fresh by Updated().
  {
    const std::vector<int32_t> dist =
        q.pattern.BfsDistances(v, session_->spider_radius);
    std::vector<VertexId> changed;
    for (VertexId x = 0; x < base.pattern.NumVertices(); ++x) {
      if (dist[x] >= 0) changed.push_back(x);
    }
    q.spider_set =
        base.spider_set.Updated(q.pattern, session_->spider_radius, changed);
  }

  int64_t dup = FindDuplicateIn(ls->pool, ls->dedup, q,
                                &ls->stats.iso_checks_skipped,
                                &ls->stats.iso_checks_run);
  if (dup >= 0) {
    // Redundant generation (SpiderSetCheck hit): fold the new embeddings
    // into the existing pattern instead of duplicating it. Support is
    // recomputed eagerly: the lineage may extend `other` later and its
    // closedness checks compare against the up-to-date value.
    GrowthPattern& other = ls->pool[dup];
    FoldEmbeddings(&other, std::move(q.embeddings),
                   query_->max_embeddings_per_pattern);
    other.support = Support(other);
    other.merged_ever |= base.merged_ever;
    return false;
  }

  if (list_budget_ > 0) {
    // Admitted: extend the carried complete list incrementally (serial —
    // worker context). An absent base list (defensive) degrades to
    // saturated, never to a wrong list.
    q.full_list =
        base.full_list == nullptr
            ? SaturatedEmbeddingList()
            : ExtendEmbeddingListAtVertex(*graph_, store, spider_id,
                                          *base.full_list, v, new_leaves,
                                          list_budget_, homomorphic_);
    ++ls->stats.emb_extensions;
  }

  q.boundary = base.boundary;
  q.cursor = base.cursor + 1;
  q.next_boundary = base.next_boundary;
  for (VertexId nv : new_vertices) q.next_boundary.push_back(nv);
  q.merged_ever = base.merged_ever;
  int64_t idx = ls->Admit(std::move(q));
  ls->queue.push_back(idx);
  ls->any_growth = true;

  // Register spider usage for merge detection (Algorithm 4's buffers).
  std::sort(anchors_used.begin(), anchors_used.end());
  anchors_used.erase(std::unique(anchors_used.begin(), anchors_used.end()),
                     anchors_used.end());
  for (VertexId a : anchors_used) {
    ls->registry[MergeKey(spider_id, a)].push_back(idx);
  }
  return true;
}

void GrowthEngine::ExpandLineage(GrowthPattern input, Lineage* ls,
                                 int64_t pattern_cap) const {
  int64_t seed_idx = ls->Admit(std::move(input));
  ls->queue.push_back(seed_idx);

  while (!ls->queue.empty()) {
    if (Cancelled()) {
      // Budget exhausted mid-round: stop extending; patterns discovered so
      // far are finalized as-is by the coordinator.
      ls->truncated = true;
      break;
    }
    int64_t idx = ls->queue.front();
    ls->queue.pop_front();
    if (ls->dead[idx]) continue;
    // NOTE: deque storage keeps references stable across Admit().
    GrowthPattern& cur = ls->pool[idx];
    if (cur.cursor >= cur.boundary.size()) continue;  // finished this round
    if (cur.exhausted) continue;
    const VertexId v = cur.boundary[cur.cursor];

    // ---- Candidate spiders at v (paper's Spider(v)): spiders anchored at
    // an image of v, with matching head label, covering N_P(v) and adding
    // at least one new leaf.
    std::vector<int32_t> candidates;
    {
      const LabelId label_v = cur.pattern.Label(v);
      const std::vector<LeafKey> np_labels =
          PatternNeighborKeys(cur.pattern, v);
      std::unordered_set<VertexId> images;
      for (const Embedding& e : cur.embeddings) images.insert(e[v]);
      std::unordered_set<int32_t> spider_ids;
      for (VertexId gv : images) {
        for (int32_t sid : index_->SpidersAt(gv)) spider_ids.insert(sid);
      }
      const SpiderStore& store = index_->store();
      for (int32_t sid : spider_ids) {
        if (query_->use_closed_spiders_only && !store.closed(sid)) continue;
        if (store.head_label(sid) != label_v) continue;
        const std::span<const LeafKey> leaves = store.leaves(sid);
        if (leaves.size() <= np_labels.size()) continue;
        if (!MultisetContains(leaves, np_labels)) continue;
        candidates.push_back(sid);
      }
      std::sort(candidates.begin(), candidates.end());
    }

    // Hoist per-embedding sorted images across all candidate spiders.
    std::vector<std::vector<VertexId>> sorted_images;
    if (!candidates.empty()) {
      sorted_images.reserve(cur.embeddings.size());
      for (const Embedding& e : cur.embeddings) {
        sorted_images.push_back(SortedImage(e));
      }
    }

    bool support_preserved = false;
    for (int32_t sid : candidates) {
      if (static_cast<int64_t>(ls->pool.size()) >= pattern_cap) {
        ls->truncated = true;
        ++ls->stats.pattern_cap_hits;
        break;
      }
      if (Cancelled()) {
        ls->truncated = true;
        break;
      }
      TryExtend(ls, idx, v, sid, sorted_images, &support_preserved);
    }

    GrowthPattern& cur2 = ls->pool[idx];  // re-take (paranoia; deque-stable)
    if (support_preserved) {
      // Non-closed: some extension kept every occurrence (Algorithm 2
      // line 22-23); drop the sub-pattern.
      ls->dead[idx] = 1;
      ++ls->stats.nonclosed_dropped;
      continue;
    }
    ++cur2.cursor;
    ls->queue.push_back(idx);
  }
}

void GrowthEngine::RunMerges(RoundState* rs, MergeRegistry* previous) {
  // ---- Bucket collection (serial): gather candidate pattern-id sets per
  // colliding (spider, anchor) key, current round first, then cross the
  // previous round (Buf_cur x Buf_pre), resolved to live pool entries.
  // Keys are visited in sorted order so the merge sequence is independent
  // of hash-map layout (and of how the registry was assembled).
  struct Bucket {
    uint64_t key = 0;
    std::vector<int64_t> live;  // pool indices, in pattern-id order
  };
  std::vector<uint64_t> keys;
  keys.reserve(rs->registry.size());
  for (const auto& [key, ids] : rs->registry) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  std::vector<Bucket> buckets;
  for (uint64_t key : keys) {
    std::vector<int64_t> all_ids = rs->registry[key];
    if (previous != nullptr) {
      auto it = previous->find(key);
      if (it != previous->end()) {
        all_ids.insert(all_ids.end(), it->second.begin(), it->second.end());
      }
    }
    std::sort(all_ids.begin(), all_ids.end());
    all_ids.erase(std::unique(all_ids.begin(), all_ids.end()), all_ids.end());
    if (all_ids.size() < 2) continue;
    Bucket bucket;
    bucket.key = key;
    for (int64_t id : all_ids) {
      auto it = rs->id_to_pool.find(id);
      if (it == rs->id_to_pool.end()) continue;
      if (rs->dead[it->second]) continue;
      bucket.live.push_back(it->second);
    }
    if (bucket.live.size() < 2) continue;
    buckets.push_back(std::move(bucket));
  }
  if (buckets.empty()) return;

  // ---- Pair flattening: the pairs a bucket examines are the first
  // max_merge_pairs_per_key (i, j) combinations of its live list in
  // lexicographic order — a deterministic prefix that can be enumerated up
  // front. Flattening them into one task list lets the parallel phase
  // schedule PAIRS, not buckets, so one hot anchor shared by many patterns
  // (the common case on hub vertices) no longer serializes the pass.
  struct PairTask {
    int64_t a = 0;  // pool indices of the examined pair
    int64_t b = 0;
  };
  std::vector<PairTask> tasks;
  for (const Bucket& bucket : buckets) {
    int32_t pairs_done = 0;
    for (size_t i = 0; i < bucket.live.size() && pairs_done <
         query_->max_merge_pairs_per_key; ++i) {
      for (size_t j = i + 1; j < bucket.live.size() && pairs_done <
           query_->max_merge_pairs_per_key; ++j) {
        ++pairs_done;
        tasks.push_back({bucket.live[i], bucket.live[j]});
      }
    }
  }
  if (tasks.empty()) return;

  // ---- Parallel phase: each examined pattern pair builds its union
  // candidates against the pre-merge pool SNAPSHOT (read-only — no Admit
  // happens until the fold below), writing into its own slot. Pair outputs
  // therefore depend only on the snapshot and the pair, never on
  // scheduling.
  struct UnionCandidate {
    Pattern pattern;
    SpiderSetRepr spider_set;
    std::vector<Embedding> embeddings;
    std::vector<VertexId> boundary;  // from the first instance
    // Parent-pattern vertex -> union-pattern vertex, from the founding
    // instance — the join columns for the carried-list merge
    // (JoinEmbeddingLists) at the serial fold.
    std::vector<VertexId> map_a;
    std::vector<VertexId> map_b;
    int64_t support = 0;
  };
  struct PairResult {
    std::vector<UnionCandidate> candidates;
    int64_t merge_attempts = 0;
    int64_t iso_checks_run = 0;
    bool cancelled = false;
  };
  std::vector<PairResult> results(tasks.size());
  auto build_pair = [this, rs](const PairTask& task, PairResult* out) {
    if (Cancelled()) {
      out->cancelled = true;
      return;
    }
    ++out->merge_attempts;
    const GrowthPattern& a = rs->pool[task.a];
    const GrowthPattern& b = rs->pool[task.b];
    // Collect overlapping embedding pairs.
    std::unordered_map<VertexId, std::vector<int32_t>> where;
    for (size_t ei = 0; ei < a.embeddings.size(); ++ei) {
      for (VertexId gv : a.embeddings[ei]) {
        where[gv].push_back(static_cast<int32_t>(ei));
      }
    }
    std::vector<std::pair<int32_t, int32_t>> overlaps;
    {
      std::unordered_set<int64_t> seen_pairs;
      for (size_t ej = 0; ej < b.embeddings.size(); ++ej) {
        for (VertexId gv : b.embeddings[ej]) {
          auto it = where.find(gv);
          if (it == where.end()) continue;
          for (int32_t ei : it->second) {
            int64_t pk = (static_cast<int64_t>(ei) << 32) |
                         static_cast<int64_t>(ej);
            if (seen_pairs.insert(pk).second) {
              overlaps.emplace_back(ei, static_cast<int32_t>(ej));
            }
          }
        }
        if (static_cast<int32_t>(overlaps.size()) >=
            query_->max_union_instances) {
          break;
        }
      }
    }
    if (overlaps.empty()) return;

    // Build union instances and group them by structure (within the
    // pair; cross-pair and cross-bucket dedup happens in the fold).
    std::vector<UnionCandidate> unions;
    for (const auto& [ei, ej] : overlaps) {
      const Embedding& e1 = a.embeddings[ei];
      const Embedding& e2 = b.embeddings[ej];
      // Union vertex set, sorted for a deterministic mapping.
      std::vector<VertexId> verts = e1;
      verts.insert(verts.end(), e2.begin(), e2.end());
      std::sort(verts.begin(), verts.end());
      verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
      std::unordered_map<VertexId, VertexId> pos;
      Pattern up;
      for (size_t t = 0; t < verts.size(); ++t) {
        pos[verts[t]] = static_cast<VertexId>(t);
        up.AddVertex(graph_->Label(verts[t]));
      }
      for (const auto& [pu, pv] : a.pattern.Edges()) {
        up.AddEdge(pos[e1[pu]], pos[e1[pv]], a.pattern.EdgeLabel(pu, pv));
      }
      for (const auto& [pu, pv] : b.pattern.Edges()) {
        up.AddEdge(pos[e2[pu]], pos[e2[pv]], b.pattern.EdgeLabel(pu, pv));
      }
      Embedding ue(verts.begin(), verts.end());
      SpiderSetRepr repr =
          SpiderSetRepr::Compute(up, session_->spider_radius);
      // Find matching group (spider-set filter, then exact check).
      UnionCandidate* group = nullptr;
      for (UnionCandidate& g : unions) {
        if (!(g.spider_set == repr)) continue;
        ++out->iso_checks_run;
        if (ArePatternsIsomorphic(g.pattern, up)) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        UnionCandidate g;
        g.spider_set = repr;
        for (VertexId pu = 0; pu < a.pattern.NumVertices(); ++pu) {
          g.map_a.push_back(pos[e1[pu]]);
        }
        for (VertexId pv = 0; pv < b.pattern.NumVertices(); ++pv) {
          g.map_b.push_back(pos[e2[pv]]);
        }
        g.pattern = std::move(up);
        // Boundary: images of both parents' frontier vertices.
        auto add_boundary = [&](const GrowthPattern& parent,
                                const Embedding& pe) {
          for (VertexId pv : parent.boundary) {
            g.boundary.push_back(pos[pe[pv]]);
          }
          for (VertexId pv : parent.next_boundary) {
            g.boundary.push_back(pos[pe[pv]]);
          }
        };
        add_boundary(a, e1);
        add_boundary(b, e2);
        std::sort(g.boundary.begin(), g.boundary.end());
        g.boundary.erase(
            std::unique(g.boundary.begin(), g.boundary.end()),
            g.boundary.end());
        unions.push_back(std::move(g));
        group = &unions.back();
      }
      group->embeddings.push_back(std::move(ue));
    }

    for (UnionCandidate& g : unions) {
      DedupEmbeddingsByImage(&g.embeddings);
      SupportContext ctx;
      ctx.txn_of_vertex = session_->txn_of_vertex;
      ctx.txn_map = session_->txn_map;
      ctx.txn_sample = txn_sample_;
      g.support = ComputeSupport(query_->support_measure, g.pattern,
                                 g.embeddings, ctx);
      if (g.support < query_->min_support) continue;
      out->candidates.push_back(std::move(g));
    }
  };
  auto build_range = [&tasks, &results, &build_pair](int64_t begin,
                                                     int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      build_pair(tasks[static_cast<size_t>(i)],
                 &results[static_cast<size_t>(i)]);
    }
  };
  if (pool_ != nullptr && tasks.size() > 1) {
    // Grain 1: pair costs are skewed (embedding-list sizes vary widely).
    pool_->ParallelForChunks(static_cast<int64_t>(tasks.size()),
                             /*grain=*/1, build_range, token_);
  } else {
    build_range(0, static_cast<int64_t>(tasks.size()));
  }

  // ---- Serial fold in sorted (key, pair) order — the same order the old
  // per-bucket serial pass produced candidates in: assign ids, dedup
  // against the evolving pool (folding embeddings of duplicates) and
  // admit. Identical at any thread count because candidates and fold
  // order are.
  for (size_t i = 0; i < results.size(); ++i) {
    PairResult& result = results[i];
    stats_->merge_attempts += result.merge_attempts;
    stats_->iso_checks_run += result.iso_checks_run;
    if (result.cancelled) rs->truncated = true;
    for (UnionCandidate& c : result.candidates) {
      GrowthPattern merged;
      merged.pattern = std::move(c.pattern);
      merged.embeddings = std::move(c.embeddings);
      merged.support = c.support;
      merged.spider_set = c.spider_set;
      merged.next_boundary = std::move(c.boundary);
      merged.merged_ever = true;
      merged.id = next_id_++;
      int64_t dup = FindDuplicateIn(rs->pool, rs->dedup, merged,
                                    &stats_->iso_checks_skipped,
                                    &stats_->iso_checks_run);
      if (dup >= 0) {
        GrowthPattern& other = rs->pool[dup];
        other.merged_ever = true;  // it is now a merge product
        FoldEmbeddings(&other, std::move(merged.embeddings),
                       query_->max_embeddings_per_pattern);
        other.support = Support(other);
        continue;
      }
      if (list_budget_ > 0) {
        // Carried-list merge: join the parents' complete lists on the
        // founding instance's overlap columns. This fold runs on the
        // coordinator thread, so the pool is safe to use here (unlike the
        // worker-side seed/extend builders).
        const EmbeddingListRef& la = rs->pool[tasks[i].a].full_list;
        const EmbeddingListRef& lb = rs->pool[tasks[i].b].full_list;
        merged.full_list =
            (la == nullptr || lb == nullptr)
                ? SaturatedEmbeddingList()
                : JoinEmbeddingLists(*la, *lb, c.map_a, c.map_b,
                                     merged.pattern.NumVertices(),
                                     list_budget_, pool_, token_,
                                     /*grain=*/0, homomorphic_);
        ++stats_->emb_extensions;
      }
      rs->Admit(std::move(merged));
      ++stats_->merges;
      rs->any_growth = true;
    }
  }
  if (Cancelled()) rs->truncated = true;
}

GrowRoundResult GrowthEngine::GrowRound(std::vector<GrowthPattern> input,
                                        bool enable_merging,
                                        MergeRegistry* previous) {
  const int64_t n = static_cast<int64_t>(input.size());
  for (GrowthPattern& gp : input) {
    gp.cursor = 0;
    gp.next_boundary.clear();
  }

  // ---- Parallel phase: expand each input's lineage into its own slot.
  // A lineage's output depends only on its input and the shared read-only
  // graph/index/config, never on scheduling.
  std::vector<Lineage> lineages(static_cast<size_t>(n));
  // Split the round's pattern budget across lineages. The floor lets a
  // crowded round still grow each lineage a little, which means the
  // transient worst case is floor * n patterns rather than exactly
  // max_patterns_per_round (the coordinator's pass 2 re-imposes the
  // global budget on what survives). The split depends only on the input
  // count, so it is identical at any thread count.
  constexpr int64_t kLineageCapFloor = 16;
  const int64_t lineage_cap = std::max<int64_t>(
      std::min<int64_t>(query_->max_patterns_per_round, kLineageCapFloor),
      n > 0 ? query_->max_patterns_per_round / n
            : query_->max_patterns_per_round);
  auto expand = [this, &input, &lineages, lineage_cap](int64_t begin,
                                                       int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      ExpandLineage(std::move(input[static_cast<size_t>(i)]),
                    &lineages[static_cast<size_t>(i)], lineage_cap);
    }
  };
  if (pool_ != nullptr && n > 1) {
    // Grain 1: lineage costs are heavily skewed.
    pool_->ParallelForChunks(n, /*grain=*/1, expand, token_);
  } else {
    expand(0, n);
  }
  // Cancellation may skip whole lineages; re-admit their untouched inputs
  // so no in-flight pattern is lost mid-budget.
  for (int64_t i = 0; i < n; ++i) {
    Lineage& ls = lineages[static_cast<size_t>(i)];
    if (ls.pool.empty()) {
      ls.Admit(std::move(input[static_cast<size_t>(i)]));
      ls.truncated = true;
    }
  }

  // ---- Serial coordinator: everything below runs in input order and is
  // therefore identical at any thread count.
  RoundState rs;
  for (int64_t i = 0; i < n; ++i) {
    Lineage& ls = lineages[static_cast<size_t>(i)];
    ls.stats.FoldInto(stats_);
    rs.any_growth |= ls.any_growth;
    rs.truncated |= ls.truncated;
  }

  // Pass 1: admit every lineage's input (pool[0]) unconditionally, as the
  // serial algorithm admits all round inputs before extending.
  std::vector<std::vector<int64_t>> global_of(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Lineage& ls = lineages[static_cast<size_t>(i)];
    global_of[static_cast<size_t>(i)].assign(ls.pool.size(), -1);
    char input_dead = ls.dead[0];
    int64_t idx = rs.Admit(std::move(ls.pool[0]));
    rs.dead[idx] = input_dead;
    global_of[static_cast<size_t>(i)][0] = idx;
  }

  // Pass 2: fold lineage extensions across lineages. A child duplicating an
  // already-admitted pattern contributes its embeddings to it (the serial
  // SpiderSetCheck semantics); otherwise it is admitted with a fresh id.
  // Fold targets get their support recomputed once, after all folds.
  std::vector<int64_t> support_dirty;
  for (int64_t i = 0; i < n; ++i) {
    Lineage& ls = lineages[static_cast<size_t>(i)];
    for (size_t c = 1; c < ls.pool.size(); ++c) {
      GrowthPattern child = std::move(ls.pool[c]);
      int64_t dup = FindDuplicateIn(rs.pool, rs.dedup, child,
                                    &stats_->iso_checks_skipped,
                                    &stats_->iso_checks_run);
      if (dup >= 0) {
        GrowthPattern& other = rs.pool[dup];
        FoldEmbeddings(&other, std::move(child.embeddings),
                       query_->max_embeddings_per_pattern);
        support_dirty.push_back(dup);
        other.merged_ever |= child.merged_ever;
        // A non-closed verdict from any lineage applies to the shared
        // pattern (Algorithm 2's closedness drop must survive the fold).
        rs.dead[dup] = rs.dead[dup] || ls.dead[c];
        global_of[static_cast<size_t>(i)][c] = dup;
        continue;
      }
      if (static_cast<int64_t>(rs.pool.size()) >=
          query_->max_patterns_per_round) {
        // Global budget exhausted: this lineage's remaining children are
        // (transitive) extensions of what was just dropped, so skip them
        // wholesale; one cap hit per lineage keeps the counter readable.
        rs.truncated = true;
        ++stats_->pattern_cap_hits;
        break;
      }
      child.id = next_id_++;
      int64_t idx = rs.Admit(std::move(child));
      rs.dead[idx] = ls.dead[c];
      global_of[static_cast<size_t>(i)][c] = idx;
    }
  }
  // Recompute each fold target's support once, over its final embedding
  // list (the value depends only on that list, so batching changes cost,
  // not results). Must precede RunMerges/output, which read supports.
  std::sort(support_dirty.begin(), support_dirty.end());
  support_dirty.erase(std::unique(support_dirty.begin(), support_dirty.end()),
                      support_dirty.end());
  for (int64_t idx : support_dirty) {
    rs.pool[idx].support = Support(rs.pool[idx]);
  }

  // Registry remap: lineage-local pool indices -> global pattern ids, keys
  // visited in sorted order so the global registry content is stable.
  for (int64_t i = 0; i < n; ++i) {
    Lineage& ls = lineages[static_cast<size_t>(i)];
    std::vector<uint64_t> keys;
    keys.reserve(ls.registry.size());
    for (const auto& [key, idxs] : ls.registry) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    for (uint64_t key : keys) {
      for (int64_t lidx : ls.registry[key]) {
        int64_t g = global_of[static_cast<size_t>(i)][lidx];
        if (g < 0) continue;
        rs.registry[key].push_back(rs.pool[g].id);
      }
    }
  }

  if (enable_merging) RunMerges(&rs, previous);

  GrowRoundResult out;
  out.any_growth = rs.any_growth;
  out.truncated = rs.truncated;
  for (size_t idx = 0; idx < rs.pool.size(); ++idx) {
    if (rs.dead[idx]) continue;
    GrowthPattern gp = std::move(rs.pool[idx]);
    std::sort(gp.next_boundary.begin(), gp.next_boundary.end());
    gp.next_boundary.erase(
        std::unique(gp.next_boundary.begin(), gp.next_boundary.end()),
        gp.next_boundary.end());
    gp.boundary = std::move(gp.next_boundary);
    gp.next_boundary = {};
    gp.cursor = 0;
    gp.exhausted = gp.boundary.empty();
    out.patterns.push_back(std::move(gp));
  }
  if (previous != nullptr) *previous = std::move(rs.registry);
  return out;
}

}  // namespace spidermine
