#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "spidermine/config.h"
#include "spidermine/miner.h"
#include "support/support_measure.h"

/// \file txn_adapter.h
/// Graph-transaction setting adapter (paper Sec. 2: "SpiderMine ... can be
/// adapted to graph-transaction setting with no difficulty"). The database
/// is embedded as the disjoint union of its graphs; connected patterns can
/// never straddle two transactions, and support is counted as the number of
/// distinct transactions hit (SupportMeasureKind::kTransaction).
///
/// Beyond the disjoint-union embedding, per-vertex transaction PAYLOADS
/// (Lei et al., "Mining Top-k Sequential Patterns in Database Graphs")
/// attach a transaction id set to every vertex of a single network:
/// LoadVertexTxnMap reads them from disk into the CSR VertexTxnMap that
/// SessionConfig::txn_map serves queries from.

namespace spidermine {

/// A transaction database folded into one graph.
struct TransactionGraph {
  LabeledGraph graph;
  /// Transaction id of every union-graph vertex.
  std::vector<int32_t> txn_of_vertex;
  /// Number of transactions.
  int32_t num_transactions = 0;
};

/// Builds the disjoint union of \p database.
Result<TransactionGraph> BuildTransactionGraph(
    const std::vector<LabeledGraph>& database);

/// Runs SpiderMine over a transaction database: \p config is adjusted to
/// transaction support automatically (min_support counts transactions).
/// Conflicting configs are rejected instead of silently overwritten: the
/// caller's support_measure must be kTransaction or the struct default
/// (kGreedyMisVertex, which the adapter upgrades), and a caller-set
/// txn_of_vertex must be \p txn's own vector.
Result<MineResult> MineTransactions(const TransactionGraph& txn,
                                    MineConfig config);

/// Loads per-vertex transaction payloads from a `--txn-map` file: plain
/// text, one `<vertex> <txn_id>` incidence per line, `#` starts a comment,
/// blank lines ignored. Vertices must lie in [0, \p num_vertices) and ids
/// must be >= 0; duplicate incidences collapse. num_transactions becomes
/// max id + 1 (0 for an empty file).
Result<VertexTxnMap> LoadVertexTxnMap(const std::string& path,
                                      int64_t num_vertices);

}  // namespace spidermine
