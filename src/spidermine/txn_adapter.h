#pragma once

#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "spidermine/config.h"
#include "spidermine/miner.h"

/// \file txn_adapter.h
/// Graph-transaction setting adapter (paper Sec. 2: "SpiderMine ... can be
/// adapted to graph-transaction setting with no difficulty"). The database
/// is embedded as the disjoint union of its graphs; connected patterns can
/// never straddle two transactions, and support is counted as the number of
/// distinct transactions hit (SupportMeasureKind::kTransaction).

namespace spidermine {

/// A transaction database folded into one graph.
struct TransactionGraph {
  LabeledGraph graph;
  /// Transaction id of every union-graph vertex.
  std::vector<int32_t> txn_of_vertex;
  /// Number of transactions.
  int32_t num_transactions = 0;
};

/// Builds the disjoint union of \p database.
Result<TransactionGraph> BuildTransactionGraph(
    const std::vector<LabeledGraph>& database);

/// Runs SpiderMine over a transaction database: \p config is adjusted to
/// transaction support automatically (min_support counts transactions).
Result<MineResult> MineTransactions(const TransactionGraph& txn,
                                    MineConfig config);

}  // namespace spidermine
