#include "spidermine/closed_filter.h"

#include <algorithm>

#include "pattern/vf2.h"

namespace spidermine {

bool IsSubPatternOf(const Pattern& sub, const Pattern& super) {
  if (sub.NumVertices() > super.NumVertices()) return false;
  if (sub.NumEdges() > super.NumEdges()) return false;
  if (sub.NumVertices() == 0) return true;
  return ContainsEmbedding(sub, PatternToLabeledGraph(super));
}

namespace {

/// Shared scaffold: drop patterns[i] when some patterns[j] is a strict
/// super-pattern and `subsumes(i, j)` confirms the filter-specific
/// condition.
template <typename Subsumes>
std::vector<MinedPattern> Filter(std::vector<MinedPattern> patterns,
                                 Subsumes subsumes) {
  std::vector<bool> dropped(patterns.size(), false);
  for (size_t i = 0; i < patterns.size(); ++i) {
    for (size_t j = 0; j < patterns.size() && !dropped[i]; ++j) {
      if (i == j || dropped[j]) continue;
      const MinedPattern& small = patterns[i];
      const MinedPattern& big = patterns[j];
      if (big.NumEdges() <= small.NumEdges() &&
          big.NumVertices() <= small.NumVertices()) {
        continue;  // not strictly larger
      }
      if (!subsumes(small, big)) continue;
      if (IsSubPatternOf(small.pattern, big.pattern)) dropped[i] = true;
    }
  }
  std::vector<MinedPattern> kept;
  kept.reserve(patterns.size());
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (!dropped[i]) kept.push_back(std::move(patterns[i]));
  }
  return kept;
}

}  // namespace

std::vector<MinedPattern> FilterToClosed(std::vector<MinedPattern> patterns) {
  return Filter(std::move(patterns),
                [](const MinedPattern& small, const MinedPattern& big) {
                  return big.support >= small.support;
                });
}

std::vector<MinedPattern> FilterToMaximal(std::vector<MinedPattern> patterns) {
  return Filter(std::move(patterns),
                [](const MinedPattern&, const MinedPattern&) { return true; });
}

}  // namespace spidermine
