#include "spidermine/config.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

namespace spidermine {

Status SessionConfig::Validate() const {
  if (min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (spider_radius != 1) {
    return Status::InvalidArgument(
        "the growth engine implements spider_radius = 1 (the paper's own "
        "implementation choice); use MineBallSpiders for larger radii");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (stage1_shard_grain < 0) {
    return Status::InvalidArgument(
        "stage1_shard_grain must be >= 0 (0 = automatic)");
  }
  return Status::Ok();
}

Status QueryConfig::Validate() const {
  if (min_support < 0) {
    return Status::InvalidArgument(
        "query min_support must be >= 0 (0 = the session's mined floor)");
  }
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (dmax < 1) return Status::InvalidArgument("dmax must be >= 1");
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (embedding_list_budget < 0) {
    return Status::InvalidArgument(
        "embedding_list_budget must be >= 0 (0 = VF2-only closure)");
  }
  if (txn_sample < 0) {
    return Status::InvalidArgument(
        "txn_sample must be >= 0 (0 = count all transactions)");
  }
  if (txn_sample > 0 &&
      support_measure != SupportMeasureKind::kTransaction) {
    return Status::InvalidArgument(
        "txn_sample requires the transaction support measure");
  }
  return Status::Ok();
}

namespace {

/// FNV-1a over the bytes of one value. Doubles hash by bit pattern (the
/// protocol parses them deterministically, so equal requests carry equal
/// bits); bools widen to a byte; enums to their underlying integer.
struct Fnv1a {
  uint64_t state = 0xcbf29ce484222325ULL;  // FNV offset basis

  void Bytes(const void* data, size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      state ^= p[i];
      state *= 0x100000001b3ULL;  // FNV prime
    }
  }
  template <typename T>
  void Field(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Bytes(&value, sizeof(value));
  }
};

}  // namespace

uint64_t QueryConfig::CanonicalHash(int64_t session_min_support,
                                    int64_t graph_vertices) const {
  // Normalize every defaulted field exactly the way RunQuery resolves it,
  // so {"support":0} and {"support":<floor>} are the same cache line.
  const int64_t support =
      min_support == 0 ? session_min_support : min_support;
  int64_t effective_vmin =
      vmin > 0 ? vmin : std::max<int64_t>(1, graph_vertices / 10);
  effective_vmin = std::min(effective_vmin, graph_vertices);
  const int64_t window =
      closure_window > 0 ? closure_window : std::max<int64_t>(64, 8LL * k);
  const int32_t effective_restarts = restarts == 0 ? 0 : std::max(1, restarts);

  Fnv1a h;
  h.Field(support);
  h.Field(k);
  h.Field(epsilon);
  h.Field(dmax);
  h.Field(effective_vmin);
  h.Field(static_cast<int32_t>(support_measure));
  h.Field(txn_sample);
  h.Field(rng_seed);
  h.Field(seed_count_override);
  h.Field(effective_restarts);
  h.Field(max_embeddings_per_pattern);
  // embedding_list_budget deliberately NOT hashed: results are
  // byte-identical at any budget (the engine's determinism contract), so
  // requests differing only there must share a cache line.
  h.Field(max_patterns_per_round);
  h.Field(max_seed_embeddings_per_anchor);
  h.Field(max_merge_pairs_per_key);
  h.Field(max_union_instances);
  h.Field(stage3_max_rounds);
  h.Field(max_results);
  h.Field(time_budget_seconds);
  h.Field(use_closed_spiders_only);
  h.Field(close_internal_edges);
  h.Field(window);
  h.Field(enforce_dmax_on_results);
  h.Field(keep_unmerged);
  return h.state;
}

SessionConfig MineConfig::SessionPart() const {
  SessionConfig session;
  session.min_support = min_support;
  session.spider_radius = spider_radius;
  session.max_star_leaves = max_star_leaves;
  session.max_spiders = max_spiders;
  session.num_threads = num_threads;
  session.pool = pool;
  session.stage1_shard_grain = stage1_shard_grain;
  session.stage1_time_budget_seconds = time_budget_seconds;
  session.txn_of_vertex = txn_of_vertex;
  session.txn_map = txn_map;
  return session;
}

QueryConfig MineConfig::QueryPart() const {
  QueryConfig query;
  query.min_support = 0;  // resolves to the session floor (= min_support)
  query.k = k;
  query.epsilon = epsilon;
  query.dmax = dmax;
  query.vmin = vmin;
  query.support_measure = support_measure;
  query.txn_sample = txn_sample;
  query.rng_seed = rng_seed;
  query.seed_count_override = seed_count_override;
  query.restarts = restarts;
  query.max_embeddings_per_pattern = max_embeddings_per_pattern;
  query.embedding_list_budget = embedding_list_budget;
  query.max_patterns_per_round = max_patterns_per_round;
  query.max_seed_embeddings_per_anchor = max_seed_embeddings_per_anchor;
  query.max_merge_pairs_per_key = max_merge_pairs_per_key;
  query.max_union_instances = max_union_instances;
  query.stage3_max_rounds = stage3_max_rounds;
  query.max_results = max_results;
  query.time_budget_seconds = time_budget_seconds;
  query.use_closed_spiders_only = use_closed_spiders_only;
  query.close_internal_edges = close_internal_edges;
  query.closure_window = closure_window;
  query.enforce_dmax_on_results = enforce_dmax_on_results;
  query.keep_unmerged = keep_unmerged;
  return query;
}

}  // namespace spidermine
