#include "spidermine/stage1_partition.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <string_view>
#include <utility>

#include "common/crc32.h"
#include "common/strings.h"
#include "graph/binary_format.h"
#include "spider/spider_index.h"
#include "spider/spider_store_mmap.h"
#include "spider/star_miner.h"

namespace spidermine {

namespace {

using binary_format::AppendI32;
using binary_format::AppendI64;
using binary_format::AppendU32;
using binary_format::AppendU64;

/// Fixed byte length of the `.sm2p` meta section (see WritePartialMeta).
constexpr uint64_t kSm2pMetaBytes = 88;
constexpr size_t kSm2pPreamble = 16;
constexpr size_t kSm2pTableEntryBytes = 32;
constexpr size_t kSm2pHeaderBytes =
    kSm2pPreamble + kSm2pSectionCount * kSm2pTableEntryBytes;

const char* kSm2pSectionName[kSm2pSectionCount] = {
    "meta",           "head_labels", "leaf_offsets",
    "leaf_pool",      "anchor_offsets", "anchor_pool"};

enum Sm2pSectionKind : uint32_t {
  kMeta = 0,
  kHeadLabels = 1,
  kLeafOffsets = 2,
  kLeafPool = 3,
  kAnchorOffsets = 4,
  kAnchorPool = 5,
};

void PadTo(std::string* out, size_t align) {
  while (out->size() % align != 0) out->push_back('\0');
}

template <typename T>
std::span<const uint8_t> AsBytes(std::span<const T> data) {
  return {reinterpret_cast<const uint8_t*>(data.data()), data.size_bytes()};
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian host (gated like .sm2)
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

template <typename T>
std::span<const T> SectionSpan(std::span<const uint8_t> file,
                               uint64_t offset, uint64_t length) {
  return {reinterpret_cast<const T*>(file.data() + offset),
          static_cast<size_t>(length / sizeof(T))};
}

Status CheckOffsets(std::span<const int64_t> offsets, int64_t expected_total,
                    const char* what) {
  if (offsets.empty() || offsets.front() != 0) {
    return Status::IoError(StrCat("sm2p ", what, " does not start at 0"));
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::IoError(
          StrCat("sm2p ", what, " not monotonic at entry ", i));
    }
  }
  if (offsets.back() != expected_total) {
    return Status::IoError(StrCat("sm2p ", what, " ends at ", offsets.back(),
                                  ", expected ", expected_total));
  }
  return Status::Ok();
}

std::string WritePartialMeta(const Stage1PartialMeta& meta, uint64_t n,
                             uint64_t total_leaves, uint64_t total_anchors) {
  std::string out;
  AppendI64(&out, meta.min_support);
  AppendI32(&out, meta.spider_radius);
  AppendI32(&out, meta.max_star_leaves);
  AppendI64(&out, meta.max_spiders);
  AppendI64(&out, meta.num_graph_vertices);
  AppendU64(&out, meta.graph_hash);
  AppendI32(&out, meta.partition_index);
  AppendI32(&out, meta.num_partitions);
  AppendI64(&out, meta.owned_begin);
  AppendI64(&out, meta.owned_end);
  AppendU64(&out, n);
  AppendU64(&out, total_leaves);
  AppendU64(&out, total_anchors);
  return out;
}

/// Canonical three-way star order: head label, then the leaf vector
/// lexicographically with prefixes first — the store order every miner
/// pass and the merge share.
int CompareStarKey(LabelId label_a, std::span<const SpiderLeafKey> a,
                   LabelId label_b, std::span<const SpiderLeafKey> b) {
  if (label_a != label_b) return label_a < label_b ? -1 : 1;
  const size_t common = std::min(a.size(), b.size());
  for (size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

}  // namespace

Result<Stage1PartialResult> MineStage1Partial(const GraphPartition& part,
                                              const Stage1PartialConfig& config,
                                              ThreadPool* pool) {
  if (part.radius < 1) {
    return Status::InvalidArgument(
        StrCat("partition halo radius ", part.radius,
               " cannot cover the spider radius 1"));
  }
  if (config.min_support < 1) {
    return Status::InvalidArgument(
        StrCat("min_support must be >= 1, got ", config.min_support));
  }
  if (config.max_star_leaves < 0 || config.max_spiders < 0) {
    return Status::InvalidArgument(
        "max_star_leaves and max_spiders must be >= 0");
  }

  // Local threshold 1: every star with an anchor anywhere in the halo'd
  // subgraph. Sigma and the global budget CANNOT be applied here — a star
  // below sigma locally may be frequent globally, and the budget is a
  // prefix of the global canonical order. Both are applied at merge.
  StarMinerConfig local;
  local.min_support = 1;
  local.max_leaves = config.max_star_leaves;
  local.max_spiders = 0;
  local.include_single_vertex = true;
  local.shard_grain = config.shard_grain;
  SM_ASSIGN_OR_RETURN(StarMineResult mined,
                      MineStarSpiders(part.graph, local, pool));
  if (mined.truncated) {
    return Status::Internal(
        "unbudgeted partial star mining reported truncation");
  }

  // Keep stars with >= 1 OWNED anchor; translate anchors to original ids.
  // Owned vertices are local ids [0, num_owned) and anchor lists are
  // ascending, so the owned anchors are a prefix, and local id i maps to
  // original id owned_begin + i (both ascending — order is preserved).
  const VertexId num_owned = static_cast<VertexId>(part.num_owned());
  Stage1PartialResult result;
  result.local_stars = mined.store.size();
  std::vector<VertexId> mapped;
  for (int32_t id = 0; id < mined.store.size(); ++id) {
    std::span<const VertexId> anchors = mined.store.anchors(id);
    const size_t owned_count = static_cast<size_t>(
        std::lower_bound(anchors.begin(), anchors.end(), num_owned) -
        anchors.begin());
    if (owned_count == 0) continue;
    mapped.clear();
    mapped.reserve(owned_count);
    for (size_t i = 0; i < owned_count; ++i) {
      mapped.push_back(
          static_cast<VertexId>(part.owned_begin + anchors[i]));
    }
    result.store.Append(mined.store.head_label(id), mined.store.leaves(id),
                        mapped);
  }
  return result;
}

std::string Stage1PartialToBytes(const SpiderStore& store,
                                 const Stage1PartialMeta& meta) {
  const uint64_t n = static_cast<uint64_t>(store.size());
  const std::string meta_bytes =
      WritePartialMeta(meta, n, static_cast<uint64_t>(store.TotalLeaves()),
                       static_cast<uint64_t>(store.TotalAnchors()));

  const std::span<const uint8_t> section_bytes[kSm2pSectionCount] = {
      {reinterpret_cast<const uint8_t*>(meta_bytes.data()),
       meta_bytes.size()},
      AsBytes(store.head_labels()),
      AsBytes(store.leaf_offsets()),
      AsBytes(store.leaf_pool()),
      AsBytes(store.anchor_offsets()),
      AsBytes(store.anchor_pool()),
  };

  uint64_t offsets[kSm2pSectionCount];
  uint64_t cursor = kSm2pHeaderBytes + 4;  // + header CRC
  for (uint32_t kind = 0; kind < kSm2pSectionCount; ++kind) {
    cursor = (cursor + kSm2SectionAlign - 1) / kSm2SectionAlign *
             kSm2SectionAlign;
    offsets[kind] = cursor;
    cursor += section_bytes[kind].size();
  }

  std::string out;
  out.reserve(static_cast<size_t>(cursor));
  out.append(kSm2pMagic, 4);
  AppendU32(&out, kSm2pFormatVersion);
  AppendU32(&out, kSm2pSectionCount);
  AppendU32(&out, 0);  // reserved
  for (uint32_t kind = 0; kind < kSm2pSectionCount; ++kind) {
    AppendU32(&out, kind);
    AppendU32(&out, 0);  // reserved
    AppendU64(&out, offsets[kind]);
    AppendU64(&out, section_bytes[kind].size());
    AppendU32(&out, Crc32(section_bytes[kind]));
    AppendU32(&out, 0);  // reserved
  }
  AppendU32(&out, Crc32(std::string_view(out.data(), kSm2pHeaderBytes)));
  for (uint32_t kind = 0; kind < kSm2pSectionCount; ++kind) {
    PadTo(&out, kSm2SectionAlign);
    out.append(reinterpret_cast<const char*>(section_bytes[kind].data()),
               section_bytes[kind].size());
  }
  return out;
}

Status SaveStage1Partial(const SpiderStore& store,
                         const Stage1PartialMeta& meta,
                         const std::string& path) {
  if (!Sm2HostSupported()) {
    return Status::IoError(
        "the .sm2p partial format is little-endian only, like .sm2");
  }
  return binary_format::WriteFile(path, Stage1PartialToBytes(store, meta));
}

Result<std::unique_ptr<MappedStage1Partial>> MappedStage1Partial::Open(
    const std::string& path) {
  if (!Sm2HostSupported()) {
    return Status::IoError(
        "the .sm2p partial format is little-endian only and cannot be "
        "mapped on this host");
  }
  SM_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  const std::span<const uint8_t> bytes = file.bytes();
  if (bytes.size() < kSm2pHeaderBytes + 4) {
    return Status::IoError(StrCat("sm2p file too short: ", bytes.size(),
                                  " bytes < ", kSm2pHeaderBytes + 4,
                                  "-byte header"));
  }
  if (std::memcmp(bytes.data(), kSm2pMagic, 4) != 0) {
    return Status::IoError("bad magic; expected SM2P");
  }
  const uint32_t version = LoadU32(bytes.data() + 4);
  if (version != kSm2pFormatVersion) {
    return Status::IoError(
        StrCat("unsupported sm2p format version ", version));
  }
  const uint32_t section_count = LoadU32(bytes.data() + 8);
  if (section_count != kSm2pSectionCount) {
    return Status::IoError(StrCat("sm2p section count ", section_count,
                                  " != expected ", kSm2pSectionCount));
  }
  const uint32_t header_crc = LoadU32(bytes.data() + kSm2pHeaderBytes);
  if (Crc32(bytes.subspan(0, kSm2pHeaderBytes)) != header_crc) {
    return Status::IoError(
        "sm2p header checksum mismatch (corrupted or truncated file)");
  }

  auto mapped =
      std::unique_ptr<MappedStage1Partial>(new MappedStage1Partial());
  mapped->file_ = std::move(file);
  const std::span<const uint8_t> data = mapped->file_.bytes();

  struct Section {
    uint64_t offset = 0;
    uint64_t length = 0;
    uint32_t crc = 0;
  };
  Section sections[kSm2pSectionCount];
  uint64_t prev_end = kSm2pHeaderBytes + 4;
  for (uint32_t kind = 0; kind < kSm2pSectionCount; ++kind) {
    const uint8_t* entry =
        data.data() + kSm2pPreamble + kind * kSm2pTableEntryBytes;
    Section& section = sections[kind];
    const uint32_t entry_kind = LoadU32(entry);
    section.offset = LoadU64(entry + 8);
    section.length = LoadU64(entry + 16);
    section.crc = LoadU32(entry + 24);
    if (entry_kind != kind) {
      return Status::IoError(StrCat("sm2p section ", kind,
                                    " has unexpected kind ", entry_kind));
    }
    if (section.offset % kSm2SectionAlign != 0) {
      return Status::IoError(StrCat("sm2p section ", kSm2pSectionName[kind],
                                    " misaligned at offset ",
                                    section.offset));
    }
    if (section.offset < prev_end || section.offset > data.size() ||
        section.length > data.size() - section.offset) {
      return Status::IoError(StrCat("sm2p section ", kSm2pSectionName[kind],
                                    " out of bounds (offset ",
                                    section.offset, ", length ",
                                    section.length, ", file ", data.size(),
                                    " bytes)"));
    }
    prev_end = section.offset + section.length;
  }
  if (prev_end != data.size()) {
    return Status::IoError(StrCat("sm2p trailing bytes: sections end at ",
                                  prev_end, ", file has ", data.size(),
                                  " (truncated or padded file)"));
  }

  // Every section CRC is checked EAGERLY: a partial is read exactly once
  // by the merge, and Open doubles as the worker driver's output check.
  for (uint32_t kind = 0; kind < kSm2pSectionCount; ++kind) {
    if (Crc32(data.subspan(sections[kind].offset, sections[kind].length)) !=
        sections[kind].crc) {
      return Status::IoError(StrCat("sm2p section ", kSm2pSectionName[kind],
                                    " checksum mismatch (corrupted or "
                                    "truncated partial)"));
    }
  }

  if (sections[kMeta].length != kSm2pMetaBytes) {
    return Status::IoError(StrCat("sm2p meta section has ",
                                  sections[kMeta].length,
                                  " bytes, expected ", kSm2pMetaBytes));
  }
  const uint8_t* m = data.data() + sections[kMeta].offset;
  Stage1PartialMeta& meta = mapped->meta_;
  meta.min_support = static_cast<int64_t>(LoadU64(m));
  meta.spider_radius = static_cast<int32_t>(LoadU32(m + 8));
  meta.max_star_leaves = static_cast<int32_t>(LoadU32(m + 12));
  meta.max_spiders = static_cast<int64_t>(LoadU64(m + 16));
  meta.num_graph_vertices = static_cast<int64_t>(LoadU64(m + 24));
  meta.graph_hash = LoadU64(m + 32);
  meta.partition_index = static_cast<int32_t>(LoadU32(m + 40));
  meta.num_partitions = static_cast<int32_t>(LoadU32(m + 44));
  meta.owned_begin = static_cast<int64_t>(LoadU64(m + 48));
  meta.owned_end = static_cast<int64_t>(LoadU64(m + 56));
  const uint64_t n = LoadU64(m + 64);
  const uint64_t total_leaves = LoadU64(m + 72);
  const uint64_t total_anchors = LoadU64(m + 80);
  if (meta.min_support < 1 || meta.spider_radius < 1 ||
      meta.max_star_leaves < 0 || meta.max_spiders < 0 ||
      meta.num_graph_vertices < 0 || meta.num_partitions < 1 ||
      meta.partition_index < 0 ||
      meta.partition_index >= meta.num_partitions || meta.owned_begin < 0 ||
      meta.owned_begin >= meta.owned_end ||
      meta.owned_end > meta.num_graph_vertices) {
    return Status::IoError("sm2p meta fields out of range");
  }
  if (n > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
    return Status::IoError(StrCat("sm2p partial spider count ", n,
                                  " exceeds the int32 id space"));
  }
  mapped->n_ = n;

  const uint64_t expected_length[kSm2pSectionCount] = {
      kSm2pMetaBytes,
      n * sizeof(LabelId),
      (n + 1) * sizeof(int64_t),
      total_leaves * sizeof(SpiderLeafKey),
      (n + 1) * sizeof(int64_t),
      total_anchors * sizeof(VertexId),
  };
  for (uint32_t kind = 1; kind < kSm2pSectionCount; ++kind) {
    if (sections[kind].length != expected_length[kind]) {
      return Status::IoError(
          StrCat("sm2p section ", kSm2pSectionName[kind], " has ",
                 sections[kind].length, " bytes, expected ",
                 expected_length[kind]));
    }
  }

  mapped->head_labels_ = SectionSpan<LabelId>(
      data, sections[kHeadLabels].offset, sections[kHeadLabels].length);
  mapped->leaf_offsets_ = SectionSpan<int64_t>(
      data, sections[kLeafOffsets].offset, sections[kLeafOffsets].length);
  mapped->leaf_pool_ = SectionSpan<SpiderLeafKey>(
      data, sections[kLeafPool].offset, sections[kLeafPool].length);
  mapped->anchor_offsets_ = SectionSpan<int64_t>(
      data, sections[kAnchorOffsets].offset,
      sections[kAnchorOffsets].length);
  mapped->anchor_pool_ = SectionSpan<VertexId>(
      data, sections[kAnchorPool].offset, sections[kAnchorPool].length);

  SM_RETURN_NOT_OK(CheckOffsets(mapped->leaf_offsets_,
                                static_cast<int64_t>(total_leaves),
                                "leaf_offsets"));
  SM_RETURN_NOT_OK(CheckOffsets(mapped->anchor_offsets_,
                                static_cast<int64_t>(total_anchors),
                                "anchor_offsets"));

  // Content invariants: sorted non-negative leaves, non-empty strictly
  // ascending anchors inside the owned range. Canonical ORDER between
  // stars is validated during the merge walk, where the comparator runs
  // anyway.
  for (int64_t id = 0; id < mapped->size(); ++id) {
    if (mapped->head_label(id) < 0) {
      return Status::IoError(
          StrCat("sm2p negative head label on star ", id));
    }
    std::span<const SpiderLeafKey> leaves = mapped->leaves(id);
    for (size_t j = 0; j < leaves.size(); ++j) {
      if (leaves[j].first < 0 || leaves[j].second < 0 ||
          (j > 0 && leaves[j] < leaves[j - 1])) {
        return Status::IoError(
            StrCat("sm2p star ", id, " leaf keys invalid or unsorted"));
      }
    }
    std::span<const VertexId> anchors = mapped->anchors(id);
    if (anchors.empty()) {
      return Status::IoError(StrCat("sm2p star ", id, " has no anchors"));
    }
    for (size_t j = 0; j < anchors.size(); ++j) {
      if (anchors[j] < meta.owned_begin || anchors[j] >= meta.owned_end ||
          (j > 0 && anchors[j] <= anchors[j - 1])) {
        return Status::IoError(StrCat("sm2p star ", id,
                                      " anchors unsorted or outside the "
                                      "owned range [",
                                      meta.owned_begin, ", ",
                                      meta.owned_end, ")"));
      }
    }
  }
  return mapped;
}

Result<Stage1MergeResult> MergeStage1Partials(
    const std::vector<std::string>& paths) {
  if (paths.empty()) {
    return Status::InvalidArgument("no partial artifacts to merge");
  }
  std::vector<std::unique_ptr<MappedStage1Partial>> partials;
  partials.reserve(paths.size());
  for (const std::string& path : paths) {
    SM_ASSIGN_OR_RETURN(std::unique_ptr<MappedStage1Partial> partial,
                        MappedStage1Partial::Open(path));
    partials.push_back(std::move(partial));
  }

  // Consistency: one run's partials agree on every mining parameter and
  // the parent-graph identity, and their owned ranges tile the id space.
  const Stage1PartialMeta& first = partials.front()->meta();
  if (first.num_partitions != static_cast<int32_t>(partials.size())) {
    return Status::InvalidArgument(
        StrCat("merge needs all ", first.num_partitions,
               " partials of the run, got ", partials.size()));
  }
  std::sort(partials.begin(), partials.end(),
            [](const auto& a, const auto& b) {
              return a->meta().partition_index < b->meta().partition_index;
            });
  for (size_t p = 0; p < partials.size(); ++p) {
    const Stage1PartialMeta& meta = partials[p]->meta();
    if (meta.graph_hash != first.graph_hash ||
        meta.num_graph_vertices != first.num_graph_vertices ||
        meta.min_support != first.min_support ||
        meta.spider_radius != first.spider_radius ||
        meta.max_star_leaves != first.max_star_leaves ||
        meta.max_spiders != first.max_spiders ||
        meta.num_partitions != first.num_partitions) {
      return Status::InvalidArgument(StrCat(
          "partial ", p, " disagrees with partial 0 on the mining "
          "parameters or the parent graph (mixed runs?)"));
    }
    if (meta.partition_index != static_cast<int32_t>(p)) {
      return Status::InvalidArgument(
          StrCat("duplicate or missing partition index ",
                 meta.partition_index, " among the partials"));
    }
    const int64_t expected_begin =
        p == 0 ? 0 : partials[p - 1]->meta().owned_end;
    const int64_t expected_end = p + 1 == partials.size()
                                     ? first.num_graph_vertices
                                     : meta.owned_end;
    if (meta.owned_begin != expected_begin ||
        meta.owned_end != expected_end) {
      return Status::InvalidArgument(
          StrCat("partition ", p, " owns [", meta.owned_begin, ", ",
                 meta.owned_end, "), expected it to start at ",
                 expected_begin, " and tile [0, ",
                 first.num_graph_vertices, ")"));
    }
  }

  // P-way streaming merge in canonical star order. Anchors concatenate in
  // partition order — contiguous ascending owned ranges make the result
  // globally ascending, exactly the single-node anchor list.
  struct Cursor {
    const MappedStage1Partial* partial;
    int64_t pos = 0;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(partials.size());
  for (const auto& partial : partials) {
    cursors.push_back({partial.get(), 0});
  }

  // Ancestor stack of the canonical DFS: the proper prefixes of the
  // current star among the frequent set, with their global anchor counts
  // and output ids (-1 past the budget). The closedness rules replayed
  // here are the star miner's exactly:
  //  - a non-root spider is non-closed iff an ADMITTED frequent child
  //    (one more leaf appended) keeps its full anchor count;
  //  - a root is non-closed iff ANY frequent single-leaf child keeps the
  //    full label count, admitted or not (the miner computes keeps_all in
  //    the counting pass, before the budget bites).
  struct AncestorFrame {
    size_t depth;
    std::span<const SpiderLeafKey> leaves;
    int64_t total_anchors;
    int32_t out_idx;  // -1 when not admitted (past the budget)
  };
  std::vector<AncestorFrame> stack;

  Stage1MergeResult result;
  const int64_t budget = first.max_spiders;
  std::vector<size_t> contributing;
  std::vector<VertexId> anchor_scratch;
  for (;;) {
    // Find the minimum star key across cursors; gather its contributors
    // in partition order.
    int best = -1;
    for (size_t c = 0; c < cursors.size(); ++c) {
      if (cursors[c].pos >= cursors[c].partial->size()) continue;
      if (best < 0 ||
          CompareStarKey(
              cursors[c].partial->head_label(cursors[c].pos),
              cursors[c].partial->leaves(cursors[c].pos),
              cursors[static_cast<size_t>(best)].partial->head_label(
                  cursors[static_cast<size_t>(best)].pos),
              cursors[static_cast<size_t>(best)].partial->leaves(
                  cursors[static_cast<size_t>(best)].pos)) < 0) {
        best = static_cast<int>(c);
      }
    }
    if (best < 0) break;
    const MappedStage1Partial& lead =
        *cursors[static_cast<size_t>(best)].partial;
    const int64_t lead_pos = cursors[static_cast<size_t>(best)].pos;
    const LabelId label = lead.head_label(lead_pos);
    const std::span<const SpiderLeafKey> leaves = lead.leaves(lead_pos);

    contributing.clear();
    int64_t total_anchors = 0;
    for (size_t c = 0; c < cursors.size(); ++c) {
      if (cursors[c].pos >= cursors[c].partial->size()) continue;
      if (CompareStarKey(cursors[c].partial->head_label(cursors[c].pos),
                         cursors[c].partial->leaves(cursors[c].pos), label,
                         leaves) == 0) {
        contributing.push_back(c);
        total_anchors += static_cast<int64_t>(
            cursors[c].partial->anchors(cursors[c].pos).size());
      }
    }

    if (total_anchors >= first.min_support) {
      ++result.frequent_stars;
      const bool admitted =
          budget <= 0 || result.frequent_stars <= budget;
      const size_t depth = leaves.size();
      while (!stack.empty() && stack.back().depth >= depth) stack.pop_back();
      if (depth > 0) {
        // The parent (the star minus its last leaf) must be on the stack:
        // global support is anti-monotone, so the frequent set is
        // prefix-closed and canonical order visits prefixes first.
        const bool parent_ok =
            !stack.empty() && stack.back().depth == depth - 1 &&
            std::equal(stack.back().leaves.begin(),
                       stack.back().leaves.end(), leaves.begin());
        if (!parent_ok) {
          return Status::IoError(
              StrCat("partials are not in canonical prefix-closed order "
                     "near head label ",
                     label, " (corrupted or mixed partials)"));
        }
        AncestorFrame& parent = stack.back();
        if (total_anchors == parent.total_anchors &&
            parent.out_idx >= 0 && (depth == 1 || admitted)) {
          result.store.set_closed(parent.out_idx, false);
        }
      }
      int32_t out_idx = -1;
      if (admitted) {
        anchor_scratch.clear();
        anchor_scratch.reserve(static_cast<size_t>(total_anchors));
        for (size_t c : contributing) {
          std::span<const VertexId> anchors =
              cursors[c].partial->anchors(cursors[c].pos);
          anchor_scratch.insert(anchor_scratch.end(), anchors.begin(),
                                anchors.end());
        }
        out_idx = result.store.Append(label, leaves, anchor_scratch);
      }
      stack.push_back({depth, leaves, total_anchors, out_idx});
    }

    // Advance every contributor, validating canonical order per partial.
    for (size_t c : contributing) {
      Cursor& cursor = cursors[c];
      ++cursor.pos;
      ++result.partial_entries;
      if (cursor.pos < cursor.partial->size() &&
          CompareStarKey(cursor.partial->head_label(cursor.pos - 1),
                         cursor.partial->leaves(cursor.pos - 1),
                         cursor.partial->head_label(cursor.pos),
                         cursor.partial->leaves(cursor.pos)) >= 0) {
        return Status::IoError(
            StrCat("partial ", c, " is not in strict canonical order at "
                   "entry ", cursor.pos, " (corrupted partial)"));
      }
    }
  }

  result.meta.min_support = first.min_support;
  result.meta.spider_radius = first.spider_radius;
  result.meta.max_star_leaves = first.max_star_leaves;
  result.meta.max_spiders = first.max_spiders;
  result.meta.num_graph_vertices = first.num_graph_vertices;
  result.meta.graph_hash = first.graph_hash;
  result.meta.truncated = budget > 0 && result.frequent_stars > budget;
  return result;
}

Result<Stage1MergeStats> MergeStage1PartialsToFile(
    const std::vector<std::string>& paths, const std::string& out_path) {
  SM_ASSIGN_OR_RETURN(Stage1MergeResult merged, MergeStage1Partials(paths));
  // The CSR anchor index is deterministic from the store alone, so the
  // merged .sm2 needs no graph pass at all.
  SpiderIndex index(&merged.store, merged.meta.num_graph_vertices);
  SM_RETURN_NOT_OK(
      SaveStage1Sm2(merged.store, index, merged.meta, out_path));
  Stage1MergeStats stats;
  stats.merged_spiders = merged.store.size();
  stats.frequent_stars = merged.frequent_stars;
  stats.total_anchors = merged.store.TotalAnchors();
  stats.truncated = merged.meta.truncated;
  return stats;
}

}  // namespace spidermine
