#pragma once

#include <vector>

#include "spidermine/miner.h"

/// \file closed_filter.h
/// Post-filters over a mined result set. The paper prunes non-closed
/// patterns during growth (Algorithm 2 line 22-23); these utilities apply
/// the same notions to a final pattern list, which is useful when
/// combining patterns from multiple runs (MineConfig::restarts) or
/// presenting results: a pattern is CLOSED if no returned super-pattern
/// has the same support, and MAXIMAL if no returned super-pattern exists
/// at all (cf. SPIN/MARGIN in the paper's related work).

namespace spidermine {

/// Keeps only patterns with no equal-support super-pattern in the set.
/// Sub/super relations are decided by subgraph isomorphism between result
/// patterns (quadratic in the result size; intended for K-sized lists).
std::vector<MinedPattern> FilterToClosed(std::vector<MinedPattern> patterns);

/// Keeps only patterns with no super-pattern in the set at all.
std::vector<MinedPattern> FilterToMaximal(std::vector<MinedPattern> patterns);

/// True iff \p sub is subgraph-isomorphic to \p super (label-preserving,
/// not necessarily induced). Exposed for tests.
bool IsSubPatternOf(const Pattern& sub, const Pattern& super);

}  // namespace spidermine
