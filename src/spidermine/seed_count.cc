#include "spidermine/seed_count.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace spidermine {

double SeedSuccessLowerBound(int64_t num_vertices, int64_t vmin, int32_t k,
                             int64_t m) {
  const double p = static_cast<double>(vmin) / static_cast<double>(num_vertices);
  const double md = static_cast<double>(m);
  // (M+1)(1-p)^M computed in log space for numeric range.
  double pfail;
  if (p >= 1.0) {
    pfail = 0.0;
  } else {
    double log_term = std::log(md + 1.0) + md * std::log1p(-p);
    pfail = std::exp(log_term);
  }
  if (pfail >= 1.0) return 0.0;
  double base = 1.0 - pfail;
  return std::pow(base, static_cast<double>(k));
}

Result<int64_t> ComputeSeedCount(int64_t num_vertices, int64_t vmin,
                                 int32_t k, double epsilon, int64_t max_m) {
  if (num_vertices <= 0) {
    return Status::InvalidArgument("num_vertices must be positive");
  }
  if (vmin <= 0 || vmin > num_vertices) {
    return Status::InvalidArgument(
        StrCat("vmin must be in [1, |V|]; got ", vmin));
  }
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  const double target = 1.0 - epsilon;
  // The bound dips before it rises (pfail = (M+1)(1-p)^M grows for small M),
  // so a plain scan is the safe way to find the smallest satisfying M. At
  // least two spiders must land in a pattern for identification, hence the
  // floor of 2.
  for (int64_t m = 2; m <= max_m; ++m) {
    if (SeedSuccessLowerBound(num_vertices, vmin, k, m) >= target) return m;
  }
  return Status::ResourceExhausted(
      StrCat("no M <= ", max_m, " reaches success probability ", target));
}

}  // namespace spidermine
