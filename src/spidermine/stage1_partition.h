#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/mapped_file.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "graph/graph_partition.h"
#include "spider/spider_store.h"
#include "spider/spider_store_io.h"

/// \file stage1_partition.h
/// Out-of-core partitioned Stage I: mine the spider set per graph
/// partition (graph/graph_partition.h), persist each partition's
/// contribution as a partial artifact (`.sm2p`), and merge the partials
/// into a `.sm2` that is BYTE-IDENTICAL to a single-node `stage1` run —
/// at any partition count, worker count or thread count.
///
/// Why this is exact. The canonical Stage I store order is lexicographic
/// (head label, leaf-key vector) with prefixes first — exactly the DFS
/// preorder the star miner emits. A star's global anchor list is the set
/// of vertices whose 1-hop neighborhood covers the leaf multiset; every
/// owned vertex sees its exact ball inside its partition, so the global
/// anchor list is the concatenation of per-partition owned-anchor lists
/// in partition order (contiguous ascending ranges => globally sorted).
/// Each partition therefore mines ALL stars with at least one owned
/// anchor (local threshold 1 — no sigma prune, because global support is
/// unknowable locally) and records exact owned-anchor lists in ORIGINAL
/// vertex ids. The merge walks the partials in canonical order, sums
/// anchor counts into global support, applies sigma, applies the global
/// `max_spiders` budget as an exact prefix, and reconstructs closedness
/// flags with an ancestor stack — reproducing the single-node semantics
/// (a spider is non-closed iff an ADMITTED frequent child keeps its full
/// anchor set; a root is non-closed iff ANY frequent single-leaf child
/// does, admitted or not) bit for bit.
///
/// Trade-off stated honestly: threshold-1 local enumeration can emit
/// stars the sigma-pruned single-node run never attempts (they die at
/// the merge). On graphs with modest label alphabets this is cheap; on a
/// hub whose neighbors cover many distinct labels it can over-enumerate
/// combinatorially with large --max-leaves. Exactness requires it —
/// pruning locally below sigma would drop anchors from globally frequent
/// stars and break byte-identity.
///
/// `.sm2p` (magic "SM2P") mirrors the `.sm2` section-table layout
/// (docs/FORMATS.md): 64-byte-aligned little-endian sections, per-section
/// CRC-32s, exact-end geometry — minus the closed column (merge-time
/// information) and the CSR index (rebuilt once, over the merged store).

namespace spidermine {

inline constexpr char kSm2pMagic[4] = {'S', 'M', '2', 'P'};
inline constexpr uint32_t kSm2pFormatVersion = 1;
inline constexpr uint32_t kSm2pSectionCount = 6;

/// Provenance of one partial: the mining parameters (which the merged
/// artifact will record and the merge validates for consistency across
/// partials) plus the partition geometry and parent-graph identity.
struct Stage1PartialMeta {
  int64_t min_support = 2;
  int32_t spider_radius = 1;
  int32_t max_star_leaves = 8;
  int64_t max_spiders = 0;
  int64_t num_graph_vertices = 0;  // parent graph, not the partition
  uint64_t graph_hash = 0;         // parent LabeledGraph::ContentHash()
  int32_t partition_index = 0;
  int32_t num_partitions = 1;
  int64_t owned_begin = 0;
  int64_t owned_end = 0;
};

/// Mining parameters of a partial run (sigma and the budget are applied
/// at MERGE time; they are carried here for the merged artifact's meta
/// and cross-partial consistency checks).
struct Stage1PartialConfig {
  int64_t min_support = 2;
  int32_t max_star_leaves = 8;
  int64_t max_spiders = 0;
  int64_t shard_grain = 0;
};

struct Stage1PartialResult {
  /// Stars with >= 1 owned anchor, canonical order, anchors in ORIGINAL
  /// vertex ids (ascending, inside [owned_begin, owned_end)). The closed
  /// column is meaningless here (computed at merge) and not serialized.
  SpiderStore store;
  /// Stars the threshold-1 local run enumerated before the owned filter
  /// (the over-enumeration measure; >= store.size()).
  int64_t local_stars = 0;
};

/// Mines partition \p part's Stage I contribution. Deterministic at any
/// thread count / shard grain. Requires part.radius >= 1 (the star
/// miner's spider radius).
Result<Stage1PartialResult> MineStage1Partial(
    const GraphPartition& part, const Stage1PartialConfig& config,
    ThreadPool* pool = nullptr);

/// Serializes a partial store + meta to `.sm2p` bytes (deterministic) /
/// writes them to \p path. Little-endian hosts only, like `.sm2`.
std::string Stage1PartialToBytes(const SpiderStore& store,
                                 const Stage1PartialMeta& meta);
Status SaveStage1Partial(const SpiderStore& store,
                         const Stage1PartialMeta& meta,
                         const std::string& path);

/// An opened `.sm2p` partial. Unlike MappedStage1 the validation is fully
/// EAGER — header, geometry, every section CRC and the content invariants
/// (canonical order is checked during the merge walk) — because a partial
/// is read exactly once, by the merge, and the worker driver uses Open as
/// its truncation/corruption check.
class MappedStage1Partial {
 public:
  static Result<std::unique_ptr<MappedStage1Partial>> Open(
      const std::string& path);

  const Stage1PartialMeta& meta() const { return meta_; }
  int64_t size() const { return static_cast<int64_t>(n_); }
  LabelId head_label(int64_t i) const { return head_labels_[i]; }
  std::span<const SpiderLeafKey> leaves(int64_t i) const {
    return leaf_pool_.subspan(
        static_cast<size_t>(leaf_offsets_[i]),
        static_cast<size_t>(leaf_offsets_[i + 1] - leaf_offsets_[i]));
  }
  std::span<const VertexId> anchors(int64_t i) const {
    return anchor_pool_.subspan(
        static_cast<size_t>(anchor_offsets_[i]),
        static_cast<size_t>(anchor_offsets_[i + 1] - anchor_offsets_[i]));
  }

 private:
  MappedStage1Partial() = default;

  MappedFile file_;
  Stage1PartialMeta meta_;
  uint64_t n_ = 0;
  std::span<const LabelId> head_labels_;
  std::span<const int64_t> leaf_offsets_;
  std::span<const SpiderLeafKey> leaf_pool_;
  std::span<const int64_t> anchor_offsets_;
  std::span<const VertexId> anchor_pool_;
};

/// The merged Stage I set plus everything needed to write the `.sm2`.
struct Stage1MergeResult {
  SpiderStore store;  // canonical order, global anchors, closed flags set
  Stage1Meta meta;    // parent-graph identity + mining params + truncated
  /// Frequent stars in the full (pre-budget) canonical enumeration.
  int64_t frequent_stars = 0;
  /// Partial entries walked across all inputs (merge work measure).
  int64_t partial_entries = 0;
};

/// Summary counters of a merge-to-file run.
struct Stage1MergeStats {
  int64_t merged_spiders = 0;
  int64_t frequent_stars = 0;
  int64_t total_anchors = 0;
  bool truncated = false;
};

/// Folds the partial artifacts at \p paths (all partitions of one run, in
/// any order) into the merged Stage I set. No graph access: the parent
/// identity comes from the partial metas, which must agree on graph hash,
/// mining parameters and partition count, and whose owned ranges must
/// tile [0, num_graph_vertices) exactly. kIoError on any inconsistency,
/// non-canonical partial ordering, or a partial set that is not
/// prefix-closed.
Result<Stage1MergeResult> MergeStage1Partials(
    const std::vector<std::string>& paths);

/// MergeStage1Partials + SpiderIndex build + SaveStage1Sm2 to \p out_path.
/// The written file is byte-identical to `MiningSession::SaveStage1` of a
/// single-node run with the same parameters.
Result<Stage1MergeStats> MergeStage1PartialsToFile(
    const std::vector<std::string>& paths, const std::string& out_path);

}  // namespace spidermine
