#include "spidermine/txn_adapter.h"

#include "graph/graph_builder.h"

namespace spidermine {

Result<TransactionGraph> BuildTransactionGraph(
    const std::vector<LabeledGraph>& database) {
  TransactionGraph out;
  GraphBuilder builder;
  for (size_t t = 0; t < database.size(); ++t) {
    const LabeledGraph& g = database[t];
    VertexId base = builder.NumVertices() > 0
                        ? static_cast<VertexId>(builder.NumVertices())
                        : 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      builder.AddVertex(g.Label(v));
      out.txn_of_vertex.push_back(static_cast<int32_t>(t));
    }
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      for (VertexId u : g.Neighbors(v)) {
        if (v < u) builder.AddEdge(base + v, base + u);
      }
    }
  }
  SM_ASSIGN_OR_RETURN(out.graph, builder.Build());
  out.num_transactions = static_cast<int32_t>(database.size());
  return out;
}

Result<MineResult> MineTransactions(const TransactionGraph& txn,
                                    MineConfig config) {
  config.support_measure = SupportMeasureKind::kTransaction;
  config.txn_of_vertex = &txn.txn_of_vertex;
  SpiderMiner miner(&txn.graph, config);
  // The adapter mirrors the shim's one-shot shape; the session migration
  // for transaction mining rides on its callers, not here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  return miner.Mine();
#pragma GCC diagnostic pop
}

}  // namespace spidermine
