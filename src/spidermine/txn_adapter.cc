#include "spidermine/txn_adapter.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/strings.h"
#include "graph/graph_builder.h"

namespace spidermine {

Result<TransactionGraph> BuildTransactionGraph(
    const std::vector<LabeledGraph>& database) {
  TransactionGraph out;
  GraphBuilder builder;
  for (size_t t = 0; t < database.size(); ++t) {
    const LabeledGraph& g = database[t];
    VertexId base = builder.NumVertices() > 0
                        ? static_cast<VertexId>(builder.NumVertices())
                        : 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      builder.AddVertex(g.Label(v));
      out.txn_of_vertex.push_back(static_cast<int32_t>(t));
    }
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      for (VertexId u : g.Neighbors(v)) {
        if (v < u) builder.AddEdge(base + v, base + u);
      }
    }
  }
  SM_ASSIGN_OR_RETURN(out.graph, builder.Build());
  out.num_transactions = static_cast<int32_t>(database.size());
  return out;
}

Result<MineResult> MineTransactions(const TransactionGraph& txn,
                                    MineConfig config) {
  // The adapter mines under transaction support by definition. A caller who
  // explicitly configured a DIFFERENT measure (or a foreign transaction
  // map) is contradicting that; reject instead of silently clobbering.
  if (config.support_measure != SupportMeasureKind::kTransaction &&
      config.support_measure != SupportMeasureKind::kGreedyMisVertex) {
    return Status::InvalidArgument(
        StrCat("MineTransactions mines under the transaction measure; the "
               "config asks for ",
               SupportMeasureName(config.support_measure),
               " (leave support_measure at its default or set it to "
               "transaction)"));
  }
  if (config.txn_of_vertex != nullptr &&
      config.txn_of_vertex != &txn.txn_of_vertex) {
    return Status::InvalidArgument(
        "MineTransactions derives txn_of_vertex from the transaction graph; "
        "the config carries a different transaction map");
  }
  config.support_measure = SupportMeasureKind::kTransaction;
  config.txn_of_vertex = &txn.txn_of_vertex;
  SpiderMiner miner(&txn.graph, config);
  // The adapter mirrors the shim's one-shot shape; the session migration
  // for transaction mining rides on its callers, not here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  return miner.Mine();
#pragma GCC diagnostic pop
}

Result<VertexTxnMap> LoadVertexTxnMap(const std::string& path,
                                      int64_t num_vertices) {
  std::ifstream in(path);
  if (!in) return Status::IoError(StrCat("cannot open for read: ", path));

  std::vector<std::pair<VertexId, int32_t>> incidences;
  int32_t max_txn = -1;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::istringstream fields{std::string(stripped)};
    int64_t v = -1;
    int64_t t = -1;
    fields >> v >> t;
    if (fields.fail() || v < 0 || v >= num_vertices || t < 0 ||
        t > INT32_MAX) {
      return Status::IoError(
          StrCat("line ", line_no, ": expected '<vertex> <txn_id>' with "
                 "vertex in [0, ", num_vertices, ") and txn_id >= 0, got '",
                 stripped, "'"));
    }
    incidences.emplace_back(static_cast<VertexId>(v),
                            static_cast<int32_t>(t));
    max_txn = std::max(max_txn, static_cast<int32_t>(t));
  }
  // CSR pack: sort by (vertex, txn), collapse duplicates, prefix-sum.
  std::sort(incidences.begin(), incidences.end());
  incidences.erase(std::unique(incidences.begin(), incidences.end()),
                   incidences.end());
  VertexTxnMap map;
  map.num_transactions = max_txn + 1;
  map.offsets.assign(static_cast<size_t>(num_vertices) + 1, 0);
  map.txn_ids.reserve(incidences.size());
  for (const auto& [v, t] : incidences) {
    ++map.offsets[static_cast<size_t>(v) + 1];
    map.txn_ids.push_back(t);
  }
  for (size_t i = 1; i < map.offsets.size(); ++i) {
    map.offsets[i] += map.offsets[i - 1];
  }
  return map;
}

}  // namespace spidermine
