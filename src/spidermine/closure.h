#pragma once

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"
#include "pattern/embedding.h"
#include "pattern/pattern.h"
#include "support/support_measure.h"

/// \file closure.h
/// Internal-edge closure: a post-growth refinement recovering pattern edges
/// that outward-only spider growth cannot add.
///
/// The paper's Stage I knows "all the frequent patterns up to a diameter
/// 2r", so an r = 1 spider may carry leaf-leaf edges (a triangle is
/// 1-bounded from any of its vertices) and growth plants such edges the
/// moment the spider is appended. This library's fast Stage I mines *stars*
/// (head + leaf multiset, Appendix B's simplification), which drops
/// leaf-leaf edges; combined with SpiderExtend's Internal Integrity rule
/// ("s contains no new edge connecting two vertices of P") a cycle-closing
/// edge between two already-grown vertices could never enter a pattern.
/// CloseInternalEdges restores those edges after growth: any graph edge
/// present between two pattern-vertex images in enough embeddings is added
/// when the enriched pattern stays frequent. Adding edges can only shrink
/// the diameter, so the Dmax bound is preserved.

namespace spidermine {

/// Greedily adds frequent internal edges to \p pattern.
///
/// Per iteration every non-adjacent pattern-vertex pair (i, j) is scored by
/// the support of the enriched pattern over the embeddings that realize the
/// edge in \p graph; the best pair with support >= \p min_support is
/// applied (embeddings lacking the edge are dropped) and scoring repeats.
/// Deterministic: ties break toward the lexicographically smallest pair.
///
/// \p embeddings is filtered in place to the surviving occurrence list and
/// \p support (when non-null) receives the enriched pattern's support.
/// Returns the number of edges added (0 when the pattern is already closed
/// or no candidate is frequent).
int32_t CloseInternalEdges(const LabeledGraph& graph, Pattern* pattern,
                           std::vector<Embedding>* embeddings,
                           SupportMeasureKind measure, int64_t min_support,
                           int64_t* support = nullptr,
                           const SupportContext& context = {});

}  // namespace spidermine
