#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/support_measure.h"

/// \file config.h
/// User-facing parameters of SpiderMine (paper Algorithm 1 inputs) plus the
/// engineering caps that bound memory on pathological inputs. Every cap
/// records its trigger in MineStats so truncation is never silent.

namespace spidermine {

class ThreadPool;

/// Inputs of the mining problem and knobs of the algorithm.
struct MineConfig {
  // ---- Problem parameters (Definition 3). ----
  /// Support threshold sigma.
  int64_t min_support = 2;
  /// Number of top patterns to return (K).
  int32_t k = 10;
  /// Error bound epsilon: the returned set contains the true top-K with
  /// probability >= 1 - epsilon.
  double epsilon = 0.1;
  /// Pattern diameter upper bound Dmax.
  int32_t dmax = 4;
  /// Spider radius r (the paper recommends 1 or 2; the growth engine's
  /// fast path implements r = 1).
  int32_t spider_radius = 1;
  /// User lower bound Vmin on the vertex count of a "large" pattern;
  /// 0 selects the paper's example default |V(G)|/10.
  int64_t vmin = 0;
  /// Support definition (overlap handling); see support_measure.h.
  SupportMeasureKind support_measure = SupportMeasureKind::kGreedyMisVertex;

  // ---- Parallelism. ----
  /// Worker threads for Stage I star shards, per-lineage growth, seeding
  /// and closure. 1 = serial; 0 = all hardware threads. Mined results are
  /// identical at any value (see ARCHITECTURE.md, threading model): workers
  /// write pre-sized output slots and every cross-worker fold happens on
  /// the coordinating thread in a stable order.
  int32_t num_threads = 1;
  /// Caller-provided worker pool (borrowed; must outlive the Mine() call).
  /// When non-null it is used instead of constructing a pool per Mine(),
  /// so repeated runs — restart sweeps, benchmark loops — reuse one set of
  /// threads; num_threads is then ignored. Results are identical either
  /// way.
  ThreadPool* pool = nullptr;
  /// Stage I vertex-range shard grain (StarMinerConfig::shard_grain): root
  /// scans of one head label split into ranges of at most this many
  /// vertices. <= 0 selects an automatic grain. Mined results are
  /// identical at any value.
  int64_t stage1_shard_grain = 0;

  // ---- Randomization. ----
  /// RNG seed for the random spider draw. Each restart run r draws from an
  /// independent substream seeded with rng_seed ^ (kRunSeedStride * r), so
  /// parallel scheduling cannot perturb the draws of later runs.
  uint64_t rng_seed = 42;
  /// Overrides the computed number M of seed spiders when > 0.
  int64_t seed_count_override = 0;
  /// Number of independent Stage II + III runs over the one-time Stage I
  /// spider set (paper Sec. 4.2.1: "we can run the remaining stages ...
  /// multiple times to increase the probability of obtaining the top-K
  /// large patterns"). Results accumulate across runs. 0 stops after
  /// Stage I (no patterns; Stage I memory/latency measurement runs).
  int32_t restarts = 1;

  // ---- Engineering caps (0 = unlimited unless stated). ----
  /// Per-pattern cap on stored embeddings.
  int64_t max_embeddings_per_pattern = 10000;
  /// Cap on in-flight patterns per growth round.
  int64_t max_patterns_per_round = 4000;
  /// Per-anchor cap on seed-spider embedding enumeration.
  int64_t max_seed_embeddings_per_anchor = 20;
  /// Star miner: max leaves per spider.
  int32_t max_star_leaves = 8;
  /// Star miner: total spider cap (0 = unlimited).
  int64_t max_spiders = 0;
  /// Merge detection: max pattern pairs examined per shared spider anchor.
  int32_t max_merge_pairs_per_key = 8;
  /// Merge: max overlapping embedding pairs turned into union instances
  /// per pattern pair.
  int32_t max_union_instances = 256;
  /// Stage III stops after this many growth rounds even without a fixpoint.
  int32_t stage3_max_rounds = 64;
  /// Cap on the accumulated result list (kept sorted by size).
  int64_t max_results = 10000;
  /// Wall-clock budget in seconds (0 = unlimited).
  double time_budget_seconds = 0.0;

  // ---- Behavioral switches. ----
  /// Use only closed stars (no super-star with the same anchors) as growth
  /// units; reduces redundant branches without changing reachable patterns.
  bool use_closed_spiders_only = true;
  /// Post-growth internal-edge closure (see spidermine/closure.h): restores
  /// cycle-closing edges that star-based outward growth cannot add. The
  /// paper's full-spider Stage I plants these edges at append time; with
  /// the star fast path this refinement is needed for exactness on cyclic
  /// patterns. Can only enlarge patterns; never violates Dmax.
  bool close_internal_edges = true;
  /// How many of the size-ranked results closure examines (0 = all).
  /// Closure can promote a pattern past others, so the window is kept well
  /// above K; patterns far below the window are too small to reach top-K.
  int64_t closure_window = 0;  // 0 resolves to max(64, 8 * k)
  /// Drop results whose diameter exceeds dmax. Definition 2 requires
  /// diam(P) <= Dmax of returned patterns, but Algorithm 1's Stage III
  /// ("grow until no more frequent patterns") can legitimately exceed it --
  /// the paper itself reports recovered patterns larger than the injected
  /// ones. Off by default to keep that (desirable) behavior; switch on for
  /// strict Definition-2 output (the exact oracle always enforces it).
  bool enforce_dmax_on_results = false;
  /// Ablation: skip the Stage II "keep only merged patterns" pruning.
  bool keep_unmerged = false;
  /// Transaction setting: transaction id per vertex of the (disjoint-union)
  /// input graph; enables SupportMeasureKind::kTransaction.
  const std::vector<int32_t>* txn_of_vertex = nullptr;
};

/// Counters and timings of one Mine() run.
struct MineStats {
  int64_t num_spiders = 0;        ///< spiders mined in Stage I
  int64_t num_closed_spiders = 0; ///< spiders surviving the closed filter
  int64_t stage1_store_bytes = 0; ///< SpiderStore arena footprint (bytes)
  int64_t stage1_scan_shards = 0; ///< label x vertex-range scan shards
  int64_t stage1_enum_shards = 0; ///< label x first-leaf-key subtree shards
  int64_t seed_count_m = 0;       ///< M actually used
  int64_t extend_calls = 0;       ///< SpiderExtend invocations
  int64_t growth_steps = 0;       ///< successful spider appends
  int64_t stage1_steps = 0;       ///< star-mining extension attempts
  int64_t merges = 0;             ///< merged patterns created
  int64_t merge_attempts = 0;     ///< pattern pairs examined
  int64_t pruned_unmerged = 0;    ///< patterns dropped at end of Stage II
  int64_t iso_checks_skipped = 0; ///< spider-set filter rejections
  int64_t iso_checks_run = 0;     ///< exact iso tests after filter collision
  int64_t nonclosed_dropped = 0;  ///< patterns dropped by closedness rule
  int64_t closure_edges_added = 0; ///< internal edges restored post-growth
  int64_t embedding_cap_hits = 0;
  int64_t pattern_cap_hits = 0;
  int64_t stage2_iterations = 0;
  int64_t stage3_rounds = 0;
  bool timed_out = false;
  double stage1_seconds = 0.0;
  double stage2_seconds = 0.0;
  double stage3_seconds = 0.0;
  double total_seconds = 0.0;

  /// Multi-line human-readable rendering (tools and example output).
  std::string ToString() const;
};

}  // namespace spidermine
