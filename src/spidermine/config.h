#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "support/support_measure.h"

/// \file config.h
/// User-facing parameters of SpiderMine (paper Algorithm 1 inputs) plus the
/// engineering caps that bound memory on pathological inputs. Every cap
/// records its trigger in MineStats so truncation is never silent.
///
/// The parameters split along the paper's cost structure (Sec. 4.2.1):
/// Stage I (mining all r-spiders) is a one-time pass over the massive
/// network, while Stages II/III are randomized and cheap enough to rerun
/// per query. `SessionConfig` carries the graph-scoped knobs that shape the
/// Stage I artifacts a `MiningSession` caches; `QueryConfig` carries the
/// per-query knobs of Stages II+III. The legacy fused `MineConfig` remains
/// as the input of the `SpiderMiner::Mine()` compatibility shim and
/// decomposes into the two via SessionPart()/QueryPart().

namespace spidermine {

class ThreadPool;

/// Graph-scoped parameters: everything that determines the Stage I spider
/// set (and therefore must be fixed for the lifetime of a MiningSession).
/// The session copies this struct at construction; the two borrowed
/// pointers (`pool`, `txn_of_vertex`) stay owned by the caller and must
/// outlive the session — every other field is a value. After
/// construction the stored config is immutable, which is one leg of the
/// concurrent-RunQuery contract (docs/SERVING.md).
struct SessionConfig {
  /// Support floor sigma of the mined spider set. Queries may ask for any
  /// min_support >= this floor; lower values would need spiders the session
  /// never mined.
  int64_t min_support = 2;
  /// Spider radius r (the paper recommends 1 or 2; the growth engine's
  /// fast path implements r = 1).
  int32_t spider_radius = 1;
  /// Star miner: max leaves per spider.
  int32_t max_star_leaves = 8;
  /// Star miner: global spider budget (0 = unlimited). Deterministic: the
  /// admitted set is the exact prefix of the unlimited enumeration.
  int64_t max_spiders = 0;

  // ---- Parallelism. ----
  /// Worker threads for Stage I star shards and for every query's growth
  /// stages. 1 = serial; 0 = all hardware threads. Results are identical at
  /// any value (see ARCHITECTURE.md, threading model).
  int32_t num_threads = 1;
  /// Caller-provided worker pool (borrowed; must outlive the session).
  /// When non-null it is used instead of constructing a session-owned pool;
  /// num_threads is then ignored. Results are identical either way.
  ThreadPool* pool = nullptr;
  /// Stage I vertex-range shard grain (StarMinerConfig::shard_grain): root
  /// scans of one head label split into ranges of at most this many
  /// vertices. <= 0 selects an automatic grain. Mined results are
  /// identical at any value.
  int64_t stage1_shard_grain = 0;
  /// Wall-clock budget for Stage I mining in seconds (0 = unlimited). An
  /// expired budget yields a truncated (but usable) spider set, reported
  /// via the session's stage1 stats.
  double stage1_time_budget_seconds = 0.0;

  /// Transaction setting: transaction id per vertex of the (disjoint-union)
  /// input graph; enables SupportMeasureKind::kTransaction in queries.
  /// Borrowed; must outlive the session.
  const std::vector<int32_t>* txn_of_vertex = nullptr;
  /// Per-vertex transaction payloads (Lei et al.; loaded from a `--txn-map`
  /// file, see txn_adapter.h). Takes precedence over txn_of_vertex for
  /// kTransaction queries: an embedding covers a transaction iff every
  /// image vertex carries it. Borrowed; must outlive the session.
  const VertexTxnMap* txn_map = nullptr;

  /// Field-range validation. Sessions refuse to build on failure.
  Status Validate() const;
};

/// Query-scoped parameters: the Stage II+III knobs of one top-K query.
/// Every field may differ between queries on the same session, including
/// concurrent ones: RunQuery copies the struct up front, so the caller
/// may reuse or mutate it the moment the call returns (values only — no
/// borrowed state; the transaction map lives on SessionConfig).
struct QueryConfig {
  // ---- Problem parameters (Definition 3). ----
  /// Support threshold sigma for this query. 0 selects the session's mined
  /// floor; explicit values must be >= that floor.
  int64_t min_support = 0;
  /// Number of top patterns to return (K).
  int32_t k = 10;
  /// Error bound epsilon: the returned set contains the true top-K with
  /// probability >= 1 - epsilon.
  double epsilon = 0.1;
  /// Pattern diameter upper bound Dmax.
  int32_t dmax = 4;
  /// User lower bound Vmin on the vertex count of a "large" pattern;
  /// 0 selects the paper's example default |V(G)|/10.
  int64_t vmin = 0;
  /// Support definition (overlap handling); see support_measure.h.
  /// kTransaction requires the session to carry txn_of_vertex or txn_map.
  SupportMeasureKind support_measure = SupportMeasureKind::kGreedyMisVertex;
  /// Sampling-based transaction top-K (Lei et al.): when > 0, each restart
  /// run counts only a uniform sample of this many transaction ids, drawn
  /// from the run's own RNG substream (byte-deterministic at any thread
  /// count); values >= the transaction universe count everything. 0 = all
  /// transactions. Requires support_measure == kTransaction.
  int64_t txn_sample = 0;

  // ---- Randomization. ----
  /// RNG seed for the random spider draw. Each restart run r draws from an
  /// independent substream seeded with rng_seed ^ (kRunSeedStride * r), so
  /// parallel scheduling cannot perturb the draws of later runs.
  uint64_t rng_seed = 42;
  /// Overrides the computed number M of seed spiders when > 0.
  int64_t seed_count_override = 0;
  /// Number of independent Stage II + III runs over the session's cached
  /// spider set (paper Sec. 4.2.1: "we can run the remaining stages ...
  /// multiple times to increase the probability of obtaining the top-K
  /// large patterns"). Results accumulate across runs. 0 returns no
  /// patterns (seed-count math only); negatives clamp to the default 1.
  int32_t restarts = 1;

  // ---- Engineering caps (0 = unlimited unless stated). ----
  /// Per-pattern cap on stored embeddings.
  int64_t max_embeddings_per_pattern = 10000;
  /// Embedding-list engine: per-lineage budget on the carried complete
  /// embedding list (E[P]) that growth maintains incrementally so closure
  /// can reuse it instead of re-running VF2 per candidate. A lineage whose
  /// list would exceed the budget is marked saturated and falls back to
  /// the certified VF2 path — results are byte-identical either way, the
  /// budget only trades memory for closure-phase speed. 0 disables the
  /// engine entirely (every closure candidate pays a VF2 search: today's
  /// pre-engine behavior, kept as the equivalence baseline).
  int64_t embedding_list_budget = 4096;
  /// Cap on in-flight patterns per growth round.
  int64_t max_patterns_per_round = 4000;
  /// Per-anchor cap on seed-spider embedding enumeration.
  int64_t max_seed_embeddings_per_anchor = 20;
  /// Merge detection: max pattern pairs examined per shared spider anchor.
  int32_t max_merge_pairs_per_key = 8;
  /// Merge: max overlapping embedding pairs turned into union instances
  /// per pattern pair.
  int32_t max_union_instances = 256;
  /// Stage III stops after this many growth rounds even without a fixpoint.
  int32_t stage3_max_rounds = 64;
  /// Cap on the accumulated result list (kept sorted by size).
  int64_t max_results = 10000;
  /// Wall-clock budget for this query in seconds (0 = unlimited).
  double time_budget_seconds = 0.0;

  // ---- Behavioral switches. ----
  /// Use only closed stars (no super-star with the same anchors) as growth
  /// units; reduces redundant branches without changing reachable patterns.
  bool use_closed_spiders_only = true;
  /// Post-growth internal-edge closure (see spidermine/closure.h): restores
  /// cycle-closing edges that star-based outward growth cannot add. The
  /// paper's full-spider Stage I plants these edges at append time; with
  /// the star fast path this refinement is needed for exactness on cyclic
  /// patterns. Can only enlarge patterns; never violates Dmax.
  bool close_internal_edges = true;
  /// How many of the size-ranked results closure examines (0 = all).
  /// Closure can promote a pattern past others, so the window is kept well
  /// above K; patterns far below the window are too small to reach top-K.
  int64_t closure_window = 0;  // 0 resolves to max(64, 8 * k)
  /// Drop results whose diameter exceeds dmax. Definition 2 requires
  /// diam(P) <= Dmax of returned patterns, but Algorithm 1's Stage III
  /// ("grow until no more frequent patterns") can legitimately exceed it --
  /// the paper itself reports recovered patterns larger than the injected
  /// ones. Off by default to keep that (desirable) behavior; switch on for
  /// strict Definition-2 output (the exact oracle always enforces it).
  bool enforce_dmax_on_results = false;
  /// Ablation: skip the Stage II "keep only merged patterns" pruning.
  bool keep_unmerged = false;

  /// Field-range validation (session-independent parts; the min_support
  /// floor and txn_of_vertex checks need the session and run in RunQuery).
  /// A failed query never touches session state.
  Status Validate() const;

  /// Stable FNV-1a hash over every result-determining field, in declared
  /// field order, with defaulted fields normalized first so semantically
  /// identical requests hash identically: `min_support` 0 resolves to
  /// \p session_min_support (the session's mined floor), `vmin` 0 to the
  /// paper's max(1, |V|/10) default over \p graph_vertices (clamped to
  /// |V|, as RunQuery resolves it), `closure_window` 0 to max(64, 8k),
  /// and negative `restarts` clamp to the default 1. Two deliberate
  /// exclusions, documented invariants of the engine (docs/SERVING.md):
  /// `embedding_list_budget` (results are byte-identical at any value —
  /// hashing it would split cache lines between identical answers) and
  /// the parallelism knobs (none live here). `time_budget_seconds` IS
  /// hashed — an expiring budget truncates results — but callers must
  /// not cache results whose stats report `timed_out` (the truncation
  /// point is wall-clock dependent). The hash keys the serving result
  /// cache (result_cache.h) together with the session's Stage I content
  /// key; it is a cache key, not a cryptographic digest.
  uint64_t CanonicalHash(int64_t session_min_support,
                         int64_t graph_vertices) const;
};

/// Legacy fused configuration of `SpiderMiner::Mine()` (build a session,
/// run one query, throw the session away). New code should construct
/// SessionConfig + QueryConfig directly; this type is kept so existing
/// callers and the CLI `mine` subcommand compile unchanged. Every field
/// is the fused spelling of one SessionConfig or QueryConfig field — the
/// authoritative documentation lives on those two structs; ownership of
/// the borrowed pointers (`pool`, `txn_of_vertex`) matches SessionConfig:
/// both must outlive the Mine() call.
struct MineConfig {
  // ---- Problem parameters -> QueryConfig (min_support also sets the
  // ---- session floor; spider_radius is session-scoped).
  int64_t min_support = 2;       ///< sigma: SessionPart floor AND query threshold
  int32_t k = 10;                ///< top-K
  double epsilon = 0.1;          ///< error bound
  int32_t dmax = 4;              ///< pattern diameter bound
  int32_t spider_radius = 1;     ///< r (session-scoped; 1 = star fast path)
  int64_t vmin = 0;              ///< large-pattern floor (0 = |V(G)|/10)
  SupportMeasureKind support_measure = SupportMeasureKind::kGreedyMisVertex;
  int64_t txn_sample = 0;        ///< per-run transaction sample size (0 = all)

  // ---- Parallelism -> SessionConfig.
  int32_t num_threads = 1;          ///< worker threads (0 = all cores)
  ThreadPool* pool = nullptr;       ///< borrowed pool (overrides num_threads)
  int64_t stage1_shard_grain = 0;   ///< Stage I scan-shard grain (0 = auto)

  // ---- Randomization -> QueryConfig.
  uint64_t rng_seed = 42;           ///< seed of the Stage II spider draw
  int64_t seed_count_override = 0;  ///< fixed M when > 0 (0 = paper formula)
  int32_t restarts = 1;             ///< independent Stage II+III runs

  // ---- Engineering caps -> QueryConfig (star caps -> SessionConfig).
  int64_t max_embeddings_per_pattern = 10000;
  int64_t embedding_list_budget = 4096;  ///< carried-E[P] budget (0 = VF2 only)
  int64_t max_patterns_per_round = 4000;
  int64_t max_seed_embeddings_per_anchor = 20;
  int32_t max_star_leaves = 8;      ///< session-scoped star cap
  int64_t max_spiders = 0;          ///< session-scoped global spider budget
  int32_t max_merge_pairs_per_key = 8;
  int32_t max_union_instances = 256;
  int32_t stage3_max_rounds = 64;
  int64_t max_results = 10000;
  /// Fused budget spanning ALL stages: the shim gives Stage I the whole
  /// budget and the query whatever Stage I left over.
  double time_budget_seconds = 0.0;

  // ---- Behavioral switches -> QueryConfig.
  bool use_closed_spiders_only = true;
  bool close_internal_edges = true;
  int64_t closure_window = 0;  // 0 resolves to max(64, 8 * k)
  bool enforce_dmax_on_results = false;
  bool keep_unmerged = false;
  /// Borrowed transaction map (session-scoped); must outlive the call.
  const std::vector<int32_t>* txn_of_vertex = nullptr;
  /// Borrowed per-vertex transaction payloads (session-scoped); must
  /// outlive the call. Takes precedence over txn_of_vertex.
  const VertexTxnMap* txn_map = nullptr;

  /// The graph-scoped slice: Stage I knobs, parallelism, the transaction
  /// map. The fused time budget becomes the Stage I budget; the shim hands
  /// the remaining time to the query.
  SessionConfig SessionPart() const;
  /// The query-scoped slice. min_support maps to 0 (= session floor), so
  /// the shim's query always runs at exactly the mined threshold.
  QueryConfig QueryPart() const;
};

/// Counters and timings of one Mine() run or one session query. Stage I
/// fields are populated by the session (exactly once per session); query
/// stats leave them 0, which is how tests assert that serving R queries
/// re-mines nothing.
struct MineStats {
  int64_t num_spiders = 0;        ///< spiders mined in Stage I
  int64_t num_closed_spiders = 0; ///< spiders surviving the closed filter
  int64_t stage1_store_bytes = 0; ///< SpiderStore arena footprint (bytes)
  int64_t stage1_scan_shards = 0; ///< label x vertex-range scan shards
  int64_t stage1_enum_shards = 0; ///< label x first-leaf-key subtree shards
  int64_t seed_count_m = 0;       ///< M actually used
  int64_t extend_calls = 0;       ///< SpiderExtend invocations
  int64_t growth_steps = 0;       ///< successful spider appends
  int64_t stage1_steps = 0;       ///< star-mining extension attempts
  int64_t merges = 0;             ///< merged patterns created
  int64_t merge_attempts = 0;     ///< pattern pairs examined
  int64_t pruned_unmerged = 0;    ///< patterns dropped at end of Stage II
  int64_t iso_checks_skipped = 0; ///< spider-set filter rejections
  int64_t iso_checks_run = 0;     ///< exact iso tests after filter collision
  int64_t nonclosed_dropped = 0;  ///< patterns dropped by closedness rule
  int64_t emb_extensions = 0;     ///< carried-list incremental extensions/joins
  int64_t emb_carried = 0;        ///< closure candidates served from a carried list
  int64_t vf2_fallbacks = 0;      ///< closure candidates re-enumerated with VF2
  /// Support measure the query ran under (echoed into --stats output and
  /// the serving aggregates).
  SupportMeasureKind support_measure = SupportMeasureKind::kGreedyMisVertex;
  int64_t txn_sample_size = 0;    ///< per-run transaction sample size (0 = all)
  int64_t closure_edges_added = 0; ///< internal edges restored post-growth
  int64_t embedding_cap_hits = 0;
  int64_t pattern_cap_hits = 0;
  int64_t stage2_iterations = 0;
  int64_t stage3_rounds = 0;
  bool timed_out = false;
  double stage1_seconds = 0.0;
  double stage2_seconds = 0.0;
  double stage3_seconds = 0.0;
  double total_seconds = 0.0;

  /// Copies the Stage I fields of \p stage1 into this (the shim's merge of
  /// session stats into a legacy MineResult).
  void FoldStage1(const MineStats& stage1);

  /// Multi-line human-readable rendering (tools and example output).
  std::string ToString() const;
};

}  // namespace spidermine
