#include "spidermine/oracle.h"

#include <algorithm>

#include "baselines/complete_miner.h"
#include "pattern/dfs_code.h"
#include "pattern/vf2.h"

namespace spidermine {

Result<OracleResult> ExactTopKLargest(const LabeledGraph& graph,
                                      const OracleConfig& config) {
  if (config.k <= 0) {
    return Status::InvalidArgument("oracle k must be positive");
  }
  if (config.dmax < 0) {
    return Status::InvalidArgument("oracle dmax must be non-negative");
  }
  // The oracle rides on the complete baseline miner, whose level-extension
  // steps are the shared embedding-list primitives of
  // pattern/embedding_list.h (ExtendEmbeddingsNewVertex /
  // FilterEmbeddingsInternalEdge) — the same machinery the growth engine
  // uses to carry complete lists.
  CompleteMinerConfig complete;
  complete.min_support = config.min_support;
  complete.support_measure = config.support_measure;
  complete.max_patterns = config.max_patterns;
  complete.max_pattern_edges = config.max_pattern_edges;
  complete.time_budget_seconds = config.time_budget_seconds;
  SM_ASSIGN_OR_RETURN(CompleteMineResult mined,
                      MineComplete(graph, complete));

  OracleResult result;
  result.exact = !mined.aborted;
  // Filter by the diameter bound. Diameter is not monotone under subgraph
  // extension, so it cannot prune enumeration; it is applied post-hoc,
  // which is correct because the complete miner enumerates every frequent
  // connected pattern regardless of diameter.
  for (CompletePattern& candidate : mined.patterns) {
    const int32_t diameter = candidate.pattern.Diameter();
    if (diameter > config.dmax) continue;
    ++result.total_qualifying;
    result.top_k.push_back(OraclePattern{std::move(candidate.pattern),
                                         candidate.support, diameter});
  }
  std::sort(result.top_k.begin(), result.top_k.end(),
            [](const OraclePattern& a, const OraclePattern& b) {
              if (a.pattern.NumEdges() != b.pattern.NumEdges()) {
                return a.pattern.NumEdges() > b.pattern.NumEdges();
              }
              if (a.pattern.NumVertices() != b.pattern.NumVertices()) {
                return a.pattern.NumVertices() > b.pattern.NumVertices();
              }
              return a.support > b.support;
            });
  if (static_cast<int64_t>(result.top_k.size()) > config.k) {
    result.top_k.resize(static_cast<size_t>(config.k));
  }
  return result;
}

bool ContainsIsomorphicPattern(const std::vector<Pattern>& candidates,
                               const Pattern& target) {
  // Target fingerprint computed once (lazily — size checks may already
  // reject everything); a WL hash mismatch skips the exact VF2 test.
  uint64_t target_hash = 0;
  for (const Pattern& candidate : candidates) {
    if (candidate.NumVertices() != target.NumVertices() ||
        candidate.NumEdges() != target.NumEdges()) {
      continue;
    }
    if (target_hash == 0) target_hash = PatternIsoHash(target);
    if (PatternIsoHash(candidate) != target_hash) continue;
    if (ArePatternsIsomorphic(candidate, target)) return true;
  }
  return false;
}

}  // namespace spidermine
