#include "spidermine/closure.h"

#include <algorithm>
#include <map>

namespace spidermine {

namespace {

/// One scored closure candidate.
struct Candidate {
  VertexId i = -1;
  VertexId j = -1;
  EdgeLabelId edge_label = 0;
  int64_t support = 0;
  std::vector<Embedding> surviving;
};

}  // namespace

int32_t CloseInternalEdges(const LabeledGraph& graph, Pattern* pattern,
                           std::vector<Embedding>* embeddings,
                           SupportMeasureKind measure, int64_t min_support,
                           int64_t* support, const SupportContext& context) {
  int32_t added = 0;
  if (embeddings->empty()) return 0;
  const int32_t n = pattern->NumVertices();
  for (;;) {
    Candidate best;
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = i + 1; j < n; ++j) {
        if (pattern->HasEdge(i, j)) continue;
        // Embeddings in which the candidate internal edge is realized,
        // bucketed by the graph edge's label: all surviving embeddings of
        // one candidate must realize the same labeled edge.
        std::map<EdgeLabelId, std::vector<Embedding>> by_label;
        for (const Embedding& e : *embeddings) {
          if (graph.HasEdge(e[i], e[j])) {
            by_label[graph.EdgeLabel(e[i], e[j])].push_back(e);
          }
        }
        for (auto& [edge_label, surviving] : by_label) {
          if (static_cast<int64_t>(surviving.size()) < min_support) continue;
          // Score with the enriched structure: edge-conflict measures need
          // the new edge to exist in the pattern.
          Pattern enriched = *pattern;
          enriched.AddEdge(i, j, edge_label);
          const int64_t s =
              ComputeSupport(measure, enriched, surviving, context);
          if (s < min_support) continue;
          if (s > best.support) {
            best.i = i;
            best.j = j;
            best.edge_label = edge_label;
            best.support = s;
            best.surviving = std::move(surviving);
          }
        }
      }
    }
    if (best.i < 0) break;
    pattern->AddEdge(best.i, best.j, best.edge_label);
    *embeddings = std::move(best.surviving);
    if (support != nullptr) *support = best.support;
    ++added;
  }
  return added;
}

}  // namespace spidermine
