#include "spidermine/closure.h"

#include <algorithm>
#include <map>

namespace spidermine {

namespace {

/// One scored closure candidate.
struct Candidate {
  VertexId i = -1;
  VertexId j = -1;
  EdgeLabelId edge_label = 0;
  int64_t support = 0;
  std::vector<Embedding> surviving;
};

}  // namespace

int32_t CloseInternalEdges(const LabeledGraph& graph, Pattern* pattern,
                           std::vector<Embedding>* embeddings,
                           SupportMeasureKind measure, int64_t min_support,
                           int64_t* support, const SupportContext& context) {
  int32_t added = 0;
  if (embeddings->empty()) return 0;
  const int32_t n = pattern->NumVertices();
  for (;;) {
    Candidate best;
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = i + 1; j < n; ++j) {
        if (pattern->HasEdge(i, j)) continue;
        // Embeddings in which the candidate internal edge is realized,
        // bucketed by the graph edge's label: all surviving embeddings of
        // one candidate must realize the same labeled edge. Buckets hold
        // indices into *embeddings — a full Embedding copy per survivor
        // (the old representation) is wasted work for the many buckets
        // that fall below min_support or lose the best-candidate race.
        std::map<EdgeLabelId, std::vector<size_t>> by_label;
        for (size_t e = 0; e < embeddings->size(); ++e) {
          const Embedding& emb = (*embeddings)[e];
          if (graph.HasEdge(emb[i], emb[j])) {
            by_label[graph.EdgeLabel(emb[i], emb[j])].push_back(e);
          }
        }
        for (const auto& [edge_label, surviving_idx] : by_label) {
          if (static_cast<int64_t>(surviving_idx.size()) < min_support) {
            continue;
          }
          // Materialize only the buckets that reach scoring.
          std::vector<Embedding> surviving;
          surviving.reserve(surviving_idx.size());
          for (size_t e : surviving_idx) surviving.push_back((*embeddings)[e]);
          // Score with the enriched structure: edge-conflict measures need
          // the new edge to exist in the pattern.
          Pattern enriched = *pattern;
          enriched.AddEdge(i, j, edge_label);
          const int64_t s =
              ComputeSupport(measure, enriched, surviving, context);
          if (s < min_support) continue;
          if (s > best.support) {
            best.i = i;
            best.j = j;
            best.edge_label = edge_label;
            best.support = s;
            best.surviving = std::move(surviving);
          }
        }
      }
    }
    if (best.i < 0) break;
    pattern->AddEdge(best.i, best.j, best.edge_label);
    *embeddings = std::move(best.surviving);
    if (support != nullptr) *support = best.support;
    ++added;
  }
  return added;
}

}  // namespace spidermine
