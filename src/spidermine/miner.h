#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "pattern/embedding.h"
#include "pattern/pattern.h"
#include "spidermine/config.h"

/// \file miner.h
/// The SpiderMine driver (paper Algorithm 1): Stage I mines all r-spiders,
/// Stage II draws M random seed spiders and grows them for Dmax/(2r)
/// iterations with merging, keeping only merge products, and Stage III
/// grows the survivors to a fixpoint and returns the K largest patterns.

namespace spidermine {

/// One returned pattern.
struct MinedPattern {
  Pattern pattern;
  /// Embeddings known for the pattern (capped; see MineConfig).
  std::vector<Embedding> embeddings;
  /// Support under the configured measure.
  int64_t support = 0;
  /// True when the pattern descends from a Stage II merge.
  bool from_merge = false;

  /// Paper's |P|: edge count.
  int32_t NumEdges() const { return pattern.NumEdges(); }
  int32_t NumVertices() const { return pattern.NumVertices(); }
};

/// Output of a Mine() run.
struct MineResult {
  /// Top-K patterns, sorted by size (edge count) descending, ties broken by
  /// vertex count then support.
  std::vector<MinedPattern> patterns;
  MineStats stats;
};

/// Runs SpiderMine over a single network.
class SpiderMiner {
 public:
  /// \p graph is borrowed and must outlive the miner.
  SpiderMiner(const LabeledGraph* graph, MineConfig config);

  /// Executes the three stages. Fails on invalid configuration; resource
  /// caps do not fail the run but are reported in MineResult::stats.
  Result<MineResult> Mine();

 private:
  const LabeledGraph* graph_;
  MineConfig config_;
};

}  // namespace spidermine
