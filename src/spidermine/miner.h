#pragma once

#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "spidermine/config.h"
#include "spidermine/session.h"

/// \file miner.h
/// The legacy single-shot SpiderMine driver (paper Algorithm 1), kept as a
/// thin compatibility shim over the session API: `Mine()` builds a
/// `MiningSession` (Stage I), runs one `TopKQuery` (Stages II+III) and
/// merges the stats back into the fused `MineResult` shape. Results are
/// byte-identical to the pre-session driver.
///
/// Deprecation path: new code — anything that mines a graph more than once,
/// sweeps query parameters, or serves interactive requests — should hold a
/// `MiningSession` (spidermine/session.h) and call `RunQuery` per request;
/// Stage I then runs once per graph instead of once per call. SpiderMiner
/// remains supported for one-shot mining and existing callers, but new
/// knobs land on SessionConfig/QueryConfig first. `Mine()` carries a
/// [[deprecated]] attribute with that migration note; translation units
/// whose purpose is the shim itself (its contract tests, the fused `mine`
/// subcommand, the bench baseline) silence the warning locally with
/// `#pragma GCC diagnostic ignored "-Wdeprecated-declarations"`.

namespace spidermine {

/// Output of a Mine() run.
struct MineResult {
  /// Top-K patterns, sorted by size (edge count) descending, ties broken by
  /// vertex count then support.
  std::vector<MinedPattern> patterns;
  MineStats stats;
};

/// Runs SpiderMine over a single network: one session, one query.
class SpiderMiner {
 public:
  /// \p graph is borrowed and must outlive the miner.
  SpiderMiner(const LabeledGraph* graph, MineConfig config);

  /// Executes the three stages. Fails on invalid configuration; resource
  /// caps do not fail the run but are reported in MineResult::stats.
  [[deprecated(
      "SpiderMiner::Mine() re-runs Stage I on every call; hold a "
      "MiningSession (spidermine/session.h) and call RunQuery per request "
      "instead -- Stage I is then paid once per graph. See "
      "docs/SERVING.md.")]]
  Result<MineResult> Mine();

 private:
  const LabeledGraph* graph_;
  MineConfig config_;
};

}  // namespace spidermine
