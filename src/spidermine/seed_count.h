#pragma once

#include <cstdint>

#include "common/result.h"

/// \file seed_count.h
/// The randomized-guarantee arithmetic of the paper's Lemma 2:
///
///   P_success >= (1 - (M+1) (1 - Vmin/|V(G)|)^M)^K
///
/// Solving P_success >= 1 - epsilon for the smallest M gives the number of
/// seed spiders to draw. The paper's worked example (epsilon = 0.1, K = 10,
/// Vmin = |V|/10) quotes M = 85; the exact smallest integer satisfying the
/// bound is 86 (the bound evaluates to 0.8942 at M = 85), which the unit
/// tests pin down and EXPERIMENTS.md discusses.

namespace spidermine {

/// Evaluates the Lemma 2 lower bound on P_success for a given draw size M.
/// Returns a value in [0, 1] (clamped; the bound is vacuous when
/// (M+1)(1-p)^M >= 1).
double SeedSuccessLowerBound(int64_t num_vertices, int64_t vmin, int32_t k,
                             int64_t m);

/// Smallest M with SeedSuccessLowerBound(...) >= 1 - epsilon.
///
/// Fails with kInvalidArgument for nonsensical inputs and with
/// kResourceExhausted when no M up to \p max_m satisfies the bound
/// (epsilon too small for the graph).
Result<int64_t> ComputeSeedCount(int64_t num_vertices, int64_t vmin,
                                 int32_t k, double epsilon,
                                 int64_t max_m = 10'000'000);

}  // namespace spidermine
