#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

/// \file result_cache.h
/// A deterministic query result cache for the serving tier.
///
/// The session API's amortization bet — mine Stage I once, answer many
/// top-K queries — extends one level up: under real traffic identical
/// queries repeat, and because top-K results are byte-deterministic at any
/// thread count (docs/SERVING.md, determinism contract), a cached result
/// is *exactly* the result a recomputation would produce, not an
/// approximation. The cache therefore stores the fully rendered response
/// payload of a completed query and returns it verbatim on a repeat.
///
/// Keying: (canonicalized QueryConfig hash, Stage I content key). The
/// query side is `QueryConfig::CanonicalHash` (config.h) — semantically
/// identical requests (e.g. `min_support: 0` vs. the explicit session
/// floor) normalize to the same hash. The artifact side is
/// `MiningSession::stage1_content_key()`, which changes whenever the
/// graph or the mined spider set does, so entries cached against one
/// artifact can never answer for another.
///
/// Bounded LRU: both an entry cap and a byte cap, strict
/// least-recently-used eviction (lookup hits refresh recency), so the
/// eviction sequence is a deterministic function of the access sequence.
/// Either cap set to 0 disables the cache entirely: Lookup always misses
/// and counts nothing, Insert is a no-op — the disabled cache is free.
///
/// Thread-safety: one mutex guards the map, the recency list and the
/// counters. Serving workloads hold the lock for a hash lookup plus a
/// list splice — microseconds against the milliseconds-to-seconds of a
/// query recomputation — so a single lock does not bound throughput
/// before RunQuery does.

namespace spidermine {

/// Capacity limits of a ResultCache. Either cap at 0 disables the cache.
struct ResultCacheConfig {
  /// Maximum number of cached responses.
  int64_t max_entries = 256;
  /// Maximum sum of cached payload bytes (keys and bookkeeping are not
  /// counted; payloads dominate).
  int64_t max_bytes = 64 * 1024 * 1024;
};

/// Counters of one cache, snapshot under the lock by `stats()`.
struct ResultCacheStats {
  int64_t hits = 0;        ///< lookups answered from the cache
  int64_t misses = 0;      ///< lookups that found nothing
  int64_t insertions = 0;  ///< payloads stored
  int64_t evictions = 0;   ///< entries removed to respect the caps
  int64_t entries = 0;     ///< current resident entries
  int64_t bytes = 0;       ///< current resident payload bytes

  /// One-line rendering for the serve summary.
  std::string ToString() const;
};

/// A bounded, mutex-protected LRU cache of rendered query responses.
class ResultCache {
 public:
  explicit ResultCache(ResultCacheConfig config) : config_(config) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cache key: canonical query hash x Stage I content key.
  struct Key {
    uint64_t query_hash = 0;
    uint64_t stage1_key = 0;
    bool operator==(const Key& other) const {
      return query_hash == other.query_hash && stage1_key == other.stage1_key;
    }
  };

  /// False when either cap is 0: every operation is then a no-op.
  bool enabled() const {
    return config_.max_entries > 0 && config_.max_bytes > 0;
  }

  /// Returns the cached payload and refreshes its recency, or nullopt.
  /// Counts a hit or a miss; a disabled cache counts nothing.
  std::optional<std::string> Lookup(const Key& key);

  /// Stores \p payload under \p key, evicting least-recently-used entries
  /// until both caps hold. A payload larger than max_bytes on its own is
  /// not cached (it could only evict everything and then overflow). An
  /// insert under an existing key refreshes the payload and recency.
  void Insert(const Key& key, std::string payload);

  /// Snapshot of the counters (thread-safe copy).
  ResultCacheStats stats() const;

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const {
      // Mix the two 64-bit halves (splitmix64 finalizer) so unordered_map
      // bucketing does not degenerate when stage1_key is constant, which
      // it is for every single-artifact server.
      uint64_t x = key.query_hash ^ (key.stage1_key * 0x9e3779b97f4a7c15ULL);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<size_t>(x);
    }
  };

  struct Entry {
    Key key;
    std::string payload;
  };

  /// Unlinks the least-recently-used entry. Caller holds the lock.
  void EvictOneLocked();

  const ResultCacheConfig config_;
  mutable std::mutex mu_;
  /// Recency order: front = most recently used, back = eviction candidate.
  std::list<Entry> lru_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  ResultCacheStats stats_;
};

}  // namespace spidermine
