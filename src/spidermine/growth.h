#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "graph/labeled_graph.h"
#include "pattern/embedding.h"
#include "pattern/embedding_list.h"
#include "pattern/pattern.h"
#include "pattern/spider_set.h"
#include "spider/spider_index.h"
#include "spidermine/config.h"

/// \file growth.h
/// The SpiderGrow / SpiderExtend / CheckMerge machinery (paper Algorithms
/// 2-4). A growth round expands every in-flight pattern by one spider layer
/// (radius +r), detecting merges through shared spider anchors.
///
/// Parallel execution model: each input pattern's intra-round expansion (a
/// "lineage") is independent of every other lineage, so lineages run on
/// ThreadPool workers, each writing into its own pre-sized slot with its own
/// stat counters. The coordinating thread then folds lineages in input
/// order -- cross-lineage dedup, id assignment, and registry remap happen
/// serially in a stable order. The CheckMerge pass builds each colliding
/// anchor bucket's union candidates on the workers (every bucket reads the
/// same pre-merge snapshot) and admits them in a serial sorted-key fold --
/// so the round's output is identical at any thread count.

namespace spidermine {

/// An in-flight pattern during Stage II / III growth.
struct GrowthPattern {
  Pattern pattern;
  /// Known embeddings E[P] (occurrence-list growth semantics: embeddings of
  /// an extension are extensions of these).
  std::vector<Embedding> embeddings;
  /// Carried COMPLETE embedding list (embedding-list engine,
  /// pattern/embedding_list.h): when present and not saturated, exactly the
  /// E[P] a VF2 search would enumerate, maintained incrementally across
  /// growth rounds so closure never re-discovers it. Null when the engine
  /// is off (embedding_list_budget = 0); saturated once any ancestor
  /// overflowed the budget. Never consulted for growth decisions — the
  /// occurrence list above keeps those byte-identical across modes.
  EmbeddingListRef full_list;
  /// Support under the configured measure.
  int64_t support = 0;
  /// Frontier pattern vertices eligible for spider extension this round
  /// (B[P] in the paper: the outermost layer).
  std::vector<VertexId> boundary;
  /// Vertices added this round; becomes the next round's boundary.
  std::vector<VertexId> next_boundary;
  /// Position of the boundary vertex currently being examined
  /// (the paper's P.pointer).
  size_t cursor = 0;
  /// True when this pattern is a merge result or descends from one
  /// (Stage II keeps only such patterns).
  bool merged_ever = false;
  /// Spider-set representation for the isomorphism filter.
  SpiderSetRepr spider_set;
  /// Cached PatternIsoHash of `pattern` (0 = not yet computed). Filled
  /// lazily by the dedup scans; valid because a GrowthPattern's pattern is
  /// never mutated after construction (extensions build fresh candidates).
  uint64_t iso_hash = 0;
  /// Unique id for merge bookkeeping (assigned by the coordinating thread
  /// in a deterministic order).
  int64_t id = 0;
  /// True once the pattern failed to grow in a full round (Stage III
  /// fixpoint detection).
  bool exhausted = false;
};

/// Result of one growth round.
struct GrowRoundResult {
  std::vector<GrowthPattern> patterns;
  /// True when at least one extension or merge happened.
  bool any_growth = false;
  /// True when max_patterns_per_round or cancellation suppressed
  /// extensions.
  bool truncated = false;
};

/// Spider-usage registry for merge detection: the paper's Buf_pre/Buf_cur.
/// Key = (spider id, graph anchor vertex); value = ids of patterns that
/// used that spider there.
using MergeRegistry = std::unordered_map<uint64_t, std::vector<int64_t>>;

/// Executes growth rounds against a fixed graph + spider set.
class GrowthEngine {
 public:
  /// All references are borrowed and must outlive the engine. \p session
  /// carries the graph-scoped parameters (spider radius, transaction map);
  /// \p query the per-query knobs — its min_support must already be
  /// resolved to a concrete threshold (MiningSession::RunQuery maps the
  /// 0 = "session floor" sentinel before constructing an engine). A
  /// non-null \p deadline is polled inside rounds so the configured time
  /// budget bounds even a single expensive round. A non-null \p pool
  /// parallelizes seeding and per-lineage round expansion (results stay
  /// identical at any thread count); \p token adds cooperative mid-round
  /// cancellation on the workers.
  GrowthEngine(const LabeledGraph* graph, const SpiderIndex* index,
               const SessionConfig* session, const QueryConfig* query,
               MineStats* stats, const Deadline* deadline = nullptr,
               ThreadPool* pool = nullptr,
               const CancellationToken* token = nullptr);

  /// Builds the initial GrowthPattern for the seed spider with store id
  /// \p spider_id (embeddings enumerated per anchor, boundary = outermost
  /// layer).
  GrowthPattern SeedFromSpider(int32_t spider_id);

  /// Builds seeds for every spider id in \p picks, in order, fanning the
  /// per-spider embedding enumeration out over the pool. Equivalent to
  /// calling SeedFromSpider on each pick in sequence (same ids, same
  /// stats), but parallel.
  std::vector<GrowthPattern> SeedPatterns(const std::vector<int32_t>& picks);

  /// One SpiderGrow round over \p input: every pattern is extended at every
  /// boundary vertex with every compatible spider (paper Algorithm 2), with
  /// spider-set dedup, closedness pruning and merge detection. When
  /// \p enable_merging, patterns sharing a (spider, anchor) are merged
  /// (Algorithm 4) using the previous round's registry \p previous.
  GrowRoundResult GrowRound(std::vector<GrowthPattern> input,
                            bool enable_merging, MergeRegistry* previous);

  /// Recomputes support for \p gp under the configured measure.
  int64_t Support(const GrowthPattern& gp) const;

  /// Binds the current restart run's transaction sample (sorted whitelist;
  /// borrowed, nullptr = count all transactions) for kTransaction support.
  /// Callers set it between runs — the engine is query-local and runs are
  /// serial, so no synchronization is involved.
  void SetTxnSample(const std::vector<int32_t>* sample) {
    txn_sample_ = sample;
  }

 private:
  struct RoundState;
  struct Lineage;
  struct LocalStats;

  /// True once the bound token or deadline requests a stop.
  bool Cancelled() const;

  /// Seed construction with stats written to \p local (worker-safe; no
  /// shared-state writes).
  GrowthPattern BuildSeed(int32_t spider_id, LocalStats* local) const;

  /// Runs the full intra-round expansion of one input pattern into \p ls,
  /// admitting at most \p pattern_cap patterns (the round's global
  /// max_patterns_per_round budget divided across lineages). Worker-safe:
  /// touches only \p ls and shared read-only state.
  void ExpandLineage(GrowthPattern input, Lineage* ls,
                     int64_t pattern_cap) const;

  /// SpiderExtend (Algorithm 3): extends \p ls->pool[base_idx] at boundary
  /// vertex \p v with spider \p spider_id. \p sorted_images caches
  /// SortedImage() of the base embeddings (hoisted across candidate
  /// spiders). Returns false when the extension is infrequent or
  /// impossible; on success appends to the lineage.
  bool TryExtend(Lineage* ls, int64_t base_idx, VertexId v,
                 int32_t spider_id,
                 const std::vector<std::vector<VertexId>>& sorted_images,
                 bool* support_preserved) const;

  /// Runs CheckMerge for all colliding registry keys. The examined pattern
  /// pairs (the expensive part: overlap collection, union-instance
  /// building, support counting) are flattened across buckets and fan out
  /// over the pool individually against the pre-merge pool snapshot, so a
  /// single hot anchor bucket no longer serializes the pass; a serial fold
  /// then admits candidates in sorted (key, pair) order, so the outcome is
  /// identical at any thread count.
  void RunMerges(RoundState* rs, MergeRegistry* previous);

  const LabeledGraph* graph_;
  const SpiderIndex* index_;
  const SessionConfig* session_;
  const QueryConfig* query_;
  MineStats* stats_;
  const Deadline* deadline_;
  ThreadPool* pool_;
  const CancellationToken* token_;
  int64_t next_id_ = 1;
  /// Effective carried-list budget: the query's embedding_list_budget
  /// clamped to max_embeddings_per_pattern, so an unsaturated carried list
  /// is never larger than what the VF2 fallback was allowed to return
  /// (otherwise a truncating VF2 and a complete list could disagree).
  /// 0 = engine off.
  int64_t list_budget_ = 0;
  /// Carried lists enumerate homomorphic E[P] (kHomomorphism queries).
  /// Growth decisions still use the injective occurrence list — only the
  /// complete list handed to closure switches semantics.
  bool homomorphic_ = false;
  /// Current restart run's transaction whitelist (see SetTxnSample).
  const std::vector<int32_t>* txn_sample_ = nullptr;
};

}  // namespace spidermine
