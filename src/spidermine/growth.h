#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "graph/labeled_graph.h"
#include "pattern/embedding.h"
#include "pattern/pattern.h"
#include "pattern/spider_set.h"
#include "spider/spider_index.h"
#include "spidermine/config.h"

/// \file growth.h
/// The SpiderGrow / SpiderExtend / CheckMerge machinery (paper Algorithms
/// 2-4). A growth round expands every in-flight pattern by one spider layer
/// (radius +r), detecting merges through shared spider anchors.

namespace spidermine {

/// An in-flight pattern during Stage II / III growth.
struct GrowthPattern {
  Pattern pattern;
  /// Known embeddings E[P] (occurrence-list growth semantics: embeddings of
  /// an extension are extensions of these).
  std::vector<Embedding> embeddings;
  /// Support under the configured measure.
  int64_t support = 0;
  /// Frontier pattern vertices eligible for spider extension this round
  /// (B[P] in the paper: the outermost layer).
  std::vector<VertexId> boundary;
  /// Vertices added this round; becomes the next round's boundary.
  std::vector<VertexId> next_boundary;
  /// Position of the boundary vertex currently being examined
  /// (the paper's P.pointer).
  size_t cursor = 0;
  /// True when this pattern is a merge result or descends from one
  /// (Stage II keeps only such patterns).
  bool merged_ever = false;
  /// Spider-set representation for the isomorphism filter.
  SpiderSetRepr spider_set;
  /// Unique id for merge bookkeeping.
  int64_t id = 0;
  /// True once the pattern failed to grow in a full round (Stage III
  /// fixpoint detection).
  bool exhausted = false;
};

/// Result of one growth round.
struct GrowRoundResult {
  std::vector<GrowthPattern> patterns;
  /// True when at least one extension or merge happened.
  bool any_growth = false;
  /// True when max_patterns_per_round suppressed extensions.
  bool truncated = false;
};

/// Spider-usage registry for merge detection: the paper's Buf_pre/Buf_cur.
/// Key = (spider id, graph anchor vertex); value = ids of patterns that
/// used that spider there.
using MergeRegistry = std::unordered_map<uint64_t, std::vector<int64_t>>;

/// Executes growth rounds against a fixed graph + spider set.
class GrowthEngine {
 public:
  /// All references are borrowed and must outlive the engine. A non-null
  /// \p deadline is polled inside rounds so the configured time budget
  /// bounds even a single expensive round.
  GrowthEngine(const LabeledGraph* graph, const SpiderIndex* index,
               const MineConfig* config, MineStats* stats, Rng* rng,
               const Deadline* deadline = nullptr);

  /// Builds the initial GrowthPattern for a seed spider (embeddings
  /// enumerated per anchor, boundary = outermost layer).
  GrowthPattern SeedFromSpider(const Spider& spider);

  /// One SpiderGrow round over \p input: every pattern is extended at every
  /// boundary vertex with every compatible spider (paper Algorithm 2), with
  /// spider-set dedup, closedness pruning and merge detection. When
  /// \p enable_merging, patterns sharing a (spider, anchor) are merged
  /// (Algorithm 4) using the previous round's registry \p previous.
  GrowRoundResult GrowRound(std::vector<GrowthPattern> input,
                            bool enable_merging, MergeRegistry* previous);

  /// Recomputes support for \p gp under the configured measure.
  int64_t Support(const GrowthPattern& gp) const;

 private:
  struct RoundState;

  /// SpiderExtend (Algorithm 3): extends \p base at boundary vertex \p v
  /// with spider \p spider_id. \p sorted_images caches SortedImage() of the
  /// base embeddings (hoisted across candidate spiders). Returns false when
  /// the extension is infrequent or impossible; on success appends to the
  /// round state.
  bool TryExtend(RoundState* rs, int64_t base_idx, VertexId v,
                 int32_t spider_id,
                 const std::vector<std::vector<VertexId>>& sorted_images,
                 bool* support_preserved);

  /// Spider-set dedup (SpiderSetCheck): returns the pool index of an
  /// isomorphic existing pattern or -1.
  int64_t FindDuplicate(RoundState* rs, const GrowthPattern& candidate);

  /// Runs CheckMerge for all colliding registry keys.
  void RunMerges(RoundState* rs, MergeRegistry* previous);

  const LabeledGraph* graph_;
  const SpiderIndex* index_;
  const MineConfig* config_;
  MineStats* stats_;
  Rng* rng_;
  const Deadline* deadline_;
  int64_t next_id_ = 1;
};

}  // namespace spidermine
