#include <sstream>

#include "common/strings.h"
#include "spidermine/config.h"
#include "spidermine/session.h"

namespace spidermine {

// SessionConfig/QueryConfig/MineConfig methods live in config.cc; this
// file renders the stats aggregates.

std::string SessionServingStats::ToString() const {
  std::ostringstream os;
  const double mean =
      queries_run > 0 ? total_query_seconds / static_cast<double>(queries_run)
                      : 0.0;
  os << queries_run << " queries served, " << patterns_returned
     << " patterns returned, latency mean/max " << mean << "/"
     << max_query_seconds << "s, emb carried/fallback " << emb_carried << "/"
     << vf2_fallbacks;
  if (homomorphism_queries > 0) {
    os << ", " << homomorphism_queries << " homomorphism";
  }
  if (txn_sampled_queries > 0) {
    os << ", " << txn_sampled_queries << " txn-sampled";
  }
  if (timed_out_queries > 0) {
    os << ", " << timed_out_queries << " hit their time budget";
  }
  if (cache_hits + cache_misses > 0) {
    os << ", cache " << cache_hits << " hits / " << cache_misses
       << " misses (" << cache_bytes / 1024 << " KiB resident, "
       << cache_evictions << " evicted)";
  }
  return os.str();
}

void MineStats::FoldStage1(const MineStats& stage1) {
  num_spiders = stage1.num_spiders;
  num_closed_spiders = stage1.num_closed_spiders;
  stage1_store_bytes = stage1.stage1_store_bytes;
  stage1_scan_shards = stage1.stage1_scan_shards;
  stage1_enum_shards = stage1.stage1_enum_shards;
  stage1_steps = stage1.stage1_steps;
  stage1_seconds = stage1.stage1_seconds;
  timed_out = timed_out || stage1.timed_out;
}

std::string MineStats::ToString() const {
  std::ostringstream os;
  os << "support: " << SupportMeasureName(support_measure);
  if (txn_sample_size > 0) {
    os << ", txn sample " << txn_sample_size << " per run";
  }
  os << "\n"
     << "stage I: " << num_spiders << " spiders (" << num_closed_spiders
     << " closed) in " << stage1_seconds << "s, " << stage1_steps
     << " extension attempts, " << stage1_scan_shards << " scan + "
     << stage1_enum_shards << " enum shards, store "
     << stage1_store_bytes / 1024 << " KiB\n"
     << "stage II: M=" << seed_count_m << ", " << stage2_iterations
     << " iterations, " << merges << " merges (" << merge_attempts
     << " pairs examined), " << pruned_unmerged << " unmerged pruned, "
     << stage2_seconds << "s\n"
     << "stage III: " << stage3_rounds << " rounds, " << stage3_seconds
     << "s\n"
     << "growth: " << extend_calls << " extend calls, " << growth_steps
     << " spider appends, " << nonclosed_dropped << " non-closed dropped\n"
     << "isomorphism: " << iso_checks_skipped << " skipped by spider-set, "
     << iso_checks_run << " run\n"
     << "embedding lists: " << emb_extensions << " extensions, "
     << emb_carried << " closure candidates carried, " << vf2_fallbacks
     << " VF2 fallbacks\n"
     << "closure: " << closure_edges_added << " internal edges restored\n"
     << "caps: " << embedding_cap_hits << " embedding, " << pattern_cap_hits
     << " pattern" << (timed_out ? "; TIME BUDGET EXPIRED" : "") << "\n"
     << "total: " << total_seconds << "s\n";
  return os.str();
}

}  // namespace spidermine
