#include <sstream>

#include "spidermine/config.h"

namespace spidermine {

std::string MineStats::ToString() const {
  std::ostringstream os;
  os << "stage I: " << num_spiders << " spiders (" << num_closed_spiders
     << " closed) in " << stage1_seconds << "s, " << stage1_steps
     << " extension attempts, " << stage1_scan_shards << " scan + "
     << stage1_enum_shards << " enum shards, store "
     << stage1_store_bytes / 1024 << " KiB\n"
     << "stage II: M=" << seed_count_m << ", " << stage2_iterations
     << " iterations, " << merges << " merges (" << merge_attempts
     << " pairs examined), " << pruned_unmerged << " unmerged pruned, "
     << stage2_seconds << "s\n"
     << "stage III: " << stage3_rounds << " rounds, " << stage3_seconds
     << "s\n"
     << "growth: " << extend_calls << " extend calls, " << growth_steps
     << " spider appends, " << nonclosed_dropped << " non-closed dropped\n"
     << "isomorphism: " << iso_checks_skipped << " skipped by spider-set, "
     << iso_checks_run << " run\n"
     << "closure: " << closure_edges_added << " internal edges restored\n"
     << "caps: " << embedding_cap_hits << " embedding, " << pattern_cap_hits
     << " pattern" << (timed_out ? "; TIME BUDGET EXPIRED" : "") << "\n"
     << "total: " << total_seconds << "s\n";
  return os.str();
}

}  // namespace spidermine
