#include <sstream>

#include "common/strings.h"
#include "spidermine/config.h"
#include "spidermine/session.h"

namespace spidermine {

Status SessionConfig::Validate() const {
  if (min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (spider_radius != 1) {
    return Status::InvalidArgument(
        "the growth engine implements spider_radius = 1 (the paper's own "
        "implementation choice); use MineBallSpiders for larger radii");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (stage1_shard_grain < 0) {
    return Status::InvalidArgument(
        "stage1_shard_grain must be >= 0 (0 = automatic)");
  }
  return Status::Ok();
}

Status QueryConfig::Validate() const {
  if (min_support < 0) {
    return Status::InvalidArgument(
        "query min_support must be >= 0 (0 = the session's mined floor)");
  }
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (dmax < 1) return Status::InvalidArgument("dmax must be >= 1");
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (embedding_list_budget < 0) {
    return Status::InvalidArgument(
        "embedding_list_budget must be >= 0 (0 = VF2-only closure)");
  }
  return Status::Ok();
}

SessionConfig MineConfig::SessionPart() const {
  SessionConfig session;
  session.min_support = min_support;
  session.spider_radius = spider_radius;
  session.max_star_leaves = max_star_leaves;
  session.max_spiders = max_spiders;
  session.num_threads = num_threads;
  session.pool = pool;
  session.stage1_shard_grain = stage1_shard_grain;
  session.stage1_time_budget_seconds = time_budget_seconds;
  session.txn_of_vertex = txn_of_vertex;
  return session;
}

QueryConfig MineConfig::QueryPart() const {
  QueryConfig query;
  query.min_support = 0;  // resolves to the session floor (= min_support)
  query.k = k;
  query.epsilon = epsilon;
  query.dmax = dmax;
  query.vmin = vmin;
  query.support_measure = support_measure;
  query.rng_seed = rng_seed;
  query.seed_count_override = seed_count_override;
  query.restarts = restarts;
  query.max_embeddings_per_pattern = max_embeddings_per_pattern;
  query.embedding_list_budget = embedding_list_budget;
  query.max_patterns_per_round = max_patterns_per_round;
  query.max_seed_embeddings_per_anchor = max_seed_embeddings_per_anchor;
  query.max_merge_pairs_per_key = max_merge_pairs_per_key;
  query.max_union_instances = max_union_instances;
  query.stage3_max_rounds = stage3_max_rounds;
  query.max_results = max_results;
  query.time_budget_seconds = time_budget_seconds;
  query.use_closed_spiders_only = use_closed_spiders_only;
  query.close_internal_edges = close_internal_edges;
  query.closure_window = closure_window;
  query.enforce_dmax_on_results = enforce_dmax_on_results;
  query.keep_unmerged = keep_unmerged;
  return query;
}

std::string SessionServingStats::ToString() const {
  std::ostringstream os;
  const double mean =
      queries_run > 0 ? total_query_seconds / static_cast<double>(queries_run)
                      : 0.0;
  os << queries_run << " queries served, " << patterns_returned
     << " patterns returned, latency mean/max " << mean << "/"
     << max_query_seconds << "s, emb carried/fallback " << emb_carried << "/"
     << vf2_fallbacks;
  if (timed_out_queries > 0) {
    os << ", " << timed_out_queries << " hit their time budget";
  }
  return os.str();
}

void MineStats::FoldStage1(const MineStats& stage1) {
  num_spiders = stage1.num_spiders;
  num_closed_spiders = stage1.num_closed_spiders;
  stage1_store_bytes = stage1.stage1_store_bytes;
  stage1_scan_shards = stage1.stage1_scan_shards;
  stage1_enum_shards = stage1.stage1_enum_shards;
  stage1_steps = stage1.stage1_steps;
  stage1_seconds = stage1.stage1_seconds;
  timed_out = timed_out || stage1.timed_out;
}

std::string MineStats::ToString() const {
  std::ostringstream os;
  os << "stage I: " << num_spiders << " spiders (" << num_closed_spiders
     << " closed) in " << stage1_seconds << "s, " << stage1_steps
     << " extension attempts, " << stage1_scan_shards << " scan + "
     << stage1_enum_shards << " enum shards, store "
     << stage1_store_bytes / 1024 << " KiB\n"
     << "stage II: M=" << seed_count_m << ", " << stage2_iterations
     << " iterations, " << merges << " merges (" << merge_attempts
     << " pairs examined), " << pruned_unmerged << " unmerged pruned, "
     << stage2_seconds << "s\n"
     << "stage III: " << stage3_rounds << " rounds, " << stage3_seconds
     << "s\n"
     << "growth: " << extend_calls << " extend calls, " << growth_steps
     << " spider appends, " << nonclosed_dropped << " non-closed dropped\n"
     << "isomorphism: " << iso_checks_skipped << " skipped by spider-set, "
     << iso_checks_run << " run\n"
     << "embedding lists: " << emb_extensions << " extensions, "
     << emb_carried << " closure candidates carried, " << vf2_fallbacks
     << " VF2 fallbacks\n"
     << "closure: " << closure_edges_added << " internal edges restored\n"
     << "caps: " << embedding_cap_hits << " embedding, " << pattern_cap_hits
     << " pattern" << (timed_out ? "; TIME BUDGET EXPIRED" : "") << "\n"
     << "total: " << total_seconds << "s\n";
  return os.str();
}

}  // namespace spidermine
