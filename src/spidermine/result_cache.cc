#include "spidermine/result_cache.h"

#include <sstream>
#include <utility>

namespace spidermine {

std::string ResultCacheStats::ToString() const {
  std::ostringstream os;
  os << "cache " << hits << " hits / " << misses << " misses, " << entries
     << " entries (" << bytes / 1024 << " KiB), " << evictions << " evicted";
  return os.str();
}

std::optional<std::string> ResultCache::Lookup(const Key& key) {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  // Refresh recency: splice the entry to the front without reallocating.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->payload;
}

void ResultCache::Insert(const Key& key, std::string payload) {
  if (!enabled()) return;
  const int64_t size = static_cast<int64_t>(payload.size());
  if (size > config_.max_bytes) return;  // could never fit
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent computations of the same query insert the same
    // deterministic payload; refresh bytes and recency either way.
    stats_.bytes += size - static_cast<int64_t>(it->second->payload.size());
    it->second->payload = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(payload)});
    index_.emplace(key, lru_.begin());
    stats_.bytes += size;
    ++stats_.entries;
    ++stats_.insertions;
  }
  while (stats_.entries > config_.max_entries ||
         stats_.bytes > config_.max_bytes) {
    EvictOneLocked();
  }
}

void ResultCache::EvictOneLocked() {
  const Entry& victim = lru_.back();
  stats_.bytes -= static_cast<int64_t>(victim.payload.size());
  --stats_.entries;
  ++stats_.evictions;
  index_.erase(victim.key);
  lru_.pop_back();
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace spidermine
