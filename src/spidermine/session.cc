#include "spidermine/session.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "graph/binary_format.h"
#include "pattern/dfs_code.h"
#include "pattern/spider_set.h"
#include "pattern/vf2.h"
#include "spider/spider_store_io.h"
#include "spider/spider_store_mmap.h"
#include "spider/star_miner.h"
#include "spidermine/closure.h"
#include "spidermine/growth.h"
#include "spidermine/seed_count.h"

namespace spidermine {

namespace {

/// Size-ordering used for the paper's "list sorted by size": edge count
/// first (the paper's |P|), then vertex count, then support.
bool LargerPattern(const MinedPattern& a, const MinedPattern& b) {
  if (a.NumEdges() != b.NumEdges()) return a.NumEdges() > b.NumEdges();
  if (a.NumVertices() != b.NumVertices()) {
    return a.NumVertices() > b.NumVertices();
  }
  return a.support > b.support;
}

/// Accumulates every discovered pattern, deduplicating by spider-set +
/// exact isomorphism, keeping the best-support variant.
class ResultCollector {
 public:
  ResultCollector(const QueryConfig* query, int32_t spider_radius,
                  MineStats* stats)
      : query_(query), spider_radius_(spider_radius), stats_(stats) {}

  void Add(const GrowthPattern& gp) {
    uint64_t digest = gp.spider_set.digest();
    auto [it, inserted] = buckets_.try_emplace(digest);
    // The growth engine usually cached the candidate's WL fingerprint
    // already; 0 = compute lazily at the first bucket comparison.
    uint64_t gp_hash = gp.iso_hash;
    for (int64_t idx : it->second) {
      MinedPattern& existing = results_[idx];
      // Iso-hash prefilter: a fingerprint mismatch certifies
      // non-isomorphism without running VF2.
      if (gp_hash == 0) gp_hash = PatternIsoHash(gp.pattern);
      if (hashes_[idx] == 0) {
        hashes_[idx] = PatternIsoHash(existing.pattern);
      }
      if (hashes_[idx] != gp_hash) {
        ++stats_->iso_checks_skipped;
        continue;
      }
      ++stats_->iso_checks_run;
      if (ArePatternsIsomorphic(existing.pattern, gp.pattern)) {
        if (gp.support > existing.support) {
          // Replace the pattern together with its embeddings and carried
          // list: the incumbent may be an isomorphic variant with a
          // DIFFERENT vertex numbering, and embeddings/lists are only
          // meaningful in their own pattern's numbering. (The digest and
          // WL-hash bucket keys are isomorphism-invariant, so the cached
          // bucket entry and hashes_[idx] stay valid.)
          existing.pattern = gp.pattern;
          existing.support = gp.support;
          existing.embeddings = gp.embeddings;
          existing.full_list = gp.full_list;
        }
        existing.from_merge |= gp.merged_ever;
        return;
      }
    }
    MinedPattern mp;
    mp.pattern = gp.pattern;
    mp.embeddings = gp.embeddings;
    mp.full_list = gp.full_list;
    mp.support = gp.support;
    mp.from_merge = gp.merged_ever;
    it->second.push_back(static_cast<int64_t>(results_.size()));
    results_.push_back(std::move(mp));
    hashes_.push_back(gp_hash);  // may still be 0 (never compared)
    if (static_cast<int64_t>(results_.size()) >
        query_->max_results + kCompactionSlack) {
      Compact();
    }
  }

  std::vector<MinedPattern> TakeSorted() {
    std::sort(results_.begin(), results_.end(), LargerPattern);
    return std::move(results_);
  }

 private:
  static constexpr int64_t kCompactionSlack = 1024;

  void Compact() {
    std::sort(results_.begin(), results_.end(), LargerPattern);
    results_.resize(static_cast<size_t>(query_->max_results));
    buckets_.clear();
    // The sort permuted results_, so the cached fingerprints no longer
    // align; reset them (0 = recompute lazily on the next collision).
    hashes_.assign(results_.size(), 0);
    for (size_t i = 0; i < results_.size(); ++i) {
      SpiderSetRepr repr =
          SpiderSetRepr::Compute(results_[i].pattern, spider_radius_);
      buckets_[repr.digest()].push_back(static_cast<int64_t>(i));
    }
  }

  const QueryConfig* query_;
  int32_t spider_radius_;
  MineStats* stats_;
  std::vector<MinedPattern> results_;
  /// Cached PatternIsoHash per results_ entry, 0 = not yet computed.
  std::vector<uint64_t> hashes_;
  std::unordered_map<uint64_t, std::vector<int64_t>> buckets_;
};

/// Stride between per-run RNG substream seeds. Runs must not share a
/// stream: with a shared stream the amount of randomness run r consumes
/// would depend on earlier runs' control flow, while independent substreams
/// keep every run's draws fixed regardless of scheduling or truncation.
constexpr uint64_t kRunSeedStride = 0x9e3779b97f4a7c15ULL;  // 2^64 / phi

/// Salts the per-run substream used for the transaction-sample draw so it
/// never collides with the run's seed-spider draw (same run, same base
/// seed, independent stream).
constexpr uint64_t kTxnSampleSalt = 0x94d049bb133111ebULL;

/// The restart run's sorted transaction whitelist, drawn from the run's
/// salted substream. Empty = no sampling (txn_sample off, or the requested
/// size covers the whole universe).
std::vector<int32_t> DrawTxnSample(const QueryConfig& q, int32_t run,
                                   int64_t num_txns) {
  if (q.txn_sample <= 0 || q.txn_sample >= num_txns) return {};
  Rng rng(q.rng_seed ^ (kRunSeedStride * static_cast<uint64_t>(run)) ^
          kTxnSampleSalt);
  std::vector<size_t> picks = rng.SampleWithoutReplacement(
      static_cast<size_t>(num_txns), static_cast<size_t>(q.txn_sample));
  std::vector<int32_t> sample;
  sample.reserve(picks.size());
  for (size_t pick : picks) sample.push_back(static_cast<int32_t>(pick));
  std::sort(sample.begin(), sample.end());
  return sample;
}

}  // namespace

const char* Stage1LoadModeName(Stage1LoadMode mode) {
  switch (mode) {
    case Stage1LoadMode::kMined:
      return "mined";
    case Stage1LoadMode::kCopied:
      return "copied";
    case Stage1LoadMode::kMapped:
      return "mapped";
  }
  return "unknown";
}

void AccumulateTopK(std::vector<MinedPattern>* accumulated,
                    std::vector<MinedPattern> more, int64_t k) {
  // Per-entry WL fingerprints, computed at most once (0 = not yet): a
  // mismatch certifies non-isomorphism and skips the exact VF2 test.
  std::vector<uint64_t> kept_hashes(accumulated->size(), 0);
  for (MinedPattern& candidate : more) {
    bool duplicate = false;
    uint64_t candidate_hash = 0;
    for (size_t i = 0; i < accumulated->size(); ++i) {
      MinedPattern& kept = (*accumulated)[i];
      if (kept.NumEdges() != candidate.NumEdges() ||
          kept.NumVertices() != candidate.NumVertices()) {
        continue;
      }
      if (candidate_hash == 0) {
        candidate_hash = PatternIsoHash(candidate.pattern);
      }
      if (kept_hashes[i] == 0) kept_hashes[i] = PatternIsoHash(kept.pattern);
      if (kept_hashes[i] != candidate_hash) continue;
      if (ArePatternsIsomorphic(kept.pattern, candidate.pattern)) {
        // Same fold semantics as the in-query ResultCollector: best
        // support wins, the merge provenance flag is sticky either way.
        if (candidate.support > kept.support) {
          candidate.from_merge |= kept.from_merge;
          kept = std::move(candidate);
        } else {
          kept.from_merge |= candidate.from_merge;
        }
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      accumulated->push_back(std::move(candidate));
      kept_hashes.push_back(candidate_hash);  // may be 0 (never compared)
    }
  }
  std::sort(accumulated->begin(), accumulated->end(), LargerPattern);
  if (k > 0 && static_cast<int64_t>(accumulated->size()) > k) {
    accumulated->resize(static_cast<size_t>(k));
  }
}

Result<MiningSession> MiningSession::Create(const LabeledGraph* graph,
                                            SessionConfig config) {
  SM_RETURN_NOT_OK(config.Validate());
  MiningSession session;
  session.graph_ = graph;
  session.config_ = config;
  session.InitTxnState();
  session.pool_ = config.pool;
  if (session.pool_ == nullptr) {
    session.owned_pool_ = std::make_unique<ThreadPool>(
        config.num_threads > 0 ? config.num_threads
                               : ThreadPool::DefaultThreads());
    session.pool_ = session.owned_pool_.get();
  }

  // ---------------- Stage I: mine all spiders, exactly once. -------------
  WallTimer stage_timer;
  Deadline deadline(config.stage1_time_budget_seconds);
  CancellationToken cancel(&deadline);
  StarMinerConfig star_config;
  star_config.min_support = config.min_support;
  star_config.max_leaves = config.max_star_leaves;
  star_config.max_spiders = config.max_spiders;
  star_config.shard_grain = config.stage1_shard_grain;
  SM_ASSIGN_OR_RETURN(
      StarMineResult stars,
      MineStarSpiders(*graph, star_config, session.pool_, &cancel));
  session.store_ = std::make_unique<SpiderStore>(std::move(stars.store));
  session.stage1_truncated_ = stars.truncated;

  MineStats& stats = session.stage1_stats_;
  const SpiderStore& store = *session.store_;
  stats.num_spiders = store.size();
  stats.stage1_steps = stars.extension_attempts;
  stats.stage1_store_bytes = store.HeapBytes();
  stats.stage1_scan_shards = stars.num_scan_shards;
  stats.stage1_enum_shards = stars.num_enum_shards;
  for (int32_t id = 0; id < static_cast<int32_t>(store.size()); ++id) {
    if (store.closed(id)) ++stats.num_closed_spiders;
  }
  session.index_ =
      std::make_unique<SpiderIndex>(session.store_.get(),
                                    graph->NumVertices());
  stats.stage1_seconds = stage_timer.ElapsedSeconds();
  stats.total_seconds = stats.stage1_seconds;
  if (config.stage1_time_budget_seconds > 0 && cancel.IsCancelled()) {
    stats.timed_out = true;
  }
  return session;
}

Result<MiningSession> MiningSession::FromStore(const LabeledGraph* graph,
                                               SessionConfig config,
                                               SpiderStore store) {
  SM_RETURN_NOT_OK(config.Validate());
  // Anchors are graph vertex ids: an out-of-range anchor would corrupt the
  // index build and every downstream neighborhood scan, so a store is
  // checked against the graph it claims to describe before adoption.
  for (int32_t id = 0; id < static_cast<int32_t>(store.size()); ++id) {
    for (VertexId anchor : store.anchors(id)) {
      if (anchor < 0 || anchor >= graph->NumVertices()) {
        return Status::InvalidArgument(
            StrCat("spider ", id, " anchored at vertex ", anchor,
                   ", outside the graph's ", graph->NumVertices(),
                   " vertices (store/graph mismatch)"));
      }
    }
  }

  MiningSession session;
  session.graph_ = graph;
  session.config_ = config;
  session.InitTxnState();
  session.load_mode_ = Stage1LoadMode::kCopied;
  session.pool_ = config.pool;
  if (session.pool_ == nullptr) {
    session.owned_pool_ = std::make_unique<ThreadPool>(
        config.num_threads > 0 ? config.num_threads
                               : ThreadPool::DefaultThreads());
    session.pool_ = session.owned_pool_.get();
  }
  WallTimer stage_timer;
  session.store_ = std::make_unique<SpiderStore>(std::move(store));
  MineStats& stats = session.stage1_stats_;
  stats.num_spiders = session.store_->size();
  stats.stage1_store_bytes = session.store_->HeapBytes();
  for (int32_t id = 0; id < static_cast<int32_t>(session.store_->size());
       ++id) {
    if (session.store_->closed(id)) ++stats.num_closed_spiders;
  }
  session.index_ =
      std::make_unique<SpiderIndex>(session.store_.get(),
                                    graph->NumVertices());
  stats.stage1_seconds = stage_timer.ElapsedSeconds();
  stats.total_seconds = stats.stage1_seconds;
  return session;
}

Status MiningSession::SaveStage1(const std::string& path) const {
  Stage1Meta meta;
  meta.min_support = config_.min_support;
  meta.spider_radius = config_.spider_radius;
  meta.max_star_leaves = config_.max_star_leaves;
  meta.max_spiders = config_.max_spiders;
  meta.num_graph_vertices = graph_->NumVertices();
  meta.graph_hash = graph_->ContentHash();
  meta.truncated = stage1_truncated_;
  if (!Sm2HostSupported()) {
    // Big-endian hosts cannot lay the columns out for in-place reuse;
    // the portable legacy format still round-trips everywhere.
    return SaveSpiderStoreBinary(*store_, meta, path);
  }
  // Re-saving a mapped artifact must not launder tampered bytes into a
  // fresh file with valid checksums.
  if (mapped_ != nullptr) SM_RETURN_NOT_OK(mapped_->EnsureValidated());
  return SaveStage1Sm2(*store_, *index_, meta, path);
}

namespace {

/// Shared by both load paths: binds an artifact to the serving graph and
/// folds its mining parameters into the session config. The message
/// substrings ("-vertex graph", "hash mismatch") are load-bearing —
/// callers and tests match on them.
Status BindArtifactToGraph(const Stage1Meta& meta, const LabeledGraph& graph,
                           SessionConfig* config) {
  if (meta.num_graph_vertices != graph.NumVertices()) {
    return Status::InvalidArgument(
        StrCat("stage1 artifact was mined over a ", meta.num_graph_vertices,
               "-vertex graph; the provided graph has ",
               graph.NumVertices(), " vertices"));
  }
  // Same size is not same graph: anchors and labels are meaningless on a
  // different network, so the artifact is bound to the mined graph's
  // content hash (every writer records it; no unhashed artifacts exist).
  if (meta.graph_hash != graph.ContentHash()) {
    return Status::InvalidArgument(
        StrCat("stage1 artifact was mined over a different graph (content "
               "hash mismatch: artifact ", meta.graph_hash,
               ", provided graph ", graph.ContentHash(), ")"));
  }
  // The artifact's mining parameters describe the stored set and override
  // whatever the caller guessed; parallelism knobs stay the caller's.
  config->min_support = meta.min_support;
  config->spider_radius = meta.spider_radius;
  config->max_star_leaves = meta.max_star_leaves;
  config->max_spiders = meta.max_spiders;
  return Status::Ok();
}

}  // namespace

Result<MiningSession> MiningSession::LoadStage1(const LabeledGraph* graph,
                                                SessionConfig config,
                                                const std::string& path) {
  WallTimer load_timer;
  if (binary_format::PeekMagic(path) == std::string(kSm2Magic, 4)) {
    // ---- Zero-copy path: mmap the artifact and borrow its columns. ----
    SM_ASSIGN_OR_RETURN(std::unique_ptr<MappedStage1> mapped,
                        MappedStage1::Open(path));
    const Stage1Meta& meta = mapped->meta();
    SM_RETURN_NOT_OK(BindArtifactToGraph(meta, *graph, &config));
    SM_RETURN_NOT_OK(config.Validate());
    MiningSession session;
    session.graph_ = graph;
    session.config_ = config;
    session.InitTxnState();
    session.load_mode_ = Stage1LoadMode::kMapped;
    session.pool_ = config.pool;
    if (session.pool_ == nullptr) {
      session.owned_pool_ = std::make_unique<ThreadPool>(
          config.num_threads > 0 ? config.num_threads
                                 : ThreadPool::DefaultThreads());
      session.pool_ = session.owned_pool_.get();
    }
    session.mapped_ = std::move(mapped);
    // Shallow borrowed-span copies: the columns and the CSR index arrays
    // stay in the mapping. FromStore's O(total anchors) adoption scan is
    // skipped — Open's structural checks plus the lazy section CRCs (run
    // before the first query touches the data) cover the same contract.
    session.store_ =
        std::make_unique<SpiderStore>(session.mapped_->store());
    session.index_ = std::make_unique<SpiderIndex>(
        session.store_.get(), session.mapped_->index().offsets(),
        session.mapped_->index().ids());
    MineStats& stats = session.stage1_stats_;
    stats.num_spiders = session.store_->size();
    stats.stage1_store_bytes = session.store_->HeapBytes();
    for (int32_t id = 0; id < static_cast<int32_t>(session.store_->size());
         ++id) {
      if (session.store_->closed(id)) ++stats.num_closed_spiders;
    }
    session.stage1_truncated_ = meta.truncated;
    session.stage1_load_seconds_ = load_timer.ElapsedSeconds();
    stats.stage1_seconds = session.stage1_load_seconds_;
    stats.total_seconds = stats.stage1_seconds;
    return session;
  }

  // ---- Legacy `.sm1` path: deserialize through a heap copy. ----
  SM_ASSIGN_OR_RETURN(Stage1Artifact artifact, LoadSpiderStoreBinary(path));
  SM_RETURN_NOT_OK(BindArtifactToGraph(artifact.meta, *graph, &config));
  SM_ASSIGN_OR_RETURN(
      MiningSession session,
      FromStore(graph, config, std::move(artifact.store)));
  session.stage1_truncated_ = artifact.meta.truncated;
  session.stage1_load_seconds_ = load_timer.ElapsedSeconds();
  return session;
}

void MiningSession::InitTxnState() {
  uint64_t h = 0;
  auto fold = [&h](uint64_t value) {
    if (h == 0) h = 0xcbf29ce484222325ULL;
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  if (config_.txn_of_vertex != nullptr) {
    fold(1);  // source tag
    fold(static_cast<uint64_t>(config_.txn_of_vertex->size()));
    for (int32_t t : *config_.txn_of_vertex) {
      fold(static_cast<uint64_t>(static_cast<uint32_t>(t)));
      num_txns_ = std::max<int64_t>(num_txns_, static_cast<int64_t>(t) + 1);
    }
  }
  if (config_.txn_map != nullptr) {
    fold(2);  // source tag
    fold(static_cast<uint64_t>(config_.txn_map->num_transactions));
    for (int64_t o : config_.txn_map->offsets) {
      fold(static_cast<uint64_t>(o));
    }
    for (int32_t t : config_.txn_map->txn_ids) {
      fold(static_cast<uint64_t>(static_cast<uint32_t>(t)));
    }
    // The map takes precedence for support, so its universe wins too.
    num_txns_ = config_.txn_map->num_transactions;
  }
  txn_digest_ = h;
}

uint64_t MiningSession::stage1_content_key() const {
  // FNV-1a over the facts that determine the spider set. Store size and
  // the truncation flag participate so a budget-truncated mine of the same
  // graph+config never aliases a complete one.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto fold = [&h](uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  fold(graph_->ContentHash());
  fold(static_cast<uint64_t>(config_.min_support));
  fold(static_cast<uint64_t>(config_.spider_radius));
  fold(static_cast<uint64_t>(config_.max_star_leaves));
  fold(static_cast<uint64_t>(config_.max_spiders));
  fold(static_cast<uint64_t>(store_->size()));
  fold(stage1_truncated_ ? 1 : 0);
  // Transaction payloads change kTransaction answers without changing the
  // spider set; folding their digest keeps cache lines separated.
  fold(txn_digest_);
  return h;
}

int64_t MiningSession::queries_run() const {
  std::lock_guard<std::mutex> lock(serving_->mu);
  return serving_->stats.queries_run;
}

SessionServingStats MiningSession::serving_stats() const {
  std::lock_guard<std::mutex> lock(serving_->mu);
  return serving_->stats;
}

int64_t MiningSession::FoldQueryIntoAggregate(const QueryResult& result) const {
  std::lock_guard<std::mutex> lock(serving_->mu);
  SessionServingStats& agg = serving_->stats;
  ++agg.queries_run;
  agg.patterns_returned += static_cast<int64_t>(result.patterns.size());
  if (result.stats.timed_out) ++agg.timed_out_queries;
  agg.total_query_seconds += result.stats.total_seconds;
  agg.max_query_seconds =
      std::max(agg.max_query_seconds, result.stats.total_seconds);
  agg.emb_carried += result.stats.emb_carried;
  agg.vf2_fallbacks += result.stats.vf2_fallbacks;
  if (result.stats.support_measure == SupportMeasureKind::kHomomorphism) {
    ++agg.homomorphism_queries;
  }
  if (result.stats.txn_sample_size > 0) ++agg.txn_sampled_queries;
  return agg.queries_run;
}

Result<QueryResult> MiningSession::RunQuery(const TopKQuery& query) const {
  SM_RETURN_NOT_OK(query.Validate());
  QueryConfig q = query;
  if (q.min_support == 0) q.min_support = config_.min_support;
  if (q.min_support < config_.min_support) {
    return Status::InvalidArgument(
        StrCat("query min_support ", q.min_support,
               " is below the session's mined floor ", config_.min_support,
               "; spiders below the floor were never mined"));
  }
  if (q.support_measure == SupportMeasureKind::kTransaction &&
      config_.txn_of_vertex == nullptr && config_.txn_map == nullptr) {
    return Status::InvalidArgument(
        "transaction support requires txn_of_vertex or txn_map");
  }
  // First touch of a mapped artifact's bulk sections: CRC + content range
  // checks run exactly once (thread-safe), so a tampered or bit-rotted
  // `.sm2` fails the query instead of feeding the growth engine garbage.
  if (mapped_ != nullptr) SM_RETURN_NOT_OK(mapped_->EnsureValidated());

  QueryResult result;
  MineStats& stats = result.stats;
  stats.support_measure = q.support_measure;
  stats.txn_sample_size = q.txn_sample;
  WallTimer total_timer;
  Deadline deadline(q.time_budget_seconds);
  CancellationToken cancel(&deadline);
  const SpiderStore& store = *store_;

  if (store.empty()) {
    stats.total_seconds = total_timer.ElapsedSeconds();
    FoldQueryIntoAggregate(result);
    return result;  // nothing frequent at all
  }

  // ------ Stages II + III, repeated `restarts` times over the session's
  // one-time Stage I spider set (paper Sec. 4.2.1: re-running the
  // randomized stages boosts the success probability; results accumulate
  // within the query). ------
  int64_t m = q.seed_count_override;
  if (m <= 0) {
    int64_t vmin = q.vmin > 0
                       ? q.vmin
                       : std::max<int64_t>(1, graph_->NumVertices() / 10);
    vmin = std::min(vmin, graph_->NumVertices());
    Result<int64_t> computed =
        ComputeSeedCount(graph_->NumVertices(), vmin, q.k, q.epsilon);
    // An unreachable epsilon falls back to drawing every spider.
    m = computed.ok() ? *computed : store.size();
  }
  stats.seed_count_m = m;

  GrowthEngine engine(graph_, index_.get(), &config_, &q, &stats, &deadline,
                      pool_, &cancel);
  ResultCollector collector(&q, config_.spider_radius, &stats);
  // Sampling-based transaction mode: each restart run draws its own sorted
  // whitelist from the run's salted substream (empty = count everything).
  // The vector outlives every engine call of its run; the closure recount
  // below is pinned to run 0's sample so a multi-restart query still
  // recounts deterministically.
  std::vector<int32_t> run_txn_sample;

  // restarts == 0 stops before Stage II; negatives clamp to the default 1.
  const int32_t total_runs = q.restarts == 0 ? 0 : std::max(1, q.restarts);
  WallTimer stage_timer;
  for (int32_t run = 0; run < total_runs; ++run) {
    if (cancel.IsCancelled()) {
      stats.timed_out = true;
      break;
    }
    // ---------------- Stage II: identify large patterns. ----------------
    stage_timer.Restart();
    // RandomSeed: draw M spiders uniformly without replacement. Each run
    // draws from its own substream (rng_seed xor run * stride), so the
    // draws of run r never depend on how much randomness earlier runs
    // consumed -- a prerequisite for deterministic parallel execution.
    Rng run_rng(q.rng_seed ^ (kRunSeedStride * static_cast<uint64_t>(run)));
    run_txn_sample = DrawTxnSample(q, run, num_txns_);
    engine.SetTxnSample(run_txn_sample.empty() ? nullptr : &run_txn_sample);
    std::vector<GrowthPattern> working;
    {
      size_t draw = std::min<size_t>(static_cast<size_t>(m),
                                     static_cast<size_t>(store.size()));
      std::vector<size_t> picks = run_rng.SampleWithoutReplacement(
          static_cast<size_t>(store.size()), draw);
      std::vector<int32_t> pick_ids;
      pick_ids.reserve(picks.size());
      for (size_t pick : picks) {
        pick_ids.push_back(static_cast<int32_t>(pick));
      }
      // Seed construction (per-anchor embedding enumeration) fans out over
      // the pool; ids and stats are assigned in pick order.
      std::vector<GrowthPattern> seeds = engine.SeedPatterns(pick_ids);
      for (GrowthPattern& seed : seeds) {
        if (seed.embeddings.empty()) continue;
        working.push_back(std::move(seed));
      }
    }

    MergeRegistry previous;
    const int32_t iterations =
        std::max(1, q.dmax / (2 * config_.spider_radius));
    for (int32_t iter = 0; iter < iterations; ++iter) {
      if (cancel.IsCancelled()) {
        stats.timed_out = true;
        break;
      }
      GrowRoundResult round =
          engine.GrowRound(std::move(working), /*enable_merging=*/true,
                           &previous);
      working = std::move(round.patterns);
      ++stats.stage2_iterations;
    }

    // Prune unmerged patterns (Algorithm 1 line 10). If no merge happened
    // at all (possible when caps or the time budget truncated Stage II),
    // keep the largest unmerged survivors instead of returning nothing --
    // an engineering fallback outside the paper's algorithm, reported via
    // pruned_unmerged staying 0.
    if (!q.keep_unmerged) {
      bool any_merged = std::any_of(
          working.begin(), working.end(),
          [](const GrowthPattern& gp) { return gp.merged_ever; });
      if (any_merged) {
        size_t before = working.size();
        std::erase_if(working, [](const GrowthPattern& gp) {
          return !gp.merged_ever;
        });
        stats.pruned_unmerged +=
            static_cast<int64_t>(before - working.size());
      } else if (static_cast<int64_t>(working.size()) > 4 * q.k) {
        std::sort(working.begin(), working.end(),
                  [](const GrowthPattern& a, const GrowthPattern& b) {
                    return a.pattern.NumEdges() > b.pattern.NumEdges();
                  });
        working.resize(static_cast<size_t>(4 * q.k));
      }
    }
    stats.stage2_seconds += stage_timer.ElapsedSeconds();

    // ---------------- Stage III: recover full patterns. ----------------
    stage_timer.Restart();
    for (const GrowthPattern& gp : working) collector.Add(gp);

    for (int32_t round = 0; round < q.stage3_max_rounds; ++round) {
      if (working.empty()) break;
      if (cancel.IsCancelled()) {
        stats.timed_out = true;
        break;
      }
      GrowRoundResult grown =
          engine.GrowRound(std::move(working), /*enable_merging=*/true,
                           &previous);
      ++stats.stage3_rounds;
      working.clear();
      for (GrowthPattern& gp : grown.patterns) {
        collector.Add(gp);
        if (!gp.exhausted) working.push_back(std::move(gp));
      }
      if (!grown.any_growth) break;
    }
    for (const GrowthPattern& gp : working) collector.Add(gp);
    stats.stage3_seconds += stage_timer.ElapsedSeconds();
  }

  std::vector<MinedPattern> all = collector.TakeSorted();

  // Internal-edge closure (closure.h): restore frequent cycle-closing edges
  // the star-based growth could not add, then re-deduplicate (closure can
  // make previously distinct patterns isomorphic). Homomorphism queries
  // enter this block even with closure off: their growth-time supports are
  // anti-monotone bounds over the injective occurrence list, and the final
  // answer recounts over the complete HOMOMORPHIC E[P] (carried hom-mode
  // list, or the VF2 homomorphism fallback).
  const bool homomorphic =
      q.support_measure == SupportMeasureKind::kHomomorphism;
  // Multi-restart transaction sampling recounts under run 0's whitelist (a
  // fixed, scheduling-independent choice).
  const std::vector<int32_t> closure_txn_sample =
      DrawTxnSample(q, /*run=*/0, num_txns_);
  if (q.close_internal_edges || homomorphic) {
    const int64_t window = q.closure_window > 0
                               ? q.closure_window
                               : std::max<int64_t>(64, 8LL * q.k);
    const size_t limit = std::min(all.size(), static_cast<size_t>(window));
    // Per-pattern closure is independent: fan out over the pool, each
    // iteration touching only all[i] and its own counter slot.
    struct ClosureSlot {
      int32_t edges_added = 0;
      int32_t carried = 0;
      int32_t fallbacks = 0;
    };
    std::vector<ClosureSlot> slots(limit);
    pool_->ParallelForChunks(
        static_cast<int64_t>(limit), /*grain=*/1,
        [this, &q, &all, &slots, homomorphic,
         &closure_txn_sample](int64_t begin, int64_t end) {
          SupportContext support_context;
          support_context.txn_of_vertex = config_.txn_of_vertex;
          support_context.txn_map = config_.txn_map;
          support_context.txn_sample =
              closure_txn_sample.empty() ? nullptr : &closure_txn_sample;
          for (int64_t i = begin; i < end; ++i) {
            MinedPattern& mp = all[static_cast<size_t>(i)];
            ClosureSlot& slot = slots[static_cast<size_t>(i)];
            // Growth tracks only the embeddings reachable along its own
            // path (an occurrence list), which under-counts the surviving
            // support of a candidate closure edge. Closure needs the full
            // E[P]: the carried complete list (embedding-list engine)
            // supplies it for free; an absent or saturated list pays the
            // VF2 re-enumeration. Both sides are canonicalized before the
            // image dedup, so the two paths keep identical representatives
            // and the output is byte-identical either way.
            std::vector<Embedding> full;
            if (mp.full_list != nullptr && !mp.full_list->saturated) {
              full = mp.full_list->embeddings;
              ++slot.carried;
            } else {
              Vf2Options vf2_options;
              vf2_options.max_embeddings = q.max_embeddings_per_pattern;
              // Under kHomomorphism the carried lists enumerate homomorphic
              // E[P], so the fallback must too.
              vf2_options.homomorphic = homomorphic;
              full = FindEmbeddings(mp.pattern, *graph_, vf2_options);
              ++slot.fallbacks;
            }
            if (!full.empty()) {
              CanonicalizeEmbeddingOrder(&full);
              // Homomorphic embeddings with one image SET can be genuinely
              // different maps (different per-column images feeding the
              // minimum-image count), so the automorphism dedup only
              // applies to injective lists.
              if (!homomorphic) DedupEmbeddingsByImage(&full);
              mp.embeddings = std::move(full);
              mp.support = ComputeSupport(q.support_measure, mp.pattern,
                                          mp.embeddings, support_context);
            }
            if (q.close_internal_edges) {
              slot.edges_added = CloseInternalEdges(
                  *graph_, &mp.pattern, &mp.embeddings, q.support_measure,
                  q.min_support, &mp.support, support_context);
              // A closure edge changes the pattern; the carried list no
              // longer describes it.
              if (slot.edges_added > 0) mp.full_list.reset();
            }
          }
        },
        &cancel);
    for (size_t i = 0; i < limit; ++i) {
      stats.closure_edges_added += slots[i].edges_added;
      stats.emb_carried += slots[i].carried;
      stats.vf2_fallbacks += slots[i].fallbacks;
    }
    if (stats.closure_edges_added > 0) {
      std::sort(all.begin(), all.end(), LargerPattern);
      std::vector<MinedPattern> deduped;
      // WL fingerprints of the kept patterns (closure may have changed
      // every pattern, so nothing cached upstream applies; 0 = lazy).
      std::vector<uint64_t> deduped_hashes;
      for (MinedPattern& mp : all) {
        bool duplicate = false;
        uint64_t mp_hash = 0;
        for (size_t j = 0; j < deduped.size(); ++j) {
          MinedPattern& kept = deduped[j];
          if (kept.NumEdges() != mp.NumEdges() ||
              kept.NumVertices() != mp.NumVertices()) {
            continue;
          }
          if (mp_hash == 0) mp_hash = PatternIsoHash(mp.pattern);
          if (deduped_hashes[j] == 0) {
            deduped_hashes[j] = PatternIsoHash(kept.pattern);
          }
          if (deduped_hashes[j] != mp_hash) {
            ++stats.iso_checks_skipped;
            continue;
          }
          ++stats.iso_checks_run;
          if (ArePatternsIsomorphic(kept.pattern, mp.pattern)) {
            if (mp.support > kept.support) {
              // Replace the whole variant: the embeddings (and any carried
              // list) are expressed in mp.pattern's vertex numbering, which
              // an isomorphic kept.pattern need not share.
              kept.pattern = mp.pattern;
              kept.support = mp.support;
              kept.embeddings = mp.embeddings;
              kept.full_list = mp.full_list;
            }
            kept.from_merge |= mp.from_merge;
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          deduped.push_back(std::move(mp));
          deduped_hashes.push_back(mp_hash);
        }
        // Dedup cost is bounded: only the top window can reach the final K.
        if (static_cast<int64_t>(deduped.size()) > 4 * q.k + 16) break;
      }
      all = std::move(deduped);
    }
  }

  // An elevated query threshold (> the session floor) is enforced on the
  // final list as well: seeds drawn from the cached floor-level store (and
  // closure's full-embedding recounts) can carry support in [floor, sigma)
  // that growth — which only checks extensions — never re-tests. Gated so
  // floor-level queries stay byte-identical to the legacy fused driver,
  // which deliberately returns closure-demoted patterns.
  if (q.min_support > config_.min_support) {
    std::erase_if(all, [&q](const MinedPattern& mp) {
      return mp.support < q.min_support;
    });
  }

  if (q.enforce_dmax_on_results) {
    std::erase_if(all, [&q](const MinedPattern& mp) {
      return mp.pattern.Diameter() > q.dmax;
    });
  }
  if (static_cast<int64_t>(all.size()) > q.k) {
    all.resize(static_cast<size_t>(q.k));
  }
  result.patterns = std::move(all);
  // The token may have tripped inside a stage (lineages, closure) without
  // any between-round check observing it.
  if (q.time_budget_seconds > 0 && cancel.IsCancelled()) {
    stats.timed_out = true;
  }
  stats.total_seconds = total_timer.ElapsedSeconds();
  const int64_t sequence = FoldQueryIntoAggregate(result);
  Log(LogLevel::kInfo,
      StrCat("MiningSession: query #", sequence, " over ",
             stage1_stats_.num_spiders, " cached spiders, M=",
             stats.seed_count_m, ", merges=", stats.merges,
             ", emb carried/fallback=", stats.emb_carried, "/",
             stats.vf2_fallbacks, ", returned ", result.patterns.size(),
             " patterns in ", stats.total_seconds, "s"));
  return result;
}

}  // namespace spidermine
