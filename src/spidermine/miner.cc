#include "spidermine/miner.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "pattern/spider_set.h"
#include "pattern/vf2.h"
#include "spider/spider_index.h"
#include "spider/star_miner.h"
#include "spidermine/closure.h"
#include "spidermine/growth.h"
#include "spidermine/seed_count.h"

namespace spidermine {

namespace {

/// Size-ordering used for the paper's "list sorted by size": edge count
/// first (the paper's |P|), then vertex count, then support.
bool LargerPattern(const MinedPattern& a, const MinedPattern& b) {
  if (a.NumEdges() != b.NumEdges()) return a.NumEdges() > b.NumEdges();
  if (a.NumVertices() != b.NumVertices()) {
    return a.NumVertices() > b.NumVertices();
  }
  return a.support > b.support;
}

/// Accumulates every discovered pattern, deduplicating by spider-set +
/// exact isomorphism, keeping the best-support variant.
class ResultCollector {
 public:
  ResultCollector(const MineConfig* config, MineStats* stats)
      : config_(config), stats_(stats) {}

  void Add(const GrowthPattern& gp) {
    uint64_t digest = gp.spider_set.digest();
    auto [it, inserted] = buckets_.try_emplace(digest);
    for (int64_t idx : it->second) {
      MinedPattern& existing = results_[idx];
      ++stats_->iso_checks_run;
      if (ArePatternsIsomorphic(existing.pattern, gp.pattern)) {
        if (gp.support > existing.support) {
          existing.support = gp.support;
          existing.embeddings = gp.embeddings;
        }
        existing.from_merge |= gp.merged_ever;
        return;
      }
    }
    MinedPattern mp;
    mp.pattern = gp.pattern;
    mp.embeddings = gp.embeddings;
    mp.support = gp.support;
    mp.from_merge = gp.merged_ever;
    it->second.push_back(static_cast<int64_t>(results_.size()));
    results_.push_back(std::move(mp));
    if (static_cast<int64_t>(results_.size()) >
        config_->max_results + kCompactionSlack) {
      Compact();
    }
  }

  std::vector<MinedPattern> TakeSorted() {
    std::sort(results_.begin(), results_.end(), LargerPattern);
    return std::move(results_);
  }

 private:
  static constexpr int64_t kCompactionSlack = 1024;

  void Compact() {
    std::sort(results_.begin(), results_.end(), LargerPattern);
    results_.resize(static_cast<size_t>(config_->max_results));
    buckets_.clear();
    for (size_t i = 0; i < results_.size(); ++i) {
      SpiderSetRepr repr = SpiderSetRepr::Compute(results_[i].pattern,
                                                  config_->spider_radius);
      buckets_[repr.digest()].push_back(static_cast<int64_t>(i));
    }
  }

  const MineConfig* config_;
  MineStats* stats_;
  std::vector<MinedPattern> results_;
  std::unordered_map<uint64_t, std::vector<int64_t>> buckets_;
};

/// Stride between per-run RNG substream seeds. Runs must not share a
/// stream: with a shared stream the amount of randomness run r consumes
/// would depend on earlier runs' control flow, while independent substreams
/// keep every run's draws fixed regardless of scheduling or truncation.
constexpr uint64_t kRunSeedStride = 0x9e3779b97f4a7c15ULL;  // 2^64 / phi

}  // namespace

SpiderMiner::SpiderMiner(const LabeledGraph* graph, MineConfig config)
    : graph_(graph), config_(config) {}

Result<MineResult> SpiderMiner::Mine() {
  if (config_.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (config_.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (config_.dmax < 1) return Status::InvalidArgument("dmax must be >= 1");
  if (config_.spider_radius != 1) {
    return Status::InvalidArgument(
        "the growth engine implements spider_radius = 1 (the paper's own "
        "implementation choice); use MineBallSpiders for larger radii");
  }
  if (config_.epsilon <= 0.0 || config_.epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1)");
  }
  if (config_.support_measure == SupportMeasureKind::kTransaction &&
      config_.txn_of_vertex == nullptr) {
    return Status::InvalidArgument(
        "transaction support requires txn_of_vertex");
  }
  if (config_.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (config_.stage1_shard_grain < 0) {
    return Status::InvalidArgument(
        "stage1_shard_grain must be >= 0 (0 = automatic)");
  }

  MineResult result;
  MineStats& stats = result.stats;
  WallTimer total_timer;
  Deadline deadline(config_.time_budget_seconds);
  // Every stage shares one pool and one deadline-bound token: expiry stops
  // workers mid-stage, not just between rounds. A caller-provided pool is
  // reused as-is (restart sweeps and benches pay thread spawn once).
  std::optional<ThreadPool> owned_pool;
  ThreadPool* pool = config_.pool;
  if (pool == nullptr) {
    owned_pool.emplace(config_.num_threads > 0 ? config_.num_threads
                                               : ThreadPool::DefaultThreads());
    pool = &*owned_pool;
  }
  CancellationToken cancel(&deadline);

  // ---------------- Stage I: mine all spiders. ----------------
  WallTimer stage_timer;
  StarMinerConfig star_config;
  star_config.min_support = config_.min_support;
  star_config.max_leaves = config_.max_star_leaves;
  star_config.max_spiders = config_.max_spiders;
  star_config.shard_grain = config_.stage1_shard_grain;
  SM_ASSIGN_OR_RETURN(StarMineResult stars,
                      MineStarSpiders(*graph_, star_config, pool, &cancel));
  const SpiderStore& store = stars.store;
  stats.num_spiders = store.size();
  stats.stage1_steps = stars.extension_attempts;
  stats.stage1_store_bytes = store.HeapBytes();
  stats.stage1_scan_shards = stars.num_scan_shards;
  stats.stage1_enum_shards = stars.num_enum_shards;
  for (int32_t id = 0; id < static_cast<int32_t>(store.size()); ++id) {
    if (store.closed(id)) ++stats.num_closed_spiders;
  }
  SpiderIndex index(&store, graph_->NumVertices());
  stats.stage1_seconds = stage_timer.ElapsedSeconds();

  if (store.empty()) {
    stats.total_seconds = total_timer.ElapsedSeconds();
    return result;  // nothing frequent at all
  }

  // ------ Stages II + III, repeated `restarts` times over the one-time
  // Stage I spider set (paper Sec. 4.2.1: re-running the randomized stages
  // boosts the success probability; results accumulate). ------
  int64_t m = config_.seed_count_override;
  if (m <= 0) {
    int64_t vmin = config_.vmin > 0
                       ? config_.vmin
                       : std::max<int64_t>(1, graph_->NumVertices() / 10);
    vmin = std::min(vmin, graph_->NumVertices());
    Result<int64_t> computed = ComputeSeedCount(
        graph_->NumVertices(), vmin, config_.k, config_.epsilon);
    // An unreachable epsilon falls back to drawing every spider.
    m = computed.ok() ? *computed : store.size();
  }
  stats.seed_count_m = m;

  GrowthEngine engine(graph_, &index, &config_, &stats, &deadline, pool,
                      &cancel);
  ResultCollector collector(&config_, &stats);

  // restarts == 0 stops after Stage I; negatives clamp to the default 1.
  const int32_t total_runs =
      config_.restarts == 0 ? 0 : std::max(1, config_.restarts);
  for (int32_t run = 0; run < total_runs; ++run) {
    if (cancel.IsCancelled()) {
      stats.timed_out = true;
      break;
    }
    // ---------------- Stage II: identify large patterns. ----------------
    stage_timer.Restart();
    // RandomSeed: draw M spiders uniformly without replacement. Each run
    // draws from its own substream (rng_seed xor run * stride), so the
    // draws of run r never depend on how much randomness earlier runs
    // consumed -- a prerequisite for deterministic parallel execution.
    Rng run_rng(config_.rng_seed ^
                (kRunSeedStride * static_cast<uint64_t>(run)));
    std::vector<GrowthPattern> working;
    {
      size_t draw = std::min<size_t>(static_cast<size_t>(m),
                                     static_cast<size_t>(store.size()));
      std::vector<size_t> picks = run_rng.SampleWithoutReplacement(
          static_cast<size_t>(store.size()), draw);
      std::vector<int32_t> pick_ids;
      pick_ids.reserve(picks.size());
      for (size_t pick : picks) {
        pick_ids.push_back(static_cast<int32_t>(pick));
      }
      // Seed construction (per-anchor embedding enumeration) fans out over
      // the pool; ids and stats are assigned in pick order.
      std::vector<GrowthPattern> seeds = engine.SeedPatterns(pick_ids);
      for (GrowthPattern& seed : seeds) {
        if (seed.embeddings.empty()) continue;
        working.push_back(std::move(seed));
      }
    }

    MergeRegistry previous;
    const int32_t iterations =
        std::max(1, config_.dmax / (2 * config_.spider_radius));
    for (int32_t iter = 0; iter < iterations; ++iter) {
      if (cancel.IsCancelled()) {
        stats.timed_out = true;
        break;
      }
      GrowRoundResult round =
          engine.GrowRound(std::move(working), /*enable_merging=*/true,
                           &previous);
      working = std::move(round.patterns);
      ++stats.stage2_iterations;
    }

    // Prune unmerged patterns (Algorithm 1 line 10). If no merge happened
    // at all (possible when caps or the time budget truncated Stage II),
    // keep the largest unmerged survivors instead of returning nothing --
    // an engineering fallback outside the paper's algorithm, reported via
    // pruned_unmerged staying 0.
    if (!config_.keep_unmerged) {
      bool any_merged = std::any_of(
          working.begin(), working.end(),
          [](const GrowthPattern& gp) { return gp.merged_ever; });
      if (any_merged) {
        size_t before = working.size();
        std::erase_if(working, [](const GrowthPattern& gp) {
          return !gp.merged_ever;
        });
        stats.pruned_unmerged +=
            static_cast<int64_t>(before - working.size());
      } else if (static_cast<int64_t>(working.size()) > 4 * config_.k) {
        std::sort(working.begin(), working.end(),
                  [](const GrowthPattern& a, const GrowthPattern& b) {
                    return a.pattern.NumEdges() > b.pattern.NumEdges();
                  });
        working.resize(static_cast<size_t>(4 * config_.k));
      }
    }
    stats.stage2_seconds += stage_timer.ElapsedSeconds();

    // ---------------- Stage III: recover full patterns. ----------------
    stage_timer.Restart();
    for (const GrowthPattern& gp : working) collector.Add(gp);

    for (int32_t round = 0; round < config_.stage3_max_rounds; ++round) {
      if (working.empty()) break;
      if (cancel.IsCancelled()) {
        stats.timed_out = true;
        break;
      }
      GrowRoundResult grown =
          engine.GrowRound(std::move(working), /*enable_merging=*/true,
                           &previous);
      ++stats.stage3_rounds;
      working.clear();
      for (GrowthPattern& gp : grown.patterns) {
        collector.Add(gp);
        if (!gp.exhausted) working.push_back(std::move(gp));
      }
      if (!grown.any_growth) break;
    }
    for (const GrowthPattern& gp : working) collector.Add(gp);
    stats.stage3_seconds += stage_timer.ElapsedSeconds();
  }

  std::vector<MinedPattern> all = collector.TakeSorted();

  // Internal-edge closure (closure.h): restore frequent cycle-closing edges
  // the star-based growth could not add, then re-deduplicate (closure can
  // make previously distinct patterns isomorphic).
  if (config_.close_internal_edges) {
    const int64_t window =
        config_.closure_window > 0
            ? config_.closure_window
            : std::max<int64_t>(64, 8LL * config_.k);
    const size_t limit =
        std::min(all.size(), static_cast<size_t>(window));
    // Per-pattern closure is independent: fan out over the pool, each
    // iteration touching only all[i] and its own edges-added slot.
    std::vector<int32_t> edges_added(limit, 0);
    pool->ParallelForChunks(
        static_cast<int64_t>(limit), /*grain=*/1,
        [this, &all, &edges_added](int64_t begin, int64_t end) {
          SupportContext support_context;
          support_context.txn_of_vertex = config_.txn_of_vertex;
          for (int64_t i = begin; i < end; ++i) {
            MinedPattern& mp = all[static_cast<size_t>(i)];
            // Growth tracks only the embeddings reachable along its own
            // path (an occurrence list), which under-counts the surviving
            // support of a candidate closure edge. Re-enumerate the full
            // E[P] first.
            Vf2Options vf2_options;
            vf2_options.max_embeddings = config_.max_embeddings_per_pattern;
            std::vector<Embedding> full =
                FindEmbeddings(mp.pattern, *graph_, vf2_options);
            if (!full.empty()) {
              DedupEmbeddingsByImage(&full);
              mp.embeddings = std::move(full);
              mp.support = ComputeSupport(config_.support_measure,
                                          mp.pattern, mp.embeddings,
                                          support_context);
            }
            edges_added[static_cast<size_t>(i)] = CloseInternalEdges(
                *graph_, &mp.pattern, &mp.embeddings,
                config_.support_measure, config_.min_support, &mp.support,
                support_context);
          }
        },
        &cancel);
    for (size_t i = 0; i < limit; ++i) {
      stats.closure_edges_added += edges_added[i];
    }
    if (stats.closure_edges_added > 0) {
      std::sort(all.begin(), all.end(), LargerPattern);
      std::vector<MinedPattern> deduped;
      for (MinedPattern& mp : all) {
        bool duplicate = false;
        for (MinedPattern& kept : deduped) {
          if (kept.NumEdges() != mp.NumEdges() ||
              kept.NumVertices() != mp.NumVertices()) {
            continue;
          }
          ++stats.iso_checks_run;
          if (ArePatternsIsomorphic(kept.pattern, mp.pattern)) {
            if (mp.support > kept.support) {
              kept.support = mp.support;
              kept.embeddings = mp.embeddings;
            }
            kept.from_merge |= mp.from_merge;
            duplicate = true;
            break;
          }
        }
        if (!duplicate) deduped.push_back(std::move(mp));
        // Dedup cost is bounded: only the top window can reach the final K.
        if (static_cast<int64_t>(deduped.size()) > 4 * config_.k + 16) break;
      }
      all = std::move(deduped);
    }
  }

  if (config_.enforce_dmax_on_results) {
    std::erase_if(all, [this](const MinedPattern& mp) {
      return mp.pattern.Diameter() > config_.dmax;
    });
  }
  if (static_cast<int64_t>(all.size()) > config_.k) {
    all.resize(static_cast<size_t>(config_.k));
  }
  result.patterns = std::move(all);
  // The token may have tripped inside a stage (star shards, lineages,
  // closure) without any between-round check observing it.
  if (config_.time_budget_seconds > 0 && cancel.IsCancelled()) {
    stats.timed_out = true;
  }
  stats.total_seconds = total_timer.ElapsedSeconds();
  Log(LogLevel::kInfo,
      StrCat("SpiderMine: ", stats.num_spiders, " spiders, M=",
             stats.seed_count_m, ", merges=", stats.merges, ", returned ",
             result.patterns.size(), " patterns in ", stats.total_seconds,
             "s"));
  return result;
}

}  // namespace spidermine
