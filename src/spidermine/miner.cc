#include "spidermine/miner.h"

#include <algorithm>

#include "common/timer.h"

namespace spidermine {

SpiderMiner::SpiderMiner(const LabeledGraph* graph, MineConfig config)
    : graph_(graph), config_(config) {}

Result<MineResult> SpiderMiner::Mine() {
  SessionConfig session_config = config_.SessionPart();
  TopKQuery query = config_.QueryPart();
  // Validate both halves before mining anything: an invalid query must fail
  // fast, not after a full Stage I pass.
  SM_RETURN_NOT_OK(session_config.Validate());
  SM_RETURN_NOT_OK(query.Validate());
  if (query.support_measure == SupportMeasureKind::kTransaction &&
      session_config.txn_of_vertex == nullptr &&
      session_config.txn_map == nullptr) {
    return Status::InvalidArgument(
        "transaction support requires txn_of_vertex or txn_map");
  }

  WallTimer total_timer;
  SM_ASSIGN_OR_RETURN(MiningSession session,
                      MiningSession::Create(graph_, session_config));
  // The fused time budget spans all stages: the query gets whatever Stage I
  // left over (a hair above zero when Stage I consumed it all, so the
  // query's deadline trips immediately instead of meaning "unlimited").
  if (config_.time_budget_seconds > 0) {
    query.time_budget_seconds =
        std::max(config_.time_budget_seconds -
                     session.stage1_stats().stage1_seconds,
                 1e-9);
  }
  SM_ASSIGN_OR_RETURN(QueryResult query_result, session.RunQuery(query));

  MineResult result;
  result.patterns = std::move(query_result.patterns);
  result.stats = query_result.stats;
  result.stats.FoldStage1(session.stage1_stats());
  result.stats.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace spidermine
