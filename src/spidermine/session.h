#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "graph/labeled_graph.h"
#include "pattern/embedding.h"
#include "pattern/embedding_list.h"
#include "pattern/pattern.h"
#include "spider/spider_index.h"
#include "spider/spider_store.h"
#include "spider/spider_store_mmap.h"
#include "spidermine/config.h"

/// \file session.h
/// The serving front door of SpiderMine: mine Stage I once, answer many
/// top-K queries against the cached spider set.
///
/// The paper's cost split (Sec. 4.2.1) is that Stage I — mining all
/// r-spiders of the massive network — is a one-time pass, while Stages
/// II/III are randomized and cheap enough to rerun "multiple times to
/// increase the probability of obtaining the top-K large patterns". A
/// `MiningSession` owns the graph plus the Stage I artifacts (the columnar
/// `SpiderStore`, the CSR `SpiderIndex`, the closed-spider flags, the
/// worker pool) built exactly once; `RunQuery` executes Stages II+III
/// against that cache with per-query k, min_support (any value >= the
/// session's mined floor), rng_seed, restarts, dmax and caps. Queries are
/// validated via Result<> up front, so a bad query returns an error and
/// never invalidates the session, and each query result is byte-identical
/// to a standalone `SpiderMiner::Mine()` with the same parameters at any
/// thread count.
///
/// Thread-safety contract (see docs/SERVING.md for the full statement):
/// after construction every Stage I artifact -- the store, the index, the
/// closed flags, the graph pointer and the SessionConfig -- is immutable,
/// and `RunQuery` is `const`: any number of threads may call it
/// concurrently on one session. Each query owns all of its mutable state
/// (GrowthEngine, RNG, collectors, stats); the only cross-query state is
/// the serving aggregate (`serving_stats()`, `queries_run()`), folded
/// under a mutex after each query completes. Concurrent queries share the
/// session's worker pool; ThreadPool's per-call latches keep each query's
/// parallel loops independent, so a query's result is byte-identical to
/// the same query run with the session serialized -- concurrency changes
/// wall-clock interleaving, never output. Moving a MiningSession while
/// queries are in flight is undefined behavior (move it only before
/// serving starts).
///
/// Stage I artifacts round-trip to disk (`SaveStage1` / `LoadStage1`,
/// graph/binary_io.h): the CLI `stage1` subcommand precomputes the spider
/// set offline, `query` answers repeated top-K requests against the saved
/// artifact without re-mining, and `serve` keeps one session resident,
/// answering newline-delimited JSON queries concurrently (tools/serve_loop.h).

namespace spidermine {

/// A top-K query: alias of the query-scoped config slice (config.h).
using TopKQuery = QueryConfig;

/// How a session obtained its Stage I spider set.
enum class Stage1LoadMode {
  /// Mined from the graph at construction (Create).
  kMined,
  /// Deserialized through a heap copy (legacy `.sm1` artifact, FromStore).
  kCopied,
  /// Borrowed zero-copy from an mmap'd `.sm2` artifact.
  kMapped,
};

/// Lower-case name for logs and the serve startup line.
const char* Stage1LoadModeName(Stage1LoadMode mode);

/// One returned pattern.
struct MinedPattern {
  Pattern pattern;
  /// Embeddings known for the pattern (capped; see QueryConfig).
  std::vector<Embedding> embeddings;
  /// Carried complete embedding list from the growth engine (null when the
  /// engine is off; saturated after a budget overflow). Lets closure reuse
  /// E[P] instead of re-running VF2; always paired with `pattern` — the
  /// list is expressed in that pattern's vertex numbering.
  EmbeddingListRef full_list;
  /// Support under the configured measure.
  int64_t support = 0;
  /// True when the pattern descends from a Stage II merge.
  bool from_merge = false;

  /// Paper's |P|: edge count.
  int32_t NumEdges() const { return pattern.NumEdges(); }
  int32_t NumVertices() const { return pattern.NumVertices(); }
};

/// Merges \p more into \p accumulated under the engine's own semantics:
/// exact-isomorphism dedup keeping the best-support variant, the size
/// ordering queries return (edge count, then vertices, then support), and
/// truncation to \p k (0 = no cap). The cross-query accumulation loop of
/// the paper's restart argument — run the randomized stages repeatedly,
/// keep the best of everything seen — packaged so callers don't re-derive
/// the ordering or dedup policy.
void AccumulateTopK(std::vector<MinedPattern>* accumulated,
                    std::vector<MinedPattern> more, int64_t k);

/// Output of one RunQuery call.
struct QueryResult {
  /// Top-K patterns, sorted by size (edge count) descending, ties broken by
  /// vertex count then support.
  std::vector<MinedPattern> patterns;
  /// Query-side counters only: the stage1_* fields and num_spiders stay 0,
  /// which is how callers (and tests) assert that serving a query re-mines
  /// nothing — Stage I work lives in MiningSession::stage1_stats().
  MineStats stats;
};

/// Aggregate serving counters of one session, folded (under the session's
/// mutex) from each successful query's per-query stats. A snapshot type:
/// `MiningSession::serving_stats()` returns a copy taken under the lock,
/// so readers never observe a half-folded query.
struct SessionServingStats {
  /// Successful RunQuery calls (failed validations count nothing).
  int64_t queries_run = 0;
  /// Sum of patterns returned across those queries.
  int64_t patterns_returned = 0;
  /// Queries whose time budget expired (MineStats::timed_out).
  int64_t timed_out_queries = 0;
  /// Sum of per-query wall seconds (MineStats::total_seconds). Under
  /// concurrent serving this exceeds elapsed wall time — it is the served
  /// compute, not the serving duration.
  double total_query_seconds = 0.0;
  /// Slowest single query so far, in seconds.
  double max_query_seconds = 0.0;
  /// Closure candidates served from carried embedding lists, across all
  /// queries (MineStats::emb_carried folded per query).
  int64_t emb_carried = 0;
  /// Closure candidates that fell back to a VF2 re-enumeration (absent or
  /// saturated carried list; every candidate when the engine is off).
  int64_t vf2_fallbacks = 0;
  /// Queries served under the homomorphism support measure.
  int64_t homomorphism_queries = 0;
  /// Queries that ran the sampling-based transaction mode (txn_sample > 0).
  int64_t txn_sampled_queries = 0;
  /// Result-cache counters (spidermine/result_cache.h), folded in by the
  /// serve layer before rendering a summary: the cache lives beside the
  /// session (RunQuery itself never consults it), so the session's own
  /// aggregate leaves these at 0. A cache hit bypasses RunQuery entirely
  /// and therefore does NOT count in queries_run.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  /// Resident cached payload bytes at snapshot time.
  int64_t cache_bytes = 0;

  /// One-line human-readable rendering (serve loop reports, tools).
  std::string ToString() const;
};

/// A graph-scoped mining session: Stage I mined (or loaded) once at
/// construction, Stages II+III executed per query. Thread-safe for
/// serving: `RunQuery` is const and may be called concurrently from any
/// number of threads (each query fans out internally over the shared
/// worker pool; see the thread-safety contract in the file comment).
class MiningSession {
 public:
  /// Mines Stage I of \p graph (borrowed; must outlive the session) under
  /// \p config and builds the anchor index. Fails on invalid configuration;
  /// an expired stage1_time_budget_seconds yields a truncated but usable
  /// spider set (stage1_stats().timed_out).
  static Result<MiningSession> Create(const LabeledGraph* graph,
                                      SessionConfig config);

  /// Builds a session around an already-mined \p store (e.g. deserialized).
  /// Validates that every anchor is a vertex of \p graph. The store is
  /// adopted; config describes how it was mined (min_support is the floor
  /// queries are checked against).
  static Result<MiningSession> FromStore(const LabeledGraph* graph,
                                         SessionConfig config,
                                         SpiderStore store);

  /// Writes the session's Stage I artifact (spider store + CSR index +
  /// mining parameters) to \p path. Writes the zero-copy `.sm2` format
  /// (spider/spider_store_mmap.h) on little-endian hosts and falls back to
  /// the portable legacy `.sm1` format elsewhere. Overwrites.
  Status SaveStage1(const std::string& path) const;

  /// Rebuilds a session from a SaveStage1 artifact. Sniffs the format
  /// magic: `.sm2` artifacts are mmap'd and served zero-copy (the session
  /// borrows spans over the mapping; bulk sections CRC-validate lazily on
  /// the first query), legacy `.sm1` artifacts deserialize through a heap
  /// copy. The artifact's mining parameters (support floor, radius,
  /// leaf/spider caps) override the corresponding fields of \p config —
  /// they describe the stored set — while the parallelism knobs of
  /// \p config are honored. Fails with kIoError on corrupt/truncated files
  /// and kInvalidArgument when the artifact was mined over a different
  /// graph.
  static Result<MiningSession> LoadStage1(const LabeledGraph* graph,
                                          SessionConfig config,
                                          const std::string& path);

  /// Runs Stages II+III against the cached spider set. Validation errors
  /// (kInvalidArgument: bad k/dmax/epsilon, min_support below the mined
  /// floor, transaction measure without a transaction map) return early
  /// without touching any session state; the session remains fully usable.
  /// Identical queries return byte-identical results, on this session or
  /// any other session with the same graph + SessionConfig, at any thread
  /// count — and regardless of what other queries run concurrently: the
  /// method is const, reads only the immutable Stage I artifacts, and
  /// folds its counters into the serving aggregate under a mutex.
  Result<QueryResult> RunQuery(const TopKQuery& query) const;

  /// The cached Stage I spider set.
  const SpiderStore& store() const { return *store_; }
  /// The anchor index over the store.
  const SpiderIndex& index() const { return *index_; }
  /// Stage I counters/timings, populated exactly once at construction.
  const MineStats& stage1_stats() const { return stage1_stats_; }
  /// True when a Stage I budget or spider cap truncated the mined set.
  bool stage1_truncated() const { return stage1_truncated_; }
  /// How the Stage I spider set was obtained (mined / copied / mapped).
  Stage1LoadMode stage1_load_mode() const { return load_mode_; }
  /// Wall seconds spent loading + adopting the Stage I artifact (0 when
  /// the session mined its own spider set).
  double stage1_load_seconds() const { return stage1_load_seconds_; }
  /// The session's graph-scoped configuration.
  const SessionConfig& config() const { return config_; }
  /// Queries served so far (successful RunQuery calls). Thread-safe; under
  /// concurrent serving the value is a point-in-time snapshot.
  int64_t queries_run() const;
  /// Snapshot of the aggregate serving counters (thread-safe copy).
  SessionServingStats serving_stats() const;
  /// The borrowed input network.
  const LabeledGraph& graph() const { return *graph_; }
  /// Stable identity of the cached Stage I artifact: a hash over the
  /// graph's content hash, every config field that determines the mined
  /// spider set (support floor, radius, leaf/spider caps), the store size
  /// and the truncation flag. Two sessions answer queries identically iff
  /// their keys match, which makes this the artifact half of a result-cache
  /// key (result_cache.h); parallelism knobs deliberately do not
  /// participate. Computed from immutable state — thread-safe.
  uint64_t stage1_content_key() const;

 private:
  /// The cross-query mutable state, mutex-guarded and heap-held so the
  /// session stays movable (std::mutex is not). Everything else a query
  /// touches is either immutable after construction or query-local.
  struct ServingAggregate {
    mutable std::mutex mu;
    SessionServingStats stats;
  };

  MiningSession() : serving_(std::make_unique<ServingAggregate>()) {}

  /// Folds one finished query into the serving aggregate; returns the
  /// query's 1-based serving sequence number (for the log line).
  int64_t FoldQueryIntoAggregate(const QueryResult& result) const;

  /// Computes num_txns_ and txn_digest_ from the configured transaction
  /// sources (called once per construction path; both stay 0 without one).
  void InitTxnState();

  const LabeledGraph* graph_ = nullptr;
  SessionConfig config_;
  /// Owned worker pool when config_.pool is null (unique_ptr: the session
  /// stays movable while GrowthEngine borrows a stable address).
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
  /// Keeps the `.sm2` mapping (and thus every borrowed span in store_ /
  /// index_) alive for the session's lifetime; null outside mapped mode.
  std::unique_ptr<MappedStage1> mapped_;
  /// unique_ptr so the SpiderIndex's back-pointer survives session moves.
  /// In mapped mode this is a shallow borrowed-span copy of
  /// mapped_->store() — the columns live in the mapping.
  std::unique_ptr<SpiderStore> store_;
  std::unique_ptr<SpiderIndex> index_;
  MineStats stage1_stats_;
  /// Transaction universe size (txn_map->num_transactions, or max id + 1
  /// of txn_of_vertex; 0 without a transaction source) — the N that
  /// txn_sample draws from. Computed once at construction.
  int64_t num_txns_ = 0;
  /// FNV digest of the transaction source content, folded into
  /// stage1_content_key so sessions differing only in their transaction
  /// payloads never share result-cache lines. 0 without a source.
  uint64_t txn_digest_ = 0;
  bool stage1_truncated_ = false;
  Stage1LoadMode load_mode_ = Stage1LoadMode::kMined;
  double stage1_load_seconds_ = 0.0;
  std::unique_ptr<ServingAggregate> serving_;
};

}  // namespace spidermine
