#include "spidermine/variants.h"

#include <algorithm>
#include <sstream>

#include "pattern/vf2.h"

namespace spidermine {

bool IsSubPattern(const Pattern& sub, const Pattern& super) {
  if (sub.NumVertices() > super.NumVertices() ||
      sub.NumEdges() > super.NumEdges()) {
    return false;
  }
  if (sub.NumVertices() == 0) return true;
  const LabeledGraph host = PatternToLabeledGraph(super);
  return ContainsEmbedding(sub, host);
}

std::vector<MinedPattern> FilterMaximal(std::vector<MinedPattern> patterns) {
  std::vector<MinedPattern> kept;
  kept.reserve(patterns.size());
  for (MinedPattern& candidate : patterns) {
    bool dominated = false;
    for (const MinedPattern& winner : kept) {
      // kept is size-descending (input order), so every kept pattern has at
      // least as many edges as the candidate.
      if (IsSubPattern(candidate.pattern, winner.pattern)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(std::move(candidate));
  }
  return kept;
}

std::vector<VariantGroup> GroupVariants(
    const std::vector<MinedPattern>& patterns,
    const VariantOptions& options) {
  const size_t n = patterns.size();
  // member_of_core[c] = indices i whose pattern contains pattern c with at
  // most max_extra_edges extra edges (including i == c).
  std::vector<std::vector<size_t>> member_of_core(n);
  for (size_t c = 0; c < n; ++c) {
    for (size_t i = 0; i < n; ++i) {
      if (i == c) {
        member_of_core[c].push_back(i);
        continue;
      }
      const int32_t extra =
          patterns[i].NumEdges() - patterns[c].NumEdges();
      if (extra < 0 || extra > options.max_extra_edges) continue;
      if (IsSubPattern(patterns[c].pattern, patterns[i].pattern)) {
        member_of_core[c].push_back(i);
      }
    }
  }

  std::vector<bool> assigned(n, false);
  std::vector<VariantGroup> groups;
  for (;;) {
    // Pick the core covering the most unassigned patterns.
    size_t best_core = n;
    size_t best_cover = 0;
    for (size_t c = 0; c < n; ++c) {
      if (assigned[c]) continue;
      size_t cover = 0;
      for (size_t i : member_of_core[c]) {
        if (!assigned[i]) ++cover;
      }
      if (cover > best_cover) {
        best_cover = cover;
        best_core = c;
      }
    }
    if (best_core == n) break;
    VariantGroup group;
    group.core_index = best_core;
    for (size_t i : member_of_core[best_core]) {
      if (assigned[i]) continue;
      assigned[i] = true;
      group.total_embeddings +=
          static_cast<int64_t>(patterns[i].embeddings.size());
      if (i != best_core) group.variant_indices.push_back(i);
    }
    std::sort(group.variant_indices.begin(), group.variant_indices.end());
    groups.push_back(std::move(group));
  }
  return groups;
}

std::string VariantGroupsToString(const std::vector<MinedPattern>& patterns,
                                  const std::vector<VariantGroup>& groups) {
  std::ostringstream os;
  for (size_t g = 0; g < groups.size(); ++g) {
    const VariantGroup& group = groups[g];
    const MinedPattern& core = patterns[group.core_index];
    os << "group " << g << ": core |V|=" << core.NumVertices()
       << " |E|=" << core.NumEdges() << " support=" << core.support
       << ", variants=" << group.variant_indices.size()
       << ", total embeddings=" << group.total_embeddings << "\n";
  }
  return os.str();
}

}  // namespace spidermine
