#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "pattern/pattern.h"
#include "support/support_measure.h"

/// \file oracle.h
/// Exact ground truth for Definition 2 (Top-K Largest Patterns With
/// Diameter Bound) on graphs small enough for complete enumeration.
///
/// SpiderMine is probabilistic: it returns the true top-K only with
/// probability >= 1 - epsilon (Definition 3 / Theorem 1). To *test* that
/// guarantee one needs the exact answer, which the paper itself notes is
/// infeasible at scale -- but is perfectly computable on the small planted
/// graphs the tests use. The oracle enumerates every frequent connected
/// pattern (via the complete miner), filters by the diameter bound, and
/// returns the K largest. Tests and the Lemma-2 bench compare SpiderMine's
/// output against it over many seeds to measure the empirical success rate.

namespace spidermine {

/// Parameters of the exact oracle.
struct OracleConfig {
  /// Support threshold sigma.
  int64_t min_support = 2;
  /// How many top patterns to return.
  int32_t k = 10;
  /// Diameter bound Dmax (patterns with larger diameter are discarded).
  int32_t dmax = 4;
  /// Support definition; must match the SpiderMine run being validated.
  SupportMeasureKind support_measure = SupportMeasureKind::kGreedyMisVertex;
  /// Enumeration budgets (forwarded to the complete miner). The defaults
  /// suit graphs of a few hundred vertices with >= 5 labels.
  int64_t max_patterns = 2'000'000;
  int32_t max_pattern_edges = 0;
  double time_budget_seconds = 0.0;
};

/// One oracle pattern, ranked by size.
struct OraclePattern {
  Pattern pattern;
  int64_t support = 0;
  int32_t diameter = 0;
};

/// The exact answer (or an explicit admission that budgets truncated it).
struct OracleResult {
  /// The top-K largest qualifying patterns, sorted by edge count descending
  /// (ties: vertex count desc, then support desc).
  std::vector<OraclePattern> top_k;
  /// Total number of frequent diameter-bounded patterns seen.
  int64_t total_qualifying = 0;
  /// True iff enumeration ran to completion: only then is top_k certified
  /// ground truth. A false value means a budget fired and the result is a
  /// lower bound only.
  bool exact = true;
};

/// Computes the exact top-K largest frequent diameter-bounded patterns.
/// Intended for small graphs; budgets guard against misuse and are
/// reported via OracleResult::exact rather than silently truncating.
Result<OracleResult> ExactTopKLargest(const LabeledGraph& graph,
                                      const OracleConfig& config);

/// True iff \p candidates contains a pattern isomorphic to \p target.
/// Helper for guarantee tests ("did SpiderMine recover the planted/oracle
/// pattern?").
bool ContainsIsomorphicPattern(const std::vector<Pattern>& candidates,
                               const Pattern& target);

}  // namespace spidermine
