#include "gen/dblp_sim.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"

namespace spidermine {

namespace {

/// Draws a seniority label with the pyramid skew of the paper's extraction
/// (>=50 papers: Prolific ... 5-9 papers: Beginner).
LabelId DrawSeniority(Rng* rng) {
  double x = rng->UniformReal();
  if (x < 0.04) return kProlific;
  if (x < 0.16) return kSenior;
  if (x < 0.42) return kJunior;
  return kBeginner;
}

}  // namespace

Result<DblpDataset> GenerateDblpSim(const DblpSimConfig& config) {
  Rng rng(config.seed);
  DblpDataset out;

  GraphBuilder builder;
  for (int64_t v = 0; v < config.num_authors; ++v) {
    builder.AddVertex(DrawSeniority(&rng));
  }

  // Community structure: authors partitioned into research groups with
  // sizes in [6, 40]; denser collaboration inside a group.
  std::vector<std::vector<VertexId>> communities(
      static_cast<size_t>(config.num_communities));
  for (int64_t v = 0; v < config.num_authors; ++v) {
    communities[rng.Index(communities.size())].push_back(
        static_cast<VertexId>(v));
  }

  // Track distinct edges so the final (deduplicated) count hits the target.
  std::unordered_set<uint64_t> edge_set;
  auto add_edge = [&](VertexId u, VertexId v) {
    if (u == v) return;
    VertexId a = std::min(u, v);
    VertexId b = std::max(u, v);
    uint64_t key = (static_cast<uint64_t>(a) << 32) | static_cast<uint32_t>(b);
    if (!edge_set.insert(key).second) return;
    builder.AddEdge(a, b);
  };
  // Intra-community edges: each member collaborates with ~3 group peers.
  for (const auto& group : communities) {
    if (group.size() < 2) continue;
    for (VertexId v : group) {
      int32_t collabs = static_cast<int32_t>(rng.UniformInt(1, 4));
      for (int32_t c = 0; c < collabs; ++c) {
        add_edge(v, group[rng.Index(group.size())]);
      }
    }
  }
  // Cross-community edges up to the target edge count.
  while (static_cast<int64_t>(edge_set.size()) < config.target_edges) {
    add_edge(
        static_cast<VertexId>(rng.UniformInt(0, config.num_authors - 1)),
        static_cast<VertexId>(rng.UniformInt(0, config.num_authors - 1)));
  }

  // Planted structures. Labels come from the 4 seniority values with a
  // realistic mix (collaboration stars around senior/prolific authors).
  std::vector<LabelId> pool = {kProlific, kSenior,   kSenior,  kJunior,
                               kJunior,   kBeginner, kBeginner, kBeginner};
  PatternInjector injector(&builder);

  out.common_pattern = RandomConnectedPattern(
      config.common_pattern_vertices, /*extra_edge_fraction=*/0.2, pool,
      &rng);
  SM_RETURN_NOT_OK(injector.Inject(out.common_pattern,
                                   config.common_pattern_support, &rng));

  for (int32_t i = 0; i < config.num_cluster_patterns; ++i) {
    Pattern cluster = RandomConnectedPattern(
        config.cluster_pattern_vertices, /*extra_edge_fraction=*/0.25, pool,
        &rng);
    SM_RETURN_NOT_OK(
        injector.Inject(cluster, config.cluster_pattern_support, &rng));
    out.cluster_patterns.push_back(std::move(cluster));
  }

  SM_ASSIGN_OR_RETURN(out.graph, builder.Build());
  return out;
}

}  // namespace spidermine
