#include "gen/pattern_factory.h"

namespace spidermine {

Pattern RandomConnectedPattern(int32_t num_vertices,
                               double extra_edge_fraction,
                               const std::vector<LabelId>& label_pool,
                               Rng* rng) {
  Pattern p;
  for (int32_t v = 0; v < num_vertices; ++v) {
    p.AddVertex(label_pool[rng->Index(label_pool.size())]);
  }
  // Random spanning tree: attach vertex v to a uniformly random earlier
  // vertex (random recursive tree).
  for (VertexId v = 1; v < num_vertices; ++v) {
    p.AddEdge(v, static_cast<VertexId>(rng->UniformInt(0, v - 1)));
  }
  int32_t extra = static_cast<int32_t>(extra_edge_fraction * num_vertices);
  int32_t attempts = 0;
  while (extra > 0 && attempts < extra * 20 + 100) {
    ++attempts;
    VertexId u = static_cast<VertexId>(rng->UniformInt(0, num_vertices - 1));
    VertexId v = static_cast<VertexId>(rng->UniformInt(0, num_vertices - 1));
    if (p.AddEdge(u, v)) --extra;
  }
  return p;
}

Pattern RandomConnectedPattern(int32_t num_vertices,
                               double extra_edge_fraction, LabelId num_labels,
                               Rng* rng) {
  std::vector<LabelId> pool;
  pool.reserve(static_cast<size_t>(num_labels));
  for (LabelId l = 0; l < num_labels; ++l) pool.push_back(l);
  return RandomConnectedPattern(num_vertices, extra_edge_fraction, pool, rng);
}

Pattern RandomPatternWithDiameter(int32_t num_vertices, int32_t max_diameter,
                                  LabelId num_labels, Rng* rng) {
  Pattern p = RandomConnectedPattern(num_vertices, 0.2, num_labels, rng);
  // Repair: shortcut edges from a central vertex until the bound holds.
  int32_t guard = 0;
  while (p.Diameter() > max_diameter && guard < 4 * num_vertices) {
    ++guard;
    // Connect the two most distant vertices' midpoints to vertex 0.
    VertexId far = 0;
    std::vector<int32_t> dist = p.BfsDistances(0);
    for (VertexId v = 0; v < p.NumVertices(); ++v) {
      if (dist[v] > dist[far]) far = v;
    }
    p.AddEdge(0, far);
  }
  return p;
}

}  // namespace spidermine
