#include "gen/transaction_gen.h"

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"

namespace spidermine {

Result<TransactionDataset> GenerateTransactionDataset(
    const TransactionDatasetConfig& config) {
  Rng rng(config.seed);
  TransactionDataset out;

  std::vector<GraphBuilder> builders;
  std::vector<PatternInjector> injectors;
  builders.reserve(static_cast<size_t>(config.num_graphs));
  for (int32_t t = 0; t < config.num_graphs; ++t) {
    builders.push_back(GenerateErdosRenyi(config.vertices_per_graph,
                                          config.avg_degree,
                                          config.num_labels, &rng));
  }
  injectors.reserve(builders.size());
  for (GraphBuilder& b : builders) injectors.emplace_back(&b);

  // Plant each pattern in `txn_support` distinct transactions (one
  // embedding per transaction: transaction support counts graphs, not
  // embeddings).
  auto plant = [&](const Pattern& pattern, int32_t txn_support) -> Status {
    std::vector<size_t> txns = rng.SampleWithoutReplacement(
        static_cast<size_t>(config.num_graphs),
        static_cast<size_t>(
            std::min<int32_t>(txn_support, config.num_graphs)));
    for (size_t t : txns) {
      SM_RETURN_NOT_OK(injectors[t].Inject(pattern, 1, &rng));
    }
    return Status::Ok();
  };

  for (int32_t i = 0; i < config.num_large; ++i) {
    Pattern large = RandomConnectedPattern(config.large_vertices,
                                           /*extra_edge_fraction=*/0.15,
                                           config.num_labels, &rng);
    SM_RETURN_NOT_OK(plant(large, config.large_txn_support));
    out.large_patterns.push_back(std::move(large));
  }
  for (int32_t i = 0; i < config.num_small; ++i) {
    Pattern small = RandomConnectedPattern(config.small_vertices,
                                           /*extra_edge_fraction=*/0.0,
                                           config.num_labels, &rng);
    SM_RETURN_NOT_OK(plant(small, config.small_txn_support));
    out.small_patterns.push_back(std::move(small));
  }

  out.database.reserve(builders.size());
  for (GraphBuilder& b : builders) {
    SM_ASSIGN_OR_RETURN(LabeledGraph g, b.Build());
    out.database.push_back(std::move(g));
  }
  return out;
}

}  // namespace spidermine
