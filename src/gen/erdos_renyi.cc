#include "gen/erdos_renyi.h"

#include <unordered_set>

namespace spidermine {

GraphBuilder GenerateErdosRenyi(int64_t num_vertices, double avg_degree,
                                LabelId num_labels, Rng* rng) {
  GraphBuilder builder;
  for (int64_t v = 0; v < num_vertices; ++v) {
    builder.AddVertex(static_cast<LabelId>(rng->UniformInt(0, num_labels - 1)));
  }
  if (num_vertices < 2) return builder;
  const int64_t target_edges =
      static_cast<int64_t>(static_cast<double>(num_vertices) * avg_degree / 2.0);
  const int64_t max_possible = num_vertices * (num_vertices - 1) / 2;
  const int64_t edges = std::min(target_edges, max_possible);
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(edges) * 2);
  int64_t added = 0;
  while (added < edges) {
    VertexId u = static_cast<VertexId>(rng->UniformInt(0, num_vertices - 1));
    VertexId v = static_cast<VertexId>(rng->UniformInt(0, num_vertices - 1));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    uint64_t key = (static_cast<uint64_t>(u) << 32) | static_cast<uint32_t>(v);
    if (!seen.insert(key).second) continue;
    builder.AddEdge(u, v);
    ++added;
  }
  return builder;
}

}  // namespace spidermine
