#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "pattern/pattern.h"

/// \file callgraph_sim.h
/// Simulated Jeti-style static call graph (substitution documented in
/// DESIGN.md Sec. 4: the Jeti 0.7.6 source snapshot is not available here).
/// Nodes are methods labeled with their class; edges are call relations.
/// The simulator matches the statistics the paper reports for its extracted
/// graph -- 835 nodes, 1764 edges, 267 class labels, average degree 2.13,
/// maximum degree 69 -- and plants a high-cohesion utility-class pattern
/// (the GregorianCalendar/Calendar/SimpleDateFormat structure of Fig. 24)
/// with support >= 10.

namespace spidermine {

/// Generator parameters (defaults match the paper's Jeti statistics).
struct CallGraphSimConfig {
  int64_t num_methods = 835;
  int64_t target_edges = 1764;
  LabelId num_classes = 267;
  int32_t hub_degree = 69;  ///< one dispatcher-style hub method
  /// The planted cohesive pattern: methods of 3 utility classes calling
  /// each other (paper Fig. 24).
  int32_t pattern_vertices = 30;
  int32_t pattern_support = 10;
  uint64_t seed = 13;
};

/// The simulated call graph plus its planted ground truth.
struct CallGraphDataset {
  LabeledGraph graph;
  Pattern cohesive_pattern;
};

/// Builds the simulated call graph.
Result<CallGraphDataset> GenerateCallGraphSim(const CallGraphSimConfig& config);

}  // namespace spidermine
