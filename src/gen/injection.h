#pragma once

#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "graph/graph_builder.h"
#include "pattern/pattern.h"

/// \file injection.h
/// Plants pattern embeddings into a background graph under construction
/// (the paper's synthetic data recipe: "constructed by generating a
/// background graph and injecting into it a set of large patterns as well
/// as a set of small patterns"). Each embedding claims fresh vertices,
/// overwrites their labels and adds the pattern's edges; embeddings of all
/// injections are mutually vertex-disjoint so every pattern reaches its
/// intended support under overlap-aware measures. Background edges incident
/// to claimed vertices are left in place -- exactly the interconnection
/// noise the paper points out ("the interconnections between the patterns
/// and the background graph actually give rise to 10 largest patterns").

namespace spidermine {

/// Injects patterns into one GraphBuilder, keeping all planted embeddings
/// vertex-disjoint.
class PatternInjector {
 public:
  /// \p builder is borrowed and must outlive the injector.
  explicit PatternInjector(GraphBuilder* builder) : builder_(builder) {}

  /// Plants \p num_embeddings disjoint embeddings of \p pattern. Fails with
  /// kResourceExhausted when the builder has too few unclaimed vertices.
  Status Inject(const Pattern& pattern, int32_t num_embeddings, Rng* rng);

  /// Vertices claimed so far (across all injections).
  int64_t NumClaimedVertices() const {
    return static_cast<int64_t>(claimed_.size());
  }

 private:
  GraphBuilder* builder_;
  std::unordered_set<VertexId> claimed_;
};

}  // namespace spidermine
