#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "pattern/pattern.h"

/// \file paper_datasets.h
/// The paper's synthetic dataset recipes: Table 1 (GID 1-5, used by
/// Figures 4-8 and the Figure 16 runtime table) and Table 3 (GID 6-10,
/// used by the Figure 18 robustness study). Each dataset is an
/// Erdos-Renyi background with disjointly injected large and small
/// patterns, all reproducible from a seed.

namespace spidermine {

/// Generation parameters of one synthetic dataset row.
struct GidSpec {
  int32_t gid = 0;
  int64_t num_vertices = 0;   ///< |V|
  LabelId num_labels = 0;     ///< f
  double avg_degree = 0.0;    ///< d
  int32_t num_large = 0;      ///< m
  int32_t large_vertices = 0; ///< |V_L|
  int32_t large_support = 0;  ///< Lsup
  int32_t num_small = 0;      ///< n
  int32_t small_vertices = 0; ///< |V_S|
  int32_t small_support_lo = 0;  ///< Ssup (lo == hi for Table 1 rows)
  int32_t small_support_hi = 0;
  int32_t large_support_lo = 0;  ///< for Table 3 rows (0: use large_support)
  int32_t large_support_hi = 0;
};

/// The Table 1 specification for GID in [1, 5].
GidSpec Table1Spec(int32_t gid);

/// The Table 3 specification for GID in [6, 10].
GidSpec Table3Spec(int32_t gid);

/// A generated dataset: the graph plus the planted ground-truth patterns.
struct PaperDataset {
  GidSpec spec;
  LabeledGraph graph;
  std::vector<Pattern> large_patterns;
  std::vector<Pattern> small_patterns;
};

/// Builds the dataset for \p spec deterministically from \p seed.
Result<PaperDataset> BuildGidDataset(const GidSpec& spec, uint64_t seed);

/// Convenience: Table1Spec/Table3Spec + BuildGidDataset for GID in [1, 10].
Result<PaperDataset> BuildGidDataset(int32_t gid, uint64_t seed);

}  // namespace spidermine
