#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "pattern/pattern.h"

/// \file dblp_sim.h
/// Simulated DBLP co-authorship network (substitution documented in
/// DESIGN.md Sec. 4: the raw DBLP snapshot of the paper is not available
/// here). The simulator reproduces the properties the paper's Figures
/// 20/22/23 actually depend on:
///   * the scale of the extracted graph (~6508 vertices, ~24402 edges),
///   * the 4 seniority labels Prolific/Senior/Junior/Beginner with a
///     pyramid-shaped skew (few prolific authors, many beginners),
///   * community structure (research groups) with dense intra-group
///     collaboration,
///   * one large collaborative pattern common to several groups (Fig. 22)
///     and several discriminative per-cluster patterns (Fig. 23).

namespace spidermine {

/// Seniority labels of the simulated co-author graph.
enum DblpLabel : LabelId {
  kProlific = 0,
  kSenior = 1,
  kJunior = 2,
  kBeginner = 3,
};

/// Generator parameters (defaults match the paper's extracted graph).
struct DblpSimConfig {
  int64_t num_authors = 6508;
  int64_t target_edges = 24402;
  int32_t num_communities = 260;
  /// The cross-community collaborative pattern (Fig. 22).
  int32_t common_pattern_vertices = 25;
  int32_t common_pattern_support = 6;
  /// Discriminative per-cluster patterns (Fig. 23).
  int32_t num_cluster_patterns = 3;
  int32_t cluster_pattern_vertices = 14;
  int32_t cluster_pattern_support = 12;
  uint64_t seed = 11;
};

/// The simulated network plus its planted ground truth.
struct DblpDataset {
  LabeledGraph graph;
  Pattern common_pattern;
  std::vector<Pattern> cluster_patterns;
};

/// Builds the simulated DBLP co-author graph.
Result<DblpDataset> GenerateDblpSim(const DblpSimConfig& config);

}  // namespace spidermine
