#include "gen/injection.h"

#include "common/strings.h"

namespace spidermine {

Status PatternInjector::Inject(const Pattern& pattern, int32_t num_embeddings,
                               Rng* rng) {
  const int64_t n = builder_->NumVertices();
  const int64_t needed =
      static_cast<int64_t>(pattern.NumVertices()) * num_embeddings;
  if (needed > n - static_cast<int64_t>(claimed_.size())) {
    return Status::ResourceExhausted(
        StrCat("injection needs ", needed, " fresh vertices; only ",
               n - static_cast<int64_t>(claimed_.size()), " unclaimed"));
  }
  for (int32_t copy = 0; copy < num_embeddings; ++copy) {
    // Claim |V(P)| fresh vertices uniformly at random.
    std::vector<VertexId> site;
    site.reserve(static_cast<size_t>(pattern.NumVertices()));
    int64_t guard = 0;
    while (static_cast<int32_t>(site.size()) < pattern.NumVertices()) {
      if (++guard > 1000 * needed + 10000) {
        return Status::Internal("injection could not find fresh vertices");
      }
      VertexId v = static_cast<VertexId>(rng->UniformInt(0, n - 1));
      if (claimed_.count(v)) continue;
      claimed_.insert(v);
      site.push_back(v);
    }
    for (VertexId pv = 0; pv < pattern.NumVertices(); ++pv) {
      builder_->SetLabel(site[pv], pattern.Label(pv));
    }
    for (const auto& e : pattern.LabeledEdges()) {
      builder_->AddEdge(site[e.u], site[e.v], e.label);
    }
  }
  return Status::Ok();
}

}  // namespace spidermine
