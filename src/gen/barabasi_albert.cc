#include "gen/barabasi_albert.h"

#include <unordered_set>
#include <vector>

namespace spidermine {

GraphBuilder GenerateBarabasiAlbert(int64_t num_vertices,
                                    int32_t edges_per_vertex,
                                    LabelId num_labels, Rng* rng) {
  GraphBuilder builder;
  for (int64_t v = 0; v < num_vertices; ++v) {
    builder.AddVertex(static_cast<LabelId>(rng->UniformInt(0, num_labels - 1)));
  }
  if (num_vertices < 2) return builder;

  // repeated_targets holds every edge endpoint once per incidence, so
  // uniform sampling from it is degree-proportional sampling.
  std::vector<VertexId> repeated_targets;
  const int64_t m0 = std::min<int64_t>(edges_per_vertex + 1, num_vertices);
  // Seed clique over the first m0 vertices.
  for (VertexId u = 0; u < m0; ++u) {
    for (VertexId v = u + 1; v < m0; ++v) {
      builder.AddEdge(u, v);
      repeated_targets.push_back(u);
      repeated_targets.push_back(v);
    }
  }
  for (int64_t v = m0; v < num_vertices; ++v) {
    std::unordered_set<VertexId> chosen;
    int32_t attempts = 0;
    while (static_cast<int32_t>(chosen.size()) < edges_per_vertex &&
           attempts < edges_per_vertex * 20) {
      ++attempts;
      VertexId target =
          repeated_targets[rng->Index(repeated_targets.size())];
      if (target == v) continue;
      chosen.insert(target);
    }
    for (VertexId target : chosen) {
      builder.AddEdge(static_cast<VertexId>(v), target);
      repeated_targets.push_back(static_cast<VertexId>(v));
      repeated_targets.push_back(target);
    }
  }
  return builder;
}

}  // namespace spidermine
