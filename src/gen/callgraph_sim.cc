#include "gen/callgraph_sim.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"
#include "gen/injection.h"
#include "graph/graph_builder.h"

namespace spidermine {

Result<CallGraphDataset> GenerateCallGraphSim(
    const CallGraphSimConfig& config) {
  Rng rng(config.seed);
  CallGraphDataset out;

  GraphBuilder builder;
  // Methods grouped into classes; class sizes are skewed (a few big
  // classes, many small ones), as in real codebases.
  for (int64_t v = 0; v < config.num_methods; ++v) {
    // Zipf-ish class assignment.
    double x = rng.UniformReal();
    LabelId cls = static_cast<LabelId>(
        static_cast<double>(config.num_classes) * x * x);
    if (cls >= config.num_classes) cls = config.num_classes - 1;
    builder.AddVertex(cls);
  }

  // Planted cohesive utility cluster first, so its edges count toward the
  // paper's total-edge target: methods of 3 classes with tight mutual
  // calls (the GregorianCalendar/Calendar/SimpleDateFormat shape).
  {
    std::vector<LabelId> classes = {0, 1, 2};
    Pattern p;
    for (int32_t i = 0; i < config.pattern_vertices; ++i) {
      p.AddVertex(classes[static_cast<size_t>(i) % classes.size()]);
    }
    // Chain + intra-class extra calls => high cohesion.
    for (VertexId i = 1; i < config.pattern_vertices; ++i) {
      p.AddEdge(i, static_cast<VertexId>(rng.UniformInt(0, i - 1)));
    }
    for (int32_t i = 0; i < config.pattern_vertices / 2; ++i) {
      VertexId a = static_cast<VertexId>(
          rng.UniformInt(0, config.pattern_vertices - 1));
      VertexId b = static_cast<VertexId>(
          rng.UniformInt(0, config.pattern_vertices - 1));
      p.AddEdge(a, b);
    }
    out.cohesive_pattern = std::move(p);
  }
  PatternInjector injector(&builder);
  SM_RETURN_NOT_OK(injector.Inject(out.cohesive_pattern,
                                   config.pattern_support, &rng));
  const int64_t planted_edges =
      static_cast<int64_t>(out.cohesive_pattern.NumEdges()) *
      config.pattern_support;
  const int64_t background_target =
      std::max<int64_t>(0, config.target_edges - planted_edges);

  // Track distinct background edges so the deduplicated count hits the
  // remaining budget.
  std::unordered_set<uint64_t> edge_set;
  auto add_edge = [&](VertexId u, VertexId v) {
    if (u == v) return;
    VertexId a = std::min(u, v);
    VertexId b = std::max(u, v);
    uint64_t key = (static_cast<uint64_t>(a) << 32) | static_cast<uint32_t>(b);
    if (!edge_set.insert(key).second) return;
    builder.AddEdge(a, b);
  };
  // One dispatcher hub (e.g. an event loop) calling many methods.
  VertexId hub = 0;
  {
    int32_t fan = std::min<int32_t>(
        config.hub_degree, static_cast<int32_t>(config.num_methods - 1));
    std::vector<size_t> targets = rng.SampleWithoutReplacement(
        static_cast<size_t>(config.num_methods), static_cast<size_t>(fan));
    for (size_t t : targets) add_edge(hub, static_cast<VertexId>(t));
  }
  // Sparse call chains: methods call 1-3 others, biased toward methods of
  // the same or nearby classes (intra-class cohesion).
  while (static_cast<int64_t>(edge_set.size()) < background_target) {
    VertexId u =
        static_cast<VertexId>(rng.UniformInt(1, config.num_methods - 1));
    VertexId v;
    if (rng.Bernoulli(0.6)) {
      // Nearby vertex (same compilation area -> likely same class).
      int64_t offset = rng.UniformInt(-6, 6);
      int64_t w = std::clamp<int64_t>(u + offset, 0, config.num_methods - 1);
      v = static_cast<VertexId>(w);
    } else {
      v = static_cast<VertexId>(rng.UniformInt(0, config.num_methods - 1));
    }
    add_edge(u, v);
  }

  SM_ASSIGN_OR_RETURN(out.graph, builder.Build());
  return out;
}

}  // namespace spidermine
