#pragma once

#include "common/rng.h"
#include "graph/graph_builder.h"

/// \file erdos_renyi.h
/// Erdos-Renyi random background graphs (the paper's synthetic single-graph
/// model I). Parameterized by average degree, as in the paper's tables:
/// m = n * d / 2 distinct uniform edges, labels uniform over f values.

namespace spidermine {

/// Generates G(n, m = n*avg_degree/2) with uniform labels in
/// [0, num_labels). Returns a builder so callers can inject patterns
/// before freezing the graph.
GraphBuilder GenerateErdosRenyi(int64_t num_vertices, double avg_degree,
                                LabelId num_labels, Rng* rng);

}  // namespace spidermine
