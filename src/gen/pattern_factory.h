#pragma once

#include <vector>

#include "common/rng.h"
#include "pattern/pattern.h"

/// \file pattern_factory.h
/// Random pattern construction for injection experiments: the paper's
/// evaluation plants "large" and "small" patterns of given vertex counts
/// into background graphs (Tables 1 and 3).

namespace spidermine {

/// Generates a connected pattern: a random spanning tree over
/// \p num_vertices vertices plus extra random edges
/// (extra_edge_fraction * num_vertices of them). Labels are drawn
/// uniformly from \p label_pool.
Pattern RandomConnectedPattern(int32_t num_vertices,
                               double extra_edge_fraction,
                               const std::vector<LabelId>& label_pool,
                               Rng* rng);

/// Same, with labels uniform in [0, num_labels).
Pattern RandomConnectedPattern(int32_t num_vertices,
                               double extra_edge_fraction, LabelId num_labels,
                               Rng* rng);

/// Generates a connected pattern whose diameter is at most \p max_diameter
/// (rejection + repair: extra edges are added until the bound holds).
Pattern RandomPatternWithDiameter(int32_t num_vertices, int32_t max_diameter,
                                  LabelId num_labels, Rng* rng);

}  // namespace spidermine
