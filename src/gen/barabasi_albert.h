#pragma once

#include "common/rng.h"
#include "graph/graph_builder.h"

/// \file barabasi_albert.h
/// Barabasi-Albert preferential-attachment graphs (the paper's synthetic
/// model II, "scale-free network"): each new vertex attaches to
/// edges_per_vertex existing vertices chosen proportionally to degree.
/// High-degree hubs give rise to huge numbers of small frequent patterns,
/// which is exactly the stress the paper's Figure 17 exercises.

namespace spidermine {

/// Generates a BA graph with uniform labels in [0, num_labels).
GraphBuilder GenerateBarabasiAlbert(int64_t num_vertices,
                                    int32_t edges_per_vertex,
                                    LabelId num_labels, Rng* rng);

}  // namespace spidermine
