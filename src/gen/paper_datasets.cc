#include "gen/paper_datasets.h"

#include "common/rng.h"
#include "common/strings.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"

namespace spidermine {

GidSpec Table1Spec(int32_t gid) {
  // Columns of Table 1: GID |V| f d m |V_L| Lsup n |V_S| Ssup.
  GidSpec s;
  s.gid = gid;
  s.num_large = 5;
  s.large_vertices = 30;
  s.large_support = 2;
  s.small_vertices = 3;
  switch (gid) {
    case 1:
      s.num_vertices = 400;
      s.num_labels = 70;
      s.avg_degree = 2;
      s.num_small = 5;
      s.small_support_lo = s.small_support_hi = 2;
      break;
    case 2:  // doubles the average degree vs GID 1
      s.num_vertices = 400;
      s.num_labels = 70;
      s.avg_degree = 4;
      s.num_small = 5;
      s.small_support_lo = s.small_support_hi = 2;
      break;
    case 3:  // increases the support of small patterns vs GID 1
      s.num_vertices = 1000;
      s.num_labels = 250;
      s.avg_degree = 2;
      s.num_small = 5;
      s.small_support_lo = s.small_support_hi = 20;
      break;
    case 4:  // doubles the average degree vs GID 3
      s.num_vertices = 1000;
      s.num_labels = 250;
      s.avg_degree = 4;
      s.num_small = 5;
      s.small_support_lo = s.small_support_hi = 20;
      break;
    case 5:  // increases the number of small patterns vs GID 2
      s.num_vertices = 600;
      s.num_labels = 130;
      s.avg_degree = 4;
      s.num_small = 20;
      s.small_support_lo = s.small_support_hi = 2;
      break;
    default:
      s.gid = 0;
      break;
  }
  return s;
}

GidSpec Table3Spec(int32_t gid) {
  GidSpec s;
  s.gid = gid;
  s.num_large = 5;
  s.large_vertices = 50;
  s.large_support_lo = 10;
  s.large_support_hi = 15;
  s.num_small = 50;
  s.small_vertices = 5;
  switch (gid) {
    case 6:
      s.num_vertices = 20490;
      s.num_labels = 1064;
      s.avg_degree = 2.0 * 31255 / 20490;
      s.small_support_lo = 5;
      s.small_support_hi = 15;
      break;
    case 7:
      s.num_vertices = 31110;
      s.num_labels = 1658;
      s.avg_degree = 2.0 * 47446 / 31110;
      s.small_support_lo = 10;
      s.small_support_hi = 20;
      break;
    case 8:
      s.num_vertices = 37595;
      s.num_labels = 2062;
      s.avg_degree = 2.0 * 57262 / 37595;
      s.small_support_lo = 15;
      s.small_support_hi = 25;
      break;
    case 9:
      s.num_vertices = 47410;
      s.num_labels = 2610;
      s.avg_degree = 2.0 * 72149 / 47410;
      s.small_support_lo = 20;
      s.small_support_hi = 30;
      break;
    case 10:
      s.num_vertices = 56740;
      s.num_labels = 3138;
      s.avg_degree = 2.0 * 86330 / 56740;
      s.small_support_lo = 25;
      s.small_support_hi = 35;
      break;
    default:
      s.gid = 0;
      break;
  }
  return s;
}

Result<PaperDataset> BuildGidDataset(const GidSpec& spec, uint64_t seed) {
  if (spec.gid == 0) {
    return Status::InvalidArgument("unknown GID specification");
  }
  Rng rng(seed ^ (0xD1B54A32D192ED03ULL * static_cast<uint64_t>(spec.gid)));
  PaperDataset out;
  out.spec = spec;

  GraphBuilder builder = GenerateErdosRenyi(spec.num_vertices,
                                            spec.avg_degree, spec.num_labels,
                                            &rng);
  PatternInjector injector(&builder);

  for (int32_t i = 0; i < spec.num_large; ++i) {
    Pattern large = RandomConnectedPattern(spec.large_vertices,
                                           /*extra_edge_fraction=*/0.15,
                                           spec.num_labels, &rng);
    int32_t support = spec.large_support;
    if (spec.large_support_lo > 0) {
      support = static_cast<int32_t>(
          rng.UniformInt(spec.large_support_lo, spec.large_support_hi));
    }
    SM_RETURN_NOT_OK(injector.Inject(large, support, &rng));
    out.large_patterns.push_back(std::move(large));
  }
  for (int32_t i = 0; i < spec.num_small; ++i) {
    Pattern small = RandomConnectedPattern(spec.small_vertices,
                                           /*extra_edge_fraction=*/0.0,
                                           spec.num_labels, &rng);
    int32_t support = static_cast<int32_t>(
        rng.UniformInt(spec.small_support_lo, spec.small_support_hi));
    SM_RETURN_NOT_OK(injector.Inject(small, support, &rng));
    out.small_patterns.push_back(std::move(small));
  }
  SM_ASSIGN_OR_RETURN(out.graph, builder.Build());
  return out;
}

Result<PaperDataset> BuildGidDataset(int32_t gid, uint64_t seed) {
  if (gid >= 1 && gid <= 5) return BuildGidDataset(Table1Spec(gid), seed);
  if (gid >= 6 && gid <= 10) return BuildGidDataset(Table3Spec(gid), seed);
  return Status::InvalidArgument(StrCat("GID must be in [1, 10]; got ", gid));
}

}  // namespace spidermine
