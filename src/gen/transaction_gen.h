#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "pattern/pattern.h"

/// \file transaction_gen.h
/// The paper's graph-transaction benchmark (Sec. 5.1.2): 10 Erdos-Renyi
/// graphs of 500 vertices, average degree 5, 65 labels; 5 distinctive large
/// patterns of 30 vertices injected across the database; the "more small
/// patterns" variant (Figure 15) additionally injects 100 small patterns of
/// 5 vertices.

namespace spidermine {

/// Parameters of the transaction benchmark generator.
struct TransactionDatasetConfig {
  int32_t num_graphs = 10;
  int64_t vertices_per_graph = 500;
  double avg_degree = 5.0;
  LabelId num_labels = 65;
  int32_t num_large = 5;
  int32_t large_vertices = 30;
  /// Number of transactions each large pattern is planted in.
  int32_t large_txn_support = 6;
  int32_t num_small = 0;  ///< 100 for the Figure 15 variant
  int32_t small_vertices = 5;
  int32_t small_txn_support = 8;
  uint64_t seed = 7;
};

/// A generated transaction database with its ground truth.
struct TransactionDataset {
  std::vector<LabeledGraph> database;
  std::vector<Pattern> large_patterns;
  std::vector<Pattern> small_patterns;
};

/// Builds the benchmark database.
Result<TransactionDataset> GenerateTransactionDataset(
    const TransactionDatasetConfig& config);

}  // namespace spidermine
