#include "baselines/grew.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/timer.h"
#include "pattern/dfs_code.h"

namespace spidermine {

namespace {

bool LargerGrewPattern(const GrewPattern& a, const GrewPattern& b) {
  if (a.pattern.NumEdges() != b.pattern.NumEdges()) {
    return a.pattern.NumEdges() > b.pattern.NumEdges();
  }
  return a.support > b.support;
}

/// Where a graph vertex appears: pattern id, embedding index, and the
/// pattern-local vertex it realizes.
struct Occurrence {
  int32_t pattern_id;
  int32_t embedding_idx;
  VertexId pattern_vertex;
};

/// A candidate merge family: connect pattern a at local vertex av with
/// pattern b at local vertex bv.
struct MergeDescriptor {
  int32_t a;
  VertexId av;
  int32_t b;
  VertexId bv;
  bool operator<(const MergeDescriptor& o) const {
    return std::tie(a, av, b, bv) < std::tie(o.a, o.av, o.b, o.bv);
  }
};

struct MergeInstance {
  int32_t ea;  // embedding index in pattern a
  int32_t eb;  // embedding index in pattern b
};

}  // namespace

Result<GrewResult> GrewDiscover(const LabeledGraph& graph,
                                const GrewConfig& config) {
  if (config.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  GrewResult result;
  Deadline deadline(config.time_budget_seconds);

  // Level 0: single-vertex patterns for frequent labels; the embeddings
  // (single vertices) are trivially disjoint.
  std::vector<GrewPattern> patterns;
  for (LabelId label = 0; label < graph.NumLabels(); ++label) {
    auto vertices = graph.VerticesWithLabel(label);
    if (static_cast<int64_t>(vertices.size()) < config.min_support) continue;
    GrewPattern p;
    p.pattern.AddVertex(label);
    for (VertexId v : vertices) p.embeddings.push_back({v});
    p.support = static_cast<int64_t>(p.embeddings.size());
    patterns.push_back(std::move(p));
  }

  std::unordered_set<std::string> seen;
  for (const GrewPattern& p : patterns) {
    seen.insert(CanonicalString(p.pattern));
  }

  for (int32_t iter = 0; iter < config.max_iterations; ++iter) {
    if (deadline.Expired()) {
      result.timed_out = true;
      break;
    }
    ++result.iterations;

    // Index every embedding vertex.
    std::unordered_map<VertexId, std::vector<Occurrence>> where;
    for (size_t pid = 0; pid < patterns.size(); ++pid) {
      const GrewPattern& p = patterns[pid];
      for (size_t ei = 0; ei < p.embeddings.size(); ++ei) {
        const Embedding& e = p.embeddings[ei];
        for (VertexId pv = 0; pv < p.pattern.NumVertices(); ++pv) {
          where[e[pv]].push_back(Occurrence{static_cast<int32_t>(pid),
                                            static_cast<int32_t>(ei), pv});
        }
      }
    }

    // Collect connection instances per descriptor.
    std::map<MergeDescriptor, std::vector<MergeInstance>> candidates;
    for (VertexId u = 0; u < graph.NumVertices(); ++u) {
      auto iu = where.find(u);
      if (iu == where.end()) continue;
      for (VertexId v : graph.Neighbors(u)) {
        if (v <= u) continue;
        auto iv = where.find(v);
        if (iv == where.end()) continue;
        for (const Occurrence& oa : iu->second) {
          for (const Occurrence& ob : iv->second) {
            // Only merge distinct embeddings; same-pattern merges (oa.pid
            // == ob.pid) build chains of the same structure.
            if (oa.pattern_id == ob.pattern_id &&
                oa.embedding_idx == ob.embedding_idx) {
              continue;
            }
            // Normalize orientation: smaller pattern id first.
            if (oa.pattern_id < ob.pattern_id ||
                (oa.pattern_id == ob.pattern_id &&
                 oa.pattern_vertex <= ob.pattern_vertex)) {
              candidates[{oa.pattern_id, oa.pattern_vertex, ob.pattern_id,
                          ob.pattern_vertex}]
                  .push_back({oa.embedding_idx, ob.embedding_idx});
            } else {
              candidates[{ob.pattern_id, ob.pattern_vertex, oa.pattern_id,
                          oa.pattern_vertex}]
                  .push_back({ob.embedding_idx, oa.embedding_idx});
            }
          }
        }
      }
    }

    // Realize frequent descriptors as merged patterns with greedily chosen
    // vertex-disjoint instances.
    std::vector<GrewPattern> merged_patterns;
    for (auto& [desc, instances] : candidates) {
      if (static_cast<int64_t>(instances.size()) < config.min_support) {
        continue;
      }
      const GrewPattern& pa = patterns[desc.a];
      const GrewPattern& pb = patterns[desc.b];
      std::unordered_set<VertexId> used;
      std::vector<Embedding> merged_embeddings;
      for (const MergeInstance& inst : instances) {
        const Embedding& ea = pa.embeddings[inst.ea];
        const Embedding& eb = pb.embeddings[inst.eb];
        bool conflict = false;
        for (VertexId x : ea) {
          if (used.count(x)) {
            conflict = true;
            break;
          }
        }
        for (VertexId x : eb) {
          if (conflict) break;
          if (used.count(x)) conflict = true;
        }
        // Also require the two embeddings to be disjoint from each other.
        if (!conflict) {
          std::unordered_set<VertexId> image(ea.begin(), ea.end());
          for (VertexId x : eb) {
            if (image.count(x)) {
              conflict = true;
              break;
            }
          }
        }
        if (conflict) continue;
        for (VertexId x : ea) used.insert(x);
        for (VertexId x : eb) used.insert(x);
        Embedding merged = ea;
        merged.insert(merged.end(), eb.begin(), eb.end());
        merged_embeddings.push_back(std::move(merged));
      }
      if (static_cast<int64_t>(merged_embeddings.size()) <
          config.min_support) {
        continue;
      }
      GrewPattern q;
      q.pattern = pa.pattern;
      VertexId offset = q.pattern.NumVertices();
      for (VertexId v = 0; v < pb.pattern.NumVertices(); ++v) {
        q.pattern.AddVertex(pb.pattern.Label(v));
      }
      for (const auto& [u2, v2] : pb.pattern.Edges()) {
        q.pattern.AddEdge(offset + u2, offset + v2);
      }
      q.pattern.AddEdge(desc.av, offset + desc.bv);
      std::string key = CanonicalString(q.pattern);
      if (!seen.insert(key).second) continue;
      q.embeddings = std::move(merged_embeddings);
      q.support = static_cast<int64_t>(q.embeddings.size());
      merged_patterns.push_back(std::move(q));
    }
    if (merged_patterns.empty()) break;

    // Retain the best patterns for the next iteration (GREW's greedy,
    // no-guarantee character: everything else is forgotten).
    for (GrewPattern& q : merged_patterns) patterns.push_back(std::move(q));
    std::sort(patterns.begin(), patterns.end(), LargerGrewPattern);
    if (static_cast<int32_t>(patterns.size()) > config.max_patterns) {
      patterns.resize(static_cast<size_t>(config.max_patterns));
    }
  }

  std::sort(patterns.begin(), patterns.end(), LargerGrewPattern);
  result.patterns = std::move(patterns);
  return result;
}

}  // namespace spidermine
