#include "baselines/complete_miner.h"

#include <algorithm>
#include <deque>
#include <set>
#include <tuple>
#include <unordered_set>

#include "common/timer.h"
#include "pattern/dfs_code.h"
#include "pattern/embedding_list.h"

namespace spidermine {

namespace {

struct State {
  Pattern pattern;
  std::vector<Embedding> embeddings;
};

}  // namespace

Result<CompleteMineResult> MineComplete(const LabeledGraph& graph,
                                        const CompleteMinerConfig& config) {
  if (config.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  CompleteMineResult result;
  Deadline deadline(config.time_budget_seconds);
  SupportContext ctx;

  std::deque<State> queue;
  std::unordered_set<std::string> seen;

  auto support_of = [&](const State& s) {
    return ComputeSupport(config.support_measure, s.pattern, s.embeddings,
                          ctx);
  };

  auto over_budget = [&]() {
    if (config.max_patterns > 0 &&
        static_cast<int64_t>(result.patterns.size()) >= config.max_patterns) {
      return true;
    }
    return deadline.Expired();
  };

  // Level 1: single frequent edges per (label, label, edge-label) triple
  // (edge labels are always 0 on unlabeled graphs, so this degenerates to
  // the plain (label, label) enumeration there).
  {
    std::set<std::tuple<LabelId, LabelId, EdgeLabelId>> edge_kinds;
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      for (VertexId u : graph.Neighbors(v)) {
        if (v >= u) continue;
        LabelId a = graph.Label(v);
        LabelId b = graph.Label(u);
        if (a > b) std::swap(a, b);
        edge_kinds.emplace(a, b, graph.EdgeLabel(v, u));
      }
    }
    for (const auto& [a, b, el] : edge_kinds) {
      State s;
      s.pattern.AddVertex(a);
      s.pattern.AddVertex(b);
      s.pattern.AddEdge(0, 1, el);
      for (VertexId v : graph.VerticesWithLabel(a)) {
        for (VertexId u : graph.Neighbors(v)) {
          if (graph.Label(u) != b) continue;
          if (graph.EdgeLabel(v, u) != el) continue;
          if (a == b && v > u) continue;  // one orientation for equal labels
          s.embeddings.push_back({v, u});
          if (static_cast<int64_t>(s.embeddings.size()) >=
              config.max_embeddings_per_pattern) {
            break;
          }
        }
        if (static_cast<int64_t>(s.embeddings.size()) >=
            config.max_embeddings_per_pattern) {
          break;
        }
      }
      int64_t support = support_of(s);
      if (support < config.min_support) continue;
      seen.insert(CanonicalString(s.pattern));
      result.patterns.push_back({s.pattern, support});
      queue.push_back(std::move(s));
    }
  }

  while (!queue.empty()) {
    if (over_budget()) {
      result.aborted = true;
      break;
    }
    State state = std::move(queue.front());
    queue.pop_front();
    ++result.expansions;
    const Pattern& p = state.pattern;
    if (config.max_pattern_edges > 0 &&
        p.NumEdges() >= config.max_pattern_edges) {
      continue;
    }

    // All one-edge extensions realizable in the occurrence list, keyed with
    // the graph edge's label so edge-labeled extensions stay distinct.
    std::set<std::tuple<VertexId, LabelId, EdgeLabelId>> ext_new;
    std::set<std::tuple<VertexId, VertexId, EdgeLabelId>> ext_internal;
    for (const Embedding& e : state.embeddings) {
      std::unordered_set<VertexId> image(e.begin(), e.end());
      for (VertexId u = 0; u < p.NumVertices(); ++u) {
        for (VertexId x : graph.Neighbors(e[u])) {
          if (image.count(x)) continue;
          ext_new.emplace(u, graph.Label(x), graph.EdgeLabel(e[u], x));
        }
      }
      for (VertexId u = 0; u < p.NumVertices(); ++u) {
        for (VertexId v = u + 1; v < p.NumVertices(); ++v) {
          if (!p.HasEdge(u, v) && graph.HasEdge(e[u], e[v])) {
            ext_internal.emplace(u, v, graph.EdgeLabel(e[u], e[v]));
          }
        }
      }
    }

    auto admit = [&](State&& next) {
      if (static_cast<int64_t>(next.embeddings.size()) < config.min_support &&
          config.support_measure != SupportMeasureKind::kTransaction) {
        return;
      }
      DedupEmbeddingsByImage(&next.embeddings);
      int64_t support = support_of(next);
      if (support < config.min_support) return;
      std::string key = CanonicalString(next.pattern);
      if (!seen.insert(key).second) return;
      result.patterns.push_back({next.pattern, support});
      queue.push_back(std::move(next));
    };

    for (const auto& [u, label, el] : ext_new) {
      if (over_budget()) break;
      State next;
      next.pattern = p;
      VertexId nv = next.pattern.AddVertex(label);
      next.pattern.AddEdge(u, nv, el);
      ExtendEmbeddingsNewVertex(graph, state.embeddings, u, el, label,
                                config.max_embeddings_per_pattern,
                                &next.embeddings);
      admit(std::move(next));
    }
    for (const auto& [u, v, el] : ext_internal) {
      if (over_budget()) break;
      State next;
      next.pattern = p;
      next.pattern.AddEdge(u, v, el);
      next.embeddings =
          FilterEmbeddingsInternalEdge(graph, state.embeddings, u, v, el);
      admit(std::move(next));
    }
  }
  if (over_budget()) result.aborted = true;
  return result;
}

}  // namespace spidermine
