#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "pattern/embedding.h"
#include "pattern/pattern.h"

/// \file grew.h
/// Clean-room reimplementation of the GREW heuristic (Kuramochi & Karypis,
/// ICDM 2004 [20]), the paper's closest large-pattern competitor in
/// related work: iteratively merge pairs of existing patterns that are
/// frequently connected by an edge, maintaining VERTEX-DISJOINT embeddings
/// only. GREW "could discover some large patterns quickly", but -- as the
/// paper stresses -- gives no guarantee relative to the complete pattern
/// set; the ablation bench contrasts its recall of planted patterns with
/// SpiderMine's probabilistic guarantee.

namespace spidermine {

/// GREW parameters.
struct GrewConfig {
  /// Minimum number of vertex-disjoint co-occurrences for a merge.
  int64_t min_support = 2;
  /// Maximum merge iterations.
  int32_t max_iterations = 20;
  /// Patterns retained per iteration (best by size, then support).
  int32_t max_patterns = 64;
  /// Wall-clock budget in seconds (0 = unlimited).
  double time_budget_seconds = 0.0;
};

/// A GREW pattern with its disjoint embedding set.
struct GrewPattern {
  Pattern pattern;
  /// Mutually vertex-disjoint embeddings (GREW's invariant).
  std::vector<Embedding> embeddings;
  int64_t support = 0;  ///< == embeddings.size()
};

/// Result of a GREW run.
struct GrewResult {
  /// Final patterns, size-descending.
  std::vector<GrewPattern> patterns;
  int32_t iterations = 0;
  bool timed_out = false;
};

/// Runs GREW-style iterative merging on \p graph.
Result<GrewResult> GrewDiscover(const LabeledGraph& graph,
                                const GrewConfig& config);

}  // namespace spidermine
