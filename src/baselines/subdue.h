#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "pattern/embedding.h"
#include "pattern/pattern.h"

/// \file subdue.h
/// Clean-room reimplementation of the SUBDUE substructure-discovery
/// baseline (Holder, Cook & Djoko, KDD 1994 [13]), scoped to what the
/// SpiderMine evaluation exercises: beam search over substructures grown
/// edge-by-edge, scored by MDL-style compression value
///
///     value(S) = DL(G) / (DL(S) + DL(G|S))
///
/// where description lengths are bit estimates of adjacency + label
/// information and G|S is G with every (vertex-disjoint greedy) instance of
/// S collapsed. The heuristic's documented behavior -- converging on small,
/// high-frequency substructures -- is exactly the foil the paper's
/// Figures 4-8/10/20/21 rely on.

namespace spidermine {

/// SUBDUE parameters.
struct SubdueConfig {
  /// Beam width of the search (SUBDUE's classic default is 4).
  int32_t beam_width = 4;
  /// Substructures reported (best by compression value).
  int32_t max_best = 10;
  /// Limit on substructure growth steps per beam iteration.
  int32_t max_substructure_edges = 40;
  /// Limit on expanded candidates overall (safety valve).
  int64_t max_expansions = 20000;
  /// Per-pattern embedding cap.
  int64_t max_embeddings_per_pattern = 5000;
  /// Wall-clock budget in seconds (0 = unlimited).
  double time_budget_seconds = 0.0;
};

/// A discovered substructure.
struct SubduePattern {
  Pattern pattern;
  /// Vertex-disjoint instances (greedy), SUBDUE's notion of coverage.
  int64_t instances = 0;
  /// MDL compression value (higher is better).
  double value = 0.0;
};

/// Result of a Discover run.
struct SubdueResult {
  std::vector<SubduePattern> patterns;  ///< sorted by value descending
  int64_t expansions = 0;
  bool timed_out = false;
};

/// Runs SUBDUE-style discovery on \p graph.
Result<SubdueResult> SubdueDiscover(const LabeledGraph& graph,
                                    const SubdueConfig& config);

}  // namespace spidermine
