#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "pattern/pattern.h"

/// \file seus.h
/// Clean-room reimplementation of the SEuS baseline (Ghazizadeh &
/// Chawathe, Discovery Science 2002 [10]): a summary graph collapses all
/// same-label vertices into one summary node; candidate subgraphs are
/// enumerated on the summary (whose edge counts upper-bound real support)
/// and then verified against the data graph. The summary is lossy in
/// exactly the way the paper exploits: with many low-frequency patterns
/// the summary prunes little and the verified output is dominated by
/// very small structures ("SEuS has mostly generated small (<=3)
/// patterns").

namespace spidermine {

/// SEuS parameters.
struct SeusConfig {
  /// Minimum verified support (greedy vertex-disjoint instances).
  int64_t min_support = 2;
  /// Candidate enumeration depth: max edges per candidate. SEuS explores
  /// shallow candidates; 3 reproduces the published behavior.
  int32_t max_candidate_edges = 3;
  /// Cap on candidates enumerated from the summary.
  int64_t max_candidates = 50000;
  /// Per-pattern embedding cap during verification.
  int64_t max_embeddings_per_pattern = 5000;
  /// Wall-clock budget in seconds (0 = unlimited).
  double time_budget_seconds = 0.0;
};

/// A verified frequent structure.
struct SeusPattern {
  Pattern pattern;
  int64_t support = 0;          ///< verified (greedy vertex-disjoint)
  int64_t summary_estimate = 0; ///< the summary's (over-)estimate
};

/// Result of a SEuS run.
struct SeusResult {
  std::vector<SeusPattern> patterns;  ///< sorted by support descending
  int64_t candidates_enumerated = 0;
  int64_t candidates_pruned_by_summary = 0;
  bool timed_out = false;
};

/// Runs SEuS-style discovery on \p graph.
Result<SeusResult> SeusDiscover(const LabeledGraph& graph,
                                const SeusConfig& config);

}  // namespace spidermine
