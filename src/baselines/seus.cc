#include "baselines/seus.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/timer.h"
#include "pattern/dfs_code.h"
#include "pattern/vf2.h"
#include "support/support_measure.h"

namespace spidermine {

namespace {

/// The summary graph: one node per label; summary_edges[(a, b)] = number of
/// data edges between an a-labeled and a b-labeled vertex (a <= b).
struct Summary {
  std::map<std::pair<LabelId, LabelId>, int64_t> edges;

  int64_t EdgeCount(LabelId a, LabelId b) const {
    if (a > b) std::swap(a, b);
    auto it = edges.find({a, b});
    return it == edges.end() ? 0 : it->second;
  }
};

Summary BuildSummary(const LabeledGraph& graph) {
  Summary s;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (VertexId u : graph.Neighbors(v)) {
      if (v < u) {
        LabelId a = graph.Label(v);
        LabelId b = graph.Label(u);
        if (a > b) std::swap(a, b);
        ++s.edges[{a, b}];
      }
    }
  }
  return s;
}

/// Summary-level support estimate for a candidate pattern: the minimum
/// summary edge count over its edges (an upper bound on any edge-disjoint
/// instance count).
int64_t SummaryEstimate(const Summary& summary, const Pattern& p) {
  int64_t estimate = INT64_MAX;
  for (const auto& [u, v] : p.Edges()) {
    estimate =
        std::min(estimate, summary.EdgeCount(p.Label(u), p.Label(v)));
  }
  return estimate == INT64_MAX ? 0 : estimate;
}

}  // namespace

Result<SeusResult> SeusDiscover(const LabeledGraph& graph,
                                const SeusConfig& config) {
  if (config.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  SeusResult result;
  Deadline deadline(config.time_budget_seconds);
  Summary summary = BuildSummary(graph);

  // Enumerate candidate patterns over the summary: BFS over patterns,
  // extending by any summary edge whose count passes the threshold.
  std::vector<Pattern> frontier;
  std::unordered_set<std::string> seen;

  // Level 1: single summary edges.
  for (const auto& [labels, count] : summary.edges) {
    if (count < config.min_support) {
      ++result.candidates_pruned_by_summary;
      continue;
    }
    Pattern p;
    p.AddVertex(labels.first);
    p.AddVertex(labels.second);
    p.AddEdge(0, 1);
    std::string key = CanonicalString(p);
    if (seen.insert(key).second) frontier.push_back(std::move(p));
  }

  std::vector<Pattern> candidates = frontier;
  while (!frontier.empty() &&
         static_cast<int64_t>(candidates.size()) < config.max_candidates) {
    if (deadline.Expired()) {
      result.timed_out = true;
      break;
    }
    std::vector<Pattern> next;
    for (const Pattern& p : frontier) {
      if (p.NumEdges() >= config.max_candidate_edges) continue;
      // Extend at every vertex with every summary-frequent partner label.
      for (VertexId v = 0; v < p.NumVertices(); ++v) {
        for (const auto& [labels, count] : summary.edges) {
          if (count < config.min_support) continue;
          LabelId partner;
          if (labels.first == p.Label(v)) {
            partner = labels.second;
          } else if (labels.second == p.Label(v)) {
            partner = labels.first;
          } else {
            continue;
          }
          Pattern q = p;
          VertexId nv = q.AddVertex(partner);
          q.AddEdge(v, nv);
          if (SummaryEstimate(summary, q) < config.min_support) {
            ++result.candidates_pruned_by_summary;
            continue;
          }
          std::string key = CanonicalString(q);
          if (!seen.insert(key).second) continue;
          candidates.push_back(q);
          next.push_back(std::move(q));
          if (static_cast<int64_t>(candidates.size()) >=
              config.max_candidates) {
            break;
          }
        }
        if (static_cast<int64_t>(candidates.size()) >=
            config.max_candidates) {
          break;
        }
      }
      if (static_cast<int64_t>(candidates.size()) >= config.max_candidates) {
        break;
      }
    }
    frontier = std::move(next);
  }
  result.candidates_enumerated = static_cast<int64_t>(candidates.size());

  // Verification pass against the data graph.
  for (const Pattern& p : candidates) {
    if (deadline.Expired()) {
      result.timed_out = true;
      break;
    }
    Vf2Options options;
    options.max_embeddings = config.max_embeddings_per_pattern;
    options.max_states = 200000;
    std::vector<Embedding> embeddings = FindEmbeddings(p, graph, options);
    DedupEmbeddingsByImage(&embeddings);
    int64_t support = ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p,
                                     embeddings);
    if (support < config.min_support) continue;
    SeusPattern sp;
    sp.pattern = p;
    sp.support = support;
    sp.summary_estimate = SummaryEstimate(summary, p);
    result.patterns.push_back(std::move(sp));
  }
  std::sort(result.patterns.begin(), result.patterns.end(),
            [](const SeusPattern& a, const SeusPattern& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.pattern.NumEdges() > b.pattern.NumEdges();
            });
  return result;
}

}  // namespace spidermine
