#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "pattern/pattern.h"
#include "spidermine/txn_adapter.h"

/// \file origami.h
/// Clean-room reimplementation of the ORIGAMI baseline (Hasan, Chaoji,
/// Salem, Besson & Zaki, ICDM 2007 [12]) for the graph-transaction setting:
/// randomized maximal-pattern sampling (random walks in the pattern lattice
/// until no frequent extension exists) followed by greedy alpha-orthogonal
/// representative selection. The published bias the paper leans on --
/// "their approach favors a maximal pattern of smaller size over a maximal
/// pattern of larger size", so with many small patterns the output misses
/// the large ones (Figure 15) -- emerges naturally from uniform random
/// extension choices.

namespace spidermine {

/// ORIGAMI parameters.
struct OrigamiConfig {
  /// Minimum transaction support.
  int64_t min_support = 2;
  /// Number of random maximal-pattern walks.
  int32_t num_samples = 200;
  /// Orthogonality threshold: two selected representatives must have
  /// similarity <= alpha (edge-feature Jaccard).
  double alpha = 0.5;
  /// Representatives returned.
  int32_t max_representatives = 20;
  /// Per-pattern embedding cap during walks.
  int64_t max_embeddings_per_pattern = 5000;
  /// Per-walk growth-step cap (safety valve).
  int32_t max_walk_steps = 300;
  /// RNG seed.
  uint64_t seed = 17;
  /// Wall-clock budget in seconds (0 = unlimited).
  double time_budget_seconds = 0.0;
};

/// A sampled maximal pattern.
struct OrigamiPattern {
  Pattern pattern;
  int64_t support = 0;  ///< transaction support
};

/// Result of a Mine run.
struct OrigamiResult {
  /// Selected alpha-orthogonal representatives, size-descending.
  std::vector<OrigamiPattern> representatives;
  /// All distinct sampled maximal patterns.
  std::vector<OrigamiPattern> sampled;
  bool timed_out = false;
};

/// Runs ORIGAMI-style representative mining over a transaction database
/// (folded as a TransactionGraph; see txn_adapter.h).
Result<OrigamiResult> OrigamiMine(const TransactionGraph& txn,
                                  const OrigamiConfig& config);

}  // namespace spidermine
