#include "baselines/origami.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "common/timer.h"
#include "pattern/dfs_code.h"
#include "support/support_measure.h"

namespace spidermine {

namespace {

struct Walk {
  Pattern pattern;
  std::vector<Embedding> embeddings;
};

/// Edge features of a pattern: sorted (label, label) pairs; the similarity
/// of two patterns is the Jaccard coefficient of these feature multisets.
std::vector<uint64_t> EdgeFeatures(const Pattern& p) {
  std::vector<uint64_t> features;
  for (const auto& [u, v] : p.Edges()) {
    LabelId a = p.Label(u);
    LabelId b = p.Label(v);
    if (a > b) std::swap(a, b);
    features.push_back((static_cast<uint64_t>(a) << 32) |
                       static_cast<uint32_t>(b));
  }
  std::sort(features.begin(), features.end());
  return features;
}

double Jaccard(const std::vector<uint64_t>& a,
               const std::vector<uint64_t>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t total = a.size() + b.size() - common;
  return total == 0 ? 1.0 : static_cast<double>(common) /
                                static_cast<double>(total);
}

}  // namespace

Result<OrigamiResult> OrigamiMine(const TransactionGraph& txn,
                                  const OrigamiConfig& config) {
  if (config.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  const LabeledGraph& graph = txn.graph;
  OrigamiResult result;
  Rng rng(config.seed);
  Deadline deadline(config.time_budget_seconds);
  SupportContext ctx;
  ctx.txn_of_vertex = &txn.txn_of_vertex;

  auto txn_support = [&](const Walk& w) {
    return ComputeSupport(SupportMeasureKind::kTransaction, w.pattern,
                          w.embeddings, ctx);
  };

  // Frequent seed edges: (label, label) kinds with enough transactions.
  struct SeedEdge {
    LabelId a, b;
  };
  std::vector<SeedEdge> seeds;
  {
    std::unordered_map<uint64_t, std::unordered_set<int32_t>> kind_txns;
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      for (VertexId u : graph.Neighbors(v)) {
        if (v >= u) continue;
        LabelId a = graph.Label(v);
        LabelId b = graph.Label(u);
        if (a > b) std::swap(a, b);
        kind_txns[(static_cast<uint64_t>(a) << 32) |
                  static_cast<uint32_t>(b)]
            .insert(txn.txn_of_vertex[v]);
      }
    }
    for (const auto& [kind, txns] : kind_txns) {
      if (static_cast<int64_t>(txns.size()) < config.min_support) continue;
      seeds.push_back({static_cast<LabelId>(kind >> 32),
                       static_cast<LabelId>(kind & 0xffffffffu)});
    }
  }
  if (seeds.empty()) return result;

  std::unordered_set<std::string> distinct;
  for (int32_t sample = 0; sample < config.num_samples; ++sample) {
    if (deadline.Expired()) {
      result.timed_out = true;
      break;
    }
    // Start from a uniformly random frequent edge kind.
    const SeedEdge seed = seeds[rng.Index(seeds.size())];
    Walk walk;
    walk.pattern.AddVertex(seed.a);
    walk.pattern.AddVertex(seed.b);
    walk.pattern.AddEdge(0, 1);
    for (VertexId v : graph.VerticesWithLabel(seed.a)) {
      for (VertexId u : graph.Neighbors(v)) {
        if (graph.Label(u) != seed.b) continue;
        if (seed.a == seed.b && v > u) continue;
        walk.embeddings.push_back({v, u});
        if (static_cast<int64_t>(walk.embeddings.size()) >=
            config.max_embeddings_per_pattern) {
          break;
        }
      }
      if (static_cast<int64_t>(walk.embeddings.size()) >=
          config.max_embeddings_per_pattern) {
        break;
      }
    }
    if (txn_support(walk) < config.min_support) continue;

    // Random walk: pick a random frequent one-edge extension until maximal.
    for (int32_t step = 0; step < config.max_walk_steps; ++step) {
      const Pattern& p = walk.pattern;
      // Candidate extensions from the occurrence list.
      std::vector<uint64_t> ext_new;
      std::vector<uint64_t> ext_internal;
      {
        std::unordered_set<uint64_t> seen_new;
        std::unordered_set<uint64_t> seen_int;
        for (const Embedding& e : walk.embeddings) {
          std::unordered_set<VertexId> image(e.begin(), e.end());
          for (VertexId u = 0; u < p.NumVertices(); ++u) {
            for (VertexId x : graph.Neighbors(e[u])) {
              if (image.count(x)) continue;
              uint64_t key = (static_cast<uint64_t>(u) << 32) |
                             static_cast<uint32_t>(graph.Label(x));
              if (seen_new.insert(key).second) ext_new.push_back(key);
            }
          }
          for (VertexId u = 0; u < p.NumVertices(); ++u) {
            for (VertexId v = u + 1; v < p.NumVertices(); ++v) {
              if (!p.HasEdge(u, v) && graph.HasEdge(e[u], e[v])) {
                uint64_t key = (static_cast<uint64_t>(u) << 32) |
                               static_cast<uint32_t>(v);
                if (seen_int.insert(key).second) ext_internal.push_back(key);
              }
            }
          }
        }
      }
      // Try candidates in random order; take the first frequent one.
      std::vector<std::pair<bool, uint64_t>> order;
      for (uint64_t k : ext_new) order.emplace_back(true, k);
      for (uint64_t k : ext_internal) order.emplace_back(false, k);
      rng.Shuffle(&order);
      bool extended = false;
      for (const auto& [is_new, key] : order) {
        Walk next;
        next.pattern = p;
        if (is_new) {
          VertexId u = static_cast<VertexId>(key >> 32);
          LabelId label = static_cast<LabelId>(key & 0xffffffffu);
          VertexId nv = next.pattern.AddVertex(label);
          next.pattern.AddEdge(u, nv);
          for (const Embedding& e : walk.embeddings) {
            std::unordered_set<VertexId> image(e.begin(), e.end());
            for (VertexId x : graph.Neighbors(e[u])) {
              if (graph.Label(x) != label || image.count(x)) continue;
              Embedding extended_e = e;
              extended_e.push_back(x);
              next.embeddings.push_back(std::move(extended_e));
              if (static_cast<int64_t>(next.embeddings.size()) >=
                  config.max_embeddings_per_pattern) {
                break;
              }
            }
            if (static_cast<int64_t>(next.embeddings.size()) >=
                config.max_embeddings_per_pattern) {
              break;
            }
          }
        } else {
          VertexId u = static_cast<VertexId>(key >> 32);
          VertexId v = static_cast<VertexId>(key & 0xffffffffu);
          next.pattern.AddEdge(u, v);
          for (const Embedding& e : walk.embeddings) {
            if (graph.HasEdge(e[u], e[v])) next.embeddings.push_back(e);
          }
        }
        if (txn_support(next) >= config.min_support) {
          walk = std::move(next);
          extended = true;
          break;
        }
      }
      if (!extended) break;  // maximal
    }

    std::string key = CanonicalString(walk.pattern);
    if (!distinct.insert(key).second) continue;
    OrigamiPattern op;
    op.support = txn_support(walk);
    op.pattern = std::move(walk.pattern);
    result.sampled.push_back(std::move(op));
  }

  // Greedy alpha-orthogonal selection, scanning in sampling order (the
  // randomized order is part of ORIGAMI's design; small maximal patterns,
  // being sampled more often, dominate the pool).
  std::vector<std::vector<uint64_t>> chosen_features;
  for (const OrigamiPattern& op : result.sampled) {
    if (static_cast<int32_t>(result.representatives.size()) >=
        config.max_representatives) {
      break;
    }
    std::vector<uint64_t> features = EdgeFeatures(op.pattern);
    bool orthogonal = true;
    for (const auto& other : chosen_features) {
      if (Jaccard(features, other) > config.alpha) {
        orthogonal = false;
        break;
      }
    }
    if (!orthogonal) continue;
    chosen_features.push_back(std::move(features));
    result.representatives.push_back(op);
  }
  std::sort(result.representatives.begin(), result.representatives.end(),
            [](const OrigamiPattern& a, const OrigamiPattern& b) {
              return a.pattern.NumEdges() > b.pattern.NumEdges();
            });
  return result;
}

}  // namespace spidermine
