#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "pattern/embedding.h"
#include "pattern/pattern.h"
#include "support/support_measure.h"

/// \file complete_miner.h
/// Complete frequent-subgraph enumeration over a single graph: the
/// MoSS/gSpan-style comparator [9, 33] of the paper's evaluation. Growth is
/// edge-by-edge with occurrence lists; duplicate pattern states are pruned
/// via minimum-DFS-code canonical keys. The miner is exhaustive by design
/// and therefore exponential -- this is the behavior Figures 9 and 16
/// demonstrate ("-" entries: MoSS cannot run to completion) -- so every run
/// carries explicit budgets, and exceeding them is reported, mirroring the
/// paper's practice of aborting runs over 10 hours.

namespace spidermine {

/// Budgets and parameters of the complete miner.
struct CompleteMinerConfig {
  /// Minimum support.
  int64_t min_support = 2;
  /// Overlap-aware support definition (default: the harmful-overlap-style
  /// greedy MIS on vertex conflicts, as SpiderMine uses).
  SupportMeasureKind support_measure = SupportMeasureKind::kGreedyMisVertex;
  /// Stop growing a branch at this many pattern edges (0 = unlimited).
  int32_t max_pattern_edges = 0;
  /// Abort after this many patterns (0 = unlimited).
  int64_t max_patterns = 2000000;
  /// Per-pattern embedding cap.
  int64_t max_embeddings_per_pattern = 20000;
  /// Wall-clock budget in seconds (0 = unlimited). The paper aborted
  /// baseline runs after 10 hours; benches here use minutes.
  double time_budget_seconds = 0.0;
};

/// One enumerated frequent pattern.
struct CompletePattern {
  Pattern pattern;
  int64_t support = 0;
};

/// Result of an enumeration run.
struct CompleteMineResult {
  std::vector<CompletePattern> patterns;
  /// True when a budget aborted the enumeration: the result is a PREFIX of
  /// the complete set, exactly like the paper's "-" table entries.
  bool aborted = false;
  int64_t expansions = 0;
};

/// Enumerates (up to budgets) all frequent connected patterns of \p graph.
Result<CompleteMineResult> MineComplete(const LabeledGraph& graph,
                                        const CompleteMinerConfig& config);

}  // namespace spidermine
