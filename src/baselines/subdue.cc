#include "baselines/subdue.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/timer.h"
#include "pattern/dfs_code.h"
#include "support/support_measure.h"

namespace spidermine {

namespace {

/// Bit estimate of a graph's description length: vertex labels plus an
/// edge list (two vertex ids per edge).
double DescriptionLength(double vertices, double edges, double labels) {
  if (vertices < 1) vertices = 1;
  if (labels < 2) labels = 2;
  return vertices * std::log2(labels) +
         2.0 * edges * std::log2(vertices + 1.0);
}

struct Candidate {
  Pattern pattern;
  std::vector<Embedding> embeddings;
  int64_t instances = 0;
  double value = 0.0;
};

double CompressionValue(const LabeledGraph& graph, const Candidate& c) {
  const double n = static_cast<double>(graph.NumVertices());
  const double m = static_cast<double>(graph.NumEdges());
  const double labels = static_cast<double>(graph.NumLabels());
  const double dl_g = DescriptionLength(n, m, labels);
  const double vs = c.pattern.NumVertices();
  const double es = c.pattern.NumEdges();
  const double k = static_cast<double>(c.instances);
  // Collapse every disjoint instance to a single vertex carrying a new
  // label; instance-internal edges disappear.
  const double n_rest = std::max(1.0, n - k * (vs - 1.0));
  const double m_rest = std::max(0.0, m - k * es);
  const double dl_s = DescriptionLength(vs, es, labels);
  double dl_rest = DescriptionLength(n_rest, m_rest, labels + 1.0);
  // Instance bookkeeping: a pointer per occurrence plus re-attachment of
  // the instance's boundary edges (which internal vertex each external
  // edge touched: log2(vs) bits per estimated boundary edge). This is the
  // part of SUBDUE's MDL that makes rare large substructures pay their
  // way -- and the source of its small/high-frequency bias.
  const double avg_degree = n > 0 ? 2.0 * m / n : 0.0;
  const double boundary_edges = vs * std::max(0.0, avg_degree - 1.0);
  dl_rest += k * std::log2(n + 1.0) +
             k * boundary_edges * std::log2(vs + 1.0);
  return dl_g / (dl_s + dl_rest);
}

void EvaluateCandidate(const LabeledGraph& graph, Candidate* c) {
  DedupEmbeddingsByImage(&c->embeddings);
  c->instances = ComputeSupport(SupportMeasureKind::kGreedyMisVertex,
                                c->pattern, c->embeddings);
  c->value = CompressionValue(graph, *c);
}

bool BetterCandidate(const Candidate& a, const Candidate& b) {
  if (a.value != b.value) return a.value > b.value;
  return a.pattern.NumEdges() > b.pattern.NumEdges();
}

}  // namespace

Result<SubdueResult> SubdueDiscover(const LabeledGraph& graph,
                                    const SubdueConfig& config) {
  if (config.beam_width < 1) {
    return Status::InvalidArgument("beam_width must be >= 1");
  }
  SubdueResult result;
  Deadline deadline(config.time_budget_seconds);

  // Initial candidates: single-vertex substructures per label. SUBDUE
  // expands EVERY frequent label at level 0 (the beam truncation applies
  // to grown children), so substructures over rare-but-compressing labels
  // are not lost before they can grow.
  std::vector<Candidate> beam;
  for (LabelId label = 0; label < graph.NumLabels(); ++label) {
    auto vertices = graph.VerticesWithLabel(label);
    if (vertices.size() < 2) continue;
    Candidate c;
    c.pattern.AddVertex(label);
    for (VertexId v : vertices) c.embeddings.push_back({v});
    EvaluateCandidate(graph, &c);
    beam.push_back(std::move(c));
  }
  std::sort(beam.begin(), beam.end(), BetterCandidate);

  std::vector<Candidate> best = beam;
  std::unordered_set<std::string> seen;
  for (const Candidate& c : beam) seen.insert(CanonicalString(c.pattern));

  while (!beam.empty()) {
    if (deadline.Expired()) {
      result.timed_out = true;
      break;
    }
    std::vector<Candidate> children;
    for (const Candidate& parent : beam) {
      if (parent.pattern.NumEdges() >= config.max_substructure_edges) continue;
      if (result.expansions >= config.max_expansions) break;

      // Discover one-edge extensions realizable in the instances.
      std::unordered_set<uint64_t> ext_new;
      std::unordered_set<uint64_t> ext_internal;
      const Pattern& p = parent.pattern;
      for (const Embedding& e : parent.embeddings) {
        std::unordered_set<VertexId> image(e.begin(), e.end());
        for (VertexId u = 0; u < p.NumVertices(); ++u) {
          for (VertexId x : graph.Neighbors(e[u])) {
            if (image.count(x)) continue;
            ext_new.insert((static_cast<uint64_t>(u) << 32) |
                           static_cast<uint32_t>(graph.Label(x)));
          }
        }
        for (VertexId u = 0; u < p.NumVertices(); ++u) {
          for (VertexId v = u + 1; v < p.NumVertices(); ++v) {
            if (!p.HasEdge(u, v) && graph.HasEdge(e[u], e[v])) {
              ext_internal.insert((static_cast<uint64_t>(u) << 32) |
                                  static_cast<uint32_t>(v));
            }
          }
        }
      }

      auto admit = [&](Candidate&& child) {
        ++result.expansions;
        if (child.embeddings.empty()) return;
        std::string key = CanonicalString(child.pattern);
        if (!seen.insert(key).second) return;
        EvaluateCandidate(graph, &child);
        if (child.instances < 2) return;  // repetition is what compresses
        children.push_back(std::move(child));
      };

      for (uint64_t key : ext_new) {
        if (result.expansions >= config.max_expansions) break;
        VertexId u = static_cast<VertexId>(key >> 32);
        LabelId label = static_cast<LabelId>(key & 0xffffffffu);
        Candidate child;
        child.pattern = p;
        VertexId nv = child.pattern.AddVertex(label);
        child.pattern.AddEdge(u, nv);
        for (const Embedding& e : parent.embeddings) {
          std::unordered_set<VertexId> image(e.begin(), e.end());
          for (VertexId x : graph.Neighbors(e[u])) {
            if (graph.Label(x) != label || image.count(x)) continue;
            Embedding extended = e;
            extended.push_back(x);
            child.embeddings.push_back(std::move(extended));
            if (static_cast<int64_t>(child.embeddings.size()) >=
                config.max_embeddings_per_pattern) {
              break;
            }
          }
          if (static_cast<int64_t>(child.embeddings.size()) >=
              config.max_embeddings_per_pattern) {
            break;
          }
        }
        admit(std::move(child));
      }
      for (uint64_t key : ext_internal) {
        if (result.expansions >= config.max_expansions) break;
        VertexId u = static_cast<VertexId>(key >> 32);
        VertexId v = static_cast<VertexId>(key & 0xffffffffu);
        Candidate child;
        child.pattern = p;
        child.pattern.AddEdge(u, v);
        for (const Embedding& e : parent.embeddings) {
          if (graph.HasEdge(e[u], e[v])) child.embeddings.push_back(e);
        }
        admit(std::move(child));
      }
    }
    if (children.empty()) break;
    std::sort(children.begin(), children.end(), BetterCandidate);
    if (static_cast<int32_t>(children.size()) > config.beam_width) {
      children.resize(static_cast<size_t>(config.beam_width));
    }
    for (const Candidate& c : children) best.push_back(c);
    beam = std::move(children);
    if (result.expansions >= config.max_expansions) break;
  }

  std::sort(best.begin(), best.end(), BetterCandidate);
  if (static_cast<int32_t>(best.size()) > config.max_best) {
    best.resize(static_cast<size_t>(config.max_best));
  }
  for (Candidate& c : best) {
    SubduePattern sp;
    sp.pattern = std::move(c.pattern);
    sp.instances = c.instances;
    sp.value = c.value;
    result.patterns.push_back(std::move(sp));
  }
  return result;
}

}  // namespace spidermine
