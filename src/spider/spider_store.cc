#include "spider/spider_store.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace spidermine {

SpiderStore SpiderStore::Borrowed(std::span<const LabelId> head_labels,
                                  std::span<const uint8_t> closed,
                                  std::span<const int64_t> leaf_offsets,
                                  std::span<const SpiderLeafKey> leaf_pool,
                                  std::span<const int64_t> anchor_offsets,
                                  std::span<const VertexId> anchor_pool) {
  assert(closed.size() == head_labels.size());
  assert(leaf_offsets.size() == head_labels.size() + 1);
  assert(anchor_offsets.size() == head_labels.size() + 1);
  SpiderStore store;
  store.borrowed_ = true;
  store.b_head_labels_ = head_labels;
  store.b_closed_ = closed;
  store.b_leaf_offsets_ = leaf_offsets;
  store.b_leaf_pool_ = leaf_pool;
  store.b_anchor_offsets_ = anchor_offsets;
  store.b_anchor_pool_ = anchor_pool;
  return store;
}

bool SpiderStore::IsAnchoredAt(int32_t id, VertexId vertex) const {
  std::span<const VertexId> a = anchors(id);
  return std::binary_search(a.begin(), a.end(), vertex);
}

int64_t SpiderStore::HeapBytes() const {
  if (borrowed_) {
    // Mapped extent: bytes referenced through the borrowed spans. Not heap
    // — page cache backs them, shared across every replica of the file.
    return static_cast<int64_t>(
        b_head_labels_.size_bytes() + b_closed_.size_bytes() +
        b_leaf_offsets_.size_bytes() + b_leaf_pool_.size_bytes() +
        b_anchor_offsets_.size_bytes() + b_anchor_pool_.size_bytes());
  }
  return static_cast<int64_t>(
      head_labels_.capacity() * sizeof(LabelId) +
      closed_.capacity() * sizeof(uint8_t) +
      leaf_offsets_.capacity() * sizeof(int64_t) +
      leaf_pool_.capacity() * sizeof(SpiderLeafKey) +
      anchor_offsets_.capacity() * sizeof(int64_t) +
      anchor_pool_.capacity() * sizeof(VertexId));
}

int32_t SpiderStore::Append(LabelId head_label,
                            std::span<const SpiderLeafKey> leaves,
                            std::span<const VertexId> anchors, bool closed) {
  assert(!borrowed_ && "cannot mutate a borrowed (mmap'd) SpiderStore");
  assert(std::is_sorted(leaves.begin(), leaves.end()));
  assert(std::is_sorted(anchors.begin(), anchors.end()));
  const int32_t id = static_cast<int32_t>(head_labels_.size());
  head_labels_.push_back(head_label);
  closed_.push_back(closed ? 1 : 0);
  leaf_pool_.insert(leaf_pool_.end(), leaves.begin(), leaves.end());
  leaf_offsets_.push_back(static_cast<int64_t>(leaf_pool_.size()));
  anchor_pool_.insert(anchor_pool_.end(), anchors.begin(), anchors.end());
  anchor_offsets_.push_back(static_cast<int64_t>(anchor_pool_.size()));
  return id;
}

void SpiderStore::AppendPrefix(const SpiderStore& other, int64_t count) {
  assert(!borrowed_ && "cannot mutate a borrowed (mmap'd) SpiderStore");
  count = std::min(count, other.size());
  if (count <= 0) return;
  std::span<const int64_t> other_leaf_offsets = other.leaf_offsets_col();
  std::span<const int64_t> other_anchor_offsets = other.anchor_offsets_col();
  const int64_t leaf_end = other_leaf_offsets[count];
  const int64_t anchor_end = other_anchor_offsets[count];
  std::span<const LabelId> other_heads = other.head_labels_col();
  std::span<const uint8_t> other_closed = other.closed_col();
  head_labels_.insert(head_labels_.end(), other_heads.begin(),
                      other_heads.begin() + count);
  closed_.insert(closed_.end(), other_closed.begin(),
                 other_closed.begin() + count);
  const int64_t leaf_base = static_cast<int64_t>(leaf_pool_.size());
  std::span<const SpiderLeafKey> other_leaves = other.leaf_pool_col();
  leaf_pool_.insert(leaf_pool_.end(), other_leaves.begin(),
                    other_leaves.begin() + leaf_end);
  for (int64_t i = 1; i <= count; ++i) {
    leaf_offsets_.push_back(leaf_base + other_leaf_offsets[i]);
  }
  const int64_t anchor_base = static_cast<int64_t>(anchor_pool_.size());
  std::span<const VertexId> other_anchors = other.anchor_pool_col();
  anchor_pool_.insert(anchor_pool_.end(), other_anchors.begin(),
                      other_anchors.begin() + anchor_end);
  for (int64_t i = 1; i <= count; ++i) {
    anchor_offsets_.push_back(anchor_base + other_anchor_offsets[i]);
  }
}

void SpiderStore::Reserve(int64_t num_spiders, int64_t total_leaves,
                          int64_t total_anchors) {
  assert(!borrowed_ && "cannot mutate a borrowed (mmap'd) SpiderStore");
  head_labels_.reserve(static_cast<size_t>(num_spiders));
  closed_.reserve(static_cast<size_t>(num_spiders));
  leaf_offsets_.reserve(static_cast<size_t>(num_spiders) + 1);
  leaf_pool_.reserve(static_cast<size_t>(total_leaves));
  anchor_offsets_.reserve(static_cast<size_t>(num_spiders) + 1);
  anchor_pool_.reserve(static_cast<size_t>(total_anchors));
}

Pattern SpiderStore::PatternOf(int32_t id) const {
  Pattern p;
  p.AddVertex(head_label(id));
  for (const SpiderLeafKey& leaf : leaves(id)) {
    VertexId leaf_vertex = p.AddVertex(leaf.second);
    p.AddEdge(0, leaf_vertex, leaf.first);
  }
  return p;
}

Spider SpiderStore::Materialize(int32_t id) const {
  Spider s;
  s.radius = 1;
  s.pattern = PatternOf(id);
  std::span<const VertexId> a = anchors(id);
  s.anchors.assign(a.begin(), a.end());
  s.support = static_cast<int64_t>(s.anchors.size());
  s.closed = closed(id);
  // Canonical key: stars are canonicalized directly by (head, sorted
  // (edge label, leaf label) pairs); no DFS-code search needed.
  std::ostringstream key;
  key << "h" << head_label(id);
  for (const SpiderLeafKey& leaf : leaves(id)) {
    key << "," << leaf.first << ":" << leaf.second;
  }
  s.canonical = key.str();
  return s;
}

std::vector<Spider> SpiderStore::MaterializeAll() const {
  std::vector<Spider> out;
  out.reserve(static_cast<size_t>(size()));
  for (int32_t id = 0; id < static_cast<int32_t>(size()); ++id) {
    out.push_back(Materialize(id));
  }
  return out;
}

SpiderStore SpiderStore::FromSpiders(const std::vector<Spider>& spiders) {
  SpiderStore store;
  int64_t total_leaves = 0;
  int64_t total_anchors = 0;
  for (const Spider& s : spiders) {
    total_leaves += s.pattern.NumVertices() - 1;
    total_anchors += static_cast<int64_t>(s.anchors.size());
  }
  store.Reserve(static_cast<int64_t>(spiders.size()), total_leaves,
                total_anchors);
  for (const Spider& s : spiders) {
    assert(s.pattern.NumEdges() == s.pattern.NumVertices() - 1 &&
           "SpiderStore holds star-shaped spiders only");
    std::vector<SpiderLeafKey> leaves = s.LeafKeys();
    store.Append(s.pattern.Label(0), leaves, s.anchors, s.closed);
  }
  return store;
}

}  // namespace spidermine
