#include "spider/star_miner.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

namespace spidermine {

namespace {

/// A star leaf: the connecting edge's label plus the leaf vertex label.
/// For edge-unlabeled graphs edge_label is always 0 and the enumeration
/// degenerates to the plain vertex-label stars of Appendix B.
using LeafKey = std::pair<EdgeLabelId, LabelId>;

/// Per-vertex neighbor leaf-key counts, sorted by key, for O(log d) lookup.
/// Rows are independent, so construction fans out over the pool.
struct NeighborLeafCounts {
  std::vector<std::vector<std::pair<LeafKey, int32_t>>> counts;

  NeighborLeafCounts(const LabeledGraph& graph, ThreadPool* pool,
                     const CancellationToken* token) {
    const int64_t n = graph.NumVertices();
    counts.resize(static_cast<size_t>(n));
    auto fill_range = [this, &graph](int64_t begin, int64_t end) {
      std::map<LeafKey, int32_t> local;
      for (int64_t v = begin; v < end; ++v) {
        local.clear();
        for (VertexId u : graph.Neighbors(static_cast<VertexId>(v))) {
          ++local[LeafKey{graph.EdgeLabel(static_cast<VertexId>(v), u),
                          graph.Label(u)}];
        }
        counts[v].assign(local.begin(), local.end());
      }
    };
    if (pool != nullptr) {
      pool->ParallelForChunks(n, /*grain=*/-1, fill_range, token);
    } else {
      fill_range(0, n);
    }
  }

  int32_t Count(VertexId v, LeafKey key) const {
    const auto& row = counts[v];
    auto it = std::lower_bound(
        row.begin(), row.end(),
        std::make_pair(key, INT32_MIN));
    if (it != row.end() && it->first == key) return it->second;
    return 0;
  }
};

/// Builds the Spider record for (head_label, leaf multiset).
Spider MakeStar(LabelId head_label, const std::vector<LeafKey>& leaves,
                std::vector<VertexId> anchors, int32_t radius) {
  Spider s;
  s.radius = radius;
  s.pattern.AddVertex(head_label);
  for (const LeafKey& leaf : leaves) {
    VertexId leaf_vertex = s.pattern.AddVertex(leaf.second);
    s.pattern.AddEdge(0, leaf_vertex, leaf.first);
  }
  s.anchors = std::move(anchors);
  s.support = static_cast<int64_t>(s.anchors.size());
  // Canonical key: stars are canonicalized directly by (head, sorted
  // (edge label, leaf label) pairs); no DFS-code search needed.
  std::ostringstream key;
  key << "h" << head_label;
  for (const LeafKey& leaf : leaves) {
    key << "," << leaf.first << ":" << leaf.second;
  }
  s.canonical = key.str();
  return s;
}

/// Enumeration state of one head-label shard. Shards never touch shared
/// mutable state: each owns its result, which the driver concatenates in
/// label order.
struct ShardState {
  const LabeledGraph* graph;
  const StarMinerConfig* config;
  const NeighborLeafCounts* nbr_counts;
  const CancellationToken* token;
  StarMineResult result;
  bool stopped = false;

  bool Emit(Spider spider) {
    result.spiders.push_back(std::move(spider));
    if (config->max_spiders > 0 &&
        static_cast<int64_t>(result.spiders.size()) >= config->max_spiders) {
      result.truncated = true;
      stopped = true;
      return false;
    }
    return true;
  }

  /// Extends the star (head_label, leaves) by one more leaf with key
  /// >= the last leaf key (canonical non-decreasing enumeration order).
  /// \p parent_idx indexes the emitted parent spider (-1: none); a child
  /// with the same anchor count marks it non-closed.
  void Extend(LabelId head_label, std::vector<LeafKey>* leaves,
              const std::vector<VertexId>& anchors,
              std::map<LeafKey, int32_t>* multiplicity, int64_t parent_idx) {
    if (stopped) return;
    if (token != nullptr && token->IsCancelled()) {
      result.truncated = true;
      stopped = true;
      return;
    }
    if (static_cast<int32_t>(leaves->size()) >= config->max_leaves) return;
    LeafKey min_next = leaves->empty() ? LeafKey{INT32_MIN, INT32_MIN}
                                       : leaves->back();

    // Gather candidate keys: keys >= min_next for which enough anchors
    // have one more matching neighbor than the star already uses.
    std::map<LeafKey, int64_t> viable_anchor_count;
    for (VertexId v : anchors) {
      for (const auto& [key, count] : nbr_counts->counts[v]) {
        if (key < min_next) continue;
        auto it = multiplicity->find(key);
        int32_t needed = (it == multiplicity->end() ? 0 : it->second) + 1;
        if (count >= needed) ++viable_anchor_count[key];
      }
    }
    for (const auto& [key, anchor_count] : viable_anchor_count) {
      if (stopped) return;
      ++result.extension_attempts;
      if (anchor_count < config->min_support) continue;
      // Materialize the surviving anchor list.
      std::vector<VertexId> next_anchors;
      next_anchors.reserve(static_cast<size_t>(anchor_count));
      int32_t needed = (*multiplicity)[key] + 1;
      for (VertexId v : anchors) {
        if (nbr_counts->Count(v, key) >= needed) next_anchors.push_back(v);
      }
      if (parent_idx >= 0 && next_anchors.size() == anchors.size()) {
        result.spiders[parent_idx].closed = false;
      }
      leaves->push_back(key);
      (*multiplicity)[key] = needed;
      int64_t child_idx = static_cast<int64_t>(result.spiders.size());
      if (!Emit(MakeStar(head_label, *leaves, next_anchors, 1))) return;
      Extend(head_label, leaves, next_anchors, multiplicity, child_idx);
      (*multiplicity)[key] = needed - 1;
      if ((*multiplicity)[key] == 0) multiplicity->erase(key);
      leaves->pop_back();
    }
  }

  /// Mines every frequent star headed by \p label.
  void MineLabel(LabelId label) {
    auto vertices = graph->VerticesWithLabel(label);
    if (static_cast<int64_t>(vertices.size()) < config->min_support) return;
    std::vector<VertexId> anchors(vertices.begin(), vertices.end());
    int64_t parent_idx = -1;
    if (config->include_single_vertex) {
      parent_idx = static_cast<int64_t>(result.spiders.size());
      if (!Emit(MakeStar(label, {}, anchors, 1))) return;
    }
    std::vector<LeafKey> leaves;
    std::map<LeafKey, int32_t> multiplicity;
    Extend(label, &leaves, anchors, &multiplicity, parent_idx);
  }
};

}  // namespace

Result<StarMineResult> MineStarSpiders(const LabeledGraph& graph,
                                       const StarMinerConfig& config,
                                       ThreadPool* pool,
                                       const CancellationToken* token) {
  if (config.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (config.max_leaves < 0) {
    return Status::InvalidArgument("max_leaves must be >= 0");
  }
  NeighborLeafCounts nbr_counts(graph, pool, token);

  // One shard per head label, mined into pre-sized slots. A shard's output
  // depends only on the graph and config, never on scheduling.
  const int64_t num_labels = graph.NumLabels();
  std::vector<ShardState> shards(static_cast<size_t>(num_labels));
  auto mine_shard = [&](int64_t label) {
    ShardState& shard = shards[static_cast<size_t>(label)];
    shard.graph = &graph;
    shard.config = &config;
    shard.nbr_counts = &nbr_counts;
    shard.token = token;
    shard.MineLabel(static_cast<LabelId>(label));
  };
  if (pool != nullptr) {
    // Grain 1: label shards are few and highly skewed (hub labels dominate).
    pool->ParallelForChunks(
        num_labels, /*grain=*/1,
        [&mine_shard](int64_t begin, int64_t end) {
          for (int64_t label = begin; label < end; ++label) mine_shard(label);
        },
        token);
  } else {
    for (int64_t label = 0; label < num_labels; ++label) mine_shard(label);
  }

  // Deterministic merge in label order.
  StarMineResult merged;
  for (ShardState& shard : shards) {
    merged.extension_attempts += shard.result.extension_attempts;
    merged.truncated |= shard.result.truncated;
    if (merged.spiders.empty()) {
      merged.spiders = std::move(shard.result.spiders);
    } else {
      merged.spiders.insert(
          merged.spiders.end(),
          std::make_move_iterator(shard.result.spiders.begin()),
          std::make_move_iterator(shard.result.spiders.end()));
    }
  }
  if (config.max_spiders > 0 &&
      static_cast<int64_t>(merged.spiders.size()) > config.max_spiders) {
    merged.spiders.resize(static_cast<size_t>(config.max_spiders));
    merged.truncated = true;
  }
  if (token != nullptr && token->IsCancelled()) merged.truncated = true;
  return merged;
}

}  // namespace spidermine
