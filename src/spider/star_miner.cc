#include "spider/star_miner.h"

#include <algorithm>
#include <map>
#include <vector>

namespace spidermine {

namespace {

using LeafKey = SpiderLeafKey;

/// Per-vertex neighbor leaf-key counts, sorted by key, for O(log d) lookup.
/// Rows are independent, so construction fans out over the pool.
struct NeighborLeafCounts {
  std::vector<std::vector<std::pair<LeafKey, int32_t>>> counts;

  NeighborLeafCounts(const LabeledGraph& graph, ThreadPool* pool,
                     const CancellationToken* token) {
    const int64_t n = graph.NumVertices();
    counts.resize(static_cast<size_t>(n));
    auto fill_range = [this, &graph](int64_t begin, int64_t end) {
      std::map<LeafKey, int32_t> local;
      for (int64_t v = begin; v < end; ++v) {
        local.clear();
        for (VertexId u : graph.Neighbors(static_cast<VertexId>(v))) {
          ++local[LeafKey{graph.EdgeLabel(static_cast<VertexId>(v), u),
                          graph.Label(u)}];
        }
        counts[v].assign(local.begin(), local.end());
      }
    };
    if (pool != nullptr) {
      pool->ParallelForChunks(n, /*grain=*/-1, fill_range, token);
    } else {
      fill_range(0, n);
    }
  }

  int32_t Count(VertexId v, LeafKey key) const {
    const auto& row = counts[v];
    auto it = std::lower_bound(
        row.begin(), row.end(),
        std::make_pair(key, INT32_MIN));
    if (it != row.end() && it->first == key) return it->second;
    return 0;
  }
};

/// Automatic vertex-range grain for the root scans: large enough to
/// amortize dispatch, small enough that a multi-million-vertex hub label
/// splits across many workers.
constexpr int64_t kAutoScanGrain = 65536;

/// One root-scan cell: a contiguous vertex range of one head label. Its
/// output is a partial candidate-key histogram; per-label folds are integer
/// sums in range order, so the merged counts are identical at any grain.
struct ScanShard {
  LabelId label = 0;
  int64_t begin = 0;  // range into VerticesWithLabel(label)
  int64_t end = 0;
  std::map<LeafKey, int64_t> counts;  // key -> #anchors carrying the key
};

/// One enumeration shard: the subtree of all stars of `label` whose first
/// (smallest) leaf key is `first_key`. Subtrees are independent; their
/// outputs concatenate in (label, first key) order.
struct EnumShard {
  LabelId label = 0;
  LeafKey first_key{0, 0};
  // Counting-pass outputs (also filled by the emission pass when no budget
  // is set and the counting pass is skipped).
  int64_t count = 0;       ///< spiders in the subtree (capped at the budget)
  bool keeps_all = false;  ///< the {first_key} star keeps every label anchor
  int64_t attempts = 0;
  bool limit_hit = false;
  bool cancelled = false;
  // Budget-fold output: exact admitted prefix length.
  int64_t admitted = 0;
  // Emission-pass output.
  SpiderStore store;
};

/// Shared DFS of one subtree, in counting (`out == nullptr`) or emission
/// mode. Both modes walk the identical tree in the identical order, so a
/// counting pass followed by a prefix-limited emission pass reproduces the
/// exact global enumeration prefix.
struct SubtreeWalker {
  const StarMinerConfig* config;
  const NeighborLeafCounts* nbr_counts;
  const CancellationToken* token;
  LabelId label;
  int64_t limit;    // max spiders to produce
  SpiderStore* out; // nullptr: count only

  int64_t produced = 0;
  int64_t attempts = 0;
  bool stopped = false;
  bool limit_hit = false;
  bool cancelled = false;

  /// Produces one spider (appends in emission mode); false = stop walking.
  bool Produce(const std::vector<LeafKey>& leaves,
               const std::vector<VertexId>& anchors) {
    if (out != nullptr) out->Append(label, leaves, anchors, /*closed=*/true);
    ++produced;
    if (produced >= limit) {
      limit_hit = true;
      stopped = true;
      return false;
    }
    return true;
  }

  /// Extends the star (label, leaves) by one more leaf with key >= the last
  /// leaf key (canonical non-decreasing enumeration order). \p parent_idx
  /// is the subtree-local id of the produced parent; a child with the same
  /// anchor count marks it non-closed.
  void Extend(std::vector<LeafKey>* leaves,
              const std::vector<VertexId>& anchors,
              std::map<LeafKey, int32_t>* multiplicity, int64_t parent_idx) {
    if (stopped) return;
    if (token != nullptr && token->IsCancelled()) {
      cancelled = true;
      stopped = true;
      return;
    }
    if (static_cast<int32_t>(leaves->size()) >= config->max_leaves) return;
    const LeafKey min_next = leaves->back();

    // Gather candidate keys: keys >= min_next for which enough anchors
    // have one more matching neighbor than the star already uses.
    std::map<LeafKey, int64_t> viable_anchor_count;
    for (VertexId v : anchors) {
      for (const auto& [key, count] : nbr_counts->counts[v]) {
        if (key < min_next) continue;
        auto it = multiplicity->find(key);
        int32_t needed = (it == multiplicity->end() ? 0 : it->second) + 1;
        if (count >= needed) ++viable_anchor_count[key];
      }
    }
    for (const auto& [key, anchor_count] : viable_anchor_count) {
      if (stopped) return;
      ++attempts;
      if (anchor_count < config->min_support) continue;
      // Materialize the surviving anchor list.
      std::vector<VertexId> next_anchors;
      next_anchors.reserve(static_cast<size_t>(anchor_count));
      int32_t needed = (*multiplicity)[key] + 1;
      for (VertexId v : anchors) {
        if (nbr_counts->Count(v, key) >= needed) next_anchors.push_back(v);
      }
      if (parent_idx >= 0 && next_anchors.size() == anchors.size() &&
          out != nullptr) {
        out->set_closed(parent_idx, false);
      }
      leaves->push_back(key);
      (*multiplicity)[key] = needed;
      const int64_t child_idx = produced;
      if (!Produce(*leaves, next_anchors)) return;
      Extend(leaves, next_anchors, multiplicity, child_idx);
      (*multiplicity)[key] = needed - 1;
      if ((*multiplicity)[key] == 0) multiplicity->erase(key);
      leaves->pop_back();
    }
  }
};

/// Runs one enumeration shard. In counting mode fills count/keeps_all; in
/// emission mode fills the shard's local store with its admitted prefix.
void RunSubtree(const LabeledGraph& graph, const StarMinerConfig& config,
                const NeighborLeafCounts& nbr_counts,
                const CancellationToken* token, EnumShard* shard,
                int64_t limit, bool emit) {
  SubtreeWalker walker{&config, &nbr_counts, token, shard->label, limit,
                       emit ? &shard->store : nullptr};
  if (token != nullptr && token->IsCancelled()) {
    shard->cancelled = true;
    return;
  }
  auto label_vertices = graph.VerticesWithLabel(shard->label);
  std::vector<VertexId> anchors;
  for (VertexId v : label_vertices) {
    if (nbr_counts.Count(v, shard->first_key) >= 1) anchors.push_back(v);
  }
  shard->keeps_all = anchors.size() == label_vertices.size();

  std::vector<LeafKey> leaves{shard->first_key};
  std::map<LeafKey, int32_t> multiplicity{{shard->first_key, 1}};
  if (walker.Produce(leaves, anchors)) {
    walker.Extend(&leaves, anchors, &multiplicity, /*parent_idx=*/0);
  }
  if (!emit) shard->count = walker.produced;
  shard->attempts = walker.attempts;
  shard->limit_hit |= walker.limit_hit;
  shard->cancelled |= walker.cancelled;
}

}  // namespace

Result<StarMineResult> MineStarSpiders(const LabeledGraph& graph,
                                       const StarMinerConfig& config,
                                       ThreadPool* pool,
                                       const CancellationToken* token) {
  if (config.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (config.max_leaves < 0) {
    return Status::InvalidArgument("max_leaves must be >= 0");
  }
  NeighborLeafCounts nbr_counts(graph, pool, token);

  StarMineResult result;
  const int64_t grain =
      config.shard_grain > 0 ? config.shard_grain : kAutoScanGrain;

  // ---- Frequent head labels, in label order.
  std::vector<LabelId> freq_labels;
  for (LabelId label = 0; label < graph.NumLabels(); ++label) {
    if (graph.LabelCount(label) >= config.min_support) {
      freq_labels.push_back(label);
    }
  }

  // ---- Root scans: label × vertex-range cells, fanned out over the pool.
  // Each cell histograms the leaf keys present on its slice of the label's
  // vertex list; the per-label fold below sums cells in range order.
  std::vector<ScanShard> scans;
  for (LabelId label : freq_labels) {
    const int64_t n = graph.LabelCount(label);
    for (int64_t begin = 0; begin < n; begin += grain) {
      ScanShard cell;
      cell.label = label;
      cell.begin = begin;
      cell.end = std::min(n, begin + grain);
      scans.push_back(std::move(cell));
    }
  }
  result.num_scan_shards = static_cast<int64_t>(scans.size());
  auto run_scan = [&graph, &nbr_counts, &scans](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      ScanShard& cell = scans[static_cast<size_t>(i)];
      auto vertices = graph.VerticesWithLabel(cell.label);
      for (int64_t j = cell.begin; j < cell.end; ++j) {
        for (const auto& [key, count] : nbr_counts.counts[vertices[j]]) {
          (void)count;
          ++cell.counts[key];
        }
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunks(static_cast<int64_t>(scans.size()), /*grain=*/1,
                            run_scan, token);
  } else {
    run_scan(0, static_cast<int64_t>(scans.size()));
  }

  // ---- Per-label fold (serial, label order): merged candidate-key counts
  // define the frequent first keys, each rooting one enumeration shard.
  std::vector<EnumShard> enum_shards;
  struct LabelPlan {
    LabelId label;
    size_t first_shard;
    size_t num_shards;
  };
  std::vector<LabelPlan> plans;
  {
    size_t scan_idx = 0;
    for (LabelId label : freq_labels) {
      std::map<LeafKey, int64_t> merged;
      while (scan_idx < scans.size() && scans[scan_idx].label == label) {
        for (const auto& [key, count] : scans[scan_idx].counts) {
          merged[key] += count;
        }
        ++scan_idx;
      }
      // Every candidate key is one root-level extension attempt, frequent
      // or not (the serial level-wise miner counted them the same way).
      result.extension_attempts += static_cast<int64_t>(merged.size());
      LabelPlan plan{label, enum_shards.size(), 0};
      for (const auto& [key, count] : merged) {
        if (count < config.min_support) continue;
        EnumShard shard;
        shard.label = label;
        shard.first_key = key;
        enum_shards.push_back(std::move(shard));
        ++plan.num_shards;
      }
      plans.push_back(plan);
    }
  }
  result.num_enum_shards = static_cast<int64_t>(enum_shards.size());

  const bool budgeted = config.max_spiders > 0;
  auto run_shards = [&](bool emit) {
    auto body = [&graph, &config, &nbr_counts, token, &enum_shards, budgeted,
                 emit](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        EnumShard& shard = enum_shards[static_cast<size_t>(i)];
        // Counting caps at budget + 1: one past the budget distinguishes "the
        // subtree holds exactly the budget" (not truncated) from "more spiders
        // exist beyond it" (truncated) while still bounding per-shard work.
        const int64_t limit =
            emit ? shard.admitted
                 : (budgeted && config.max_spiders < INT64_MAX
                        ? config.max_spiders + 1
                        : INT64_MAX);
        if (emit && limit <= 0) continue;
        const int64_t counted_attempts = shard.attempts;
        RunSubtree(graph, config, nbr_counts, token, &shard, limit, emit);
        // The emission pass stops at the admitted prefix; the counting pass
        // walked the full subtree (up to the cap), so its attempt count is
        // the one comparable with an unbudgeted run over the same set.
        if (emit && budgeted) shard.attempts = counted_attempts;
      }
    };
    if (pool != nullptr) {
      pool->ParallelForChunks(static_cast<int64_t>(enum_shards.size()),
                              /*grain=*/1, body, token);
    } else {
      body(0, static_cast<int64_t>(enum_shards.size()));
    }
  };

  // ---- Deterministic global budget. With a budget, shards first COUNT
  // (O(1) memory each, capped just past the budget), then a serial fold
  // walks the canonical (label root, then subtrees in key order) sequence
  // assigning each shard its exact admitted prefix; only those are emitted.
  // Transient store memory is therefore O(max_spiders) regardless of the
  // label count. Without a budget, a single emission pass admits all.
  std::vector<int64_t> root_admitted(plans.size(), 0);
  bool budget_truncated = false;
  if (budgeted) {
    run_shards(/*emit=*/false);
    int64_t remaining = config.max_spiders;
    int64_t full_total = 0;
    for (size_t p = 0; p < plans.size(); ++p) {
      if (config.include_single_vertex) {
        ++full_total;
        if (remaining > 0) {
          root_admitted[p] = 1;
          --remaining;
        }
      }
      for (size_t s = 0; s < plans[p].num_shards; ++s) {
        EnumShard& shard = enum_shards[plans[p].first_shard + s];
        full_total += shard.count;
        shard.admitted = std::min(shard.count, remaining);
        remaining -= shard.admitted;
      }
    }
    // Counting caps at budget + 1 per shard, so full_total exceeds the
    // budget iff the true enumeration does: truncation needs no per-shard
    // limit_hit flag (which also trips on an exactly-budget-sized subtree).
    budget_truncated = full_total > config.max_spiders;
    run_shards(/*emit=*/true);
  } else {
    for (auto& shard : enum_shards) shard.admitted = INT64_MAX;
    for (size_t p = 0; p < plans.size(); ++p) {
      root_admitted[p] = config.include_single_vertex ? 1 : 0;
    }
    run_shards(/*emit=*/true);
  }

  // ---- Final assembly: concatenate admitted prefixes in canonical
  // (label, first key, DFS) order — the serial enumeration order.
  {
    int64_t total_spiders = 0;
    int64_t total_leaves = 0;
    int64_t total_anchors = 0;
    for (size_t p = 0; p < plans.size(); ++p) {
      if (root_admitted[p] > 0) {
        ++total_spiders;
        total_anchors += graph.LabelCount(plans[p].label);
      }
    }
    for (const EnumShard& shard : enum_shards) {
      total_spiders += shard.store.size();
      total_anchors += shard.store.TotalAnchors();
      for (int32_t id = 0; id < shard.store.size(); ++id) {
        total_leaves += static_cast<int64_t>(shard.store.leaves(id).size());
      }
    }
    result.store.Reserve(total_spiders, total_leaves, total_anchors);
  }
  for (size_t p = 0; p < plans.size(); ++p) {
    const LabelPlan& plan = plans[p];
    if (root_admitted[p] > 0) {
      // The 0-leaf root star is closed iff no single-leaf extension keeps
      // every label vertex as an anchor. keeps_all is computed by whichever
      // pass ran, over the full frequent set, so the flag is independent of
      // budget admission.
      bool root_closed = true;
      for (size_t s = 0; s < plan.num_shards; ++s) {
        if (enum_shards[plan.first_shard + s].keeps_all) root_closed = false;
      }
      result.store.Append(plan.label, {}, graph.VerticesWithLabel(plan.label),
                          root_closed);
    }
    for (size_t s = 0; s < plan.num_shards; ++s) {
      const EnumShard& shard = enum_shards[plan.first_shard + s];
      result.store.AppendPrefix(shard.store, shard.store.size());
    }
  }

  for (const EnumShard& shard : enum_shards) {
    result.extension_attempts += shard.attempts;
    result.truncated |= shard.cancelled;
  }
  result.truncated |= budget_truncated;
  if (token != nullptr && token->IsCancelled()) result.truncated = true;
  return result;
}

}  // namespace spidermine
