#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "spider/spider.h"

/// \file star_miner.h
/// Stage I of SpiderMine for r = 1 (the paper's own implementation choice:
/// "we focus on the case for r = 1 for simplicity of presentation and
/// implementation", Appendix B). A 1-spider grown strictly outward is a
/// star: a head label plus a multiset of leaf labels; this miner enumerates
/// all frequent stars level-wise over the leaf multiset, maintaining anchor
/// lists (head images) for support counting.
///
/// General radii are handled by ball_miner.h; the star miner is the fast
/// path the growth engine uses.

namespace spidermine {

/// Limits for star mining.
struct StarMinerConfig {
  /// Minimum support sigma over distinct anchors.
  int64_t min_support = 2;
  /// Maximum number of leaves per star (bounds the level-wise depth).
  int32_t max_leaves = 8;
  /// Stop after this many spiders (<=0: unlimited). When hit, the result is
  /// truncated and the flag below reports it.
  int64_t max_spiders = 0;
  /// Include the 0-leaf single-vertex spiders (frequent labels). These are
  /// legitimate spiders and eligible seeds.
  bool include_single_vertex = true;
};

/// Output of star mining.
struct StarMineResult {
  std::vector<Spider> spiders;
  /// True when max_spiders cut enumeration short.
  bool truncated = false;
  /// Number of level-wise extension attempts (mining work measure).
  int64_t extension_attempts = 0;
};

/// Mines all frequent 1-spiders (stars) of \p graph.
Result<StarMineResult> MineStarSpiders(const LabeledGraph& graph,
                                       const StarMinerConfig& config);

}  // namespace spidermine
