#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "graph/labeled_graph.h"
#include "spider/spider_store.h"

/// \file star_miner.h
/// Stage I of SpiderMine for r = 1 (the paper's own implementation choice:
/// "we focus on the case for r = 1 for simplicity of presentation and
/// implementation", Appendix B). A 1-spider grown strictly outward is a
/// star: a head label plus a multiset of leaf labels; this miner enumerates
/// all frequent stars level-wise over the leaf multiset, maintaining anchor
/// lists (head images) for support counting, into a flat `SpiderStore`.
///
/// Work decomposes two-dimensionally so hub labels never serialize a shard:
///
///  1. **Scan shards (head label × vertex range).** The root of each
///     label's enumeration tree needs, per candidate leaf key, the number
///     of head vertices carrying that key — a linear scan over the label's
///     vertex list. That scan splits into contiguous vertex ranges of at
///     most `shard_grain` vertices; partial counts fold per label in range
///     order. The fold is an integer sum, so the mined set is identical at
///     any grain.
///  2. **Enumeration shards (head label × first leaf key).** Every frequent
///     first key roots an independent subtree of the level-wise
///     enumeration; each subtree mines into its own local SpiderStore.
///     Shard outputs concatenate in (label, first key, DFS) order — exactly
///     the serial enumeration order — so results are identical at any
///     thread count.
///
/// `max_spiders` is a deterministic **global** budget: shards first report
/// their sizes (a counting pass with O(1) memory per shard), a serial
/// coordinator fold walks shards in canonical order assigning each its
/// exact admitted prefix, and only those prefixes are materialized. Stage I
/// transient spider-store memory is therefore O(max_spiders), not
/// O(num_labels × max_spiders), and the returned set is the exact prefix
/// of the unlimited enumeration at any thread count or shard grain. The
/// budgeted path trades at most one extra enumeration pass for that bound.
///
/// General radii are handled by ball_miner.h; the star miner is the fast
/// path the growth engine uses.

namespace spidermine {

/// Limits for star mining.
struct StarMinerConfig {
  /// Minimum support sigma over distinct anchors.
  int64_t min_support = 2;
  /// Maximum number of leaves per star (bounds the level-wise depth).
  int32_t max_leaves = 8;
  /// Global spider budget (<=0: unlimited). When hit, the result is the
  /// exact prefix of the unlimited enumeration in canonical (label, first
  /// key, DFS) order, and the flag below reports the truncation.
  int64_t max_spiders = 0;
  /// Include the 0-leaf single-vertex spiders (frequent labels). These are
  /// legitimate spiders and eligible seeds.
  bool include_single_vertex = true;
  /// Vertex-range grain of the per-label root scans: each scan shard covers
  /// at most this many head vertices. <= 0 selects an automatic grain. The
  /// mined set is identical at any value.
  int64_t shard_grain = 0;
};

/// Output of star mining.
struct StarMineResult {
  /// The mined spiders, in canonical order.
  SpiderStore store;
  /// True when max_spiders (or cancellation) cut enumeration short.
  bool truncated = false;
  /// Number of level-wise extension attempts (mining work measure).
  int64_t extension_attempts = 0;
  /// Scan shards run (label × vertex-range cells).
  int64_t num_scan_shards = 0;
  /// Enumeration shards run (label × first-leaf-key subtrees).
  int64_t num_enum_shards = 0;

  /// Materializes legacy Spider records (tests and interop).
  std::vector<Spider> Spiders() const { return store.MaterializeAll(); }
};

/// Mines all frequent 1-spiders (stars) of \p graph. With a non-null
/// \p pool, scan and enumeration shards run on the pool's workers; the
/// mined set is independent of the thread count and the shard grain. A
/// non-null \p token is polled inside shard enumeration: cancellation stops
/// mining mid-shard and marks the result truncated.
Result<StarMineResult> MineStarSpiders(
    const LabeledGraph& graph, const StarMinerConfig& config,
    ThreadPool* pool = nullptr, const CancellationToken* token = nullptr);

}  // namespace spidermine
