#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "graph/labeled_graph.h"
#include "spider/spider.h"

/// \file star_miner.h
/// Stage I of SpiderMine for r = 1 (the paper's own implementation choice:
/// "we focus on the case for r = 1 for simplicity of presentation and
/// implementation", Appendix B). A 1-spider grown strictly outward is a
/// star: a head label plus a multiset of leaf labels; this miner enumerates
/// all frequent stars level-wise over the leaf multiset, maintaining anchor
/// lists (head images) for support counting.
///
/// Enumeration is sharded by head label: shards are independent, so they
/// run in parallel on a ThreadPool and are concatenated in label order,
/// making the result identical at any thread count.
///
/// General radii are handled by ball_miner.h; the star miner is the fast
/// path the growth engine uses.

namespace spidermine {

/// Limits for star mining.
struct StarMinerConfig {
  /// Minimum support sigma over distinct anchors.
  int64_t min_support = 2;
  /// Maximum number of leaves per star (bounds the level-wise depth).
  int32_t max_leaves = 8;
  /// Stop after this many spiders (<=0: unlimited). Enforced per label
  /// shard and again on the concatenated result, so the returned prefix is
  /// the same at any thread count. When hit, the result is truncated and
  /// the flag below reports it. Note the per-shard enforcement: transient
  /// work/memory can reach num_labels * max_spiders before the final trim
  /// (a cross-shard early stop would make shard output timing-dependent);
  /// treat this as an OOM backstop, not a precise work bound.
  int64_t max_spiders = 0;
  /// Include the 0-leaf single-vertex spiders (frequent labels). These are
  /// legitimate spiders and eligible seeds.
  bool include_single_vertex = true;
};

/// Output of star mining.
struct StarMineResult {
  std::vector<Spider> spiders;
  /// True when max_spiders (or cancellation) cut enumeration short.
  bool truncated = false;
  /// Number of level-wise extension attempts (mining work measure).
  int64_t extension_attempts = 0;
};

/// Mines all frequent 1-spiders (stars) of \p graph. With a non-null
/// \p pool, label shards run on the pool's workers; the mined set is
/// independent of the thread count. A non-null \p token is polled inside
/// shard enumeration: cancellation stops mining mid-shard and marks the
/// result truncated.
Result<StarMineResult> MineStarSpiders(
    const LabeledGraph& graph, const StarMinerConfig& config,
    ThreadPool* pool = nullptr, const CancellationToken* token = nullptr);

}  // namespace spidermine
