#include "spider/ball_miner.h"

#include <set>
#include <tuple>

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "pattern/dfs_code.h"
#include "pattern/embedding.h"

namespace spidermine {

namespace {

/// Head-tagged canonical key: the head must be distinguishable, because two
/// isomorphic patterns with different heads are different spiders.
std::string HeadTaggedCanonical(const Pattern& p) {
  Pattern tagged;
  for (VertexId v = 0; v < p.NumVertices(); ++v) {
    tagged.AddVertex(p.Label(v) * 2 + (v == 0 ? 1 : 0));
  }
  for (const auto& e : p.LabeledEdges()) tagged.AddEdge(e.u, e.v, e.label);
  return CanonicalString(tagged);
}

struct State {
  Pattern pattern;  // vertex 0 = head
  std::vector<Embedding> embeddings;
};

std::vector<VertexId> DistinctAnchors(const std::vector<Embedding>& embs) {
  std::vector<VertexId> anchors;
  anchors.reserve(embs.size());
  for (const Embedding& e : embs) anchors.push_back(e[0]);
  std::sort(anchors.begin(), anchors.end());
  anchors.erase(std::unique(anchors.begin(), anchors.end()), anchors.end());
  return anchors;
}

Spider MakeSpider(const State& state, int32_t radius, std::string canonical) {
  Spider s;
  s.pattern = state.pattern;
  s.radius = radius;
  s.anchors = DistinctAnchors(state.embeddings);
  s.support = static_cast<int64_t>(s.anchors.size());
  s.canonical = std::move(canonical);
  return s;
}

}  // namespace

Result<BallMineResult> MineBallSpiders(const LabeledGraph& graph,
                                       const BallMinerConfig& config) {
  if (config.min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (config.radius < 1) {
    return Status::InvalidArgument("radius must be >= 1");
  }

  BallMineResult result;
  std::deque<State> queue;
  std::unordered_set<std::string> seen;

  // Seeds: one single-vertex pattern per frequent label.
  for (LabelId label = 0; label < graph.NumLabels(); ++label) {
    auto vertices = graph.VerticesWithLabel(label);
    if (static_cast<int64_t>(vertices.size()) < config.min_support) continue;
    State s;
    s.pattern.AddVertex(label);
    for (VertexId v : vertices) s.embeddings.push_back({v});
    std::string canonical = HeadTaggedCanonical(s.pattern);
    seen.insert(canonical);
    if (config.include_single_vertex) {
      result.spiders.push_back(MakeSpider(s, config.radius, canonical));
    }
    queue.push_back(std::move(s));
  }

  auto truncated = [&]() {
    return config.max_spiders > 0 &&
           static_cast<int64_t>(result.spiders.size()) >= config.max_spiders;
  };

  while (!queue.empty() && !truncated()) {
    State state = std::move(queue.front());
    queue.pop_front();
    ++result.expansions;

    const Pattern& p = state.pattern;
    std::vector<int32_t> dist = p.BfsDistances(0);

    // ---- Candidate extensions: (a) new vertex with label l attached at
    // pattern vertex u (only when dist(u) < r); (b) internal edge (u, v).
    // Collected from the embeddings so only realizable extensions are tried.
    // Extension keys carry the graph edge's label so edge-labeled balls
    // stay distinct (label 0 everywhere on unlabeled graphs).
    std::set<std::tuple<VertexId, LabelId, EdgeLabelId>> ext_new;
    std::set<std::tuple<VertexId, VertexId, EdgeLabelId>> ext_internal;
    for (const Embedding& e : state.embeddings) {
      std::unordered_set<VertexId> image(e.begin(), e.end());
      for (VertexId u = 0; u < p.NumVertices(); ++u) {
        for (VertexId x : graph.Neighbors(e[u])) {
          if (image.count(x)) continue;
          if (dist[u] < config.radius &&
              p.NumVertices() < config.max_vertices) {
            ext_new.emplace(u, graph.Label(x), graph.EdgeLabel(e[u], x));
          }
        }
      }
      for (VertexId u = 0; u < p.NumVertices(); ++u) {
        for (VertexId v = u + 1; v < p.NumVertices(); ++v) {
          if (!p.HasEdge(u, v) && graph.HasEdge(e[u], e[v])) {
            ext_internal.emplace(u, v, graph.EdgeLabel(e[u], e[v]));
          }
        }
      }
    }

    auto consider = [&](State&& next) {
      if (static_cast<int64_t>(next.embeddings.size()) <
          config.min_support) {
        return;  // cannot possibly have enough anchors
      }
      std::vector<VertexId> anchors = DistinctAnchors(next.embeddings);
      if (static_cast<int64_t>(anchors.size()) < config.min_support) return;
      std::string canonical = HeadTaggedCanonical(next.pattern);
      if (!seen.insert(canonical).second) return;
      result.spiders.push_back(MakeSpider(next, config.radius, canonical));
      queue.push_back(std::move(next));
    };

    for (const auto& [u, label, el] : ext_new) {
      if (truncated()) break;
      State next;
      next.pattern = p;
      VertexId nv = next.pattern.AddVertex(label);
      next.pattern.AddEdge(u, nv, el);
      for (const Embedding& e : state.embeddings) {
        std::unordered_set<VertexId> image(e.begin(), e.end());
        for (VertexId x : graph.Neighbors(e[u])) {
          if (graph.Label(x) != label || image.count(x)) continue;
          if (graph.EdgeLabel(e[u], x) != el) continue;
          Embedding extended = e;
          extended.push_back(x);
          next.embeddings.push_back(std::move(extended));
          if (static_cast<int64_t>(next.embeddings.size()) >=
              config.max_embeddings_per_pattern) {
            break;
          }
        }
        if (static_cast<int64_t>(next.embeddings.size()) >=
            config.max_embeddings_per_pattern) {
          break;
        }
      }
      consider(std::move(next));
    }

    for (const auto& [u, v, el] : ext_internal) {
      if (truncated()) break;
      State next;
      next.pattern = p;
      next.pattern.AddEdge(u, v, el);
      for (const Embedding& e : state.embeddings) {
        if (graph.HasEdge(e[u], e[v]) && graph.EdgeLabel(e[u], e[v]) == el) {
          next.embeddings.push_back(e);
        }
      }
      consider(std::move(next));
    }
  }

  result.truncated = truncated();
  return result;
}

}  // namespace spidermine
