#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "spider/spider.h"

/// \file ball_miner.h
/// General r-spider mining (any radius, leaf-leaf edges included): anchored
/// pattern growth restricted so every vertex stays within distance r of the
/// head. This is the faithful realization of Definition 4 for r >= 1; it is
/// exponential (the paper reports Stage I runtimes of 0.6s / 2.7s / 87s /
/// out-of-memory for r = 1..4 on a 600-edge graph, reproduced by
/// bench_appc_radius) and is used for small graphs, tests, and the radius
/// ablation, while star_miner.h is the fast r=1 path of the growth engine.

namespace spidermine {

/// Limits for ball mining.
struct BallMinerConfig {
  /// Minimum support sigma over distinct anchors (head images).
  int64_t min_support = 2;
  /// Spider radius r.
  int32_t radius = 1;
  /// Stop after this many spiders (<=0: unlimited).
  int64_t max_spiders = 0;
  /// Per-pattern cap on stored anchored embeddings.
  int64_t max_embeddings_per_pattern = 10000;
  /// Per-spider vertex cap (safety on dense neighborhoods).
  int32_t max_vertices = 64;
  /// Include frequent single-vertex spiders.
  bool include_single_vertex = true;
};

/// Output of ball mining.
struct BallMineResult {
  std::vector<Spider> spiders;
  bool truncated = false;
  /// Patterns expanded (mining work measure).
  int64_t expansions = 0;
};

/// Mines all frequent r-spiders of \p graph under \p config.
Result<BallMineResult> MineBallSpiders(const LabeledGraph& graph,
                                       const BallMinerConfig& config);

}  // namespace spidermine
