#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "spider/spider_store.h"

/// \file spider_store_io.h
/// Binary persistence of the Stage I spider set — the artifact
/// `MiningSession::SaveStage1`/`LoadStage1` round-trip so the one-time
/// mining pass can be precomputed offline (CLI `stage1`) and queried
/// repeatedly (CLI `query`). Uses the shared versioned + CRC-checked
/// framing of graph/binary_format.h with magic "SMS1"; conventional file
/// extension `.sm1`. Loads reject corrupt or truncated files AND
/// structurally invalid content (unsorted leaf keys, non-ascending
/// anchors, negative labels) through Result<>, so a damaged artifact can
/// never produce a store the growth engine's binary searches would
/// silently misread.

namespace spidermine {

/// Magic bytes of the legacy copy-deserialized Stage I format.
inline constexpr char kSm1Magic[4] = {'S', 'M', 'S', '1'};

/// Provenance of a saved Stage I artifact: the mining parameters that
/// produced the spider set (MiningSession::LoadStage1 restores them as the
/// session's floor) plus the identity of the graph it was mined over (size
/// and content hash, so an artifact is never silently applied to a
/// different network).
struct Stage1Meta {
  int64_t min_support = 2;
  int32_t spider_radius = 1;
  int32_t max_star_leaves = 8;
  int64_t max_spiders = 0;
  int64_t num_graph_vertices = 0;
  /// LabeledGraph::ContentHash() of the mined network.
  /// MiningSession::SaveStage1 always records it and LoadStage1 requires
  /// an exact match, so an artifact can never be served against a
  /// different graph (callers building metas by hand must fill it in).
  uint64_t graph_hash = 0;
  /// True when a spider budget or time budget truncated the mined set.
  bool truncated = false;
};

/// A deserialized Stage I artifact: the spider store plus its provenance.
struct Stage1Artifact {
  SpiderStore store;
  Stage1Meta meta;
};

/// Serializes \p store and its provenance to an in-memory byte string.
/// Deterministic: identical stores and meta produce identical bytes.
std::string SpiderStoreToBinary(const SpiderStore& store,
                                const Stage1Meta& meta);

/// Decodes a byte string produced by SpiderStoreToBinary. Fails with
/// kIoError on framing/CRC mismatches and on structurally invalid content.
Result<Stage1Artifact> SpiderStoreFromBinary(const std::string& bytes);

/// Writes \p store + \p meta to \p path in the binary format. Overwrites.
Status SaveSpiderStoreBinary(const SpiderStore& store, const Stage1Meta& meta,
                             const std::string& path);

/// Loads an artifact written by SaveSpiderStoreBinary.
Result<Stage1Artifact> LoadSpiderStoreBinary(const std::string& path);

}  // namespace spidermine
