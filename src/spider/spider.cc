#include "spider/spider.h"

#include <algorithm>

namespace spidermine {

std::vector<LabelId> Spider::LeafLabels() const {
  std::vector<LabelId> labels;
  for (VertexId v : pattern.Neighbors(0)) labels.push_back(pattern.Label(v));
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::vector<std::pair<EdgeLabelId, LabelId>> Spider::LeafKeys() const {
  std::vector<std::pair<EdgeLabelId, LabelId>> keys;
  for (VertexId v : pattern.Neighbors(0)) {
    keys.emplace_back(pattern.EdgeLabel(0, v), pattern.Label(v));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

bool Spider::IsAnchoredAt(VertexId vertex) const {
  return std::binary_search(anchors.begin(), anchors.end(), vertex);
}

}  // namespace spidermine
