#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pattern/pattern.h"

/// \file spider.h
/// The r-spider (paper Definition 4): a frequent pattern P with a head
/// vertex u such that P is r-bounded from u. Spiders are the growth unit of
/// SpiderMine: Stage I mines them all, Stage II grows seed spiders by
/// appending spiders at pattern boundaries.

namespace spidermine {

/// A mined r-spider. By construction pattern vertex 0 is the head.
struct Spider {
  /// The spider's structure; vertex 0 is the head u.
  Pattern pattern;
  /// Spider radius r (all vertices within distance r of vertex 0).
  int32_t radius = 1;
  /// Graph vertices at which an embedding headed there exists ("s is
  /// adjacent to v" in the paper's Appendix A), sorted ascending.
  std::vector<VertexId> anchors;
  /// Support = number of distinct anchors (distinct head images). This is
  /// the head-image count, an anti-monotone measure for head-rooted growth.
  int64_t support = 0;
  /// Canonical key (head-tagged minimum DFS code) for dedup.
  std::string canonical;
  /// False when some super-spider has the identical anchor set; closed
  /// spiders are the non-redundant growth units (growing with a non-closed
  /// spider is always dominated by growing with its closure).
  bool closed = true;

  /// Labels of the head's neighbors inside the spider, sorted: for stars
  /// this fully determines the spider together with the head label.
  std::vector<LabelId> LeafLabels() const;

  /// (edge label, leaf label) pairs of the head's incident edges, sorted.
  /// The growth engine keys extension on these so edge-labeled graphs
  /// (paper Sec. 3 extension) grow correctly; for unlabeled graphs every
  /// edge label is 0 and this degenerates to LeafLabels().
  std::vector<std::pair<EdgeLabelId, LabelId>> LeafKeys() const;

  /// True iff \p vertex is an anchor (binary search).
  bool IsAnchoredAt(VertexId vertex) const;
};

}  // namespace spidermine
