#include "spider/spider_index.h"

namespace spidermine {

SpiderIndex::SpiderIndex(const SpiderStore* store, int64_t num_vertices)
    : store_(store) {
  // Two-pass CSR build: histogram anchor incidences per vertex, prefix-sum
  // into offsets, then fill in id order so per-vertex lists are ascending.
  offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  const int32_t n = static_cast<int32_t>(store_->size());
  for (int32_t id = 0; id < n; ++id) {
    for (VertexId v : store_->anchors(id)) ++offsets_[v + 1];
  }
  for (size_t v = 1; v < offsets_.size(); ++v) offsets_[v] += offsets_[v - 1];
  ids_.resize(static_cast<size_t>(offsets_.back()));
  std::vector<int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (int32_t id = 0; id < n; ++id) {
    for (VertexId v : store_->anchors(id)) ids_[cursor[v]++] = id;
  }
}

SpiderIndex::SpiderIndex(const SpiderStore* store,
                         std::span<const int64_t> offsets,
                         std::span<const int32_t> ids)
    : store_(store), borrowed_(true), b_offsets_(offsets), b_ids_(ids) {}

double SpiderIndex::AverageSpidersPerVertex() const {
  std::span<const int64_t> offsets = offsets_col();
  if (offsets.size() <= 1) return 0.0;
  return static_cast<double>(ids_col().size()) /
         static_cast<double>(offsets.size() - 1);
}

}  // namespace spidermine
