#include "spider/spider_index.h"

namespace spidermine {

SpiderIndex::SpiderIndex(const std::vector<Spider>* spiders,
                         int64_t num_vertices)
    : spiders_(spiders) {
  at_vertex_.resize(static_cast<size_t>(num_vertices));
  for (size_t id = 0; id < spiders_->size(); ++id) {
    for (VertexId v : (*spiders_)[id].anchors) {
      at_vertex_[v].push_back(static_cast<int32_t>(id));
    }
  }
}

double SpiderIndex::AverageSpidersPerVertex() const {
  if (at_vertex_.empty()) return 0.0;
  int64_t total = 0;
  for (const auto& list : at_vertex_) {
    total += static_cast<int64_t>(list.size());
  }
  return static_cast<double>(total) / static_cast<double>(at_vertex_.size());
}

}  // namespace spidermine
