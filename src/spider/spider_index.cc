#include "spider/spider_index.h"

namespace spidermine {

SpiderIndex::SpiderIndex(const SpiderStore* store, int64_t num_vertices)
    : store_(store) {
  // Two-pass CSR build: histogram anchor incidences per vertex, prefix-sum
  // into offsets, then fill in id order so per-vertex lists are ascending.
  offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  const int32_t n = static_cast<int32_t>(store_->size());
  for (int32_t id = 0; id < n; ++id) {
    for (VertexId v : store_->anchors(id)) ++offsets_[v + 1];
  }
  for (size_t v = 1; v < offsets_.size(); ++v) offsets_[v] += offsets_[v - 1];
  ids_.resize(static_cast<size_t>(offsets_.back()));
  std::vector<int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (int32_t id = 0; id < n; ++id) {
    for (VertexId v : store_->anchors(id)) ids_[cursor[v]++] = id;
  }
}

double SpiderIndex::AverageSpidersPerVertex() const {
  if (offsets_.size() <= 1) return 0.0;
  return static_cast<double>(ids_.size()) /
         static_cast<double>(offsets_.size() - 1);
}

}  // namespace spidermine
