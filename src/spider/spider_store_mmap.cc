#include "spider/spider_store_mmap.h"

#include <cstring>
#include <limits>
#include <string_view>
#include <utility>

#include "common/crc32.h"
#include "common/strings.h"
#include "graph/binary_format.h"

namespace spidermine {

namespace {

using binary_format::AppendI32;
using binary_format::AppendI64;
using binary_format::AppendU32;
using binary_format::AppendU64;
using binary_format::AppendU8;

/// Fixed byte length of the meta section (see WriteMetaSection).
constexpr uint64_t kMetaSectionBytes = 72;
/// Bytes of the fixed header ahead of the section table.
constexpr size_t kSm2Preamble = 16;
/// One section-table entry.
constexpr size_t kSm2TableEntryBytes = 32;
/// Header bytes covered by the header CRC.
constexpr size_t kSm2HeaderBytes =
    kSm2Preamble + kSm2SectionCount * kSm2TableEntryBytes;

const char* kSectionName[kSm2SectionCount] = {
    "meta",         "head_labels", "closed",      "leaf_offsets",
    "leaf_pool",    "anchor_offsets", "anchor_pool", "index_offsets",
    "index_ids"};

enum SectionKind : uint32_t {
  kMeta = 0,
  kHeadLabels = 1,
  kClosed = 2,
  kLeafOffsets = 3,
  kLeafPool = 4,
  kAnchorOffsets = 5,
  kAnchorPool = 6,
  kIndexOffsets = 7,
  kIndexIds = 8,
};

void PadTo(std::string* out, size_t align) {
  while (out->size() % align != 0) out->push_back('\0');
}

template <typename T>
std::span<const uint8_t> AsBytes(std::span<const T> data) {
  return {reinterpret_cast<const uint8_t*>(data.data()), data.size_bytes()};
}

std::string WriteMetaSection(const Stage1Meta& meta, uint64_t n,
                             uint64_t total_leaves, uint64_t total_anchors) {
  std::string out;
  AppendI64(&out, meta.min_support);
  AppendI32(&out, meta.spider_radius);
  AppendI32(&out, meta.max_star_leaves);
  AppendI64(&out, meta.max_spiders);
  AppendI64(&out, meta.num_graph_vertices);
  AppendU64(&out, meta.graph_hash);
  AppendU8(&out, meta.truncated ? 1 : 0);
  for (int i = 0; i < 7; ++i) AppendU8(&out, 0);  // pad to 8
  AppendU64(&out, n);
  AppendU64(&out, total_leaves);
  AppendU64(&out, total_anchors);
  return out;
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian host (gated by Sm2HostSupported)
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

template <typename T>
std::span<const T> SectionSpan(std::span<const uint8_t> file, uint64_t offset,
                               uint64_t length) {
  return {reinterpret_cast<const T*>(file.data() + offset),
          static_cast<size_t>(length / sizeof(T))};
}

/// Checks one offsets array: starts at 0, non-decreasing, ends at
/// \p expected_total.
Status CheckOffsets(std::span<const int64_t> offsets, int64_t expected_total,
                    const char* what) {
  if (offsets.empty() || offsets.front() != 0) {
    return Status::IoError(StrCat("sm2 ", what, " does not start at 0"));
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::IoError(
          StrCat("sm2 ", what, " not monotonic at entry ", i));
    }
  }
  if (offsets.back() != expected_total) {
    return Status::IoError(StrCat("sm2 ", what, " ends at ", offsets.back(),
                                  ", expected ", expected_total));
  }
  return Status::Ok();
}

}  // namespace

std::string Stage1ToSm2Bytes(const SpiderStore& store,
                             const SpiderIndex& index,
                             const Stage1Meta& meta) {
  const uint64_t n = static_cast<uint64_t>(store.size());
  const std::string meta_bytes =
      WriteMetaSection(meta, n, static_cast<uint64_t>(store.TotalLeaves()),
                       static_cast<uint64_t>(store.TotalAnchors()));

  const std::span<const uint8_t> section_bytes[kSm2SectionCount] = {
      {reinterpret_cast<const uint8_t*>(meta_bytes.data()),
       meta_bytes.size()},
      AsBytes(store.head_labels()),
      store.closed_flags(),
      AsBytes(store.leaf_offsets()),
      AsBytes(store.leaf_pool()),
      AsBytes(store.anchor_offsets()),
      AsBytes(store.anchor_pool()),
      AsBytes(index.offsets()),
      AsBytes(index.ids()),
  };

  // Lay the sections out: each starts at the next 64-byte boundary after
  // the header (and after its predecessor); the file ends exactly at the
  // last section's end.
  uint64_t offsets[kSm2SectionCount];
  uint64_t cursor = kSm2HeaderBytes + 4;  // + header CRC
  for (uint32_t kind = 0; kind < kSm2SectionCount; ++kind) {
    cursor = (cursor + kSm2SectionAlign - 1) / kSm2SectionAlign *
             kSm2SectionAlign;
    offsets[kind] = cursor;
    cursor += section_bytes[kind].size();
  }

  std::string out;
  out.reserve(static_cast<size_t>(cursor));
  out.append(kSm2Magic, 4);
  AppendU32(&out, kSm2FormatVersion);
  AppendU32(&out, kSm2SectionCount);
  AppendU32(&out, 0);  // reserved
  for (uint32_t kind = 0; kind < kSm2SectionCount; ++kind) {
    AppendU32(&out, kind);
    AppendU32(&out, 0);  // reserved
    AppendU64(&out, offsets[kind]);
    AppendU64(&out, section_bytes[kind].size());
    AppendU32(&out, Crc32(section_bytes[kind]));
    AppendU32(&out, 0);  // reserved
  }
  AppendU32(&out, Crc32(std::string_view(out.data(), kSm2HeaderBytes)));
  for (uint32_t kind = 0; kind < kSm2SectionCount; ++kind) {
    PadTo(&out, kSm2SectionAlign);
    out.append(reinterpret_cast<const char*>(section_bytes[kind].data()),
               section_bytes[kind].size());
  }
  return out;
}

Status SaveStage1Sm2(const SpiderStore& store, const SpiderIndex& index,
                     const Stage1Meta& meta, const std::string& path) {
  if (!Sm2HostSupported()) {
    return Status::IoError(
        "the zero-copy .sm2 format is little-endian only; use the legacy "
        ".sm1 writer on this host");
  }
  return binary_format::WriteFile(path,
                                  Stage1ToSm2Bytes(store, index, meta));
}

Result<std::unique_ptr<MappedStage1>> MappedStage1::Open(
    const std::string& path) {
  if (!Sm2HostSupported()) {
    return Status::IoError(
        "the zero-copy .sm2 format is little-endian only and cannot be "
        "mapped on this host");
  }
  SM_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  const std::span<const uint8_t> bytes = file.bytes();
  if (bytes.size() < kSm2HeaderBytes + 4) {
    return Status::IoError(StrCat("sm2 file too short: ", bytes.size(),
                                  " bytes < ", kSm2HeaderBytes + 4,
                                  "-byte header"));
  }
  if (std::memcmp(bytes.data(), kSm2Magic, 4) != 0) {
    return Status::IoError("bad magic; expected SMS2");
  }
  const uint32_t version = LoadU32(bytes.data() + 4);
  if (version != kSm2FormatVersion) {
    return Status::IoError(
        StrCat("unsupported sm2 format version ", version));
  }
  const uint32_t section_count = LoadU32(bytes.data() + 8);
  if (section_count != kSm2SectionCount) {
    return Status::IoError(StrCat("sm2 section count ", section_count,
                                  " != expected ", kSm2SectionCount));
  }
  const uint32_t header_crc = LoadU32(bytes.data() + kSm2HeaderBytes);
  if (Crc32(bytes.subspan(0, kSm2HeaderBytes)) != header_crc) {
    return Status::IoError("sm2 header checksum mismatch (corrupted file)");
  }

  auto mapped = std::unique_ptr<MappedStage1>(new MappedStage1());
  mapped->file_ = std::move(file);
  const std::span<const uint8_t> data = mapped->file_.bytes();

  // Section table: fixed kind order, 64-byte aligned, ascending,
  // non-overlapping, inside the file, and the file ends exactly at the
  // last section's end (so every non-padding byte is CRC-covered).
  mapped->sections_.resize(kSm2SectionCount);
  uint64_t prev_end = kSm2HeaderBytes + 4;
  for (uint32_t kind = 0; kind < kSm2SectionCount; ++kind) {
    const uint8_t* entry =
        data.data() + kSm2Preamble + kind * kSm2TableEntryBytes;
    Section& section = mapped->sections_[kind];
    section.kind = LoadU32(entry);
    section.offset = LoadU64(entry + 8);
    section.length = LoadU64(entry + 16);
    section.crc = LoadU32(entry + 24);
    if (section.kind != kind) {
      return Status::IoError(StrCat("sm2 section ", kind,
                                    " has unexpected kind ", section.kind));
    }
    if (section.offset % kSm2SectionAlign != 0) {
      return Status::IoError(StrCat("sm2 section ", kSectionName[kind],
                                    " misaligned at offset ",
                                    section.offset));
    }
    if (section.offset < prev_end ||
        section.offset > data.size() ||
        section.length > data.size() - section.offset) {
      return Status::IoError(StrCat("sm2 section ", kSectionName[kind],
                                    " out of bounds (offset ",
                                    section.offset, ", length ",
                                    section.length, ", file ", data.size(),
                                    " bytes)"));
    }
    prev_end = section.offset + section.length;
  }
  if (prev_end != data.size()) {
    return Status::IoError(StrCat("sm2 trailing bytes: sections end at ",
                                  prev_end, ", file has ", data.size()));
  }

  // Meta section: fixed width, CRC'd eagerly (it is 72 bytes).
  const Section& meta_section = mapped->sections_[kMeta];
  if (meta_section.length != kMetaSectionBytes) {
    return Status::IoError(StrCat("sm2 meta section has ",
                                  meta_section.length, " bytes, expected ",
                                  kMetaSectionBytes));
  }
  const uint8_t* m = data.data() + meta_section.offset;
  if (Crc32(data.subspan(meta_section.offset, kMetaSectionBytes)) !=
      meta_section.crc) {
    return Status::IoError("sm2 meta section checksum mismatch");
  }
  Stage1Meta& meta = mapped->meta_;
  meta.min_support = static_cast<int64_t>(LoadU64(m));
  meta.spider_radius = static_cast<int32_t>(LoadU32(m + 8));
  meta.max_star_leaves = static_cast<int32_t>(LoadU32(m + 12));
  meta.max_spiders = static_cast<int64_t>(LoadU64(m + 16));
  meta.num_graph_vertices = static_cast<int64_t>(LoadU64(m + 24));
  meta.graph_hash = LoadU64(m + 32);
  meta.truncated = m[40] != 0;
  const uint64_t n = LoadU64(m + 48);
  const uint64_t total_leaves = LoadU64(m + 56);
  const uint64_t total_anchors = LoadU64(m + 64);
  if (meta.min_support < 1 || meta.spider_radius < 1 ||
      meta.max_star_leaves < 0 || meta.max_spiders < 0 ||
      meta.num_graph_vertices < 0) {
    return Status::IoError("sm2 meta fields out of range");
  }
  if (n > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
    return Status::IoError(StrCat("sm2 spider count ", n,
                                  " exceeds the int32 id space"));
  }

  // Exact length checks tie every array section to the meta counts before
  // any span is formed.
  const uint64_t expected_length[kSm2SectionCount] = {
      kMetaSectionBytes,
      n * sizeof(LabelId),
      n,
      (n + 1) * sizeof(int64_t),
      total_leaves * sizeof(SpiderLeafKey),
      (n + 1) * sizeof(int64_t),
      total_anchors * sizeof(VertexId),
      (static_cast<uint64_t>(meta.num_graph_vertices) + 1) * sizeof(int64_t),
      total_anchors * sizeof(int32_t),
  };
  for (uint32_t kind = 1; kind < kSm2SectionCount; ++kind) {
    if (mapped->sections_[kind].length != expected_length[kind]) {
      return Status::IoError(
          StrCat("sm2 section ", kSectionName[kind], " has ",
                 mapped->sections_[kind].length, " bytes, expected ",
                 expected_length[kind]));
    }
  }

  const auto span_of = [&](uint32_t kind, auto tag) {
    using T = decltype(tag);
    const Section& s = mapped->sections_[kind];
    return SectionSpan<T>(data, s.offset, s.length);
  };
  std::span<const LabelId> head_labels = span_of(kHeadLabels, LabelId{});
  std::span<const uint8_t> closed = span_of(kClosed, uint8_t{});
  std::span<const int64_t> leaf_offsets = span_of(kLeafOffsets, int64_t{});
  std::span<const SpiderLeafKey> leaf_pool =
      span_of(kLeafPool, SpiderLeafKey{});
  std::span<const int64_t> anchor_offsets =
      span_of(kAnchorOffsets, int64_t{});
  std::span<const VertexId> anchor_pool = span_of(kAnchorPool, VertexId{});
  std::span<const int64_t> index_offsets = span_of(kIndexOffsets, int64_t{});
  std::span<const int32_t> index_ids = span_of(kIndexIds, int32_t{});

  // Offset arrays establish every per-spider span, so they are validated
  // structurally up front — they are the small sections. The bulk pools
  // stay lazy (EnsureValidated).
  SM_RETURN_NOT_OK(CheckOffsets(leaf_offsets,
                                static_cast<int64_t>(total_leaves),
                                "leaf_offsets"));
  SM_RETURN_NOT_OK(CheckOffsets(anchor_offsets,
                                static_cast<int64_t>(total_anchors),
                                "anchor_offsets"));
  SM_RETURN_NOT_OK(CheckOffsets(index_offsets,
                                static_cast<int64_t>(total_anchors),
                                "index_offsets"));

  mapped->store_ = SpiderStore::Borrowed(head_labels, closed, leaf_offsets,
                                         leaf_pool, anchor_offsets,
                                         anchor_pool);
  mapped->index_ = std::make_unique<SpiderIndex>(&mapped->store_,
                                                 index_offsets, index_ids);
  return mapped;
}

Status MappedStage1::EnsureValidated() const {
  std::call_once(validate_once_,
                 [this] { validate_status_ = ValidateLazySections(); });
  return validate_status_;
}

Status MappedStage1::ValidateLazySections() const {
  const std::span<const uint8_t> data = file_.bytes();
  // CRC every data section (meta was checked at open).
  for (uint32_t kind = kHeadLabels; kind < kSm2SectionCount; ++kind) {
    const Section& section = sections_[kind];
    if (Crc32(data.subspan(section.offset, section.length)) != section.crc) {
      return Status::IoError(StrCat("sm2 section ", kSectionName[kind],
                                    " checksum mismatch (corrupted or "
                                    "tampered artifact)"));
    }
  }
  // Content range checks: with CRCs intact these only reject artifacts
  // whose WRITER was broken, but they are one cheap pass and keep the
  // promise that a damaged artifact can never feed the growth engine's
  // binary searches out-of-contract data.
  const int32_t n = static_cast<int32_t>(store_.size());
  for (int32_t id = 0; id < n; ++id) {
    if (store_.head_label(id) < 0) {
      return Status::IoError(StrCat("sm2 negative head label on spider ",
                                    id));
    }
    std::span<const SpiderLeafKey> leaves = store_.leaves(id);
    for (size_t j = 0; j < leaves.size(); ++j) {
      if (leaves[j].first < 0 || leaves[j].second < 0 ||
          (j > 0 && leaves[j] < leaves[j - 1])) {
        return Status::IoError(
            StrCat("sm2 spider ", id, " leaf keys invalid or unsorted"));
      }
    }
    std::span<const VertexId> anchors = store_.anchors(id);
    if (anchors.empty()) {
      return Status::IoError(StrCat("sm2 spider ", id, " has no anchors"));
    }
    for (size_t j = 0; j < anchors.size(); ++j) {
      if (anchors[j] < 0 ||
          static_cast<int64_t>(anchors[j]) >= meta_.num_graph_vertices ||
          (j > 0 && anchors[j] <= anchors[j - 1])) {
        return Status::IoError(StrCat("sm2 spider ", id,
                                      " anchors invalid, unsorted or "
                                      "outside the declared ",
                                      meta_.num_graph_vertices,
                                      "-vertex graph"));
      }
    }
  }
  for (int32_t id : index_->ids()) {
    if (id < 0 || id >= n) {
      return Status::IoError(
          StrCat("sm2 index id ", id, " outside the ", n, "-spider store"));
    }
  }
  return Status::Ok();
}

}  // namespace spidermine
