#include "spider/spider_store_io.h"

#include <vector>

#include "common/strings.h"
#include "graph/binary_format.h"

namespace spidermine {

namespace {

using binary_format::AppendI32;
using binary_format::AppendI64;
using binary_format::AppendU32;
using binary_format::AppendU64;
using binary_format::AppendU8;
using binary_format::Reader;

constexpr const char* kSpiderStoreMagic = kSm1Magic;
constexpr uint32_t kStage1FormatVersion = 1;

/// Fixed payload bytes ahead of the per-spider columns: the Stage1Meta
/// fields (8+4+4+8+8+8+1) plus the three totals (3 x 8).
constexpr uint64_t kFixedPayloadBytes = 41 + 24;

}  // namespace

// Stage1 payload:
//   int64  min_support        int32 spider_radius   int32 max_star_leaves
//   int64  max_spiders        uint64 num_graph_vertices
//   uint64 graph_hash         uint8 truncated
//   uint64 n  uint64 total_leaves  uint64 total_anchors
//   n x int32 head labels     n x uint8 closed flags
//   n x uint32 leaf counts    n x uint32 anchor counts
//   total_leaves x (int32 edge label, int32 leaf label)
//   total_anchors x int32 anchor vertex
std::string SpiderStoreToBinary(const SpiderStore& store,
                                const Stage1Meta& meta) {
  std::string payload;
  AppendI64(&payload, meta.min_support);
  AppendI32(&payload, meta.spider_radius);
  AppendI32(&payload, meta.max_star_leaves);
  AppendI64(&payload, meta.max_spiders);
  AppendU64(&payload, static_cast<uint64_t>(meta.num_graph_vertices));
  AppendU64(&payload, meta.graph_hash);
  AppendU8(&payload, meta.truncated ? 1 : 0);

  const int64_t n = store.size();
  int64_t total_leaves = 0;
  for (int32_t id = 0; id < static_cast<int32_t>(n); ++id) {
    total_leaves += static_cast<int64_t>(store.leaves(id).size());
  }
  AppendU64(&payload, static_cast<uint64_t>(n));
  AppendU64(&payload, static_cast<uint64_t>(total_leaves));
  AppendU64(&payload, static_cast<uint64_t>(store.TotalAnchors()));
  for (int32_t id = 0; id < static_cast<int32_t>(n); ++id) {
    AppendI32(&payload, store.head_label(id));
  }
  for (int32_t id = 0; id < static_cast<int32_t>(n); ++id) {
    AppendU8(&payload, store.closed(id) ? 1 : 0);
  }
  for (int32_t id = 0; id < static_cast<int32_t>(n); ++id) {
    AppendU32(&payload, static_cast<uint32_t>(store.leaves(id).size()));
  }
  for (int32_t id = 0; id < static_cast<int32_t>(n); ++id) {
    AppendU32(&payload, static_cast<uint32_t>(store.anchors(id).size()));
  }
  for (int32_t id = 0; id < static_cast<int32_t>(n); ++id) {
    for (const SpiderLeafKey& leaf : store.leaves(id)) {
      AppendI32(&payload, leaf.first);
      AppendI32(&payload, leaf.second);
    }
  }
  for (int32_t id = 0; id < static_cast<int32_t>(n); ++id) {
    for (VertexId anchor : store.anchors(id)) AppendI32(&payload, anchor);
  }
  return binary_format::WrapPayload(kSpiderStoreMagic, payload,
                                    kStage1FormatVersion);
}

Result<Stage1Artifact> SpiderStoreFromBinary(const std::string& bytes) {
  SM_ASSIGN_OR_RETURN(
      std::string_view payload,
      binary_format::UnwrapPayload(bytes, kSpiderStoreMagic,
                                   kStage1FormatVersion));
  Reader reader(payload);
  Stage1Artifact artifact;
  Stage1Meta& meta = artifact.meta;
  uint8_t truncated = 0;
  uint64_t graph_vertices = 0;
  if (!reader.ReadI64(&meta.min_support) ||
      !reader.ReadI32(&meta.spider_radius) ||
      !reader.ReadI32(&meta.max_star_leaves) ||
      !reader.ReadI64(&meta.max_spiders) || !reader.ReadU64(&graph_vertices) ||
      !reader.ReadU64(&meta.graph_hash) || !reader.ReadU8(&truncated)) {
    return Status::IoError("truncated stage1 payload (meta)");
  }
  meta.num_graph_vertices = static_cast<int64_t>(graph_vertices);
  meta.truncated = truncated != 0;
  if (meta.min_support < 1 || meta.spider_radius < 1 ||
      meta.max_star_leaves < 0 || meta.max_spiders < 0 ||
      meta.num_graph_vertices < 0) {
    return Status::IoError("stage1 meta fields out of range");
  }

  uint64_t n = 0, total_leaves = 0, total_anchors = 0;
  if (!reader.ReadU64(&n) || !reader.ReadU64(&total_leaves) ||
      !reader.ReadU64(&total_anchors)) {
    return Status::IoError("truncated stage1 payload (counts)");
  }
  // Guard against absurd counts (and the size arithmetic overflowing)
  // before trusting them: every spider/leaf/anchor costs >= 1 byte.
  if (n > payload.size() || total_leaves > payload.size() ||
      total_anchors > payload.size()) {
    return Status::IoError(StrCat("implausible counts n=", n, " leaves=",
                                  total_leaves, " anchors=", total_anchors,
                                  " for a ", payload.size(),
                                  "-byte payload"));
  }
  const uint64_t need = kFixedPayloadBytes + n * (4 + 1 + 4 + 4) +
                        total_leaves * 8 + total_anchors * 4;
  if (payload.size() != need) {
    return Status::IoError(StrCat("stage1 payload size mismatch: expects ",
                                  need, " bytes, got ", payload.size()));
  }

  std::vector<LabelId> head_labels(n);
  std::vector<uint8_t> closed(n);
  std::vector<uint32_t> leaf_counts(n);
  std::vector<uint32_t> anchor_counts(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!reader.ReadI32(&head_labels[i])) {
      return Status::IoError("truncated stage1 payload (head labels)");
    }
    if (head_labels[i] < 0) {
      return Status::IoError(StrCat("negative head label ", head_labels[i]));
    }
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (!reader.ReadU8(&closed[i])) {
      return Status::IoError("truncated stage1 payload (closed flags)");
    }
  }
  uint64_t leaf_sum = 0, anchor_sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t count = 0;
    if (!reader.ReadU32(&count)) {
      return Status::IoError("truncated stage1 payload (leaf counts)");
    }
    leaf_counts[i] = count;
    leaf_sum += count;
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t count = 0;
    if (!reader.ReadU32(&count)) {
      return Status::IoError("truncated stage1 payload (anchor counts)");
    }
    if (count == 0) {
      return Status::IoError(StrCat("spider ", i, " has no anchors"));
    }
    anchor_counts[i] = count;
    anchor_sum += count;
  }
  if (leaf_sum != total_leaves || anchor_sum != total_anchors) {
    return Status::IoError("stage1 per-spider counts disagree with totals");
  }

  std::vector<SpiderLeafKey> leaf_pool(total_leaves);
  for (uint64_t i = 0; i < total_leaves; ++i) {
    int32_t edge_label = 0, leaf_label = 0;
    if (!reader.ReadI32(&edge_label) || !reader.ReadI32(&leaf_label)) {
      return Status::IoError("truncated stage1 payload (leaves)");
    }
    if (edge_label < 0 || leaf_label < 0) {
      return Status::IoError("negative leaf label in stage1 payload");
    }
    leaf_pool[i] = {edge_label, leaf_label};
  }
  std::vector<VertexId> anchor_pool(total_anchors);
  for (uint64_t i = 0; i < total_anchors; ++i) {
    if (!reader.ReadI32(&anchor_pool[i])) {
      return Status::IoError("truncated stage1 payload (anchors)");
    }
    if (anchor_pool[i] < 0 ||
        static_cast<int64_t>(anchor_pool[i]) >= meta.num_graph_vertices) {
      return Status::IoError(StrCat("anchor vertex ", anchor_pool[i],
                                    " outside the declared ",
                                    meta.num_graph_vertices,
                                    "-vertex graph"));
    }
  }

  // Rebuild through Append, enforcing its preconditions (sorted leaf keys,
  // ascending anchors).
  artifact.store.Reserve(static_cast<int64_t>(n),
                         static_cast<int64_t>(total_leaves),
                         static_cast<int64_t>(total_anchors));
  uint64_t leaf_pos = 0, anchor_pos = 0;
  for (uint64_t i = 0; i < n; ++i) {
    std::span<const SpiderLeafKey> leaves{leaf_pool.data() + leaf_pos,
                                          leaf_counts[i]};
    std::span<const VertexId> anchors{anchor_pool.data() + anchor_pos,
                                      anchor_counts[i]};
    leaf_pos += leaf_counts[i];
    anchor_pos += anchor_counts[i];
    for (size_t j = 1; j < leaves.size(); ++j) {
      if (leaves[j] < leaves[j - 1]) {
        return Status::IoError(StrCat("spider ", i, " leaf keys not sorted"));
      }
    }
    for (size_t j = 1; j < anchors.size(); ++j) {
      if (anchors[j] <= anchors[j - 1]) {
        return Status::IoError(
            StrCat("spider ", i, " anchors not strictly ascending"));
      }
    }
    artifact.store.Append(head_labels[i], leaves, anchors, closed[i] != 0);
  }
  return artifact;
}

Status SaveSpiderStoreBinary(const SpiderStore& store, const Stage1Meta& meta,
                             const std::string& path) {
  return binary_format::WriteFile(path, SpiderStoreToBinary(store, meta));
}

Result<Stage1Artifact> LoadSpiderStoreBinary(const std::string& path) {
  SM_ASSIGN_OR_RETURN(std::string bytes, binary_format::ReadFile(path));
  return SpiderStoreFromBinary(bytes);
}

}  // namespace spidermine
