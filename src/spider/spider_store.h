#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "pattern/pattern.h"
#include "spider/spider.h"

/// \file spider_store.h
/// Flat, arena-backed columnar storage for the mined r=1 spider set (stars):
/// the canonical Stage I representation. A star is fully determined by its
/// head label plus the sorted multiset of (edge label, leaf label) pairs, so
/// the store keeps exactly that — one contiguous leaf pool and one
/// contiguous anchor pool, with per-spider offset spans — instead of a
/// `std::vector<Spider>` of individually heap-allocated patterns, anchor
/// vectors and canonical strings. Per-spider overhead is constant (a few
/// integers), iteration is cache-linear, and shard outputs concatenate with
/// four bulk copies. The legacy `Spider` record remains the interchange type
/// for general-radius ball spiders and can be materialized on demand.
///
/// Two storage modes share one read interface:
///   - OWNING (default): the six columns live in the store's own vectors;
///     Append/AppendPrefix/set_closed mutate them. This is what mining
///     produces.
///   - BORROWED: the columns are non-owning spans over memory someone else
///     keeps alive — in practice the mmap'd `.sm2` Stage I artifact
///     (spider/spider_store_mmap.h), so a serving replica adopts a
///     multi-GB store with zero copies and zero per-spider work. A
///     borrowed store is immutable: every mutating call asserts.
/// Every read accessor dispatches to the active columns, so the growth
/// engine, index build and serialization never care which mode they see.

namespace spidermine {

/// A star leaf as stored: the connecting edge's label plus the leaf vertex
/// label. For edge-unlabeled graphs the edge label is always 0.
using SpiderLeafKey = std::pair<EdgeLabelId, LabelId>;

/// Columnar container of mined stars. Ids are dense [0, size()) in the
/// canonical mined order; spans stay valid until the next mutating call
/// (owning mode) or for the lifetime of the mapped memory (borrowed mode).
class SpiderStore {
 public:
  SpiderStore() = default;

  /// Builds a non-owning store over externally managed columns (the
  /// zero-copy mmap path). The caller guarantees: the memory outlives the
  /// store and every span handed out from it; `leaf_offsets` and
  /// `anchor_offsets` have `head_labels.size() + 1` non-decreasing entries
  /// starting at 0 and ending at the respective pool size; leaves within a
  /// spider are sorted and anchors strictly ascending (the `.sm2` reader
  /// checks the offset invariants before calling this; pool content is
  /// guarded by section CRCs).
  static SpiderStore Borrowed(std::span<const LabelId> head_labels,
                              std::span<const uint8_t> closed,
                              std::span<const int64_t> leaf_offsets,
                              std::span<const SpiderLeafKey> leaf_pool,
                              std::span<const int64_t> anchor_offsets,
                              std::span<const VertexId> anchor_pool);

  /// True when the columns are borrowed spans (mmap mode); such a store is
  /// read-only.
  bool is_borrowed() const { return borrowed_; }

  /// Number of spiders stored.
  int64_t size() const {
    return static_cast<int64_t>(head_labels_col().size());
  }
  bool empty() const { return head_labels_col().empty(); }

  /// Head label of spider \p id.
  LabelId head_label(int32_t id) const { return head_labels_col()[id]; }

  /// Sorted (edge label, leaf label) pairs of spider \p id — the same
  /// multiset `Spider::LeafKeys()` returns, without materialization.
  std::span<const SpiderLeafKey> leaves(int32_t id) const {
    std::span<const int64_t> offsets = leaf_offsets_col();
    return leaf_pool_col().subspan(
        static_cast<size_t>(offsets[id]),
        static_cast<size_t>(offsets[id + 1] - offsets[id]));
  }

  /// Sorted anchor vertices (head images) of spider \p id.
  std::span<const VertexId> anchors(int32_t id) const {
    std::span<const int64_t> offsets = anchor_offsets_col();
    return anchor_pool_col().subspan(
        static_cast<size_t>(offsets[id]),
        static_cast<size_t>(offsets[id + 1] - offsets[id]));
  }

  /// Support of spider \p id = number of distinct anchors.
  int64_t support(int32_t id) const {
    std::span<const int64_t> offsets = anchor_offsets_col();
    return offsets[id + 1] - offsets[id];
  }

  /// Closedness flag (no super-spider with the identical anchor set).
  bool closed(int32_t id) const { return closed_col()[id] != 0; }
  void set_closed(int32_t id, bool closed) {
    assert(!borrowed_ && "cannot mutate a borrowed (mmap'd) SpiderStore");
    closed_[id] = closed ? 1 : 0;
  }

  /// True iff \p vertex anchors spider \p id (binary search).
  bool IsAnchoredAt(int32_t id, VertexId vertex) const;

  /// Vertex count of the star pattern: 1 + number of leaves.
  int32_t NumVerticesOf(int32_t id) const {
    std::span<const int64_t> offsets = leaf_offsets_col();
    return 1 + static_cast<int32_t>(offsets[id + 1] - offsets[id]);
  }

  /// Total leaf entries across all spiders.
  int64_t TotalLeaves() const {
    return static_cast<int64_t>(leaf_pool_col().size());
  }

  /// Total anchor incidences across all spiders.
  int64_t TotalAnchors() const {
    return static_cast<int64_t>(anchor_pool_col().size());
  }

  /// Footprint of the pools and columns, in bytes. Owning mode reports
  /// heap capacity (the O(B) Stage I memory bound is measured against
  /// this); borrowed mode reports the mapped extent — bytes referenced,
  /// shared through page cache rather than allocated.
  int64_t HeapBytes() const;

  // ---- Whole-column views (serialization and the `.sm2` writer). ----
  std::span<const LabelId> head_labels() const { return head_labels_col(); }
  std::span<const uint8_t> closed_flags() const { return closed_col(); }
  std::span<const int64_t> leaf_offsets() const { return leaf_offsets_col(); }
  std::span<const SpiderLeafKey> leaf_pool() const { return leaf_pool_col(); }
  std::span<const int64_t> anchor_offsets() const {
    return anchor_offsets_col();
  }
  std::span<const VertexId> anchor_pool() const { return anchor_pool_col(); }

  /// Appends a spider; returns its id. \p leaves must be sorted
  /// non-decreasingly and \p anchors ascending. Owning mode only.
  int32_t Append(LabelId head_label, std::span<const SpiderLeafKey> leaves,
                 std::span<const VertexId> anchors, bool closed = true);

  /// Bulk-appends the first \p count spiders of \p other in order (the
  /// admitted prefix of a shard). \p count is clamped to other.size().
  /// Owning mode only (\p other may be either mode).
  void AppendPrefix(const SpiderStore& other, int64_t count);

  /// Pre-sizes the pools (optional; Append works regardless).
  void Reserve(int64_t num_spiders, int64_t total_leaves,
               int64_t total_anchors);

  /// Reconstructs the star pattern of spider \p id (vertex 0 = head).
  Pattern PatternOf(int32_t id) const;

  /// Materializes the legacy Spider record (pattern, anchors, canonical
  /// key) for spider \p id.
  Spider Materialize(int32_t id) const;

  /// Materializes every spider, in id order.
  std::vector<Spider> MaterializeAll() const;

  /// Builds a store from star-shaped Spider records (every edge incident to
  /// vertex 0), e.g. a star miner result or hand-built test fixtures.
  static SpiderStore FromSpiders(const std::vector<Spider>& spiders);

 private:
  // Active-column dispatch: borrowed spans when borrowed_, else views over
  // the owned vectors. One predictable branch per accessor.
  std::span<const LabelId> head_labels_col() const {
    return borrowed_ ? b_head_labels_
                     : std::span<const LabelId>(head_labels_);
  }
  std::span<const uint8_t> closed_col() const {
    return borrowed_ ? b_closed_ : std::span<const uint8_t>(closed_);
  }
  std::span<const int64_t> leaf_offsets_col() const {
    return borrowed_ ? b_leaf_offsets_
                     : std::span<const int64_t>(leaf_offsets_);
  }
  std::span<const SpiderLeafKey> leaf_pool_col() const {
    return borrowed_ ? b_leaf_pool_
                     : std::span<const SpiderLeafKey>(leaf_pool_);
  }
  std::span<const int64_t> anchor_offsets_col() const {
    return borrowed_ ? b_anchor_offsets_
                     : std::span<const int64_t>(anchor_offsets_);
  }
  std::span<const VertexId> anchor_pool_col() const {
    return borrowed_ ? b_anchor_pool_
                     : std::span<const VertexId>(anchor_pool_);
  }

  // Owning columns (unused in borrowed mode).
  std::vector<LabelId> head_labels_;        // size n
  std::vector<uint8_t> closed_;             // size n
  std::vector<int64_t> leaf_offsets_{0};    // size n+1
  std::vector<SpiderLeafKey> leaf_pool_;    // contiguous leaf arena
  std::vector<int64_t> anchor_offsets_{0};  // size n+1
  std::vector<VertexId> anchor_pool_;       // contiguous anchor arena

  // Borrowed columns (mmap mode; empty otherwise).
  bool borrowed_ = false;
  std::span<const LabelId> b_head_labels_;
  std::span<const uint8_t> b_closed_;
  std::span<const int64_t> b_leaf_offsets_;
  std::span<const SpiderLeafKey> b_leaf_pool_;
  std::span<const int64_t> b_anchor_offsets_;
  std::span<const VertexId> b_anchor_pool_;
};

}  // namespace spidermine
