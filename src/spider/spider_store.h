#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "pattern/pattern.h"
#include "spider/spider.h"

/// \file spider_store.h
/// Flat, arena-backed columnar storage for the mined r=1 spider set (stars):
/// the canonical Stage I representation. A star is fully determined by its
/// head label plus the sorted multiset of (edge label, leaf label) pairs, so
/// the store keeps exactly that — one contiguous leaf pool and one
/// contiguous anchor pool, with per-spider offset spans — instead of a
/// `std::vector<Spider>` of individually heap-allocated patterns, anchor
/// vectors and canonical strings. Per-spider overhead is constant (a few
/// integers), iteration is cache-linear, and shard outputs concatenate with
/// four bulk copies. The legacy `Spider` record remains the interchange type
/// for general-radius ball spiders and can be materialized on demand.

namespace spidermine {

/// A star leaf as stored: the connecting edge's label plus the leaf vertex
/// label. For edge-unlabeled graphs the edge label is always 0.
using SpiderLeafKey = std::pair<EdgeLabelId, LabelId>;

/// Columnar container of mined stars. Ids are dense [0, size()) in the
/// canonical mined order; spans stay valid until the next mutating call.
class SpiderStore {
 public:
  SpiderStore() = default;

  /// Number of spiders stored.
  int64_t size() const { return static_cast<int64_t>(head_labels_.size()); }
  bool empty() const { return head_labels_.empty(); }

  /// Head label of spider \p id.
  LabelId head_label(int32_t id) const { return head_labels_[id]; }

  /// Sorted (edge label, leaf label) pairs of spider \p id — the same
  /// multiset `Spider::LeafKeys()` returns, without materialization.
  std::span<const SpiderLeafKey> leaves(int32_t id) const {
    return {leaf_pool_.data() + leaf_offsets_[id],
            static_cast<size_t>(leaf_offsets_[id + 1] - leaf_offsets_[id])};
  }

  /// Sorted anchor vertices (head images) of spider \p id.
  std::span<const VertexId> anchors(int32_t id) const {
    return {anchor_pool_.data() + anchor_offsets_[id],
            static_cast<size_t>(anchor_offsets_[id + 1] -
                                anchor_offsets_[id])};
  }

  /// Support of spider \p id = number of distinct anchors.
  int64_t support(int32_t id) const {
    return anchor_offsets_[id + 1] - anchor_offsets_[id];
  }

  /// Closedness flag (no super-spider with the identical anchor set).
  bool closed(int32_t id) const { return closed_[id] != 0; }
  void set_closed(int32_t id, bool closed) { closed_[id] = closed ? 1 : 0; }

  /// True iff \p vertex anchors spider \p id (binary search).
  bool IsAnchoredAt(int32_t id, VertexId vertex) const;

  /// Vertex count of the star pattern: 1 + number of leaves.
  int32_t NumVerticesOf(int32_t id) const {
    return 1 + static_cast<int32_t>(leaf_offsets_[id + 1] -
                                    leaf_offsets_[id]);
  }

  /// Total anchor incidences across all spiders.
  int64_t TotalAnchors() const {
    return static_cast<int64_t>(anchor_pool_.size());
  }

  /// Heap footprint of the pools and columns, in bytes (capacity-based; the
  /// O(B) Stage I memory bound is measured against this).
  int64_t HeapBytes() const;

  /// Appends a spider; returns its id. \p leaves must be sorted
  /// non-decreasingly and \p anchors ascending.
  int32_t Append(LabelId head_label, std::span<const SpiderLeafKey> leaves,
                 std::span<const VertexId> anchors, bool closed = true);

  /// Bulk-appends the first \p count spiders of \p other in order (the
  /// admitted prefix of a shard). \p count is clamped to other.size().
  void AppendPrefix(const SpiderStore& other, int64_t count);

  /// Pre-sizes the pools (optional; Append works regardless).
  void Reserve(int64_t num_spiders, int64_t total_leaves,
               int64_t total_anchors);

  /// Reconstructs the star pattern of spider \p id (vertex 0 = head).
  Pattern PatternOf(int32_t id) const;

  /// Materializes the legacy Spider record (pattern, anchors, canonical
  /// key) for spider \p id.
  Spider Materialize(int32_t id) const;

  /// Materializes every spider, in id order.
  std::vector<Spider> MaterializeAll() const;

  /// Builds a store from star-shaped Spider records (every edge incident to
  /// vertex 0), e.g. a star miner result or hand-built test fixtures.
  static SpiderStore FromSpiders(const std::vector<Spider>& spiders);

 private:
  std::vector<LabelId> head_labels_;        // size n
  std::vector<uint8_t> closed_;             // size n
  std::vector<int64_t> leaf_offsets_{0};    // size n+1
  std::vector<SpiderLeafKey> leaf_pool_;    // contiguous leaf arena
  std::vector<int64_t> anchor_offsets_{0};  // size n+1
  std::vector<VertexId> anchor_pool_;       // contiguous anchor arena
};

}  // namespace spidermine
