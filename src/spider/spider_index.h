#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/labeled_graph.h"
#include "spider/spider.h"

/// \file spider_index.h
/// Anchor-side index over the mined spider set: Spider(v) of the paper's
/// Appendix A -- all spiders with an embedding headed at graph vertex v.
/// The growth engine consults it to find extension candidates at pattern
/// boundaries, and CheckMerge uses anchor collisions to detect patterns
/// that started sharing structure.

namespace spidermine {

/// Immutable index from graph vertices to the ids of spiders anchored there.
class SpiderIndex {
 public:
  /// Builds the index. \p spiders is borrowed and must outlive the index.
  SpiderIndex(const std::vector<Spider>* spiders, int64_t num_vertices);

  /// Ids (positions in the spider vector) of spiders anchored at \p v.
  std::span<const int32_t> SpidersAt(VertexId v) const {
    return {at_vertex_[v].data(), at_vertex_[v].size()};
  }

  /// The spider with id \p id.
  const Spider& spider(int32_t id) const { return (*spiders_)[id]; }

  /// Total number of spiders indexed.
  int64_t size() const { return static_cast<int64_t>(spiders_->size()); }

  /// Average number of spiders anchored per vertex (|S_all| / |V| of the
  /// paper's hit-probability argument).
  double AverageSpidersPerVertex() const;

 private:
  const std::vector<Spider>* spiders_;
  std::vector<std::vector<int32_t>> at_vertex_;
};

}  // namespace spidermine
