#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/labeled_graph.h"
#include "spider/spider_store.h"

/// \file spider_index.h
/// Anchor-side index over the mined spider set: Spider(v) of the paper's
/// Appendix A -- all spiders with an embedding headed at graph vertex v.
/// The growth engine consults it to find extension candidates at pattern
/// boundaries, and CheckMerge uses anchor collisions to detect patterns
/// that started sharing structure.
///
/// Stored CSR-flattened: one offset array plus one flat id array, instead
/// of a vector-of-vectors. On a massive network that removes one heap
/// allocation (and pointer chase) per graph vertex and makes the whole
/// index two contiguous arrays.

namespace spidermine {

/// Immutable CSR index from graph vertices to the ids of spiders anchored
/// there. Per-vertex id lists are ascending (build order is id order).
class SpiderIndex {
 public:
  /// Builds the index over \p store (borrowed; must outlive the index).
  SpiderIndex(const SpiderStore* store, int64_t num_vertices);

  /// Ids (positions in the store) of spiders anchored at \p v, ascending.
  std::span<const int32_t> SpidersAt(VertexId v) const {
    return {ids_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  /// The backing spider store.
  const SpiderStore& store() const { return *store_; }

  /// Total number of spiders indexed.
  int64_t size() const { return store_->size(); }

  /// Average number of spiders anchored per vertex (|S_all| / |V| of the
  /// paper's hit-probability argument).
  double AverageSpidersPerVertex() const;

 private:
  const SpiderStore* store_;
  std::vector<int64_t> offsets_;  // size num_vertices + 1
  std::vector<int32_t> ids_;      // flat anchor-incidence array
};

}  // namespace spidermine
