#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/labeled_graph.h"
#include "spider/spider_store.h"

/// \file spider_index.h
/// Anchor-side index over the mined spider set: Spider(v) of the paper's
/// Appendix A -- all spiders with an embedding headed at graph vertex v.
/// The growth engine consults it to find extension candidates at pattern
/// boundaries, and CheckMerge uses anchor collisions to detect patterns
/// that started sharing structure.
///
/// Stored CSR-flattened: one offset array plus one flat id array, instead
/// of a vector-of-vectors. On a massive network that removes one heap
/// allocation (and pointer chase) per graph vertex and makes the whole
/// index two contiguous arrays. Because it is two flat arrays, the index
/// also persists verbatim inside the `.sm2` Stage I artifact
/// (spider/spider_store_mmap.h) and can be BORROWED back as spans over the
/// mapped file — a serving replica skips the O(total anchors) rebuild
/// entirely.

namespace spidermine {

/// Immutable CSR index from graph vertices to the ids of spiders anchored
/// there. Per-vertex id lists are ascending (build order is id order).
class SpiderIndex {
 public:
  /// Builds the index over \p store (borrowed; must outlive the index).
  SpiderIndex(const SpiderStore* store, int64_t num_vertices);

  /// Adopts prebuilt CSR arrays as non-owning spans (the zero-copy mmap
  /// path). \p offsets must have num_vertices + 1 non-decreasing entries
  /// starting at 0 and ending at ids.size(); \p ids entries must be valid
  /// store ids. The backing memory (and \p store) must outlive the index.
  SpiderIndex(const SpiderStore* store, std::span<const int64_t> offsets,
              std::span<const int32_t> ids);

  /// True when the CSR arrays are borrowed spans (mmap mode).
  bool is_borrowed() const { return borrowed_; }

  /// Ids (positions in the store) of spiders anchored at \p v, ascending.
  std::span<const int32_t> SpidersAt(VertexId v) const {
    std::span<const int64_t> offsets = offsets_col();
    return ids_col().subspan(static_cast<size_t>(offsets[v]),
                             static_cast<size_t>(offsets[v + 1] -
                                                 offsets[v]));
  }

  /// The backing spider store.
  const SpiderStore& store() const { return *store_; }

  /// Total number of spiders indexed.
  int64_t size() const { return store_->size(); }

  // ---- Whole-array views (the `.sm2` writer). ----
  std::span<const int64_t> offsets() const { return offsets_col(); }
  std::span<const int32_t> ids() const { return ids_col(); }

  /// Average number of spiders anchored per vertex (|S_all| / |V| of the
  /// paper's hit-probability argument).
  double AverageSpidersPerVertex() const;

 private:
  std::span<const int64_t> offsets_col() const {
    return borrowed_ ? b_offsets_ : std::span<const int64_t>(offsets_);
  }
  std::span<const int32_t> ids_col() const {
    return borrowed_ ? b_ids_ : std::span<const int32_t>(ids_);
  }

  const SpiderStore* store_;
  std::vector<int64_t> offsets_;  // size num_vertices + 1 (owning mode)
  std::vector<int32_t> ids_;      // flat anchor-incidence array (owning)
  bool borrowed_ = false;
  std::span<const int64_t> b_offsets_;
  std::span<const int32_t> b_ids_;
};

}  // namespace spidermine
