#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "common/mapped_file.h"
#include "common/result.h"
#include "spider/spider_index.h"
#include "spider/spider_store.h"
#include "spider/spider_store_io.h"

/// \file spider_store_mmap.h
/// The zero-copy on-disk Stage I artifact: format `.sm2` (magic "SMS2").
///
/// The legacy `.sm1` format (spider_store_io.h) deserializes through a
/// copy — every integer is decoded and re-appended, so a serving replica
/// pays seconds of CPU and a full heap copy per multi-GB store. `.sm2`
/// instead lays the store's columns (and the CSR anchor index) on disk
/// exactly as they live in memory: fixed-width little-endian arrays,
/// each section start padded to 64-byte alignment, so loading is an
/// `mmap` + header check and the arrays are used in place via the
/// borrowed-span modes of SpiderStore/SpiderIndex. N replicas on one box
/// then share one page-cache copy instead of N heap copies.
///
/// File layout (all integers little-endian):
///
///   [0..3]    magic "SMS2"          [4..7]   uint32 version (= 1)
///   [8..11]   uint32 section count  [12..15] uint32 reserved (0)
///   [16..]    section table: per section 32 bytes
///               uint32 kind, uint32 reserved,
///               uint64 offset, uint64 length, uint32 crc32, uint32 reserved
///   [..+4]    uint32 header CRC-32 (over everything above it)
///   (zero padding to the first 64-byte boundary)
///   sections, each starting 64-byte aligned, zero padding between them;
///   the file ends EXACTLY at the last section's end (no trailing pad), so
///   every non-padding byte is covered by exactly one section CRC.
///
/// Sections, in fixed order (kind = index):
///   0 meta            fixed-width Stage1Meta + n/total_leaves/total_anchors
///   1 head_labels     n x int32
///   2 closed          n x uint8
///   3 leaf_offsets    (n+1) x int64
///   4 leaf_pool       total_leaves x {int32 edge label, int32 leaf label}
///   5 anchor_offsets  (n+1) x int64
///   6 anchor_pool     total_anchors x int32
///   7 index_offsets   (num_graph_vertices+1) x int64   (CSR SpiderIndex)
///   8 index_ids       total_anchors x int32
///
/// Validation contract: `Open` checks the header CRC, the section-table
/// geometry (order, alignment, bounds, exact file end) and the meta
/// section, and structurally validates the three offset arrays
/// (monotonic, 0-based, ending at the pool sizes) — everything needed so
/// no span handed out can read out of bounds. The bulk pool sections are
/// CRC-validated LAZILY, on the first call to `EnsureValidated()`
/// (MiningSession invokes it before the first query touches the data),
/// so opening a cold multi-GB artifact stays in the milliseconds.
///
/// The format is little-endian only: on a big-endian host `Open` refuses
/// `.sm2` files and `MiningSession::SaveStage1` falls back to the
/// portable legacy `.sm1` writer.

namespace spidermine {

inline constexpr char kSm2Magic[4] = {'S', 'M', 'S', '2'};
inline constexpr uint32_t kSm2FormatVersion = 1;
inline constexpr uint32_t kSm2SectionCount = 9;
inline constexpr size_t kSm2SectionAlign = 64;

/// True when this host can read/write `.sm2` in place (little-endian).
constexpr bool Sm2HostSupported() {
  return std::endian::native == std::endian::little;
}

// The on-disk arrays are reused in place, so the element types must have
// the exact width and layout the format promises.
static_assert(sizeof(LabelId) == 4 && sizeof(VertexId) == 4);
static_assert(sizeof(SpiderLeafKey) == 8 &&
                  std::is_standard_layout_v<SpiderLeafKey>,
              "SpiderLeafKey must be two packed int32s for the .sm2 layout");

/// Serializes \p store + \p index + \p meta to `.sm2` bytes.
/// Deterministic: identical inputs produce identical bytes.
std::string Stage1ToSm2Bytes(const SpiderStore& store,
                             const SpiderIndex& index,
                             const Stage1Meta& meta);

/// Writes the `.sm2` artifact to \p path. Overwrites.
Status SaveStage1Sm2(const SpiderStore& store, const SpiderIndex& index,
                     const Stage1Meta& meta, const std::string& path);

/// An opened `.sm2` artifact: owns the mapping and exposes a borrowed-span
/// SpiderStore/SpiderIndex over it. Immutable after Open; EnsureValidated
/// is thread-safe and may be called concurrently.
class MappedStage1 {
 public:
  /// Opens and eagerly validates the header, section geometry, meta and
  /// offset arrays (see the file comment). kIoError on any mismatch.
  static Result<std::unique_ptr<MappedStage1>> Open(const std::string& path);

  /// The artifact's provenance (mining parameters, graph identity).
  const Stage1Meta& meta() const { return meta_; }

  /// The spider store, borrowing the mapped columns. Valid for the
  /// lifetime of this object.
  const SpiderStore& store() const { return store_; }

  /// The CSR anchor index, borrowing the mapped arrays.
  const SpiderIndex& index() const { return *index_; }

  /// True when the bytes are an actual mmap (page-cache shared) rather
  /// than MappedFile's heap-buffer fallback.
  bool is_mapped() const { return file_.is_mapped(); }

  /// Bytes of the mapped artifact.
  int64_t file_bytes() const { return static_cast<int64_t>(file_.size()); }

  /// First-touch validation of the bulk sections: CRC-32 of every data
  /// section plus range checks of the pool contents (anchors inside the
  /// declared graph, index ids inside the store, per-spider sortedness).
  /// Runs once; later calls return the cached Status. Thread-safe.
  Status EnsureValidated() const;

 private:
  struct Section {
    uint32_t kind = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
    uint32_t crc = 0;
  };

  MappedStage1() = default;

  Status ValidateLazySections() const;

  MappedFile file_;
  Stage1Meta meta_;
  std::vector<Section> sections_;
  SpiderStore store_;  // borrowed-span mode over file_
  std::unique_ptr<SpiderIndex> index_;  // borrowed-span mode over file_

  mutable std::once_flag validate_once_;
  mutable Status validate_status_;
};

}  // namespace spidermine
