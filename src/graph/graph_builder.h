#pragma once

#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"

/// \file graph_builder.h
/// Mutable construction of LabeledGraph. All generators and loaders funnel
/// through this builder, which validates labels and deduplicates edges.

namespace spidermine {

/// Accumulates vertices and edges, then produces an immutable LabeledGraph.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Adds one vertex with \p label, returning its id.
  VertexId AddVertex(LabelId label);

  /// Adds \p count vertices with \p label; returns the first new id.
  VertexId AddVertices(int64_t count, LabelId label);

  /// Adds the undirected edge {u, v} carrying \p edge_label (0 = unlabeled).
  /// Self-loops and duplicate edges are ignored (the graphs of the paper
  /// are simple); for duplicates the first-added label wins.
  void AddEdge(VertexId u, VertexId v, EdgeLabelId edge_label = 0);

  /// Overwrites the label of an existing vertex (used by pattern injection).
  void SetLabel(VertexId v, LabelId label);

  /// Label currently assigned to \p v.
  LabelId Label(VertexId v) const { return labels_[v]; }

  /// Number of vertices added so far.
  int64_t NumVertices() const { return static_cast<int64_t>(labels_.size()); }

  /// Number of (possibly not yet deduplicated) edge records added so far.
  int64_t NumEdgeRecords() const { return static_cast<int64_t>(edges_.size()); }

  /// True iff the undirected edge {u, v} was added (linear scan per vertex;
  /// generators that need fast membership keep their own sets).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Validates and freezes the graph. Fails with kInvalidArgument when an
  /// edge references a vertex that was never added or a label is negative.
  Result<LabeledGraph> Build() const;

 private:
  struct EdgeRecord {
    VertexId u;
    VertexId v;
    EdgeLabelId label;
  };

  std::vector<LabelId> labels_;
  std::vector<EdgeRecord> edges_;
};

}  // namespace spidermine
