#include "graph/bfs.h"

#include <deque>
#include <unordered_map>

namespace spidermine {

std::vector<int32_t> BfsDistances(const LabeledGraph& graph, VertexId source,
                                  int32_t max_depth) {
  std::vector<int32_t> dist(static_cast<size_t>(graph.NumVertices()), -1);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    if (max_depth >= 0 && dist[v] >= max_depth) continue;
    for (VertexId u : graph.Neighbors(v)) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

std::vector<VertexId> BfsBall(const LabeledGraph& graph, VertexId center,
                              int32_t radius) {
  // Local frontier expansion with a hash map of distances, so the cost is
  // proportional to the ball, not to |V(G)|.
  std::vector<VertexId> ball{center};
  std::unordered_map<VertexId, int32_t> dist{{center, 0}};
  size_t head = 0;
  while (head < ball.size()) {
    VertexId v = ball[head++];
    int32_t dv = dist[v];
    if (dv >= radius) continue;
    for (VertexId u : graph.Neighbors(v)) {
      if (dist.emplace(u, dv + 1).second) ball.push_back(u);
    }
  }
  return ball;
}

ComponentDecomposition ConnectedComponents(const LabeledGraph& graph) {
  ComponentDecomposition out;
  out.component.assign(static_cast<size_t>(graph.NumVertices()), -1);
  std::deque<VertexId> queue;
  for (VertexId s = 0; s < graph.NumVertices(); ++s) {
    if (out.component[s] >= 0) continue;
    out.component[s] = out.count;
    queue.push_back(s);
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop_front();
      for (VertexId u : graph.Neighbors(v)) {
        if (out.component[u] < 0) {
          out.component[u] = out.count;
          queue.push_back(u);
        }
      }
    }
    ++out.count;
  }
  return out;
}

}  // namespace spidermine
