#pragma once

#include <string>

#include "common/result.h"
#include "graph/labeled_graph.h"
#include "pattern/pattern.h"

/// \file binary_io.h
/// Versioned, checksummed binary persistence for graphs and patterns.
///
/// Layout (all integers little-endian; framing in graph/binary_format.h):
///
///   [0..3]   magic "SMG1" (graph) or "SMP1" (pattern)
///   [4..7]   uint32 format version (currently 2)
///   [8..15]  uint64 payload byte length
///   [16..19] uint32 CRC-32 of the payload
///   [20.. ]  payload
///
/// Graph payload: uint64 n, uint64 m, n x int32 labels, m x (int32, int32,
/// int32) edge endpoints + edge label. Pattern payload is identical with
/// 32-bit counts. Loads
/// verify magic, version, length and CRC before decoding and fail with
/// kIoError on any mismatch, so truncated or corrupted files are never
/// silently accepted. Stage I spider-store artifacts share the same
/// framing; their codec lives with the store (spider/spider_store_io.h).

namespace spidermine {

/// Writes \p graph to \p path in the binary format. Overwrites.
Status SaveGraphBinary(const LabeledGraph& graph, const std::string& path);

/// Loads a graph written by SaveGraphBinary.
Result<LabeledGraph> LoadGraphBinary(const std::string& path);

/// Serializes \p graph to an in-memory byte string (header + payload).
std::string GraphToBinary(const LabeledGraph& graph);

/// Decodes a byte string produced by GraphToBinary.
Result<LabeledGraph> GraphFromBinary(const std::string& bytes);

/// Writes \p pattern to \p path in the binary format. Overwrites.
Status SavePatternBinary(const Pattern& pattern, const std::string& path);

/// Loads a pattern written by SavePatternBinary.
Result<Pattern> LoadPatternBinary(const std::string& path);

/// Serializes \p pattern to an in-memory byte string.
std::string PatternToBinary(const Pattern& pattern);

/// Decodes a byte string produced by PatternToBinary.
Result<Pattern> PatternFromBinary(const std::string& bytes);

}  // namespace spidermine
