#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>

#include "common/crc32.h"
#include "common/result.h"
#include "common/strings.h"

/// \file binary_format.h
/// The shared framing of every spidermine binary file format — the
/// versioned, checksummed envelope graph/binary_io.h documents:
///
///   [0..3]   4-byte magic   [4..7] uint32 version
///   [8..15]  uint64 payload length   [16..19] uint32 payload CRC-32
///   [20.. ]  payload (little-endian integers)
///
/// Codecs for concrete types live next to those types (graphs and patterns
/// in graph/binary_io, the Stage I spider store in spider/spider_store_io)
/// and share these helpers, so the graph layer never depends upward. Each
/// codec owns its version number (passed with the magic), so evolving one
/// format never invalidates saved files of the others.

namespace spidermine::binary_format {

constexpr size_t kHeaderSize = 20;

inline void AppendU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

inline void AppendU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

inline void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

inline void AppendI32(std::string* out, int32_t value) {
  AppendU32(out, static_cast<uint32_t>(value));
}

inline void AppendI64(std::string* out, int64_t value) {
  AppendU64(out, static_cast<uint64_t>(value));
}

/// Bounds-checked little-endian reader over a byte string.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* out) {
    if (pos_ + 1 > bytes_.size()) return false;
    *out = static_cast<uint8_t>(bytes_[pos_]);
    ++pos_;
    return true;
  }

  bool ReadU32(uint32_t* out) {
    if (pos_ + 4 > bytes_.size()) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  bool ReadU64(uint64_t* out) {
    if (pos_ + 8 > bytes_.size()) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return true;
  }

  bool ReadI32(int32_t* out) {
    uint32_t v = 0;
    if (!ReadU32(&v)) return false;
    *out = static_cast<int32_t>(v);
    return true;
  }

  bool ReadI64(int64_t* out) {
    uint64_t v = 0;
    if (!ReadU64(&v)) return false;
    *out = static_cast<int64_t>(v);
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

inline std::string WrapPayload(const char magic[4],
                               const std::string& payload,
                               uint32_t format_version) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(magic, 4);
  AppendU32(&out, format_version);
  AppendU64(&out, payload.size());
  AppendU32(&out, Crc32(payload));
  out += payload;
  return out;
}

/// Validates header framing (against the codec's own \p format_version)
/// and returns the payload view.
inline Result<std::string_view> UnwrapPayload(const std::string& bytes,
                                              const char magic[4],
                                              uint32_t format_version) {
  if (bytes.size() < kHeaderSize) {
    return Status::IoError(StrCat("file too short: ", bytes.size(),
                                  " bytes < ", kHeaderSize, "-byte header"));
  }
  if (std::memcmp(bytes.data(), magic, 4) != 0) {
    return Status::IoError(
        StrCat("bad magic; expected ", std::string(magic, 4)));
  }
  Reader header(std::string_view(bytes).substr(4, kHeaderSize - 4));
  uint32_t version = 0, crc = 0;
  uint64_t length = 0;
  header.ReadU32(&version);
  header.ReadU64(&length);
  header.ReadU32(&crc);
  if (version != format_version) {
    return Status::IoError(StrCat("unsupported format version ", version));
  }
  if (bytes.size() != kHeaderSize + length) {
    return Status::IoError(StrCat("length mismatch: header says ", length,
                                  " payload bytes, file has ",
                                  bytes.size() - kHeaderSize));
  }
  std::string_view payload = std::string_view(bytes).substr(kHeaderSize);
  if (Crc32(payload) != crc) {
    return Status::IoError("payload checksum mismatch (corrupted file)");
  }
  return payload;
}

inline Status WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError(StrCat("cannot open '", path, "' for writing"));
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    return Status::IoError(StrCat("short write to '", path, "'"));
  }
  return Status::Ok();
}

/// Reads the first four bytes of \p path (the format magic) without
/// loading the file, so callers can dispatch between codecs. Empty string
/// when the file is missing or shorter than four bytes.
inline std::string PeekMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4];
  if (!in || !in.read(magic, 4)) return std::string();
  return std::string(magic, 4);
}

inline Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError(StrCat("cannot open '", path, "' for reading"));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IoError(StrCat("read error on '", path, "'"));
  }
  return bytes;
}

}  // namespace spidermine::binary_format
