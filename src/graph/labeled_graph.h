#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

/// \file labeled_graph.h
/// The input-network representation: an immutable vertex-labeled undirected
/// graph in CSR form. This is the "single massive network" G of the paper;
/// patterns (small mutable graphs) live in pattern/pattern.h.

namespace spidermine {

/// Index of a vertex in a LabeledGraph.
using VertexId = int32_t;
/// Integer vertex label (the paper's Sigma = {l1, ..., lk}).
using LabelId = int32_t;
/// Integer edge label. The paper notes its method "can also be applied to
/// graphs with edge labels" (Sec. 3); label 0 is the default for unlabeled
/// edges, so vertex-label-only code paths are unchanged.
using EdgeLabelId = int32_t;

/// An immutable undirected graph whose vertices (and optionally edges)
/// carry labels.
///
/// Neighbor lists are sorted, enabling O(log d) HasEdge and linear-time
/// sorted-merge operations. Construct via GraphBuilder.
class LabeledGraph {
 public:
  LabeledGraph() = default;

  /// Number of vertices |V(G)|.
  int64_t NumVertices() const {
    return static_cast<int64_t>(labels_.size());
  }

  /// Number of undirected edges |E(G)|.
  int64_t NumEdges() const { return num_edges_; }

  /// Label of vertex \p v.
  LabelId Label(VertexId v) const { return labels_[v]; }

  /// Degree of vertex \p v.
  int64_t Degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Sorted neighbors of vertex \p v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {neighbors_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  /// True iff the undirected edge {u, v} exists.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Label of the undirected edge {u, v}; 0 for unlabeled edges. Requires
  /// the edge to exist (returns -1 otherwise).
  EdgeLabelId EdgeLabel(VertexId u, VertexId v) const;

  /// True iff any edge carries a nonzero label.
  bool HasEdgeLabels() const { return has_edge_labels_; }

  /// One plus the largest label id present (labels are dense ids from 0).
  LabelId NumLabels() const { return num_labels_; }

  /// All vertices carrying label \p label (sorted ascending).
  std::span<const VertexId> VerticesWithLabel(LabelId label) const {
    return {by_label_.data() + label_offsets_[label],
            static_cast<size_t>(label_offsets_[label + 1] -
                                label_offsets_[label])};
  }

  /// Count of vertices carrying label \p label.
  int64_t LabelCount(LabelId label) const {
    return label_offsets_[label + 1] - label_offsets_[label];
  }

  /// Deterministic 64-bit content hash over vertex labels, adjacency and
  /// edge labels (FNV-1a). Two graphs with equal hashes are equal with
  /// overwhelming probability; used to bind saved Stage I artifacts to
  /// the exact network they were mined over.
  uint64_t ContentHash() const;

 private:
  friend class GraphBuilder;

  std::vector<int64_t> offsets_;    // size n+1
  std::vector<VertexId> neighbors_; // size 2m, sorted per vertex
  std::vector<EdgeLabelId> edge_labels_;  // size 2m, aligned with neighbors_
  std::vector<LabelId> labels_;     // size n
  bool has_edge_labels_ = false;
  std::vector<int64_t> label_offsets_;  // size num_labels_+1
  std::vector<VertexId> by_label_;      // vertices grouped by label
  int64_t num_edges_ = 0;
  LabelId num_labels_ = 0;
};

}  // namespace spidermine
