#include "graph/graph_builder.h"

#include <algorithm>
#include <tuple>

#include "common/strings.h"

namespace spidermine {

VertexId GraphBuilder::AddVertex(LabelId label) {
  labels_.push_back(label);
  return static_cast<VertexId>(labels_.size() - 1);
}

VertexId GraphBuilder::AddVertices(int64_t count, LabelId label) {
  VertexId first = static_cast<VertexId>(labels_.size());
  labels_.insert(labels_.end(), static_cast<size_t>(count), label);
  return first;
}

void GraphBuilder::AddEdge(VertexId u, VertexId v, EdgeLabelId edge_label) {
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.push_back(EdgeRecord{u, v, edge_label});
}

void GraphBuilder::SetLabel(VertexId v, LabelId label) { labels_[v] = label; }

bool GraphBuilder::HasEdge(VertexId u, VertexId v) const {
  if (u > v) std::swap(u, v);
  return std::any_of(edges_.begin(), edges_.end(),
                     [u, v](const EdgeRecord& e) {
                       return e.u == u && e.v == v;
                     });
}

Result<LabeledGraph> GraphBuilder::Build() const {
  const int64_t n = NumVertices();
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] < 0) {
      return Status::InvalidArgument(
          StrCat("vertex ", i, " has negative label ", labels_[i]));
    }
  }
  for (const EdgeRecord& e : edges_) {
    if (e.u < 0 || e.v < 0 || e.u >= n || e.v >= n) {
      return Status::InvalidArgument(StrCat("edge (", e.u, ",", e.v,
                                            ") references missing vertex; n=",
                                            n));
    }
    if (e.label < 0) {
      return Status::InvalidArgument(StrCat("edge (", e.u, ",", e.v,
                                            ") has negative label ", e.label));
    }
  }

  // Dedup edges by endpoints; stable sort keeps the first-added label.
  std::vector<EdgeRecord> edges = edges_;
  std::stable_sort(edges.begin(), edges.end(),
                   [](const EdgeRecord& a, const EdgeRecord& b) {
                     return std::tie(a.u, a.v) < std::tie(b.u, b.v);
                   });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const EdgeRecord& a, const EdgeRecord& b) {
                            return a.u == b.u && a.v == b.v;
                          }),
              edges.end());

  LabeledGraph g;
  g.labels_ = labels_;
  g.num_edges_ = static_cast<int64_t>(edges.size());
  g.has_edge_labels_ = std::any_of(edges.begin(), edges.end(),
                                   [](const EdgeRecord& e) {
                                     return e.label != 0;
                                   });

  // Degree counting pass, then CSR fill (neighbors and edge labels in
  // lockstep so edge_labels_[i] belongs to neighbors_[i]).
  std::vector<int64_t> degree(static_cast<size_t>(n), 0);
  for (const EdgeRecord& e : edges) {
    ++degree[e.u];
    ++degree[e.v];
  }
  g.offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (int64_t i = 0; i < n; ++i) g.offsets_[i + 1] = g.offsets_[i] + degree[i];
  g.neighbors_.resize(static_cast<size_t>(g.offsets_[n]));
  if (g.has_edge_labels_) {
    g.edge_labels_.resize(g.neighbors_.size());
  }
  std::vector<int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const EdgeRecord& e : edges) {
    if (g.has_edge_labels_) {
      g.edge_labels_[static_cast<size_t>(cursor[e.u])] = e.label;
    }
    g.neighbors_[cursor[e.u]++] = e.v;
  }
  for (const EdgeRecord& e : edges) {
    if (g.has_edge_labels_) {
      g.edge_labels_[static_cast<size_t>(cursor[e.v])] = e.label;
    }
    g.neighbors_[cursor[e.v]++] = e.u;
  }
  // Sort each adjacency row, keeping edge labels aligned.
  for (int64_t i = 0; i < n; ++i) {
    const int64_t begin = g.offsets_[i];
    const int64_t end = g.offsets_[i + 1];
    if (!g.has_edge_labels_) {
      std::sort(g.neighbors_.begin() + begin, g.neighbors_.begin() + end);
      continue;
    }
    std::vector<std::pair<VertexId, EdgeLabelId>> row;
    row.reserve(static_cast<size_t>(end - begin));
    for (int64_t p = begin; p < end; ++p) {
      row.emplace_back(g.neighbors_[p], g.edge_labels_[p]);
    }
    std::sort(row.begin(), row.end());
    for (int64_t p = begin; p < end; ++p) {
      g.neighbors_[p] = row[static_cast<size_t>(p - begin)].first;
      g.edge_labels_[p] = row[static_cast<size_t>(p - begin)].second;
    }
  }

  // Label index.
  LabelId num_labels = 0;
  for (LabelId l : g.labels_) num_labels = std::max(num_labels, l + 1);
  g.num_labels_ = num_labels;
  std::vector<int64_t> label_count(static_cast<size_t>(num_labels), 0);
  for (LabelId l : g.labels_) ++label_count[l];
  g.label_offsets_.assign(static_cast<size_t>(num_labels) + 1, 0);
  for (LabelId l = 0; l < num_labels; ++l) {
    g.label_offsets_[l + 1] = g.label_offsets_[l] + label_count[l];
  }
  g.by_label_.resize(g.labels_.size());
  std::vector<int64_t> lcursor(g.label_offsets_.begin(),
                               g.label_offsets_.end() - 1);
  for (int64_t v = 0; v < n; ++v) {
    g.by_label_[lcursor[g.labels_[v]]++] = static_cast<VertexId>(v);
  }
  return g;
}

}  // namespace spidermine
