#pragma once

#include <istream>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"

/// \file graph_io.h
/// Plain-text persistence in the LG-style format used by the graph-mining
/// community:
///
///   # optional comments
///   v <vertex-id> <label>
///   e <u> <v>
///
/// Vertex ids must be dense 0..n-1; edges are undirected.

namespace spidermine {

/// Writes \p graph to \p path. Overwrites any existing file.
Status SaveGraphText(const LabeledGraph& graph, const std::string& path);

/// Reads a graph previously written by SaveGraphText (or hand-authored in
/// the same format).
Result<LabeledGraph> LoadGraphText(const std::string& path);

/// Parses the LG format from an in-memory string (used by tests).
Result<LabeledGraph> ParseGraphText(const std::string& text);

/// Serializes to the LG format (inverse of ParseGraphText).
std::string GraphToText(const LabeledGraph& graph);

/// Everything the graph partitioner (graph/graph_partition.h) needs to cut
/// vertex ranges, gathered in ONE pass over an LG text file with O(n)
/// memory — per-vertex degrees and the label histogram, but no adjacency.
/// This is the out-of-core entry point: partition boundaries for a graph
/// that does not fit in RAM come from this scan, not from a loaded
/// LabeledGraph.
struct StreamingGraphScan {
  int64_t num_vertices = 0;
  /// Edge records seen (self-loops skipped, like GraphBuilder). Duplicate
  /// edge records cannot be detected without adjacency and are counted;
  /// files written by SaveGraphText never contain them.
  int64_t num_edges = 0;
  /// Degree of each vertex (size num_vertices).
  std::vector<int64_t> degrees;
  /// Vertices per label (size = one past the largest label id).
  std::vector<int64_t> label_histogram;
};

/// Runs the streaming scan over \p path / an open stream. Enforces the
/// same record grammar as LoadGraphText (dense in-order vertex ids, edges
/// only between declared vertices); kIoError with the offending line
/// otherwise.
Result<StreamingGraphScan> ScanGraphTextStreaming(const std::string& path);
Result<StreamingGraphScan> ScanGraphTextStream(std::istream& in);

}  // namespace spidermine
