#pragma once

#include <string>

#include "common/result.h"
#include "graph/labeled_graph.h"

/// \file graph_io.h
/// Plain-text persistence in the LG-style format used by the graph-mining
/// community:
///
///   # optional comments
///   v <vertex-id> <label>
///   e <u> <v>
///
/// Vertex ids must be dense 0..n-1; edges are undirected.

namespace spidermine {

/// Writes \p graph to \p path. Overwrites any existing file.
Status SaveGraphText(const LabeledGraph& graph, const std::string& path);

/// Reads a graph previously written by SaveGraphText (or hand-authored in
/// the same format).
Result<LabeledGraph> LoadGraphText(const std::string& path);

/// Parses the LG format from an in-memory string (used by tests).
Result<LabeledGraph> ParseGraphText(const std::string& text);

/// Serializes to the LG format (inverse of ParseGraphText).
std::string GraphToText(const LabeledGraph& graph);

}  // namespace spidermine
