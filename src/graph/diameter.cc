#include "graph/diameter.h"

#include <algorithm>

#include "graph/bfs.h"

namespace spidermine {

int32_t Eccentricity(const LabeledGraph& graph, VertexId v) {
  std::vector<int32_t> dist = BfsDistances(graph, v);
  int32_t ecc = 0;
  for (int32_t d : dist) ecc = std::max(ecc, d);
  return ecc;
}

int32_t ExactDiameter(const LabeledGraph& graph) {
  int32_t diameter = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    diameter = std::max(diameter, Eccentricity(graph, v));
  }
  return diameter;
}

double EffectiveDiameter(const LabeledGraph& graph, double percentile,
                         int32_t num_sources, Rng* rng) {
  const int64_t n = graph.NumVertices();
  if (n < 2) return 0.0;
  std::vector<int32_t> distances;
  std::vector<size_t> sources = rng->SampleWithoutReplacement(
      static_cast<size_t>(n),
      static_cast<size_t>(std::min<int64_t>(num_sources, n)));
  for (size_t s : sources) {
    std::vector<int32_t> dist =
        BfsDistances(graph, static_cast<VertexId>(s));
    for (int32_t d : dist) {
      if (d > 0) distances.push_back(d);
    }
  }
  if (distances.empty()) return 0.0;
  std::sort(distances.begin(), distances.end());
  size_t idx = static_cast<size_t>(percentile *
                                   static_cast<double>(distances.size() - 1));
  return static_cast<double>(distances[idx]);
}

}  // namespace spidermine
