#include "graph/labeled_graph.h"

#include <algorithm>

namespace spidermine {

bool LabeledGraph::HasEdge(VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= NumVertices() || v >= NumVertices()) return false;
  // Search in the shorter adjacency list.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

EdgeLabelId LabeledGraph::EdgeLabel(VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= NumVertices() || v >= NumVertices()) return -1;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return -1;
  if (!has_edge_labels_) return 0;
  return edge_labels_[static_cast<size_t>(
      offsets_[u] + (it - nbrs.begin()))];
}

uint64_t LabeledGraph::ContentHash() const {
  // FNV-1a over the canonical CSR content. Hashing int64 words directly
  // (rather than serialized bytes) keeps this allocation-free: the hash
  // binds an artifact to its graph, so it runs on every save AND load.
  uint64_t hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](uint64_t word) {
    hash ^= word;
    hash *= 0x100000001b3ULL;
  };
  mix(static_cast<uint64_t>(NumVertices()));
  mix(static_cast<uint64_t>(num_edges_));
  for (LabelId label : labels_) mix(static_cast<uint64_t>(label));
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (int64_t i = offsets_[u]; i < offsets_[u + 1]; ++i) {
      const VertexId v = neighbors_[static_cast<size_t>(i)];
      if (u >= v) continue;  // each undirected edge once
      mix((static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
          static_cast<uint32_t>(v));
      mix(has_edge_labels_
              ? static_cast<uint64_t>(edge_labels_[static_cast<size_t>(i)])
              : 0);
    }
  }
  return hash;
}

}  // namespace spidermine
