#include "graph/labeled_graph.h"

#include <algorithm>

namespace spidermine {

bool LabeledGraph::HasEdge(VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= NumVertices() || v >= NumVertices()) return false;
  // Search in the shorter adjacency list.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

EdgeLabelId LabeledGraph::EdgeLabel(VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= NumVertices() || v >= NumVertices()) return -1;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return -1;
  if (!has_edge_labels_) return 0;
  return edge_labels_[static_cast<size_t>(
      offsets_[u] + (it - nbrs.begin()))];
}

}  // namespace spidermine
