#include "graph/graph_io.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "graph/graph_builder.h"

namespace spidermine {

namespace {

Result<LabeledGraph> ParseStream(std::istream& in) {
  GraphBuilder builder;
  std::string line;
  int64_t line_no = 0;
  int64_t next_vertex = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::istringstream fields{std::string(stripped)};
    char kind = 0;
    fields >> kind;
    if (kind == 'v') {
      int64_t id = -1;
      int64_t label = -1;
      fields >> id >> label;
      if (fields.fail() || id != next_vertex) {
        return Status::IoError(
            StrCat("line ", line_no, ": expected 'v ", next_vertex,
                   " <label>', got '", stripped, "'"));
      }
      builder.AddVertex(static_cast<LabelId>(label));
      ++next_vertex;
    } else if (kind == 'e') {
      int64_t u = -1;
      int64_t v = -1;
      fields >> u >> v;
      if (fields.fail()) {
        return Status::IoError(
            StrCat("line ", line_no, ": malformed edge '", stripped, "'"));
      }
      // Optional third field: the edge label (0 when omitted).
      int64_t edge_label = 0;
      fields >> edge_label;
      if (fields.fail()) edge_label = 0;
      builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v),
                      static_cast<EdgeLabelId>(edge_label));
    } else {
      return Status::IoError(
          StrCat("line ", line_no, ": unknown record '", stripped, "'"));
    }
  }
  return builder.Build();
}

}  // namespace

Status SaveGraphText(const LabeledGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError(StrCat("cannot open for write: ", path));
  out << GraphToText(graph);
  if (!out) return Status::IoError(StrCat("write failed: ", path));
  return Status::Ok();
}

Result<LabeledGraph> LoadGraphText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError(StrCat("cannot open for read: ", path));
  return ParseStream(in);
}

Result<LabeledGraph> ParseGraphText(const std::string& text) {
  std::istringstream in(text);
  return ParseStream(in);
}

Result<StreamingGraphScan> ScanGraphTextStream(std::istream& in) {
  StreamingGraphScan scan;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::istringstream fields{std::string(stripped)};
    char kind = 0;
    fields >> kind;
    if (kind == 'v') {
      int64_t id = -1;
      int64_t label = -1;
      fields >> id >> label;
      if (fields.fail() || id != scan.num_vertices || label < 0) {
        return Status::IoError(
            StrCat("line ", line_no, ": expected 'v ", scan.num_vertices,
                   " <label>', got '", stripped, "'"));
      }
      if (static_cast<int64_t>(scan.label_histogram.size()) <= label) {
        scan.label_histogram.resize(static_cast<size_t>(label) + 1, 0);
      }
      ++scan.label_histogram[static_cast<size_t>(label)];
      scan.degrees.push_back(0);
      ++scan.num_vertices;
    } else if (kind == 'e') {
      int64_t u = -1;
      int64_t v = -1;
      fields >> u >> v;
      if (fields.fail() || u < 0 || v < 0 || u >= scan.num_vertices ||
          v >= scan.num_vertices) {
        return Status::IoError(
            StrCat("line ", line_no, ": malformed edge '", stripped, "'"));
      }
      if (u == v) continue;  // self-loops are dropped, like GraphBuilder
      ++scan.degrees[static_cast<size_t>(u)];
      ++scan.degrees[static_cast<size_t>(v)];
      ++scan.num_edges;
    } else {
      return Status::IoError(
          StrCat("line ", line_no, ": unknown record '", stripped, "'"));
    }
  }
  return scan;
}

Result<StreamingGraphScan> ScanGraphTextStreaming(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError(StrCat("cannot open for read: ", path));
  return ScanGraphTextStream(in);
}

std::string GraphToText(const LabeledGraph& graph) {
  std::ostringstream out;
  out << "# spidermine graph: " << graph.NumVertices() << " vertices, "
      << graph.NumEdges() << " edges\n";
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    out << "v " << v << " " << graph.Label(v) << "\n";
  }
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (VertexId u : graph.Neighbors(v)) {
      if (v >= u) continue;
      out << "e " << v << " " << u;
      if (graph.HasEdgeLabels()) out << " " << graph.EdgeLabel(v, u);
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace spidermine
