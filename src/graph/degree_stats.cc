#include "graph/degree_stats.h"

#include <algorithm>

namespace spidermine {

DegreeStats ComputeDegreeStats(const LabeledGraph& graph) {
  DegreeStats stats;
  const int64_t n = graph.NumVertices();
  if (n == 0) return stats;
  stats.min = graph.Degree(0);
  int64_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    int64_t d = graph.Degree(v);
    total += d;
    stats.max = std::max(stats.max, d);
    stats.min = std::min(stats.min, d);
  }
  stats.average = static_cast<double>(total) / static_cast<double>(n);
  stats.histogram.assign(static_cast<size_t>(stats.max) + 1, 0);
  for (VertexId v = 0; v < n; ++v) ++stats.histogram[graph.Degree(v)];
  return stats;
}

std::vector<int64_t> LabelHistogram(const LabeledGraph& graph) {
  std::vector<int64_t> hist(static_cast<size_t>(graph.NumLabels()), 0);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) ++hist[graph.Label(v)];
  return hist;
}

}  // namespace spidermine
