#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/labeled_graph.h"

/// \file graph_metrics.h
/// Descriptive statistics of an input network. The paper motivates its
/// parameters from exactly these quantities (degree distribution for the
/// scale-free experiments, label skew for DBLP, effective diameter for
/// Dmax), so the library exposes them both programmatically and through the
/// `stats` CLI subcommand.

namespace spidermine {

// Degree and label histograms live in graph/degree_stats.h; this header
// adds the structural metrics built on top of them.

/// Number of triangles (3-cycles) in the graph, each counted once.
/// Neighbor-intersection over sorted adjacency; O(sum_v deg(v)^2) worst
/// case, fine for the evaluation scales.
int64_t CountTriangles(const LabeledGraph& graph);

/// Global clustering coefficient: 3 * triangles / #open-or-closed wedges.
/// Returns 0 for graphs without wedges.
double GlobalClusteringCoefficient(const LabeledGraph& graph);

/// Average of per-vertex local clustering coefficients; vertices of degree
/// < 2 contribute 0 (the common convention).
double AverageLocalClustering(const LabeledGraph& graph);

/// Sizes of connected components, sorted descending.
std::vector<int64_t> ComponentSizes(const LabeledGraph& graph);

/// All-in-one summary used by tools and experiment logs.
struct GraphSummary {
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  int32_t num_labels = 0;
  double avg_degree = 0.0;
  int64_t max_degree = 0;
  int64_t num_components = 0;
  int64_t largest_component = 0;
  int64_t triangles = 0;
  double global_clustering = 0.0;
  /// 90th-percentile effective diameter of the largest component, estimated
  /// from sampled BFS sources (the HADI-style gauge the paper cites for
  /// choosing Dmax). Negative when estimation was skipped (empty graph).
  double effective_diameter = -1.0;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Computes a GraphSummary. \p rng drives effective-diameter sampling;
/// \p diameter_sources bounds the number of BFS sources (<= 0 skips the
/// estimate, leaving effective_diameter negative).
GraphSummary Summarize(const LabeledGraph& graph, Rng* rng,
                       int32_t diameter_sources = 32);

}  // namespace spidermine
