#include "graph/graph_partition.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "graph/binary_format.h"
#include "graph/graph_builder.h"

namespace spidermine {

namespace {

using binary_format::AppendI32;
using binary_format::AppendI64;
using binary_format::AppendU64;
using binary_format::AppendU8;

/// FNV-1a word fold, same constants as LabeledGraph::ContentHash so every
/// content hash in the system composes the same way.
struct Fnv {
  uint64_t hash = 0xcbf29ce484222325ULL;
  void Mix(uint64_t word) {
    hash ^= word;
    hash *= 0x100000001b3ULL;
  }
};

}  // namespace

Status PartitionPlan::Validate(int64_t num_vertices) const {
  if (num_partitions < 1) {
    return Status::InvalidArgument(
        StrCat("partition plan needs >= 1 partition, got ", num_partitions));
  }
  if (radius < 1) {
    return Status::InvalidArgument(
        StrCat("partition halo radius must be >= 1, got ", radius));
  }
  if (static_cast<int64_t>(boundaries.size()) != num_partitions + 1) {
    return Status::InvalidArgument(
        StrCat("partition plan has ", boundaries.size(), " boundaries for ",
               num_partitions, " partitions (expected P + 1)"));
  }
  if (boundaries.front() != 0 || boundaries.back() != num_vertices) {
    return Status::InvalidArgument(
        StrCat("partition boundaries must span [0, ", num_vertices,
               "), got [", boundaries.front(), ", ", boundaries.back(),
               ")"));
  }
  for (size_t i = 1; i < boundaries.size(); ++i) {
    if (boundaries[i] <= boundaries[i - 1]) {
      return Status::InvalidArgument(
          StrCat("partition ", i - 1, " is empty or reordered (boundary ",
                 boundaries[i - 1], " -> ", boundaries[i], ")"));
    }
  }
  return Status::Ok();
}

Result<PartitionPlan> MakePartitionPlanFromDegrees(
    std::span<const int64_t> degrees, int32_t num_partitions, int32_t radius,
    bool balance_by_degree) {
  const int64_t n = static_cast<int64_t>(degrees.size());
  if (num_partitions < 1 || num_partitions > n) {
    return Status::InvalidArgument(
        StrCat("need 1 <= partitions <= ", n, " vertices, got ",
               num_partitions));
  }
  if (radius < 1) {
    return Status::InvalidArgument(
        StrCat("partition halo radius must be >= 1, got ", radius));
  }
  // Per-vertex work weight; +1 keeps zero-degree stretches from collapsing
  // into one partition.
  int64_t total = 0;
  for (int64_t v = 0; v < n; ++v) {
    total += 1 + (balance_by_degree ? degrees[static_cast<size_t>(v)] : 0);
  }
  PartitionPlan plan;
  plan.num_partitions = num_partitions;
  plan.radius = radius;
  plan.boundaries.assign(static_cast<size_t>(num_partitions) + 1, 0);
  plan.boundaries.back() = n;
  int64_t cursor = 0;
  int64_t cumulative = 0;
  for (int32_t p = 0; p + 1 < num_partitions; ++p) {
    // Close partition p at the first vertex whose cumulative weight reaches
    // the p+1-th even share, leaving at least one vertex per remaining
    // partition. Pure integer arithmetic: deterministic everywhere.
    const int64_t target =
        total / num_partitions * (p + 1) +
        total % num_partitions * (p + 1) / num_partitions;
    const int64_t hi_limit = n - (num_partitions - p - 1);
    while (cursor < hi_limit &&
           (cursor <= plan.boundaries[static_cast<size_t>(p)] ||
            cumulative < target)) {
      cumulative +=
          1 + (balance_by_degree ? degrees[static_cast<size_t>(cursor)] : 0);
      ++cursor;
    }
    plan.boundaries[static_cast<size_t>(p) + 1] = cursor;
  }
  SM_RETURN_NOT_OK(plan.Validate(n));
  return plan;
}

Result<PartitionPlan> MakePartitionPlan(const LabeledGraph& graph,
                                        int32_t num_partitions,
                                        int32_t radius,
                                        bool balance_by_degree) {
  std::vector<int64_t> degrees(static_cast<size_t>(graph.NumVertices()));
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    degrees[static_cast<size_t>(v)] = graph.Degree(v);
  }
  return MakePartitionPlanFromDegrees(degrees, num_partitions, radius,
                                      balance_by_degree);
}

uint64_t GraphPartition::ContentHash() const {
  Fnv fnv;
  fnv.Mix(parent_hash);
  fnv.Mix(static_cast<uint64_t>(parent_num_vertices));
  fnv.Mix(static_cast<uint64_t>(parent_num_edges));
  fnv.Mix(static_cast<uint64_t>(num_partitions));
  fnv.Mix(static_cast<uint64_t>(partition_index));
  fnv.Mix(static_cast<uint64_t>(radius));
  fnv.Mix(static_cast<uint64_t>(owned_begin));
  fnv.Mix(static_cast<uint64_t>(owned_end));
  fnv.Mix(graph.ContentHash());
  for (VertexId orig : local_to_orig) {
    fnv.Mix(static_cast<uint64_t>(orig));
  }
  return fnv.hash;
}

Result<GraphPartition> BuildGraphPartition(const LabeledGraph& graph,
                                           const PartitionPlan& plan,
                                           int32_t partition_index) {
  const int64_t n = graph.NumVertices();
  SM_RETURN_NOT_OK(plan.Validate(n));
  if (partition_index < 0 || partition_index >= plan.num_partitions) {
    return Status::InvalidArgument(
        StrCat("partition index ", partition_index, " outside [0, ",
               plan.num_partitions, ")"));
  }

  GraphPartition part;
  part.partition_index = partition_index;
  part.num_partitions = plan.num_partitions;
  part.radius = plan.radius;
  part.owned_begin = plan.boundaries[static_cast<size_t>(partition_index)];
  part.owned_end = plan.boundaries[static_cast<size_t>(partition_index) + 1];
  part.parent_hash = graph.ContentHash();
  part.parent_num_vertices = n;
  part.parent_num_edges = graph.NumEdges();

  // BFS out `radius` hops from the owned range; everything reached beyond
  // it is a ghost. The halo set H = union of owned r-balls, and the
  // partition is the subgraph induced on H, so each owned vertex's r-ball
  // (every shortest path of length <= r stays inside it) is exact.
  std::vector<uint8_t> in_halo(static_cast<size_t>(n), 0);
  std::vector<VertexId> frontier;
  frontier.reserve(static_cast<size_t>(part.num_owned()));
  for (int64_t v = part.owned_begin; v < part.owned_end; ++v) {
    in_halo[static_cast<size_t>(v)] = 1;
    frontier.push_back(static_cast<VertexId>(v));
  }
  std::vector<VertexId> ghosts;
  std::vector<VertexId> next;
  for (int32_t hop = 0; hop < plan.radius && !frontier.empty(); ++hop) {
    next.clear();
    for (VertexId u : frontier) {
      for (VertexId v : graph.Neighbors(u)) {
        if (!in_halo[static_cast<size_t>(v)]) {
          in_halo[static_cast<size_t>(v)] = 1;
          next.push_back(v);
          ghosts.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  std::sort(ghosts.begin(), ghosts.end());

  part.local_to_orig.reserve(static_cast<size_t>(part.num_owned()) +
                             ghosts.size());
  for (int64_t v = part.owned_begin; v < part.owned_end; ++v) {
    part.local_to_orig.push_back(static_cast<VertexId>(v));
  }
  part.local_to_orig.insert(part.local_to_orig.end(), ghosts.begin(),
                            ghosts.end());

  std::vector<VertexId> orig_to_local(static_cast<size_t>(n), -1);
  for (size_t local = 0; local < part.local_to_orig.size(); ++local) {
    orig_to_local[static_cast<size_t>(part.local_to_orig[local])] =
        static_cast<VertexId>(local);
  }

  GraphBuilder builder;
  for (VertexId orig : part.local_to_orig) {
    builder.AddVertex(graph.Label(orig));
  }
  for (size_t local = 0; local < part.local_to_orig.size(); ++local) {
    const VertexId orig_u = part.local_to_orig[local];
    for (VertexId orig_v : graph.Neighbors(orig_u)) {
      if (orig_u >= orig_v) continue;  // each undirected edge once
      const VertexId local_v = orig_to_local[static_cast<size_t>(orig_v)];
      if (local_v < 0) continue;  // endpoint outside the halo
      builder.AddEdge(static_cast<VertexId>(local), local_v,
                      graph.HasEdgeLabels() ? graph.EdgeLabel(orig_u, orig_v)
                                            : 0);
    }
  }
  SM_ASSIGN_OR_RETURN(part.graph, builder.Build());
  return part;
}

std::string GraphPartitionToBytes(const GraphPartition& part) {
  std::string payload;
  AppendU64(&payload, part.parent_hash);
  AppendI64(&payload, part.parent_num_vertices);
  AppendI64(&payload, part.parent_num_edges);
  AppendI32(&payload, part.num_partitions);
  AppendI32(&payload, part.partition_index);
  AppendI32(&payload, part.radius);
  AppendI64(&payload, part.owned_begin);
  AppendI64(&payload, part.owned_end);
  const LabeledGraph& g = part.graph;
  AppendI64(&payload, g.NumVertices());
  AppendI64(&payload, g.NumEdges());
  AppendU8(&payload, g.HasEdgeLabels() ? 1 : 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    AppendI32(&payload, g.Label(v));
  }
  for (VertexId orig : part.local_to_orig) {
    AppendI32(&payload, orig);
  }
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u >= v) continue;
      AppendI32(&payload, u);
      AppendI32(&payload, v);
      if (g.HasEdgeLabels()) AppendI32(&payload, g.EdgeLabel(u, v));
    }
  }
  AppendU64(&payload, part.ContentHash());
  return binary_format::WrapPayload(kSmgpMagic, payload, kSmgpFormatVersion);
}

Status SaveGraphPartition(const GraphPartition& part,
                          const std::string& path) {
  return binary_format::WriteFile(path, GraphPartitionToBytes(part));
}

Result<GraphPartition> GraphPartitionFromBytes(const std::string& bytes) {
  SM_ASSIGN_OR_RETURN(
      std::string_view payload,
      binary_format::UnwrapPayload(bytes, kSmgpMagic, kSmgpFormatVersion));
  binary_format::Reader reader(payload);
  GraphPartition part;
  int64_t local_n = 0;
  int64_t local_m = 0;
  uint8_t has_edge_labels = 0;
  if (!reader.ReadU64(&part.parent_hash) ||
      !reader.ReadI64(&part.parent_num_vertices) ||
      !reader.ReadI64(&part.parent_num_edges) ||
      !reader.ReadI32(&part.num_partitions) ||
      !reader.ReadI32(&part.partition_index) ||
      !reader.ReadI32(&part.radius) || !reader.ReadI64(&part.owned_begin) ||
      !reader.ReadI64(&part.owned_end) || !reader.ReadI64(&local_n) ||
      !reader.ReadI64(&local_m) || !reader.ReadU8(&has_edge_labels)) {
    return Status::IoError("smgp payload truncated in the fixed header");
  }
  if (part.num_partitions < 1 || part.partition_index < 0 ||
      part.partition_index >= part.num_partitions || part.radius < 1 ||
      part.parent_num_vertices < 0 || part.parent_num_edges < 0 ||
      part.owned_begin < 0 || part.owned_begin >= part.owned_end ||
      part.owned_end > part.parent_num_vertices || local_n < 0 ||
      local_m < 0 || local_n < part.num_owned()) {
    return Status::IoError("smgp partition geometry out of range");
  }
  GraphBuilder builder;
  for (int64_t v = 0; v < local_n; ++v) {
    int32_t label = -1;
    if (!reader.ReadI32(&label)) {
      return Status::IoError("smgp payload truncated in the label column");
    }
    builder.AddVertex(label);
  }
  part.local_to_orig.resize(static_cast<size_t>(local_n));
  for (int64_t v = 0; v < local_n; ++v) {
    if (!reader.ReadI32(&part.local_to_orig[static_cast<size_t>(v)])) {
      return Status::IoError("smgp payload truncated in the id map");
    }
  }
  for (int64_t e = 0; e < local_m; ++e) {
    int32_t u = -1;
    int32_t v = -1;
    int32_t edge_label = 0;
    if (!reader.ReadI32(&u) || !reader.ReadI32(&v) ||
        (has_edge_labels && !reader.ReadI32(&edge_label))) {
      return Status::IoError("smgp payload truncated in the edge list");
    }
    builder.AddEdge(u, v, edge_label);
  }
  uint64_t stored_hash = 0;
  if (!reader.ReadU64(&stored_hash) || !reader.AtEnd()) {
    return Status::IoError("smgp payload has wrong trailing length");
  }
  SM_ASSIGN_OR_RETURN(part.graph, builder.Build());
  if (part.graph.NumVertices() != local_n ||
      part.graph.NumEdges() != local_m) {
    return Status::IoError(
        "smgp edge list had duplicates or self-loops (invalid writer)");
  }
  // Id-map invariants: owned prefix is exactly [owned_begin, owned_end),
  // ghosts strictly ascending, inside the parent graph, outside the owned
  // range.
  const int64_t num_owned = part.num_owned();
  for (int64_t local = 0; local < local_n; ++local) {
    const VertexId orig = part.local_to_orig[static_cast<size_t>(local)];
    if (local < num_owned) {
      if (orig != part.owned_begin + local) {
        return Status::IoError(
            StrCat("smgp owned id map broken at local ", local));
      }
    } else {
      if (orig < 0 || orig >= part.parent_num_vertices ||
          (orig >= part.owned_begin && orig < part.owned_end) ||
          (local > num_owned &&
           orig <= part.local_to_orig[static_cast<size_t>(local) - 1])) {
        return Status::IoError(
            StrCat("smgp ghost id map broken at local ", local));
      }
    }
  }
  if (part.ContentHash() != stored_hash) {
    return Status::IoError(
        "smgp partition content hash mismatch (partition does not match "
        "its parent graph or was tampered with)");
  }
  return part;
}

Result<GraphPartition> LoadGraphPartition(const std::string& path) {
  SM_ASSIGN_OR_RETURN(std::string bytes, binary_format::ReadFile(path));
  return GraphPartitionFromBytes(bytes);
}

}  // namespace spidermine
