#include "graph/graph_metrics.h"

#include <algorithm>
#include <sstream>

#include "graph/bfs.h"
#include "graph/diameter.h"

namespace spidermine {

int64_t CountTriangles(const LabeledGraph& graph) {
  // For each edge (u, v) with u < v, count common neighbors w > v; each
  // triangle {u, v, w} with u < v < w is found exactly once at its least
  // edge. Sorted-adjacency intersection.
  int64_t triangles = 0;
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (VertexId v : graph.Neighbors(u)) {
      if (v <= u) continue;
      auto nu = graph.Neighbors(u);
      auto nv = graph.Neighbors(v);
      size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] < nv[j]) {
          ++i;
        } else if (nu[i] > nv[j]) {
          ++j;
        } else {
          if (nu[i] > v) ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

namespace {

// Number of wedges (paths of length 2) centered anywhere: sum_v C(deg v, 2).
int64_t CountWedges(const LabeledGraph& graph) {
  int64_t wedges = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const int64_t d = graph.Degree(v);
    wedges += d * (d - 1) / 2;
  }
  return wedges;
}

}  // namespace

double GlobalClusteringCoefficient(const LabeledGraph& graph) {
  const int64_t wedges = CountWedges(graph);
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(graph)) /
         static_cast<double>(wedges);
}

double AverageLocalClustering(const LabeledGraph& graph) {
  if (graph.NumVertices() == 0) return 0.0;
  double total = 0.0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const int64_t d = graph.Degree(v);
    if (d < 2) continue;
    // Count edges among neighbors of v.
    int64_t links = 0;
    auto nbrs = graph.Neighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (graph.HasEdge(nbrs[i], nbrs[j])) ++links;
      }
    }
    total += 2.0 * static_cast<double>(links) /
             (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  return total / static_cast<double>(graph.NumVertices());
}

std::vector<int64_t> ComponentSizes(const LabeledGraph& graph) {
  ComponentDecomposition decomposition = ConnectedComponents(graph);
  std::vector<int64_t> sizes(static_cast<size_t>(decomposition.count), 0);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    ++sizes[static_cast<size_t>(decomposition.component[v])];
  }
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  return sizes;
}

std::string GraphSummary::ToString() const {
  std::ostringstream os;
  os << "vertices: " << num_vertices << "\n"
     << "edges: " << num_edges << "\n"
     << "labels: " << num_labels << "\n"
     << "avg degree: " << avg_degree << "\n"
     << "max degree: " << max_degree << "\n"
     << "components: " << num_components
     << " (largest " << largest_component << ")\n"
     << "triangles: " << triangles << "\n"
     << "global clustering: " << global_clustering << "\n";
  if (effective_diameter >= 0.0) {
    os << "effective diameter (p90): " << effective_diameter << "\n";
  }
  return os.str();
}

GraphSummary Summarize(const LabeledGraph& graph, Rng* rng,
                       int32_t diameter_sources) {
  GraphSummary summary;
  summary.num_vertices = graph.NumVertices();
  summary.num_edges = graph.NumEdges();
  summary.num_labels = graph.NumLabels();
  if (graph.NumVertices() > 0) {
    summary.avg_degree = 2.0 * static_cast<double>(graph.NumEdges()) /
                         static_cast<double>(graph.NumVertices());
  }
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    summary.max_degree = std::max(summary.max_degree, graph.Degree(v));
  }
  std::vector<int64_t> sizes = ComponentSizes(graph);
  summary.num_components = static_cast<int64_t>(sizes.size());
  summary.largest_component = sizes.empty() ? 0 : sizes.front();
  summary.triangles = CountTriangles(graph);
  summary.global_clustering = GlobalClusteringCoefficient(graph);
  if (diameter_sources > 0 && graph.NumVertices() > 1) {
    summary.effective_diameter =
        EffectiveDiameter(graph, 0.9, diameter_sources, rng);
  }
  return summary;
}

}  // namespace spidermine
