#pragma once

#include <vector>

#include "graph/labeled_graph.h"

/// \file bfs.h
/// Breadth-first traversals: distance vectors, radius-r balls (the
/// "r-neighborhoods" that spiders are built from), and connected components.

namespace spidermine {

/// Distances (hop counts) from \p source, truncated at \p max_depth
/// (negative max_depth means unbounded). Unreached vertices get -1.
std::vector<int32_t> BfsDistances(const LabeledGraph& graph, VertexId source,
                                  int32_t max_depth = -1);

/// Vertices within distance \p radius of \p center, in BFS order
/// (center first). This is the vertex set of the paper's r-neighborhood.
std::vector<VertexId> BfsBall(const LabeledGraph& graph, VertexId center,
                              int32_t radius);

/// Result of a connected-components decomposition.
struct ComponentDecomposition {
  /// component[v] = dense component id of v.
  std::vector<int32_t> component;
  /// Number of components.
  int32_t count = 0;
};

/// Labels every vertex with its connected component.
ComponentDecomposition ConnectedComponents(const LabeledGraph& graph);

}  // namespace spidermine
