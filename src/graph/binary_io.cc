#include "graph/binary_io.h"

#include <cstring>
#include <fstream>

#include "common/crc32.h"
#include "common/strings.h"
#include "graph/graph_builder.h"

namespace spidermine {

namespace {

constexpr char kGraphMagic[4] = {'S', 'M', 'G', '1'};
constexpr char kPatternMagic[4] = {'S', 'M', 'P', '1'};
constexpr uint32_t kFormatVersion = 2;
constexpr size_t kHeaderSize = 20;

void AppendU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void AppendI32(std::string* out, int32_t value) {
  AppendU32(out, static_cast<uint32_t>(value));
}

// Bounds-checked little-endian reader over a byte string.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU32(uint32_t* out) {
    if (pos_ + 4 > bytes_.size()) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  bool ReadU64(uint64_t* out) {
    if (pos_ + 8 > bytes_.size()) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return true;
  }

  bool ReadI32(int32_t* out) {
    uint32_t v = 0;
    if (!ReadU32(&v)) return false;
    *out = static_cast<int32_t>(v);
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

std::string WrapPayload(const char magic[4], const std::string& payload) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(magic, 4);
  AppendU32(&out, kFormatVersion);
  AppendU64(&out, payload.size());
  AppendU32(&out, Crc32(payload));
  out += payload;
  return out;
}

// Validates header framing and returns the payload view.
Result<std::string_view> UnwrapPayload(const std::string& bytes,
                                       const char magic[4]) {
  if (bytes.size() < kHeaderSize) {
    return Status::IoError(StrCat("file too short: ", bytes.size(),
                                  " bytes < ", kHeaderSize, "-byte header"));
  }
  if (std::memcmp(bytes.data(), magic, 4) != 0) {
    return Status::IoError(
        StrCat("bad magic; expected ", std::string(magic, 4)));
  }
  Reader header(std::string_view(bytes).substr(4, kHeaderSize - 4));
  uint32_t version = 0, crc = 0;
  uint64_t length = 0;
  header.ReadU32(&version);
  header.ReadU64(&length);
  header.ReadU32(&crc);
  if (version != kFormatVersion) {
    return Status::IoError(StrCat("unsupported format version ", version));
  }
  if (bytes.size() != kHeaderSize + length) {
    return Status::IoError(StrCat("length mismatch: header says ", length,
                                  " payload bytes, file has ",
                                  bytes.size() - kHeaderSize));
  }
  std::string_view payload = std::string_view(bytes).substr(kHeaderSize);
  if (Crc32(payload) != crc) {
    return Status::IoError("payload checksum mismatch (corrupted file)");
  }
  return payload;
}

Status WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError(StrCat("cannot open '", path, "' for writing"));
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    return Status::IoError(StrCat("short write to '", path, "'"));
  }
  return Status::Ok();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError(StrCat("cannot open '", path, "' for reading"));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IoError(StrCat("read error on '", path, "'"));
  }
  return bytes;
}

}  // namespace

std::string GraphToBinary(const LabeledGraph& graph) {
  std::string payload;
  AppendU64(&payload, static_cast<uint64_t>(graph.NumVertices()));
  AppendU64(&payload, static_cast<uint64_t>(graph.NumEdges()));
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    AppendI32(&payload, graph.Label(v));
  }
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (VertexId v : graph.Neighbors(u)) {
      if (u < v) {
        AppendI32(&payload, u);
        AppendI32(&payload, v);
        AppendI32(&payload, graph.EdgeLabel(u, v));
      }
    }
  }
  return WrapPayload(kGraphMagic, payload);
}

Result<LabeledGraph> GraphFromBinary(const std::string& bytes) {
  SM_ASSIGN_OR_RETURN(std::string_view payload,
                      UnwrapPayload(bytes, kGraphMagic));
  Reader reader(payload);
  uint64_t n = 0, m = 0;
  if (!reader.ReadU64(&n) || !reader.ReadU64(&m)) {
    return Status::IoError("truncated graph payload (counts)");
  }
  // Guard against absurd counts (and the multiplication overflowing) before
  // trusting the declared sizes: each vertex/edge costs at least 4 bytes.
  if (n > payload.size() || m > payload.size()) {
    return Status::IoError(StrCat("implausible counts n=", n, " m=", m,
                                  " for a ", payload.size(), "-byte payload"));
  }
  const uint64_t need = 16 + n * 4 + m * 12;
  if (payload.size() != need) {
    return Status::IoError(StrCat("graph payload size mismatch: n=", n,
                                  " m=", m, " expects ", need, " bytes, got ",
                                  payload.size()));
  }
  GraphBuilder builder;
  for (uint64_t i = 0; i < n; ++i) {
    int32_t label = 0;
    if (!reader.ReadI32(&label)) {
      return Status::IoError("truncated graph payload (labels)");
    }
    if (label < 0) {
      return Status::IoError(StrCat("negative label ", label));
    }
    builder.AddVertex(label);
  }
  for (uint64_t i = 0; i < m; ++i) {
    int32_t u = 0, v = 0, label = 0;
    if (!reader.ReadI32(&u) || !reader.ReadI32(&v) ||
        !reader.ReadI32(&label)) {
      return Status::IoError("truncated graph payload (edges)");
    }
    if (u < 0 || v < 0 || static_cast<uint64_t>(u) >= n ||
        static_cast<uint64_t>(v) >= n) {
      return Status::IoError(StrCat("edge endpoint out of range: ", u, "-", v));
    }
    if (label < 0) {
      return Status::IoError(StrCat("negative edge label ", label));
    }
    builder.AddEdge(u, v, label);
  }
  return builder.Build();
}

Status SaveGraphBinary(const LabeledGraph& graph, const std::string& path) {
  return WriteFile(path, GraphToBinary(graph));
}

Result<LabeledGraph> LoadGraphBinary(const std::string& path) {
  SM_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  return GraphFromBinary(bytes);
}

std::string PatternToBinary(const Pattern& pattern) {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(pattern.NumVertices()));
  AppendU32(&payload, static_cast<uint32_t>(pattern.NumEdges()));
  for (VertexId v = 0; v < pattern.NumVertices(); ++v) {
    AppendI32(&payload, pattern.Label(v));
  }
  for (const auto& e : pattern.LabeledEdges()) {
    AppendI32(&payload, e.u);
    AppendI32(&payload, e.v);
    AppendI32(&payload, e.label);
  }
  return WrapPayload(kPatternMagic, payload);
}

Result<Pattern> PatternFromBinary(const std::string& bytes) {
  SM_ASSIGN_OR_RETURN(std::string_view payload,
                      UnwrapPayload(bytes, kPatternMagic));
  Reader reader(payload);
  uint32_t n = 0, m = 0;
  if (!reader.ReadU32(&n) || !reader.ReadU32(&m)) {
    return Status::IoError("truncated pattern payload (counts)");
  }
  const uint64_t need = 8 + static_cast<uint64_t>(n) * 4 +
                        static_cast<uint64_t>(m) * 12;
  if (payload.size() != need) {
    return Status::IoError("pattern payload size mismatch");
  }
  Pattern pattern;
  for (uint32_t i = 0; i < n; ++i) {
    int32_t label = 0;
    if (!reader.ReadI32(&label)) {
      return Status::IoError("truncated pattern payload (labels)");
    }
    if (label < 0) {
      return Status::IoError(StrCat("negative label ", label));
    }
    pattern.AddVertex(label);
  }
  for (uint32_t i = 0; i < m; ++i) {
    int32_t u = 0, v = 0, label = 0;
    if (!reader.ReadI32(&u) || !reader.ReadI32(&v) ||
        !reader.ReadI32(&label)) {
      return Status::IoError("truncated pattern payload (edges)");
    }
    if (u < 0 || v < 0 || static_cast<uint32_t>(u) >= n ||
        static_cast<uint32_t>(v) >= n || label < 0) {
      return Status::IoError(StrCat("edge record out of range: ", u, "-", v));
    }
    if (!pattern.AddEdge(u, v, label)) {
      return Status::IoError(StrCat("invalid edge ", u, "-", v,
                                    " (self-loop or duplicate)"));
    }
  }
  return pattern;
}

Status SavePatternBinary(const Pattern& pattern, const std::string& path) {
  return WriteFile(path, PatternToBinary(pattern));
}

Result<Pattern> LoadPatternBinary(const std::string& path) {
  SM_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  return PatternFromBinary(bytes);
}

}  // namespace spidermine
