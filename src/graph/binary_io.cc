#include "graph/binary_io.h"

#include "common/strings.h"
#include "graph/binary_format.h"
#include "graph/graph_builder.h"

namespace spidermine {

namespace {

using binary_format::AppendI32;
using binary_format::AppendU32;
using binary_format::AppendU64;
using binary_format::Reader;

constexpr char kGraphMagic[4] = {'S', 'M', 'G', '1'};
constexpr char kPatternMagic[4] = {'S', 'M', 'P', '1'};
// Graph and pattern payloads changed together historically; they version
// independently from here on.
constexpr uint32_t kGraphFormatVersion = 2;
constexpr uint32_t kPatternFormatVersion = 2;

}  // namespace

std::string GraphToBinary(const LabeledGraph& graph) {
  std::string payload;
  AppendU64(&payload, static_cast<uint64_t>(graph.NumVertices()));
  AppendU64(&payload, static_cast<uint64_t>(graph.NumEdges()));
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    AppendI32(&payload, graph.Label(v));
  }
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (VertexId v : graph.Neighbors(u)) {
      if (u < v) {
        AppendI32(&payload, u);
        AppendI32(&payload, v);
        AppendI32(&payload, graph.EdgeLabel(u, v));
      }
    }
  }
  return binary_format::WrapPayload(kGraphMagic, payload, kGraphFormatVersion);
}

Result<LabeledGraph> GraphFromBinary(const std::string& bytes) {
  SM_ASSIGN_OR_RETURN(std::string_view payload,
                      binary_format::UnwrapPayload(bytes, kGraphMagic,
                                                   kGraphFormatVersion));
  Reader reader(payload);
  uint64_t n = 0, m = 0;
  if (!reader.ReadU64(&n) || !reader.ReadU64(&m)) {
    return Status::IoError("truncated graph payload (counts)");
  }
  // Guard against absurd counts (and the multiplication overflowing) before
  // trusting the declared sizes: each vertex/edge costs at least 4 bytes.
  if (n > payload.size() || m > payload.size()) {
    return Status::IoError(StrCat("implausible counts n=", n, " m=", m,
                                  " for a ", payload.size(), "-byte payload"));
  }
  const uint64_t need = 16 + n * 4 + m * 12;
  if (payload.size() != need) {
    return Status::IoError(StrCat("graph payload size mismatch: n=", n,
                                  " m=", m, " expects ", need, " bytes, got ",
                                  payload.size()));
  }
  GraphBuilder builder;
  for (uint64_t i = 0; i < n; ++i) {
    int32_t label = 0;
    if (!reader.ReadI32(&label)) {
      return Status::IoError("truncated graph payload (labels)");
    }
    if (label < 0) {
      return Status::IoError(StrCat("negative label ", label));
    }
    builder.AddVertex(label);
  }
  for (uint64_t i = 0; i < m; ++i) {
    int32_t u = 0, v = 0, label = 0;
    if (!reader.ReadI32(&u) || !reader.ReadI32(&v) ||
        !reader.ReadI32(&label)) {
      return Status::IoError("truncated graph payload (edges)");
    }
    if (u < 0 || v < 0 || static_cast<uint64_t>(u) >= n ||
        static_cast<uint64_t>(v) >= n) {
      return Status::IoError(StrCat("edge endpoint out of range: ", u, "-", v));
    }
    if (label < 0) {
      return Status::IoError(StrCat("negative edge label ", label));
    }
    builder.AddEdge(u, v, label);
  }
  return builder.Build();
}

Status SaveGraphBinary(const LabeledGraph& graph, const std::string& path) {
  return binary_format::WriteFile(path, GraphToBinary(graph));
}

Result<LabeledGraph> LoadGraphBinary(const std::string& path) {
  SM_ASSIGN_OR_RETURN(std::string bytes, binary_format::ReadFile(path));
  return GraphFromBinary(bytes);
}

std::string PatternToBinary(const Pattern& pattern) {
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(pattern.NumVertices()));
  AppendU32(&payload, static_cast<uint32_t>(pattern.NumEdges()));
  for (VertexId v = 0; v < pattern.NumVertices(); ++v) {
    AppendI32(&payload, pattern.Label(v));
  }
  for (const auto& e : pattern.LabeledEdges()) {
    AppendI32(&payload, e.u);
    AppendI32(&payload, e.v);
    AppendI32(&payload, e.label);
  }
  return binary_format::WrapPayload(kPatternMagic, payload,
                                    kPatternFormatVersion);
}

Result<Pattern> PatternFromBinary(const std::string& bytes) {
  SM_ASSIGN_OR_RETURN(std::string_view payload,
                      binary_format::UnwrapPayload(bytes, kPatternMagic,
                                                   kPatternFormatVersion));
  Reader reader(payload);
  uint32_t n = 0, m = 0;
  if (!reader.ReadU32(&n) || !reader.ReadU32(&m)) {
    return Status::IoError("truncated pattern payload (counts)");
  }
  const uint64_t need = 8 + static_cast<uint64_t>(n) * 4 +
                        static_cast<uint64_t>(m) * 12;
  if (payload.size() != need) {
    return Status::IoError("pattern payload size mismatch");
  }
  Pattern pattern;
  for (uint32_t i = 0; i < n; ++i) {
    int32_t label = 0;
    if (!reader.ReadI32(&label)) {
      return Status::IoError("truncated pattern payload (labels)");
    }
    if (label < 0) {
      return Status::IoError(StrCat("negative label ", label));
    }
    pattern.AddVertex(label);
  }
  for (uint32_t i = 0; i < m; ++i) {
    int32_t u = 0, v = 0, label = 0;
    if (!reader.ReadI32(&u) || !reader.ReadI32(&v) ||
        !reader.ReadI32(&label)) {
      return Status::IoError("truncated pattern payload (edges)");
    }
    if (u < 0 || v < 0 || static_cast<uint32_t>(u) >= n ||
        static_cast<uint32_t>(v) >= n || label < 0) {
      return Status::IoError(StrCat("edge record out of range: ", u, "-", v));
    }
    if (!pattern.AddEdge(u, v, label)) {
      return Status::IoError(StrCat("invalid edge ", u, "-", v,
                                    " (self-loop or duplicate)"));
    }
  }
  return pattern;
}

Status SavePatternBinary(const Pattern& pattern, const std::string& path) {
  return binary_format::WriteFile(path, PatternToBinary(pattern));
}

Result<Pattern> LoadPatternBinary(const std::string& path) {
  SM_ASSIGN_OR_RETURN(std::string bytes, binary_format::ReadFile(path));
  return PatternFromBinary(bytes);
}

}  // namespace spidermine
