#pragma once

#include <vector>

#include "graph/labeled_graph.h"

/// \file degree_stats.h
/// Degree and label statistics, used by the data generators to verify that
/// simulated datasets match their targets (e.g. the Jeti call graph's
/// avg degree 2.13 / max degree 69) and by the benches for reporting.

namespace spidermine {

/// Summary of a graph's degree distribution.
struct DegreeStats {
  double average = 0.0;
  int64_t max = 0;
  int64_t min = 0;
  /// histogram[d] = number of vertices of degree d (up to max).
  std::vector<int64_t> histogram;
};

/// Computes degree statistics for \p graph.
DegreeStats ComputeDegreeStats(const LabeledGraph& graph);

/// histogram[l] = number of vertices with label l.
std::vector<int64_t> LabelHistogram(const LabeledGraph& graph);

}  // namespace spidermine
