#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/labeled_graph.h"

/// \file graph_partition.h
/// Radius-aware vertex-range partitioning of a LabeledGraph — the graph
/// side of out-of-core partitioned Stage I (spidermine/stage1_partition.h).
///
/// A partition OWNS one contiguous original-vertex-id range [owned_begin,
/// owned_end) and additionally carries every vertex within `radius` hops of
/// an owned vertex (the GHOST halo), as the subgraph induced on that union.
/// Shortest paths of length <= radius from an owned vertex never leave its
/// r-hop ball, so inside a partition every owned vertex sees its exact
/// r-ball — spider mining restricted to owned anchors is bit-for-bit the
/// single-node result. Local vertex ids are assigned deterministically:
/// owned vertices first in ascending original id (so local id i maps to
/// original id owned_begin + i), then ghosts in ascending original id.
///
/// The partitioner is deterministic: a PartitionPlan is a boundary array
/// computed from vertex count or degree prefix sums (degree balancing keeps
/// partitions' edge work even when hubs cluster), never from hashes or
/// iteration order. Plans can also be computed from a streaming one-pass
/// scan of the edge list (graph_io.h ScanGraphTextStreaming) without
/// materializing the graph — the out-of-core entry point.
///
/// Serialization: format `.smgp` (magic "SMGP") on the shared
/// binary_format.h envelope. Every partition records the parent graph's
/// ContentHash() plus a partition content hash derived from it, so a
/// partition can never be silently merged against the wrong network or a
/// stale partitioning.

namespace spidermine {

/// Magic bytes of the serialized graph-partition format.
inline constexpr char kSmgpMagic[4] = {'S', 'M', 'G', 'P'};
inline constexpr uint32_t kSmgpFormatVersion = 1;

/// How to cut the vertex-id space into P contiguous ranges.
struct PartitionPlan {
  int32_t num_partitions = 1;
  /// Halo radius in hops (>= 1; must cover the spider radius mined later).
  int32_t radius = 1;
  /// num_partitions + 1 ascending boundaries; partition p owns
  /// [boundaries[p], boundaries[p+1]).
  std::vector<int64_t> boundaries;

  /// Structural validity against an n-vertex graph: P >= 1, radius >= 1,
  /// boundaries strictly increasing from 0 to n (every partition owns at
  /// least one vertex).
  Status Validate(int64_t num_vertices) const;
};

/// Computes a deterministic plan over \p degrees (indexed by vertex id).
/// With \p balance_by_degree, ranges equalize sum(1 + degree) — a proxy for
/// per-partition scan+halo work; otherwise they equalize vertex counts.
/// Requires 1 <= num_partitions <= |degrees| and radius >= 1.
Result<PartitionPlan> MakePartitionPlanFromDegrees(
    std::span<const int64_t> degrees, int32_t num_partitions, int32_t radius,
    bool balance_by_degree = true);

/// MakePartitionPlanFromDegrees over an in-memory graph's degrees.
Result<PartitionPlan> MakePartitionPlan(const LabeledGraph& graph,
                                        int32_t num_partitions,
                                        int32_t radius,
                                        bool balance_by_degree = true);

/// One partition: the owned range, the halo'd local subgraph, and the maps
/// back to original vertex ids.
struct GraphPartition {
  int32_t partition_index = 0;
  int32_t num_partitions = 1;
  int32_t radius = 1;
  int64_t owned_begin = 0;
  int64_t owned_end = 0;

  // Parent-graph identity (LabeledGraph::ContentHash of the full network).
  uint64_t parent_hash = 0;
  int64_t parent_num_vertices = 0;
  int64_t parent_num_edges = 0;

  /// Subgraph induced on owned vertices plus their radius-hop halo. Local
  /// ids: [0, num_owned()) are the owned vertices in ascending original id;
  /// the rest are ghosts in ascending original id.
  LabeledGraph graph;
  /// Original id of each local vertex (size graph.NumVertices()).
  std::vector<VertexId> local_to_orig;

  int64_t num_owned() const { return owned_end - owned_begin; }
  int64_t num_ghosts() const {
    return graph.NumVertices() - num_owned();
  }
  VertexId ToOriginal(VertexId local) const { return local_to_orig[local]; }

  /// Deterministic content hash over the partition: folds the parent
  /// graph's ContentHash, the partition geometry, the local subgraph's
  /// ContentHash and the id map. Stored in the `.smgp` file and re-checked
  /// on load, so a partition is bound to the exact parent network AND the
  /// exact partitioning that produced it.
  uint64_t ContentHash() const;
};

/// Cuts partition \p partition_index out of \p graph per \p plan.
/// Deterministic; transient memory is O(|graph| / P + halo) plus one
/// O(n) id-translation scratch array.
Result<GraphPartition> BuildGraphPartition(const LabeledGraph& graph,
                                           const PartitionPlan& plan,
                                           int32_t partition_index);

/// Serializes to `.smgp` bytes (deterministic) / writes to \p path.
std::string GraphPartitionToBytes(const GraphPartition& part);
Status SaveGraphPartition(const GraphPartition& part,
                          const std::string& path);

/// Decodes bytes / a file written by the functions above. Fails with
/// kIoError on framing or CRC mismatches, structurally invalid content
/// (id-map or range violations) and content-hash mismatches.
Result<GraphPartition> GraphPartitionFromBytes(const std::string& bytes);
Result<GraphPartition> LoadGraphPartition(const std::string& path);

}  // namespace spidermine
