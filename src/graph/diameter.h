#pragma once

#include "common/rng.h"
#include "graph/labeled_graph.h"

/// \file diameter.h
/// Diameter measurement. The paper bounds pattern diameters by a
/// user-supplied Dmax and motivates that bound by the small effective
/// diameters of real networks (e.g. DBLP <= 9, IMDB <= 10); the estimator
/// here plays the role of the HADI-style gauging it cites [18].

namespace spidermine {

/// Exact diameter: max finite eccentricity over all vertices, computed by
/// all-pairs BFS. Intended for small graphs and patterns; O(|V| * |E|).
/// Returns 0 for graphs with fewer than two vertices.
int32_t ExactDiameter(const LabeledGraph& graph);

/// Exact eccentricity of one vertex (max hop distance to any vertex
/// reachable from it).
int32_t Eccentricity(const LabeledGraph& graph, VertexId v);

/// Effective diameter: the \p percentile (e.g. 0.9) quantile of the pairwise
/// finite distance distribution, estimated from \p num_sources sampled BFS
/// sources. Cheap enough for the 10^4..10^5-vertex graphs of the evaluation.
double EffectiveDiameter(const LabeledGraph& graph, double percentile,
                         int32_t num_sources, Rng* rng);

}  // namespace spidermine
