#include "pattern/dfs_code.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <tuple>

namespace spidermine {

int CompareDfsEdges(const DfsEdge& a, const DfsEdge& b) {
  const bool fa = a.IsForward();
  const bool fb = b.IsForward();
  if (!fa && fb) {
    // backward (i1,j1) precedes forward (i2,j2) iff i1 < j2.
    return a.from < b.to ? -1 : 1;
  }
  if (fa && !fb) {
    // forward (i1,j1) precedes backward (i2,j2) iff j1 <= i2.
    return a.to <= b.from ? -1 : 1;
  }
  if (!fa) {
    // Both backward: order by (from, to).
    if (a.from != b.from) return a.from < b.from ? -1 : 1;
    if (a.to != b.to) return a.to < b.to ? -1 : 1;
  } else {
    // Both forward: order by (to, from DESC) -- deeper source first.
    if (a.to != b.to) return a.to < b.to ? -1 : 1;
    if (a.from != b.from) return a.from > b.from ? -1 : 1;
  }
  // Structure equal: compare labels in gSpan tuple order
  // (from_label, edge_label, to_label).
  if (a.from_label != b.from_label) return a.from_label < b.from_label ? -1 : 1;
  if (a.edge_label != b.edge_label) return a.edge_label < b.edge_label ? -1 : 1;
  if (a.to_label != b.to_label) return a.to_label < b.to_label ? -1 : 1;
  return 0;
}

int CompareDfsCodes(const DfsCode& a, const DfsCode& b) {
  if (a.root_label != b.root_label) return a.root_label < b.root_label ? -1 : 1;
  size_t common = std::min(a.edges.size(), b.edges.size());
  for (size_t i = 0; i < common; ++i) {
    int c = CompareDfsEdges(a.edges[i], b.edges[i]);
    if (c != 0) return c;
  }
  if (a.edges.size() != b.edges.size()) {
    return a.edges.size() < b.edges.size() ? -1 : 1;
  }
  return 0;
}

namespace {

/// Backtracking search for the minimum DFS code of a fixed pattern.
///
/// Invariant per recursion step: the already-built `current` prefix is a
/// valid DFS-code prefix of the pattern. Candidate next edges follow gSpan's
/// rightmost-path rule: backward edges leave the rightmost vertex toward its
/// smallest-id ancestor first; forward edges leave the deepest possible
/// rightmost-path vertex with the smallest possible target label. Larger
/// candidates are tried only when every smaller candidate dead-ends, and a
/// subtree reporting a completion prunes all larger siblings.
struct MinCodeSearch {
  const Pattern* pattern = nullptr;
  std::vector<int32_t> dfs_of;    // pattern vertex -> DFS id or -1
  std::vector<VertexId> vertex_of;  // DFS id -> pattern vertex
  std::vector<int32_t> rightmost_path;  // DFS ids, root first (increasing)
  std::vector<std::vector<bool>> covered;  // adjacency-shaped edge marks
  DfsCode current;
  DfsCode best;
  bool have_best = false;
  int64_t steps = 0;
  int64_t max_steps = INT64_MAX;
  bool exceeded = false;

  void SetEdgeCovered(VertexId u, VertexId v, bool value) {
    auto set_one = [&](VertexId a, VertexId b) {
      auto nbrs = pattern->Neighbors(a);
      size_t idx = static_cast<size_t>(
          std::lower_bound(nbrs.begin(), nbrs.end(), b) - nbrs.begin());
      covered[a][idx] = value;
    };
    set_one(u, v);
    set_one(v, u);
  }

  bool EdgeCovered(VertexId u, VertexId v) const {
    auto nbrs = pattern->Neighbors(u);
    size_t idx = static_cast<size_t>(
        std::lower_bound(nbrs.begin(), nbrs.end(), v) - nbrs.begin());
    return covered[u][idx];
  }

  /// Classifies the edge just appended at position i.
  /// \param equal_prefix  whether current[0..i) == best[0..i)
  /// \param[out] child_equal_prefix  prefix state for the recursive call
  /// \returns false when this branch is provably >= ... > best and must be cut
  bool AdmitAppended(bool equal_prefix, bool* child_equal_prefix) const {
    if (!have_best || !equal_prefix) {
      *child_equal_prefix = false;
      // Without a best yet the notion degenerates; treat "no best" as
      // equal-prefix so the first completion establishes the baseline.
      if (!have_best) *child_equal_prefix = true;
      return true;
    }
    size_t i = current.edges.size() - 1;
    assert(i < best.edges.size());
    int c = CompareDfsEdges(current.edges[i], best.edges[i]);
    if (c > 0) return false;  // prefix already greater: cut
    *child_equal_prefix = (c == 0);
    return true;
  }

  /// Returns true iff some completion was reached in this subtree.
  bool Recurse(bool equal_prefix);
};

bool MinCodeSearch::Recurse(bool equal_prefix) {
  const Pattern& p = *pattern;
  if (++steps > max_steps) {
    exceeded = true;
    return false;
  }
  if (current.edges.size() == static_cast<size_t>(p.NumEdges())) {
    if (!have_best || CompareDfsCodes(current, best) < 0) {
      best = current;
      have_best = true;
    }
    return true;
  }

  // --- Backward candidate: unique minimal next extension when present.
  const int32_t rm_id = rightmost_path.back();
  const VertexId rm_vertex = vertex_of[rm_id];
  for (size_t i = 0; i + 1 < rightmost_path.size(); ++i) {
    int32_t anc_id = rightmost_path[i];
    VertexId anc_vertex = vertex_of[anc_id];
    if (!p.HasEdge(rm_vertex, anc_vertex)) continue;
    if (EdgeCovered(rm_vertex, anc_vertex)) continue;
    current.edges.push_back(DfsEdge{rm_id, anc_id, p.Label(rm_vertex),
                                    p.Label(anc_vertex),
                                    p.EdgeLabel(rm_vertex, anc_vertex)});
    SetEdgeCovered(rm_vertex, anc_vertex, true);
    bool child_equal = false;
    bool completed = false;
    if (AdmitAppended(equal_prefix, &child_equal)) {
      completed = Recurse(child_equal);
    }
    SetEdgeCovered(rm_vertex, anc_vertex, false);
    current.edges.pop_back();
    // A backward extension, when available, is the ONLY valid minimal next
    // edge: forward siblings are strictly larger and other backward targets
    // strictly larger, so do not explore alternatives.
    return completed;
  }

  // --- Forward candidates: deepest source first, then the smallest
  // (edge label, vertex label) pair per gSpan tuple order.
  const int32_t next_id = static_cast<int32_t>(vertex_of.size());
  for (size_t pos = rightmost_path.size(); pos-- > 0;) {
    int32_t src_id = rightmost_path[pos];
    VertexId src_vertex = vertex_of[src_id];
    std::vector<std::pair<EdgeLabelId, LabelId>> labels;
    for (VertexId nbr : p.Neighbors(src_vertex)) {
      if (dfs_of[nbr] < 0) {
        labels.emplace_back(p.EdgeLabel(src_vertex, nbr), p.Label(nbr));
      }
    }
    if (labels.empty()) continue;
    std::sort(labels.begin(), labels.end());
    labels.erase(std::unique(labels.begin(), labels.end()), labels.end());

    bool completed_any = false;
    for (const auto& [elab, lab] : labels) {
      for (VertexId nbr : p.Neighbors(src_vertex)) {
        if (dfs_of[nbr] >= 0 || p.Label(nbr) != lab ||
            p.EdgeLabel(src_vertex, nbr) != elab) {
          continue;
        }
        std::vector<int32_t> saved_path = rightmost_path;
        rightmost_path.resize(pos + 1);
        rightmost_path.push_back(next_id);
        dfs_of[nbr] = next_id;
        vertex_of.push_back(nbr);
        current.edges.push_back(
            DfsEdge{src_id, next_id, p.Label(src_vertex), lab, elab});
        SetEdgeCovered(src_vertex, nbr, true);
        bool child_equal = false;
        if (AdmitAppended(equal_prefix, &child_equal)) {
          completed_any |= Recurse(child_equal);
        }
        SetEdgeCovered(src_vertex, nbr, false);
        current.edges.pop_back();
        vertex_of.pop_back();
        dfs_of[nbr] = -1;
        rightmost_path = std::move(saved_path);
      }
      if (completed_any) break;  // larger labels cannot improve the code
    }
    if (completed_any) return true;  // shallower sources cannot improve
  }
  return false;  // structural dead end
}

}  // namespace

namespace {

/// Shared implementation; returns false when max_steps was exceeded (the
/// code in *result is then the best found, not necessarily minimal).
bool MinimumDfsCodeImpl(const Pattern& pattern, int64_t max_steps,
                        DfsCode* out) {
  DfsCode& result = *out;
  result = DfsCode{};
  if (pattern.NumVertices() == 0) {
    result.root_label = -1;
    return true;
  }
  if (!pattern.IsConnected()) {
    result.root_label = -2;
    return true;
  }
  if (pattern.NumEdges() == 0) {
    result.root_label = pattern.Label(0);
    return true;
  }

  // Minimal first tuple: smallest (from_label, edge_label, to_label) over
  // directed edges.
  LabelId best_from = -1;
  LabelId best_to = -1;
  EdgeLabelId best_edge = -1;
  for (VertexId u = 0; u < pattern.NumVertices(); ++u) {
    for (VertexId v : pattern.Neighbors(u)) {
      LabelId lu = pattern.Label(u);
      LabelId lv = pattern.Label(v);
      EdgeLabelId le = pattern.EdgeLabel(u, v);
      if (best_from < 0 ||
          std::tie(lu, le, lv) < std::tie(best_from, best_edge, best_to)) {
        best_from = lu;
        best_to = lv;
        best_edge = le;
      }
    }
  }

  MinCodeSearch search;
  search.pattern = &pattern;
  search.max_steps = max_steps;
  search.dfs_of.assign(static_cast<size_t>(pattern.NumVertices()), -1);
  search.covered.resize(static_cast<size_t>(pattern.NumVertices()));
  for (VertexId v = 0; v < pattern.NumVertices(); ++v) {
    search.covered[v].assign(pattern.Neighbors(v).size(), false);
  }
  search.current.root_label = best_from;
  search.best.root_label = best_from;

  for (VertexId u = 0; u < pattern.NumVertices(); ++u) {
    if (pattern.Label(u) != best_from) continue;
    for (VertexId v : pattern.Neighbors(u)) {
      if (pattern.Label(v) != best_to) continue;
      if (pattern.EdgeLabel(u, v) != best_edge) continue;
      search.dfs_of[u] = 0;
      search.dfs_of[v] = 1;
      search.vertex_of = {u, v};
      search.rightmost_path = {0, 1};
      search.current.edges = {DfsEdge{0, 1, best_from, best_to, best_edge}};
      search.SetEdgeCovered(u, v, true);
      search.Recurse(/*equal_prefix=*/true);
      search.SetEdgeCovered(u, v, false);
      search.dfs_of[u] = -1;
      search.dfs_of[v] = -1;
      if (search.exceeded) break;
    }
    if (search.exceeded) break;
  }
  assert(search.have_best || search.exceeded);
  result = search.best;
  return !search.exceeded;
}

}  // namespace

DfsCode MinimumDfsCode(const Pattern& pattern) {
  DfsCode code;
  MinimumDfsCodeImpl(pattern, INT64_MAX, &code);
  return code;
}

bool MinimumDfsCodeBounded(const Pattern& pattern, int64_t max_steps,
                           DfsCode* out) {
  return MinimumDfsCodeImpl(pattern, max_steps, out);
}

std::string WlRefinementString(const Pattern& pattern) {
  auto mix = [](uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  };
  const int32_t n = pattern.NumVertices();
  std::vector<uint64_t> color(static_cast<size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    color[v] = mix(static_cast<uint64_t>(pattern.Label(v)) + 1);
  }
  std::vector<uint64_t> next(static_cast<size_t>(n));
  for (int round = 0; round < 3; ++round) {
    for (VertexId v = 0; v < n; ++v) {
      std::vector<uint64_t> nbr;
      nbr.reserve(pattern.Neighbors(v).size());
      for (VertexId u : pattern.Neighbors(v)) {
        // Edge labels participate in the refinement so edge-labeled
        // non-isomorphic patterns separate (0 for unlabeled edges).
        nbr.push_back(
            color[u] ^
            mix(static_cast<uint64_t>(pattern.EdgeLabel(v, u)) + 17));
      }
      std::sort(nbr.begin(), nbr.end());
      uint64_t acc = color[v];
      for (uint64_t c : nbr) acc = mix(acc ^ (c + 0x9e3779b97f4a7c15ULL));
      next[v] = acc;
    }
    color.swap(next);
  }
  // Final string: n, m, sorted vertex colors, sorted edge color pairs.
  std::vector<uint64_t> vertex_colors = color;
  std::sort(vertex_colors.begin(), vertex_colors.end());
  std::vector<uint64_t> edge_colors;
  for (const auto& [u, v] : pattern.Edges()) {
    uint64_t a = std::min(color[u], color[v]);
    uint64_t b = std::max(color[u], color[v]);
    edge_colors.push_back(
        mix(a) ^ (mix(b) * 3) ^
        mix(static_cast<uint64_t>(pattern.EdgeLabel(u, v)) + 29));
  }
  std::sort(edge_colors.begin(), edge_colors.end());
  std::ostringstream os;
  os << "n" << n << "m" << pattern.NumEdges() << ";";
  for (uint64_t c : vertex_colors) os << std::hex << c << ",";
  os << ";";
  for (uint64_t c : edge_colors) os << std::hex << c << ",";
  return os.str();
}

uint64_t PatternIsoHash(const Pattern& pattern) {
  const std::string key = WlRefinementString(pattern);
  // FNV-1a: deterministic across platforms and runs (std::hash is not
  // guaranteed either), so hashes can participate in byte-identical
  // serving results.
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h == 0 ? 1 : h;  // reserve 0 as the "not computed" sentinel
}

std::string DfsCodeToString(const DfsCode& code) {
  std::ostringstream os;
  os << "r" << code.root_label;
  for (const DfsEdge& e : code.edges) {
    os << ";" << e.from << "," << e.to << "," << e.from_label << ","
       << e.to_label;
    if (e.edge_label != 0) os << "," << e.edge_label;
  }
  return os.str();
}

std::string CanonicalString(const Pattern& pattern) {
  const int32_t n = pattern.NumVertices();
  // Symmetry gate, decided from isomorphism-invariant quantities only
  // (distinct (label, degree) signatures), so every isomorphic copy takes
  // the same branch: highly symmetric patterns would blow up the exact
  // search and use the WL fingerprint instead.
  if (n > 12 && pattern.NumEdges() > 0) {
    std::vector<std::pair<LabelId, int32_t>> sig;
    sig.reserve(static_cast<size_t>(n));
    for (VertexId v = 0; v < n; ++v) {
      sig.emplace_back(pattern.Label(v), pattern.Degree(v));
    }
    std::sort(sig.begin(), sig.end());
    sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
    if (static_cast<int32_t>(sig.size()) * 3 < n) {
      return "wl:" + WlRefinementString(pattern);
    }
  }
  DfsCode code;
  if (!MinimumDfsCodeBounded(pattern, 200000, &code)) {
    // Budget blow-up past the gate is vanishingly rare; the WL key stays
    // sound for "equal => possibly isomorphic" consumers.
    return "wl:" + WlRefinementString(pattern);
  }
  return DfsCodeToString(code);
}

Pattern PatternFromDfsCode(const DfsCode& code) {
  Pattern p;
  if (code.root_label < 0) return p;
  p.AddVertex(code.root_label);
  for (const DfsEdge& e : code.edges) {
    if (e.IsForward()) {
      VertexId v = p.AddVertex(e.to_label);
      assert(v == e.to);
      (void)v;
    }
    p.AddEdge(e.from, e.to, e.edge_label);
  }
  return p;
}

}  // namespace spidermine
