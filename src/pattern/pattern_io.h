#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "pattern/pattern.h"

/// \file pattern_io.h
/// Plain-text persistence for patterns, in an LG-style block format:
///
///   p <num_vertices> <num_edges>      # one block per pattern
///   v <vertex-id> <label>
///   e <u> <v>
///
/// Multiple blocks per file are allowed; comments (#) and blank lines are
/// ignored. Used by the CLI tool to export mining results.

namespace spidermine {

/// Serializes one pattern to a block.
std::string PatternToText(const Pattern& pattern);

/// Serializes many patterns; \p supports, when non-null, annotates each
/// block with a "# support = N" comment (same length as patterns).
std::string PatternsToText(const std::vector<Pattern>& patterns,
                           const std::vector<int64_t>* supports = nullptr);

/// Parses one or more pattern blocks from text.
Result<std::vector<Pattern>> ParsePatternsText(const std::string& text);

/// Writes patterns to a file (overwrites).
Status SavePatternsText(const std::vector<Pattern>& patterns,
                        const std::string& path,
                        const std::vector<int64_t>* supports = nullptr);

/// Reads patterns from a file.
Result<std::vector<Pattern>> LoadPatternsText(const std::string& path);

}  // namespace spidermine
