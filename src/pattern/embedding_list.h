#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/labeled_graph.h"
#include "pattern/embedding.h"
#include "spider/spider_store.h"

/// \file embedding_list.h
/// The incremental embedding-list engine: carries each in-flight lineage's
/// COMPLETE embedding set E[P] across growth rounds, so post-growth closure
/// reuses the list instead of re-discovering E[P] with a VF2 search per
/// candidate (the Pangolin / GraMi idea of level-extended embedding lists,
/// adapted to SpiderMine's spider-step growth).
///
/// The carried list is exact, not a sample: a star seed's list enumerates
/// every arrangement of leaves over every store anchor, a spider extension
/// extends every base embedding at the extension site, and a merge joins the
/// two parent lists on their overlap columns. Each operation therefore
/// preserves the invariant "list == E[P], bit for bit what VF2 would
/// enumerate" — which is what lets the closure phase substitute the list for
/// `FindEmbeddings` without changing a single output byte (both sides pass
/// through CanonicalizeEmbeddingOrder first, so even dedup representatives
/// agree).
///
/// Budget and overflow: every operation takes a budget (the query's
/// `embedding_list_budget`, pre-clamped by the caller to
/// `max_embeddings_per_pattern` so a complete list is never larger than what
/// VF2 was allowed to return). A list that would exceed the budget is
/// returned as `saturated` with its contents dropped — saturation is sticky
/// across extensions and joins, and a saturated (or absent) list sends the
/// consumer to the certified VF2 fallback. Results are byte-identical at
/// any budget; the budget only trades memory for closure-phase speed.
///
/// Determinism: the chunk-parallel builders (star build, merge join) write
/// per-chunk partial lists capped at budget+1 and fold them serially in
/// ascending chunk order. An unsaturated result is then the exact full
/// enumeration in a chunk-independent order, and the saturated verdict
/// depends only on the true list size — identical at any grain and thread
/// count. Callers inside pool workers must pass a null pool (nested
/// ParallelForChunks can deadlock); the serial path produces the same lists.

namespace spidermine {

class ThreadPool;
class CancellationToken;

/// A complete-or-saturated embedding set. Immutable once published via
/// EmbeddingListRef; shared_ptr sharing makes carrying a list through
/// collectors and result folds O(1).
struct EmbeddingList {
  /// E[P] in builder order; empty when saturated.
  std::vector<Embedding> embeddings;
  /// True when the list overflowed its budget (or a cancellation cut the
  /// build short): contents are dropped and every consumer must fall back
  /// to VF2. Sticky across extensions and joins.
  bool saturated = false;
};

using EmbeddingListRef = std::shared_ptr<const EmbeddingList>;

/// The canonical saturated list (empty contents, saturated = true).
EmbeddingListRef SaturatedEmbeddingList();

/// Groups a sorted leaf-key multiset into (key, count) runs.
std::vector<std::pair<SpiderLeafKey, int32_t>> GroupLeafKeys(
    std::span<const SpiderLeafKey> keys);

/// Enumerates every way to choose, for each (key, count) group, `count`
/// distinct vertices from that group's availability list as an ascending
/// COMBINATION — automorphic reassignments of equal-key leaves are produced
/// once. This is the occurrence-list semantics growth has always used
/// (GrowthPattern::embeddings); it under-counts E[P] on purpose.
/// \p emit receives the concatenated choice and returns false to stop;
/// the function returns false when stopped early.
bool EnumerateLeafCombinations(
    const std::vector<std::pair<SpiderLeafKey, int32_t>>& groups,
    const std::vector<std::vector<VertexId>>& avail,
    std::vector<VertexId>* chosen, size_t group_idx,
    const std::function<bool(const std::vector<VertexId>&)>& emit);

/// Enumerates every ordered injective ARRANGEMENT instead: equal-key leaves
/// are distinct pattern vertices, so E[P] contains every permutation of
/// their images as a distinct embedding — exactly what VF2 enumerates. The
/// complete-list builders below use this variant; using combinations there
/// would silently drop embeddings whenever a pattern has equal-key sibling
/// leaves. Emission order is deterministic: lexicographic in (group,
/// position, availability index).
bool EnumerateLeafArrangements(
    const std::vector<std::pair<SpiderLeafKey, int32_t>>& groups,
    const std::vector<std::vector<VertexId>>& avail,
    std::vector<VertexId>* chosen, size_t group_idx,
    const std::function<bool(const std::vector<VertexId>&)>& emit);

/// Enumerates every ordered ASSIGNMENT — tuples WITH repetition within a
/// group — for the homomorphic builders: distinct equal-key leaves may map
/// onto one shared neighbor, so each position independently tries every
/// availability-list entry (|avail|^count tuples per group). Cross-group
/// coincidence cannot arise (a neighbor has exactly one key), and a leaf can
/// never coincide with its own center (simple graphs have no self-loops).
/// Emission order is deterministic: lexicographic in (group, position,
/// availability index).
bool EnumerateLeafAssignments(
    const std::vector<std::pair<SpiderLeafKey, int32_t>>& groups,
    const std::vector<std::vector<VertexId>>& avail,
    std::vector<VertexId>* chosen, size_t group_idx,
    const std::function<bool(const std::vector<VertexId>&)>& emit);

/// Builds the complete E[star] of spider \p spider_id: for every store
/// anchor, every arrangement of the spider's leaves over the anchor's
/// fresh neighbors, in the store's pattern numbering (vertex 0 = head,
/// then leaves in `store.leaves()` order). Chunk-parallel over the anchor
/// list when \p pool is non-null (never pass a pool from inside a pool
/// worker); \p grain < 1 selects the pool's automatic grain. Returns a
/// saturated list when the budget overflows, \p budget <= 0, or \p token
/// is cancelled mid-build.
///
/// \p homomorphic switches the engine to homomorphic E[P]: centers come
/// from every head-labeled vertex (the store's anchor list requires
/// per-key DISTINCT neighbor counts and would under-cover homomorphisms),
/// and leaves are assigned with repetition (EnumerateLeafAssignments).
EmbeddingListRef BuildStarEmbeddingList(const LabeledGraph& graph,
                                        const SpiderStore& store,
                                        int32_t spider_id, int64_t budget,
                                        ThreadPool* pool = nullptr,
                                        const CancellationToken* token = nullptr,
                                        int64_t grain = 0,
                                        bool homomorphic = false);

/// Extends complete list \p base of a pattern P to the complete list of
/// P + \p new_leaves attached at pattern vertex \p v (the SpiderExtend
/// step): every base embedding contributes every arrangement of the new
/// leaves over fresh neighbors of its image of v. The spider-anchor filter
/// (`store.IsAnchoredAt(spider_id, e[v])`) is applied as a non-lossy prune:
/// an image that admits an arrangement necessarily has per-key neighbor
/// counts at or above the spider's leaf multiset, i.e. is an anchor.
/// Serial (runs inside growth workers). Saturation in \p base is sticky.
///
/// \p homomorphic skips the anchor prune (unsound for homomorphisms: equal-
/// key leaves may share one neighbor, so non-anchors can host them), allows
/// new leaves to coincide with already-embedded vertices, and assigns
/// leaves with repetition.
EmbeddingListRef ExtendEmbeddingListAtVertex(
    const LabeledGraph& graph, const SpiderStore& store, int32_t spider_id,
    const EmbeddingList& base, VertexId v,
    std::span<const SpiderLeafKey> new_leaves, int64_t budget,
    bool homomorphic = false);

/// Joins the complete lists of two merge parents into the complete list of
/// their union pattern. \p map_a[pu] / \p map_b[pv] give the union-pattern
/// vertex each parent-pattern vertex maps to (recorded from the union
/// instance that founded the candidate); together they cover all
/// \p num_union_vertices union vertices and overlap on the shared columns.
/// A union embedding is exactly a pair (ea, eb) that agrees on the overlap
/// columns and is injective across the exclusive ones, so the join hashes
/// b's list by overlap key and streams a's list through it — chunk-parallel
/// over a's list when \p pool is non-null, with the same deterministic
/// fold/saturation contract as BuildStarEmbeddingList. No pair produces
/// duplicates (an embedding determines its parent projections uniquely).
/// Saturation in either parent is sticky.
///
/// \p homomorphic drops the cross-injectivity check: a homomorphic union
/// embedding is ANY pair agreeing on the overlap columns (exclusive images
/// may collide), so the join reduces to the keyed cross product.
EmbeddingListRef JoinEmbeddingLists(const EmbeddingList& a,
                                    const EmbeddingList& b,
                                    const std::vector<VertexId>& map_a,
                                    const std::vector<VertexId>& map_b,
                                    int32_t num_union_vertices, int64_t budget,
                                    ThreadPool* pool = nullptr,
                                    const CancellationToken* token = nullptr,
                                    int64_t grain = 0,
                                    bool homomorphic = false);

/// Level-extension step shared with the complete baseline miner: appends to
/// \p out every extension of \p base embeddings mapping a NEW pattern
/// vertex (attached to pattern vertex \p src by an edge labeled
/// \p edge_label, with vertex label \p vertex_label) onto a fresh graph
/// neighbor. Stops once \p out reaches \p max_embeddings (the caller's
/// per-pattern cap) and returns false then, true when the enumeration
/// completed.
bool ExtendEmbeddingsNewVertex(const LabeledGraph& graph,
                               const std::vector<Embedding>& base,
                               VertexId src, EdgeLabelId edge_label,
                               LabelId vertex_label, int64_t max_embeddings,
                               std::vector<Embedding>* out);

/// Internal-edge step shared with the complete baseline miner: keeps the
/// \p embeddings whose images of pattern vertices \p u and \p v are joined
/// by a graph edge labeled \p edge_label (the embeddings of the pattern
/// with that edge added; the vertex set is unchanged).
std::vector<Embedding> FilterEmbeddingsInternalEdge(
    const LabeledGraph& graph, const std::vector<Embedding>& embeddings,
    VertexId u, VertexId v, EdgeLabelId edge_label);

}  // namespace spidermine
