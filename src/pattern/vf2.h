#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/labeled_graph.h"
#include "pattern/embedding.h"
#include "pattern/pattern.h"

/// \file vf2.h
/// Label-aware (sub)graph isomorphism. FindEmbeddings enumerates the
/// embeddings E[P] of a pattern in the network; ArePatternsIsomorphic is the
/// exact test that the spider-set filter (spider_set.h) guards.

namespace spidermine {

/// Options controlling embedding enumeration.
struct Vf2Options {
  /// Stop after this many embeddings (<=0: unlimited).
  int64_t max_embeddings = 0;
  /// Abort the search after visiting this many search-tree states, as a
  /// safety valve on pathological inputs (<=0: unlimited).
  int64_t max_states = 0;
  /// When >= 0, pattern vertex \p anchor_pattern_vertex must map to graph
  /// vertex \p anchor_graph_vertex (used for spider heads).
  VertexId anchor_pattern_vertex = -1;
  VertexId anchor_graph_vertex = -1;
  /// Enumerate label-preserving homomorphisms instead of subgraph
  /// isomorphisms: distinct pattern vertices may share a graph image. Edge
  /// consistency is unchanged (every pattern edge must map to a graph
  /// edge), which on self-loop-free graphs already forbids adjacent
  /// pattern vertices from collapsing onto one image.
  bool homomorphic = false;
};

/// Statistics of one enumeration run.
struct Vf2Stats {
  int64_t states_visited = 0;
  bool aborted = false;  ///< true when max_states cut the search short
};

/// Invokes \p callback for every embedding of \p pattern in \p graph, in a
/// deterministic order. The callback returns false to stop enumeration.
/// Requires a connected, non-empty pattern.
Vf2Stats EnumerateEmbeddings(const Pattern& pattern, const LabeledGraph& graph,
                             const Vf2Options& options,
                             const std::function<bool(const Embedding&)>& callback);

/// Collects embeddings into a vector (see EnumerateEmbeddings).
std::vector<Embedding> FindEmbeddings(const Pattern& pattern,
                                      const LabeledGraph& graph,
                                      const Vf2Options& options = {});

/// True iff at least one embedding exists.
bool ContainsEmbedding(const Pattern& pattern, const LabeledGraph& graph);

/// Exact labeled-graph isomorphism between two patterns (Definition 1).
bool ArePatternsIsomorphic(const Pattern& a, const Pattern& b);

/// Converts a pattern to an immutable LabeledGraph (for running graph
/// algorithms or embedding searches against a pattern).
LabeledGraph PatternToLabeledGraph(const Pattern& pattern);

}  // namespace spidermine
