#include "pattern/pattern.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace spidermine {

VertexId Pattern::AddVertex(LabelId label) {
  labels_.push_back(label);
  adjacency_.emplace_back();
  return static_cast<VertexId>(labels_.size() - 1);
}

bool Pattern::AddEdge(VertexId u, VertexId v, EdgeLabelId edge_label) {
  if (u == v || u < 0 || v < 0 || u >= NumVertices() || v >= NumVertices()) {
    return false;
  }
  if (HasEdge(u, v)) return false;
  auto& au = adjacency_[u];
  au.insert(std::upper_bound(au.begin(), au.end(), v), v);
  auto& av = adjacency_[v];
  av.insert(std::upper_bound(av.begin(), av.end(), u), u);
  ++num_edges_;
  if (edge_label != 0) {
    has_edge_labels_ = true;
    const auto key = std::make_pair(std::min(u, v), std::max(u, v));
    const auto entry = std::make_pair(key, edge_label);
    edge_labels_.insert(std::lower_bound(edge_labels_.begin(),
                                         edge_labels_.end(), entry),
                        entry);
  }
  return true;
}

bool Pattern::HasEdge(VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= NumVertices() || v >= NumVertices()) return false;
  const auto& au = adjacency_[u];
  return std::binary_search(au.begin(), au.end(), v);
}

EdgeLabelId Pattern::EdgeLabel(VertexId u, VertexId v) const {
  if (!HasEdge(u, v)) return -1;
  if (!has_edge_labels_) return 0;
  const auto key = std::make_pair(std::min(u, v), std::max(u, v));
  auto it = std::lower_bound(
      edge_labels_.begin(), edge_labels_.end(), key,
      [](const auto& entry, const auto& k) { return entry.first < k; });
  if (it != edge_labels_.end() && it->first == key) return it->second;
  return 0;
}

std::vector<int32_t> Pattern::BfsDistances(VertexId source,
                                           int32_t max_depth) const {
  std::vector<int32_t> dist(labels_.size(), -1);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    VertexId v = queue.front();
    queue.pop_front();
    if (max_depth >= 0 && dist[v] >= max_depth) continue;
    for (VertexId u : adjacency_[v]) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

bool Pattern::IsConnected() const {
  if (NumVertices() <= 1) return true;
  std::vector<int32_t> dist = BfsDistances(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](int32_t d) { return d < 0; });
}

int32_t Pattern::Eccentricity(VertexId v) const {
  std::vector<int32_t> dist = BfsDistances(v);
  int32_t ecc = 0;
  for (int32_t d : dist) {
    if (d < 0) return INT32_MAX;  // unreachable vertex: unbounded
    ecc = std::max(ecc, d);
  }
  return ecc;
}

int32_t Pattern::Diameter() const {
  int32_t diameter = 0;
  for (VertexId v = 0; v < NumVertices(); ++v) {
    int32_t ecc = Eccentricity(v);
    if (ecc == INT32_MAX) return INT32_MAX;
    diameter = std::max(diameter, ecc);
  }
  return diameter;
}

Pattern Pattern::InducedSubgraph(std::span<const VertexId> vertices) const {
  Pattern sub;
  std::vector<int32_t> position(labels_.size(), -1);
  for (size_t i = 0; i < vertices.size(); ++i) {
    position[vertices[i]] = static_cast<int32_t>(i);
    sub.AddVertex(labels_[vertices[i]]);
  }
  for (size_t i = 0; i < vertices.size(); ++i) {
    for (VertexId u : adjacency_[vertices[i]]) {
      if (position[u] >= 0) {
        sub.AddEdge(static_cast<VertexId>(i), position[u],
                    EdgeLabel(vertices[i], u));
      }
    }
  }
  return sub;
}

std::vector<LabelId> Pattern::SortedLabels() const {
  std::vector<LabelId> labels = labels_;
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::vector<std::pair<VertexId, VertexId>> Pattern::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(static_cast<size_t>(num_edges_));
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (VertexId u : adjacency_[v]) {
      if (v < u) edges.emplace_back(v, u);
    }
  }
  return edges;
}

std::vector<Pattern::LabeledEdge> Pattern::LabeledEdges() const {
  std::vector<LabeledEdge> edges;
  edges.reserve(static_cast<size_t>(num_edges_));
  for (VertexId v = 0; v < NumVertices(); ++v) {
    for (VertexId u : adjacency_[v]) {
      if (v < u) edges.push_back(LabeledEdge{v, u, EdgeLabel(v, u)});
    }
  }
  return edges;
}

std::string Pattern::ToString() const {
  std::ostringstream os;
  os << "n=" << NumVertices() << " m=" << NumEdges() << "; labels=[";
  for (VertexId v = 0; v < NumVertices(); ++v) {
    if (v) os << ",";
    os << labels_[v];
  }
  os << "]; edges=";
  bool first = true;
  for (const auto& [u, v] : Edges()) {
    if (!first) os << ",";
    os << u << "-" << v;
    if (has_edge_labels_) os << "(" << EdgeLabel(u, v) << ")";
    first = false;
  }
  return os.str();
}

bool Pattern::operator==(const Pattern& other) const {
  return labels_ == other.labels_ && adjacency_ == other.adjacency_ &&
         edge_labels_ == other.edge_labels_;
}

}  // namespace spidermine
