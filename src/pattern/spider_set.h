#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pattern/pattern.h"

/// \file spider_set.h
/// The spider-set representation S[P] of a pattern (paper Sec. 4.2.2):
/// the multiset of the canonicalized r-neighborhood spiders of every vertex
/// of P, with the head vertex marked. Theorem 2: P isomorphic to Q implies
/// S[P] == S[Q]; the contrapositive lets SpiderMine skip most pairwise
/// isomorphism tests (spider-set pruning).
///
/// Equal spider-sets do NOT imply isomorphism (the paper's Figure 3(II)
/// counterexample at r=1 is reproduced in the tests); callers must confirm
/// collisions with vf2.h::ArePatternsIsomorphic.

namespace spidermine {

/// The multiset S[P], stored as sorted 64-bit hashes of the canonical codes
/// of the per-vertex r-neighborhood spiders, plus the per-vertex table that
/// enables the paper's incremental update rule ("update those spiders whose
/// heads are within distance r to the common boundary").
///
/// Hashing keeps the filter sound: identical canonical codes always hash
/// identically, so isomorphic patterns always compare equal; a (vanishingly
/// unlikely) hash collision can only cause a redundant exact check, never a
/// wrongly skipped one.
class SpiderSetRepr {
 public:
  SpiderSetRepr() = default;

  /// Computes S[P] with spider radius \p r >= 1 from scratch.
  static SpiderSetRepr Compute(const Pattern& pattern, int32_t r);

  /// The paper's Sec. 4.2.2 update: S[P'] for an extension P' of the
  /// pattern this repr was computed for, recomputing only the balls whose
  /// heads changed. \p changed lists the PRE-EXISTING vertices whose
  /// r-neighborhood was altered (for an extension at boundary vertex v
  /// with r = 1 that is {v} union N(v)); vertices new in \p extended are
  /// always computed fresh. Equivalent to Compute(extended, r) at a cost
  /// proportional to |changed| + #new instead of |V(P')|.
  SpiderSetRepr Updated(const Pattern& extended, int32_t r,
                        std::span<const VertexId> changed) const;

  /// Multiset equality.
  bool operator==(const SpiderSetRepr& other) const {
    return combined_ == other.combined_ && codes_ == other.codes_;
  }

  /// A single 64-bit digest for hash-bucketing patterns.
  uint64_t digest() const { return combined_; }

  /// Number of spiders in the multiset (= |V(P)|).
  size_t size() const { return codes_.size(); }

  /// Sorted per-vertex spider code hashes.
  const std::vector<uint64_t>& codes() const { return codes_; }

 private:
  void Finalize();

  std::vector<uint64_t> codes_;      // sorted multiset
  std::vector<uint64_t> by_vertex_;  // code of vertex i's ball (unsorted)
  uint64_t combined_ = 0;
};

/// The r-neighborhood spider of \p center inside \p pattern: the subgraph of
/// P induced on the vertices within distance r of center, with the head
/// distinguishable (its label is tagged). Exposed for tests and for the
/// pruning-power bench.
Pattern NeighborhoodSpider(const Pattern& pattern, VertexId center, int32_t r);

}  // namespace spidermine
