#include "pattern/embedding.h"

#include <algorithm>

namespace spidermine {

std::vector<VertexId> SortedImage(const Embedding& embedding) {
  std::vector<VertexId> image = embedding;
  std::sort(image.begin(), image.end());
  return image;
}

bool ImagesIntersect(const std::vector<VertexId>& a,
                     const std::vector<VertexId>& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

uint64_t ImageFingerprint(const Embedding& embedding) {
  // Sum/xor of per-vertex mixes: order independent.
  uint64_t acc_sum = 0;
  uint64_t acc_xor = 0;
  for (VertexId v : embedding) {
    uint64_t x = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    acc_sum += x;
    acc_xor ^= x;
  }
  return acc_sum ^ (acc_xor * 0xff51afd7ed558ccdULL);
}

}  // namespace spidermine
