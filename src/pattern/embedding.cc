#include "pattern/embedding.h"

#include <algorithm>

namespace spidermine {

std::vector<VertexId> SortedImage(const Embedding& embedding) {
  std::vector<VertexId> image = embedding;
  std::sort(image.begin(), image.end());
  return image;
}

namespace {

// Galloping membership scan: walk the short list, locating each element in
// the long list by doubling probes from a moving lower bound. O(|short| *
// log(|long| / |short|)) — the win over the two-pointer merge when one list
// dwarfs the other (a hub pattern's image against a small one).
bool IntersectGalloping(const std::vector<VertexId>& small,
                        const std::vector<VertexId>& large) {
  size_t lo = 0;
  for (VertexId x : small) {
    // Doubling probe for the first large[hi] >= x.
    size_t step = 1;
    size_t hi = lo;
    while (hi < large.size() && large[hi] < x) {
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    if (hi >= large.size()) hi = large.size();
    // Binary search in (lo-1, hi]; lo already points at a value >= all
    // probes below x.
    const auto it = std::lower_bound(large.begin() + static_cast<ptrdiff_t>(lo),
                                     large.begin() + static_cast<ptrdiff_t>(hi),
                                     x);
    if (it != large.end() && *it == x) return true;
    lo = static_cast<size_t>(it - large.begin());
    if (lo >= large.size()) return false;
  }
  return false;
}

}  // namespace

bool ImagesIntersect(const std::vector<VertexId>& a,
                     const std::vector<VertexId>& b) {
  if (a.empty() || b.empty()) return false;
  // Early range rejection: sorted inputs whose ranges don't overlap cannot
  // share an element. This alone settles most pairs on stores whose anchors
  // cluster by vertex range.
  if (a.back() < b.front() || b.back() < a.front()) return false;
  const std::vector<VertexId>& small = a.size() <= b.size() ? a : b;
  const std::vector<VertexId>& large = a.size() <= b.size() ? b : a;
  // Skewed sizes: gallop the long list. Comparable sizes: two-pointer merge
  // (galloping's probe overhead loses when both advance in lockstep).
  if (large.size() / 8 >= small.size()) {
    return IntersectGalloping(small, large);
  }
  size_t i = 0;
  size_t j = 0;
  while (i < small.size() && j < large.size()) {
    if (small[i] == large[j]) return true;
    if (small[i] < large[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

void CanonicalizeEmbeddingOrder(std::vector<Embedding>* embeddings) {
  std::sort(embeddings->begin(), embeddings->end());
}

uint64_t ImageFingerprint(const Embedding& embedding) {
  // Sum/xor of per-vertex mixes: order independent.
  uint64_t acc_sum = 0;
  uint64_t acc_xor = 0;
  for (VertexId v : embedding) {
    uint64_t x = static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    acc_sum += x;
    acc_xor ^= x;
  }
  return acc_sum ^ (acc_xor * 0xff51afd7ed558ccdULL);
}

}  // namespace spidermine
