#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/labeled_graph.h"

/// \file pattern.h
/// A graph pattern: a small mutable vertex-labeled undirected graph. The
/// paper's patterns grow to a few hundred vertices; this representation is
/// adjacency-list based and optimized for incremental growth (AddVertex /
/// AddEdge) rather than for scale.

namespace spidermine {

/// A small mutable labeled graph. Vertex ids are dense 0..n-1 and stable
/// under growth (vertices are never removed).
class Pattern {
 public:
  Pattern() = default;

  /// Creates a single-vertex pattern.
  explicit Pattern(LabelId label) { AddVertex(label); }

  /// Adds a vertex carrying \p label; returns its id.
  VertexId AddVertex(LabelId label);

  /// Adds the undirected edge {u, v} carrying \p edge_label (0 = unlabeled;
  /// paper Sec. 3 extension). Returns false (and changes nothing) for
  /// self-loops and duplicate edges.
  bool AddEdge(VertexId u, VertexId v, EdgeLabelId edge_label = 0);

  /// Label of edge {u, v}; 0 for unlabeled edges, -1 when absent.
  EdgeLabelId EdgeLabel(VertexId u, VertexId v) const;

  /// True iff any edge carries a nonzero label.
  bool HasEdgeLabels() const { return has_edge_labels_; }

  /// Number of vertices.
  int32_t NumVertices() const { return static_cast<int32_t>(labels_.size()); }

  /// Number of edges. The paper's pattern size |P| is this count.
  int32_t NumEdges() const { return num_edges_; }

  /// Label of vertex \p v.
  LabelId Label(VertexId v) const { return labels_[v]; }

  /// Sorted neighbors of \p v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_[v].data(), adjacency_[v].size()};
  }

  /// Degree of \p v.
  int32_t Degree(VertexId v) const {
    return static_cast<int32_t>(adjacency_[v].size());
  }

  /// True iff the undirected edge {u, v} exists.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Hop distances from \p source within the pattern (-1 if unreachable),
  /// truncated at \p max_depth when non-negative.
  std::vector<int32_t> BfsDistances(VertexId source,
                                    int32_t max_depth = -1) const;

  /// True iff the pattern is connected (the empty pattern is connected).
  bool IsConnected() const;

  /// Max over shortest distances between all vertex pairs; the paper's
  /// diam(P). Requires a connected pattern.
  int32_t Diameter() const;

  /// Max distance from \p v to any other vertex (eccentricity). The pattern
  /// is "r-bounded from v" iff Eccentricity(v) <= r (paper Sec. 3).
  int32_t Eccentricity(VertexId v) const;

  /// True iff every vertex is within distance \p r of \p v.
  bool IsRBoundedFrom(VertexId v, int32_t r) const {
    return Eccentricity(v) <= r;
  }

  /// The subgraph induced on \p vertices (in the given order: induced vertex
  /// i corresponds to vertices[i]).
  Pattern InducedSubgraph(std::span<const VertexId> vertices) const;

  /// Sorted multiset of vertex labels, for cheap iso pre-checks.
  std::vector<LabelId> SortedLabels() const;

  /// All edges as (u, v) pairs with u < v, sorted.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

  /// One labeled edge (u < v).
  struct LabeledEdge {
    VertexId u;
    VertexId v;
    EdgeLabelId label;
  };

  /// All edges with their labels, sorted by (u, v).
  std::vector<LabeledEdge> LabeledEdges() const;

  /// Human-readable dump ("n=3 m=2; labels=[0,1,1]; edges=0-1,0-2").
  std::string ToString() const;

  /// Structural equality under the identity vertex mapping (NOT isomorphism;
  /// see ArePatternsIsomorphic in vf2.h for that).
  bool operator==(const Pattern& other) const;

 private:
  std::vector<LabelId> labels_;
  std::vector<std::vector<VertexId>> adjacency_;
  /// Labels of edges with nonzero labels, keyed by (min(u,v), max(u,v)).
  /// Sorted; empty while the pattern is edge-unlabeled so the common
  /// vertex-label-only path pays nothing.
  std::vector<std::pair<std::pair<VertexId, VertexId>, EdgeLabelId>>
      edge_labels_;
  int32_t num_edges_ = 0;
  bool has_edge_labels_ = false;
};

}  // namespace spidermine
