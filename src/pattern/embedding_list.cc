#include "pattern/embedding_list.h"

#include <algorithm>
#include <map>

#include "common/thread_pool.h"

namespace spidermine {

namespace {

/// Arrangement recursion within one (key, count) group: fills positions
/// left to right, each position trying every unused availability index in
/// ascending order, then descends into the next group. Pools of different
/// groups are disjoint (a neighbor has exactly one key), so cross-group
/// injectivity is automatic.
bool ArrangeGroup(const std::vector<std::pair<SpiderLeafKey, int32_t>>& groups,
                  const std::vector<std::vector<VertexId>>& avail,
                  std::vector<VertexId>* chosen, size_t group_idx, int32_t pos,
                  std::vector<char>* used,
                  const std::function<bool(const std::vector<VertexId>&)>& emit) {
  if (pos == groups[group_idx].second) {
    return EnumerateLeafArrangements(groups, avail, chosen, group_idx + 1,
                                     emit);
  }
  const std::vector<VertexId>& pool = avail[group_idx];
  for (size_t i = 0; i < pool.size(); ++i) {
    if ((*used)[i]) continue;
    (*used)[i] = 1;
    chosen->push_back(pool[i]);
    bool keep_going =
        ArrangeGroup(groups, avail, chosen, group_idx, pos + 1, used, emit);
    chosen->pop_back();
    (*used)[i] = 0;
    if (!keep_going) return false;
  }
  return true;
}

/// Availability lists per leaf-key group among the neighbors of \p center,
/// excluding \p forbidden_image (sorted; may be empty).
std::vector<std::vector<VertexId>> AvailabilityLists(
    const LabeledGraph& graph, VertexId center,
    const std::vector<std::pair<SpiderLeafKey, int32_t>>& groups,
    const std::vector<VertexId>& forbidden_image) {
  std::vector<std::vector<VertexId>> avail(groups.size());
  for (VertexId x : graph.Neighbors(center)) {
    if (std::binary_search(forbidden_image.begin(), forbidden_image.end(),
                           x)) {
      continue;
    }
    const SpiderLeafKey key{graph.EdgeLabel(center, x), graph.Label(x)};
    for (size_t g = 0; g < groups.size(); ++g) {
      if (key == groups[g].first) avail[g].push_back(x);
    }
  }
  return avail;
}

/// Serial fold of chunk-partial lists: saturated iff any chunk overflowed
/// its budget+1 cap (then its true count already exceeds the budget) or the
/// exact total does. An unsaturated fold concatenates exact per-chunk
/// enumerations in ascending chunk order, so content is grain-independent.
EmbeddingListRef FoldChunks(std::vector<std::vector<Embedding>>&& partial,
                            const std::vector<char>& overflow,
                            int64_t budget) {
  int64_t total = 0;
  bool saturated = false;
  for (const char o : overflow) saturated |= (o != 0);
  for (const std::vector<Embedding>& chunk : partial) {
    total += static_cast<int64_t>(chunk.size());
  }
  if (saturated || total > budget) return SaturatedEmbeddingList();
  auto list = std::make_shared<EmbeddingList>();
  list->embeddings.reserve(static_cast<size_t>(total));
  for (std::vector<Embedding>& chunk : partial) {
    for (Embedding& e : chunk) list->embeddings.push_back(std::move(e));
  }
  return list;
}

}  // namespace

EmbeddingListRef SaturatedEmbeddingList() {
  static const EmbeddingListRef kSaturated = [] {
    auto list = std::make_shared<EmbeddingList>();
    list->saturated = true;
    return list;
  }();
  return kSaturated;
}

std::vector<std::pair<SpiderLeafKey, int32_t>> GroupLeafKeys(
    std::span<const SpiderLeafKey> keys) {
  std::vector<std::pair<SpiderLeafKey, int32_t>> groups;
  for (const SpiderLeafKey& k : keys) {
    if (!groups.empty() && groups.back().first == k) {
      ++groups.back().second;
    } else {
      groups.emplace_back(k, 1);
    }
  }
  return groups;
}

bool EnumerateLeafCombinations(
    const std::vector<std::pair<SpiderLeafKey, int32_t>>& groups,
    const std::vector<std::vector<VertexId>>& avail,
    std::vector<VertexId>* chosen, size_t group_idx,
    const std::function<bool(const std::vector<VertexId>&)>& emit) {
  if (group_idx == groups.size()) return emit(*chosen);
  const int32_t need = groups[group_idx].second;
  const std::vector<VertexId>& pool = avail[group_idx];
  if (static_cast<int32_t>(pool.size()) < need) return true;  // no choice
  // Iterative combination enumeration over `pool`.
  std::vector<int32_t> idx(static_cast<size_t>(need));
  for (int32_t i = 0; i < need; ++i) idx[i] = i;
  while (true) {
    size_t base = chosen->size();
    for (int32_t i = 0; i < need; ++i) chosen->push_back(pool[idx[i]]);
    bool keep_going =
        EnumerateLeafCombinations(groups, avail, chosen, group_idx + 1, emit);
    chosen->resize(base);
    if (!keep_going) return false;
    // Advance combination.
    int32_t pos = need - 1;
    while (pos >= 0 &&
           idx[pos] == static_cast<int32_t>(pool.size()) - need + pos) {
      --pos;
    }
    if (pos < 0) return true;
    ++idx[pos];
    for (int32_t i = pos + 1; i < need; ++i) idx[i] = idx[i - 1] + 1;
  }
}

bool EnumerateLeafArrangements(
    const std::vector<std::pair<SpiderLeafKey, int32_t>>& groups,
    const std::vector<std::vector<VertexId>>& avail,
    std::vector<VertexId>* chosen, size_t group_idx,
    const std::function<bool(const std::vector<VertexId>&)>& emit) {
  if (group_idx == groups.size()) return emit(*chosen);
  const int32_t need = groups[group_idx].second;
  const std::vector<VertexId>& pool = avail[group_idx];
  if (static_cast<int32_t>(pool.size()) < need) return true;  // no choice
  std::vector<char> used(pool.size(), 0);
  return ArrangeGroup(groups, avail, chosen, group_idx, 0, &used, emit);
}

bool EnumerateLeafAssignments(
    const std::vector<std::pair<SpiderLeafKey, int32_t>>& groups,
    const std::vector<std::vector<VertexId>>& avail,
    std::vector<VertexId>* chosen, size_t group_idx,
    const std::function<bool(const std::vector<VertexId>&)>& emit) {
  if (group_idx == groups.size()) return emit(*chosen);
  const int32_t need = groups[group_idx].second;
  const std::vector<VertexId>& pool = avail[group_idx];
  if (pool.empty()) return true;  // no choice for this group
  // Iterative odometer over `need` positions, each running through the
  // whole pool (tuples with repetition).
  std::vector<int32_t> idx(static_cast<size_t>(need), 0);
  while (true) {
    size_t base = chosen->size();
    for (int32_t i = 0; i < need; ++i) chosen->push_back(pool[idx[i]]);
    bool keep_going =
        EnumerateLeafAssignments(groups, avail, chosen, group_idx + 1, emit);
    chosen->resize(base);
    if (!keep_going) return false;
    // Advance odometer.
    int32_t pos = need - 1;
    while (pos >= 0 && idx[pos] == static_cast<int32_t>(pool.size()) - 1) {
      idx[pos] = 0;
      --pos;
    }
    if (pos < 0) return true;
    ++idx[pos];
  }
}

EmbeddingListRef BuildStarEmbeddingList(const LabeledGraph& graph,
                                        const SpiderStore& store,
                                        int32_t spider_id, int64_t budget,
                                        ThreadPool* pool,
                                        const CancellationToken* token,
                                        int64_t grain, bool homomorphic) {
  if (budget <= 0) return SaturatedEmbeddingList();
  const auto groups = GroupLeafKeys(store.leaves(spider_id));
  // Homomorphic centers: any head-labeled vertex with >= 1 neighbor per
  // leaf key qualifies (the admission happens naturally when a group's
  // availability list is empty); the store anchor list demands per-key
  // DISTINCT counts and would drop such centers.
  std::span<const VertexId> centers = store.anchors(spider_id);
  if (homomorphic) {
    const LabelId head = store.head_label(spider_id);
    centers = head < graph.NumLabels() ? graph.VerticesWithLabel(head)
                                       : std::span<const VertexId>{};
  }
  const int64_t n = static_cast<int64_t>(centers.size());
  if (n == 0) return std::make_shared<EmbeddingList>();

  std::vector<std::vector<Embedding>> partial(static_cast<size_t>(n));
  std::vector<char> overflow(static_cast<size_t>(n), 0);
  const int64_t cap = budget + 1;
  auto body = [&](int64_t begin, int64_t end) {
    std::vector<Embedding>& out = partial[static_cast<size_t>(begin)];
    for (int64_t i = begin; i < end; ++i) {
      if (token != nullptr && token->IsCancelled()) {
        overflow[static_cast<size_t>(begin)] = 1;
        return;
      }
      const VertexId anchor = centers[static_cast<size_t>(i)];
      if (groups.empty()) {
        out.push_back({anchor});
        if (static_cast<int64_t>(out.size()) >= cap) {
          overflow[static_cast<size_t>(begin)] = 1;
          return;
        }
        continue;
      }
      // Homomorphic leaves may not coincide with the center anyway (no
      // self-loops on simple graphs), so the empty forbidden set is exact.
      const std::vector<std::vector<VertexId>> avail = AvailabilityLists(
          graph, anchor, groups,
          homomorphic ? std::vector<VertexId>{}
                      : std::vector<VertexId>{anchor});
      std::vector<VertexId> chosen;
      auto emit = [&](const std::vector<VertexId>& leafs) {
        Embedding e;
        e.reserve(1 + leafs.size());
        e.push_back(anchor);
        for (VertexId x : leafs) e.push_back(x);
        out.push_back(std::move(e));
        return static_cast<int64_t>(out.size()) < cap;
      };
      bool completed =
          homomorphic
              ? EnumerateLeafAssignments(groups, avail, &chosen, 0, emit)
              : EnumerateLeafArrangements(groups, avail, &chosen, 0, emit);
      if (!completed) {
        overflow[static_cast<size_t>(begin)] = 1;
        return;
      }
    }
  };
  if (pool != nullptr && n > 1) {
    pool->ParallelForChunks(n, grain, body, token);
  } else {
    body(0, n);
  }
  return FoldChunks(std::move(partial), overflow, budget);
}

EmbeddingListRef ExtendEmbeddingListAtVertex(
    const LabeledGraph& graph, const SpiderStore& store, int32_t spider_id,
    const EmbeddingList& base, VertexId v,
    std::span<const SpiderLeafKey> new_leaves, int64_t budget,
    bool homomorphic) {
  if (budget <= 0 || base.saturated) return SaturatedEmbeddingList();
  const auto groups = GroupLeafKeys(new_leaves);
  auto list = std::make_shared<EmbeddingList>();
  const int64_t cap = budget + 1;
  for (const Embedding& e : base.embeddings) {
    const VertexId gv = e[v];
    // Non-lossy prune: an arrangement of the spider's fresh leaves plus the
    // already-embedded N_P(v) images demands per-key neighbor counts at or
    // above the spider's full leaf multiset, which is the store's anchor
    // condition — so non-anchors contribute nothing. Unsound under
    // homomorphism (equal-key leaves may share one neighbor), so skipped.
    if (!homomorphic && !store.IsAnchoredAt(spider_id, gv)) continue;
    // Homomorphic leaves may also land on already-embedded vertices: the
    // only NEW pattern edges run leaf->v, and Neighbors(gv) guarantees
    // those map to graph edges regardless of coincidences elsewhere.
    const std::vector<VertexId> image =
        homomorphic ? std::vector<VertexId>{} : SortedImage(e);
    const std::vector<std::vector<VertexId>> avail =
        AvailabilityLists(graph, gv, groups, image);
    std::vector<VertexId> chosen;
    auto emit = [&](const std::vector<VertexId>& leafs) {
      Embedding extended = e;
      for (VertexId x : leafs) extended.push_back(x);
      list->embeddings.push_back(std::move(extended));
      return static_cast<int64_t>(list->embeddings.size()) < cap;
    };
    bool completed =
        homomorphic ? EnumerateLeafAssignments(groups, avail, &chosen, 0, emit)
                    : EnumerateLeafArrangements(groups, avail, &chosen, 0, emit);
    if (!completed) return SaturatedEmbeddingList();
  }
  if (static_cast<int64_t>(list->embeddings.size()) > budget) {
    return SaturatedEmbeddingList();
  }
  return list;
}

EmbeddingListRef JoinEmbeddingLists(const EmbeddingList& a,
                                    const EmbeddingList& b,
                                    const std::vector<VertexId>& map_a,
                                    const std::vector<VertexId>& map_b,
                                    int32_t num_union_vertices, int64_t budget,
                                    ThreadPool* pool,
                                    const CancellationToken* token,
                                    int64_t grain, bool homomorphic) {
  if (budget <= 0 || a.saturated || b.saturated) {
    return SaturatedEmbeddingList();
  }
  // Column analysis: which parent vertex (if any) covers each union column.
  std::vector<int32_t> in_a(static_cast<size_t>(num_union_vertices), -1);
  std::vector<int32_t> in_b(static_cast<size_t>(num_union_vertices), -1);
  for (size_t pu = 0; pu < map_a.size(); ++pu) {
    in_a[static_cast<size_t>(map_a[pu])] = static_cast<int32_t>(pu);
  }
  for (size_t pv = 0; pv < map_b.size(); ++pv) {
    in_b[static_cast<size_t>(map_b[pv])] = static_cast<int32_t>(pv);
  }
  std::vector<std::pair<int32_t, int32_t>> shared;  // (a vertex, b vertex)
  std::vector<int32_t> b_exclusive;                 // b vertices not shared
  for (int32_t t = 0; t < num_union_vertices; ++t) {
    if (in_a[static_cast<size_t>(t)] >= 0 && in_b[static_cast<size_t>(t)] >= 0) {
      shared.emplace_back(in_a[static_cast<size_t>(t)],
                          in_b[static_cast<size_t>(t)]);
    }
  }
  for (size_t pv = 0; pv < map_b.size(); ++pv) {
    if (in_a[static_cast<size_t>(map_b[pv])] < 0) {
      b_exclusive.push_back(static_cast<int32_t>(pv));
    }
  }

  // Hash b's list by its overlap-column images. std::map keeps the probe
  // deterministic and is cheap at list sizes bounded by the budget.
  std::map<std::vector<VertexId>, std::vector<int64_t>> by_overlap;
  for (size_t ej = 0; ej < b.embeddings.size(); ++ej) {
    std::vector<VertexId> key;
    key.reserve(shared.size());
    for (const auto& [pu, pv] : shared) {
      key.push_back(b.embeddings[ej][static_cast<size_t>(pv)]);
    }
    by_overlap[std::move(key)].push_back(static_cast<int64_t>(ej));
  }

  const int64_t n = static_cast<int64_t>(a.embeddings.size());
  std::vector<std::vector<Embedding>> partial(static_cast<size_t>(n));
  std::vector<char> overflow(static_cast<size_t>(n), 0);
  const int64_t cap = budget + 1;
  auto body = [&](int64_t begin, int64_t end) {
    std::vector<Embedding>& out = partial[static_cast<size_t>(begin)];
    std::vector<VertexId> key(shared.size());
    for (int64_t i = begin; i < end; ++i) {
      if (token != nullptr && token->IsCancelled()) {
        overflow[static_cast<size_t>(begin)] = 1;
        return;
      }
      const Embedding& ea = a.embeddings[static_cast<size_t>(i)];
      for (size_t s = 0; s < shared.size(); ++s) {
        key[s] = ea[static_cast<size_t>(shared[s].first)];
      }
      const auto it = by_overlap.find(key);
      if (it == by_overlap.end()) continue;
      const std::vector<VertexId> a_image =
          homomorphic ? std::vector<VertexId>{} : SortedImage(ea);
      for (int64_t ej : it->second) {
        const Embedding& eb = b.embeddings[static_cast<size_t>(ej)];
        // Cross-injectivity: b-exclusive images must avoid a's image
        // entirely (shared columns agree by key; intra-parent injectivity
        // is given). A homomorphic union embedding is any key-agreeing
        // pair, so the check is skipped there.
        bool ok = true;
        if (!homomorphic) {
          for (int32_t pv : b_exclusive) {
            if (std::binary_search(a_image.begin(), a_image.end(),
                                   eb[static_cast<size_t>(pv)])) {
              ok = false;
              break;
            }
          }
        }
        if (!ok) continue;
        Embedding f(static_cast<size_t>(num_union_vertices));
        for (size_t pu = 0; pu < map_a.size(); ++pu) {
          f[static_cast<size_t>(map_a[pu])] = ea[pu];
        }
        for (size_t pv = 0; pv < map_b.size(); ++pv) {
          f[static_cast<size_t>(map_b[pv])] = eb[pv];
        }
        out.push_back(std::move(f));
        if (static_cast<int64_t>(out.size()) >= cap) {
          overflow[static_cast<size_t>(begin)] = 1;
          return;
        }
      }
    }
  };
  if (n == 0) return std::make_shared<EmbeddingList>();
  if (pool != nullptr && n > 1) {
    pool->ParallelForChunks(n, grain, body, token);
  } else {
    body(0, n);
  }
  return FoldChunks(std::move(partial), overflow, budget);
}

bool ExtendEmbeddingsNewVertex(const LabeledGraph& graph,
                               const std::vector<Embedding>& base,
                               VertexId src, EdgeLabelId edge_label,
                               LabelId vertex_label, int64_t max_embeddings,
                               std::vector<Embedding>* out) {
  for (const Embedding& e : base) {
    const std::vector<VertexId> image = SortedImage(e);
    for (VertexId x : graph.Neighbors(e[static_cast<size_t>(src)])) {
      if (graph.Label(x) != vertex_label ||
          std::binary_search(image.begin(), image.end(), x)) {
        continue;
      }
      if (graph.EdgeLabel(e[static_cast<size_t>(src)], x) != edge_label) {
        continue;
      }
      Embedding extended = e;
      extended.push_back(x);
      out->push_back(std::move(extended));
      if (static_cast<int64_t>(out->size()) >= max_embeddings) return false;
    }
  }
  return true;
}

std::vector<Embedding> FilterEmbeddingsInternalEdge(
    const LabeledGraph& graph, const std::vector<Embedding>& embeddings,
    VertexId u, VertexId v, EdgeLabelId edge_label) {
  std::vector<Embedding> kept;
  for (const Embedding& e : embeddings) {
    const VertexId gu = e[static_cast<size_t>(u)];
    const VertexId gv = e[static_cast<size_t>(v)];
    if (graph.HasEdge(gu, gv) && graph.EdgeLabel(gu, gv) == edge_label) {
      kept.push_back(e);
    }
  }
  return kept;
}

}  // namespace spidermine
