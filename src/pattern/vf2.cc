#include "pattern/vf2.h"

#include <algorithm>
#include <cassert>

#include "graph/graph_builder.h"

namespace spidermine {

namespace {

/// Chooses the order in which pattern vertices are matched: a BFS-like
/// order in which every vertex after the first has a previously ordered
/// neighbor (so candidate sets come from adjacency, never from a full
/// vertex scan). The start vertex is the one whose label is rarest in the
/// graph (most selective), unless an anchor dictates the start.
std::vector<VertexId> MatchingOrder(const Pattern& pattern,
                                    const LabeledGraph& graph,
                                    VertexId anchor_pattern_vertex) {
  const int32_t n = pattern.NumVertices();
  VertexId start = 0;
  if (anchor_pattern_vertex >= 0) {
    start = anchor_pattern_vertex;
  } else {
    int64_t best_freq = INT64_MAX;
    for (VertexId v = 0; v < n; ++v) {
      LabelId l = pattern.Label(v);
      int64_t freq =
          l < graph.NumLabels() ? graph.LabelCount(l) : 0;
      // Prefer rare labels; tie-break on high degree (more constraints).
      if (freq < best_freq ||
          (freq == best_freq && pattern.Degree(v) > pattern.Degree(start))) {
        best_freq = freq;
        start = v;
      }
    }
  }
  std::vector<VertexId> order{start};
  std::vector<bool> placed(static_cast<size_t>(n), false);
  placed[start] = true;
  while (static_cast<int32_t>(order.size()) < n) {
    // Among frontier vertices (unplaced with a placed neighbor), pick the
    // one with the most placed neighbors (most constrained first).
    VertexId best = -1;
    int32_t best_constraints = -1;
    for (VertexId v = 0; v < n; ++v) {
      if (placed[v]) continue;
      int32_t constraints = 0;
      for (VertexId u : pattern.Neighbors(v)) {
        if (placed[u]) ++constraints;
      }
      if (constraints > 0 && constraints > best_constraints) {
        best_constraints = constraints;
        best = v;
      }
    }
    assert(best >= 0 && "pattern must be connected");
    placed[best] = true;
    order.push_back(best);
  }
  return order;
}

struct SearchState {
  const Pattern* pattern;
  const LabeledGraph* graph;
  const Vf2Options* options;
  const std::function<bool(const Embedding&)>* callback;
  std::vector<VertexId> order;          // matching order of pattern vertices
  std::vector<VertexId> image;          // pattern vertex -> graph vertex or -1
  std::vector<bool> used;               // graph vertex used? (dense bitmap)
  Vf2Stats stats;
  int64_t emitted = 0;
  bool stop = false;

  void Recurse(size_t depth);
};

void SearchState::Recurse(size_t depth) {
  if (stop) return;
  ++stats.states_visited;
  if (options->max_states > 0 && stats.states_visited > options->max_states) {
    stats.aborted = true;
    stop = true;
    return;
  }
  if (depth == order.size()) {
    Embedding embedding(image.begin(), image.end());
    ++emitted;
    if (!(*callback)(embedding)) stop = true;
    if (options->max_embeddings > 0 && emitted >= options->max_embeddings) {
      stop = true;
    }
    return;
  }

  const VertexId pv = order[depth];
  const LabelId want_label = pattern->Label(pv);
  const int32_t want_degree = pattern->Degree(pv);

  // Candidate source: neighbors of the matched pattern-neighbor with the
  // smallest image degree.
  VertexId via = -1;
  int64_t via_degree = INT64_MAX;
  for (VertexId u : pattern->Neighbors(pv)) {
    if (image[u] >= 0 && graph->Degree(image[u]) < via_degree) {
      via = u;
      via_degree = graph->Degree(image[u]);
    }
  }

  auto try_candidate = [&](VertexId gv) {
    if (stop) return;
    if (!options->homomorphic && used[gv]) return;
    if (graph->Label(gv) != want_label) return;
    // The degree prune is unsound under homomorphism: two pattern
    // neighbors of pv may share one image, so gv can host pv with fewer
    // graph neighbors than pv has pattern neighbors.
    if (!options->homomorphic && graph->Degree(gv) < want_degree) return;
    // Consistency: every matched pattern neighbor must map to a graph
    // neighbor of gv, with matching edge labels when either side uses them
    // (Definition 1 extended to edge labels, paper Sec. 3; the default
    // label 0 is a real label and must match exactly).
    for (VertexId u : pattern->Neighbors(pv)) {
      if (image[u] < 0) continue;
      if (!graph->HasEdge(gv, image[u])) return;
      if ((pattern->HasEdgeLabels() || graph->HasEdgeLabels()) &&
          pattern->EdgeLabel(pv, u) != graph->EdgeLabel(gv, image[u])) {
        return;
      }
    }
    image[pv] = gv;
    if (!options->homomorphic) used[gv] = true;
    Recurse(depth + 1);
    if (!options->homomorphic) used[gv] = false;
    image[pv] = -1;
  };

  if (via >= 0) {
    for (VertexId gv : graph->Neighbors(image[via])) try_candidate(gv);
  } else if (depth == 0 && options->anchor_pattern_vertex == pv &&
             options->anchor_graph_vertex >= 0) {
    try_candidate(options->anchor_graph_vertex);
  } else {
    // First vertex without anchor: scan vertices of the wanted label.
    if (want_label < graph->NumLabels()) {
      for (VertexId gv : graph->VerticesWithLabel(want_label)) {
        try_candidate(gv);
      }
    }
  }
}

}  // namespace

Vf2Stats EnumerateEmbeddings(
    const Pattern& pattern, const LabeledGraph& graph,
    const Vf2Options& options,
    const std::function<bool(const Embedding&)>& callback) {
  Vf2Stats stats;
  if (pattern.NumVertices() == 0) return stats;
  assert(pattern.IsConnected() && "embedding search requires connectivity");

  SearchState state;
  state.pattern = &pattern;
  state.graph = &graph;
  state.options = &options;
  state.callback = &callback;
  state.order = MatchingOrder(pattern, graph, options.anchor_pattern_vertex);
  state.image.assign(static_cast<size_t>(pattern.NumVertices()), -1);
  state.used.assign(static_cast<size_t>(graph.NumVertices()), false);
  state.Recurse(0);
  stats.states_visited = state.stats.states_visited;
  stats.aborted = state.stats.aborted;
  return stats;
}

std::vector<Embedding> FindEmbeddings(const Pattern& pattern,
                                      const LabeledGraph& graph,
                                      const Vf2Options& options) {
  std::vector<Embedding> out;
  EnumerateEmbeddings(pattern, graph, options,
                      [&out](const Embedding& e) {
                        out.push_back(e);
                        return true;
                      });
  return out;
}

bool ContainsEmbedding(const Pattern& pattern, const LabeledGraph& graph) {
  bool found = false;
  Vf2Options options;
  options.max_embeddings = 1;
  EnumerateEmbeddings(pattern, graph, options, [&found](const Embedding&) {
    found = true;
    return false;
  });
  return found;
}

bool ArePatternsIsomorphic(const Pattern& a, const Pattern& b) {
  if (a.NumVertices() != b.NumVertices()) return false;
  if (a.NumEdges() != b.NumEdges()) return false;
  if (a.SortedLabels() != b.SortedLabels()) return false;
  // Degree-sequence pre-check.
  auto degree_sequence = [](const Pattern& p) {
    std::vector<int32_t> d(static_cast<size_t>(p.NumVertices()));
    for (VertexId v = 0; v < p.NumVertices(); ++v) d[v] = p.Degree(v);
    std::sort(d.begin(), d.end());
    return d;
  };
  if (degree_sequence(a) != degree_sequence(b)) return false;
  if (a.NumVertices() == 0) return true;
  if (a.NumEdges() == 0) return a.Label(0) == b.Label(0);
  // With equal vertex and edge counts, an injective edge-preserving map of
  // a into b is necessarily a full isomorphism.
  return ContainsEmbedding(a, PatternToLabeledGraph(b));
}

LabeledGraph PatternToLabeledGraph(const Pattern& pattern) {
  GraphBuilder builder;
  for (VertexId v = 0; v < pattern.NumVertices(); ++v) {
    builder.AddVertex(pattern.Label(v));
  }
  for (const auto& e : pattern.LabeledEdges()) {
    builder.AddEdge(e.u, e.v, e.label);
  }
  Result<LabeledGraph> result = builder.Build();
  assert(result.ok());
  return std::move(result).value();
}

}  // namespace spidermine
