#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pattern/pattern.h"

/// \file dfs_code.h
/// gSpan-style minimum DFS code canonicalization for patterns. Two patterns
/// are isomorphic iff their minimum DFS codes are equal, so the canonical
/// string is usable as an exact dedup key. SpiderMine uses this for spiders,
/// spider-set ball codes and result dedup; large in-flight patterns are
/// deduped by the cheaper spider-set filter first (see spider_set.h).

namespace spidermine {

/// One entry of a DFS code: an edge between DFS discovery ids \p from and
/// \p to with their vertex labels and the edge's own label (gSpan's 5-tuple
/// <i, j, l_i, l_ij, l_j>; edge labels default to 0 for unlabeled graphs).
/// Forward edges have to == max-id-so-far+1; backward edges have to < from.
struct DfsEdge {
  int32_t from = 0;
  int32_t to = 0;
  LabelId from_label = 0;
  LabelId to_label = 0;
  EdgeLabelId edge_label = 0;

  bool IsForward() const { return to > from; }
  bool operator==(const DfsEdge&) const = default;
};

/// A DFS code: edge sequence plus the root label (needed to make the code
/// of a single-vertex pattern well defined).
struct DfsCode {
  LabelId root_label = -1;
  std::vector<DfsEdge> edges;

  bool operator==(const DfsCode&) const = default;
};

/// Total order on DFS edges per gSpan (backward-before-forward from the
/// rightmost vertex, deeper forward extensions first, then labels).
/// Returns <0, 0 or >0.
int CompareDfsEdges(const DfsEdge& a, const DfsEdge& b);

/// Lexicographic comparison of codes under CompareDfsEdges; a proper prefix
/// compares less than its extensions. Root labels break ties first.
int CompareDfsCodes(const DfsCode& a, const DfsCode& b);

/// Computes the minimum DFS code of \p pattern. Requires a connected,
/// non-empty pattern (callers in this library only canonicalize connected
/// patterns; disconnected input is reported via the is_connected flag by
/// returning an empty code with root_label = -2).
DfsCode MinimumDfsCode(const Pattern& pattern);

/// Budgeted variant: explores at most \p max_steps search states. Returns
/// false (leaving \p out as the best code found, possibly non-minimal)
/// when the budget is exhausted -- dense patterns over very few labels can
/// make the exact search exponential. Callers needing an isomorphism-
/// invariant key must then fall back to WlRefinementString.
bool MinimumDfsCodeBounded(const Pattern& pattern, int64_t max_steps,
                           DfsCode* out);

/// Weisfeiler-Leman color-refinement fingerprint (3 rounds): equal for
/// isomorphic patterns, deterministic, but weaker than a canonical form
/// (non-isomorphic patterns may collide). Used as the sound fallback key
/// when the exact canonical search exceeds its budget.
std::string WlRefinementString(const Pattern& pattern);

/// Serializes a code to a compact string usable as a hash/map key.
std::string DfsCodeToString(const DfsCode& code);

/// 64-bit isomorphism-invariant fingerprint: FNV-1a over
/// WlRefinementString. Isomorphic patterns always hash equal (WL is
/// invariant and has no budgeted fallback, unlike CanonicalString), so a
/// hash mismatch certifies non-isomorphism and dedup loops use it to skip
/// the exact VF2 test; equal hashes still require VF2 confirmation.
/// Never returns 0, so callers can use 0 as a "not yet computed" sentinel.
uint64_t PatternIsoHash(const Pattern& pattern);

/// Isomorphism-invariant key: DfsCodeToString of the minimum DFS code, or
/// a "wl:"-prefixed WlRefinementString when the exact search would blow up
/// (budget 200k states). Equal keys for isomorphic patterns always hold;
/// distinct keys certify non-isomorphism only for the exact form, so exact
/// consumers confirm collisions with vf2.h.
std::string CanonicalString(const Pattern& pattern);

/// Rebuilds a pattern from a DFS code (inverse of MinimumDfsCode up to
/// isomorphism). Used by tests and by the complete miner.
Pattern PatternFromDfsCode(const DfsCode& code);

}  // namespace spidermine
