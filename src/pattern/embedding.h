#pragma once

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"

/// \file embedding.h
/// An embedding e_P of a pattern P in the network G: the image vertex in G
/// of each pattern vertex. The set of all embeddings is the paper's E[P].

namespace spidermine {

/// embedding[i] = image in G of pattern vertex i. Injective by construction.
using Embedding = std::vector<VertexId>;

/// The image vertex set of \p embedding, sorted ascending (for overlap
/// tests and hashing).
std::vector<VertexId> SortedImage(const Embedding& embedding);

/// True iff the two embeddings share at least one graph vertex.
/// Both arguments must be sorted images (see SortedImage).
bool ImagesIntersect(const std::vector<VertexId>& a,
                     const std::vector<VertexId>& b);

/// A 64-bit order-independent fingerprint of the image set, for hashing
/// embeddings into buckets during merge detection.
uint64_t ImageFingerprint(const Embedding& embedding);

}  // namespace spidermine
