#pragma once

#include <cstdint>
#include <vector>

#include "graph/labeled_graph.h"

/// \file embedding.h
/// An embedding e_P of a pattern P in the network G: the image vertex in G
/// of each pattern vertex. The set of all embeddings is the paper's E[P].

namespace spidermine {

/// embedding[i] = image in G of pattern vertex i. Injective by construction.
using Embedding = std::vector<VertexId>;

/// The image vertex set of \p embedding, sorted ascending (for overlap
/// tests and hashing).
std::vector<VertexId> SortedImage(const Embedding& embedding);

/// True iff the two embeddings share at least one graph vertex.
/// Both arguments must be sorted images (see SortedImage). Runs once per
/// merge-candidate pair (exact-MIS overlap graphs), so it short-circuits
/// hard: an empty or range-disjoint pair answers in O(1), heavily skewed
/// sizes use a galloping (doubling) scan of the longer list, and only
/// comparable sizes pay the plain two-pointer merge.
bool ImagesIntersect(const std::vector<VertexId>& a,
                     const std::vector<VertexId>& b);

/// Sorts E[P] into canonical lexicographic order (element-wise VertexId
/// comparison). Embedding enumeration order is an implementation detail
/// (VF2's matching order, a carried list's extension order, a chunk fold),
/// but downstream consumers — DedupEmbeddingsByImage keeps the FIRST
/// embedding per image, and closure scores candidate edges through those
/// representatives — are order-sensitive. Canonicalizing first makes every
/// enumeration strategy feed them identical input.
void CanonicalizeEmbeddingOrder(std::vector<Embedding>* embeddings);

/// A 64-bit order-independent fingerprint of the image set, for hashing
/// embeddings into buckets during merge detection.
uint64_t ImageFingerprint(const Embedding& embedding);

}  // namespace spidermine
