#include "pattern/spider_set.h"

#include <algorithm>
#include <string>

#include "pattern/dfs_code.h"

namespace spidermine {

namespace {

uint64_t HashString(const std::string& s) {
  // FNV-1a 64-bit.
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t BallCode(const Pattern& pattern, VertexId center, int32_t r) {
  return HashString(CanonicalString(NeighborhoodSpider(pattern, center, r)));
}

}  // namespace

Pattern NeighborhoodSpider(const Pattern& pattern, VertexId center,
                           int32_t r) {
  std::vector<int32_t> dist = pattern.BfsDistances(center, r);
  std::vector<VertexId> ball;
  ball.push_back(center);
  for (VertexId v = 0; v < pattern.NumVertices(); ++v) {
    if (v != center && dist[v] >= 0) ball.push_back(v);
  }
  Pattern spider = pattern.InducedSubgraph(ball);
  // Tag the head: labels become 2*label, head gets 2*label+1, so the head
  // is distinguishable by the canonicalizer without a separate channel.
  // Edge labels carry over so edge-labeled patterns separate.
  Pattern tagged;
  for (VertexId v = 0; v < spider.NumVertices(); ++v) {
    tagged.AddVertex(spider.Label(v) * 2 + (v == 0 ? 1 : 0));
  }
  for (const auto& e : spider.LabeledEdges()) {
    tagged.AddEdge(e.u, e.v, e.label);
  }
  return tagged;
}

void SpiderSetRepr::Finalize() {
  codes_ = by_vertex_;
  std::sort(codes_.begin(), codes_.end());
  // Order-independent digest over the sorted multiset.
  uint64_t acc = 0x2545f4914f6cdd1dULL;
  for (uint64_t c : codes_) {
    acc ^= c + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
  }
  combined_ = acc;
}

SpiderSetRepr SpiderSetRepr::Compute(const Pattern& pattern, int32_t r) {
  SpiderSetRepr repr;
  repr.by_vertex_.reserve(static_cast<size_t>(pattern.NumVertices()));
  for (VertexId v = 0; v < pattern.NumVertices(); ++v) {
    repr.by_vertex_.push_back(BallCode(pattern, v, r));
  }
  repr.Finalize();
  return repr;
}

SpiderSetRepr SpiderSetRepr::Updated(const Pattern& extended, int32_t r,
                                     std::span<const VertexId> changed) const {
  SpiderSetRepr repr;
  repr.by_vertex_ = by_vertex_;
  repr.by_vertex_.resize(static_cast<size_t>(extended.NumVertices()), 0);
  for (VertexId v : changed) {
    repr.by_vertex_[static_cast<size_t>(v)] = BallCode(extended, v, r);
  }
  for (VertexId v = static_cast<VertexId>(by_vertex_.size());
       v < extended.NumVertices(); ++v) {
    repr.by_vertex_[static_cast<size_t>(v)] = BallCode(extended, v, r);
  }
  repr.Finalize();
  return repr;
}

}  // namespace spidermine
