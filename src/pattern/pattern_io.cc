#include "pattern/pattern_io.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace spidermine {

std::string PatternToText(const Pattern& pattern) {
  std::ostringstream os;
  os << "p " << pattern.NumVertices() << " " << pattern.NumEdges() << "\n";
  for (VertexId v = 0; v < pattern.NumVertices(); ++v) {
    os << "v " << v << " " << pattern.Label(v) << "\n";
  }
  for (const auto& [u, v] : pattern.Edges()) {
    os << "e " << u << " " << v << "\n";
  }
  return os.str();
}

std::string PatternsToText(const std::vector<Pattern>& patterns,
                           const std::vector<int64_t>* supports) {
  std::ostringstream os;
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (supports != nullptr && i < supports->size()) {
      os << "# support = " << (*supports)[i] << "\n";
    }
    os << PatternToText(patterns[i]);
  }
  return os.str();
}

Result<std::vector<Pattern>> ParsePatternsText(const std::string& text) {
  std::vector<Pattern> out;
  std::istringstream in(text);
  std::string line;
  int64_t line_no = 0;
  Pattern* current = nullptr;
  int64_t expected_vertices = 0;
  int64_t expected_edges = 0;
  auto check_complete = [&]() -> Status {
    if (current == nullptr) return Status::Ok();
    if (current->NumVertices() != expected_vertices ||
        current->NumEdges() != expected_edges) {
      return Status::IoError(StrCat(
          "pattern truncated before line ", line_no, ": declared ",
          expected_vertices, "v/", expected_edges, "e, got ",
          current->NumVertices(), "v/", current->NumEdges(), "e"));
    }
    return Status::Ok();
  };
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::istringstream fields{std::string(stripped)};
    char kind = 0;
    fields >> kind;
    if (kind == 'p') {
      SM_RETURN_NOT_OK(check_complete());
      int64_t n = -1;
      int64_t m = -1;
      fields >> n >> m;
      if (fields.fail() || n < 0 || m < 0) {
        return Status::IoError(
            StrCat("line ", line_no, ": malformed pattern header"));
      }
      out.emplace_back();
      current = &out.back();
      expected_vertices = n;
      expected_edges = m;
    } else if (kind == 'v') {
      if (current == nullptr) {
        return Status::IoError(
            StrCat("line ", line_no, ": vertex before pattern header"));
      }
      int64_t id = -1;
      int64_t label = -1;
      fields >> id >> label;
      if (fields.fail() || id != current->NumVertices() || label < 0) {
        return Status::IoError(
            StrCat("line ", line_no, ": bad vertex record '", stripped, "'"));
      }
      current->AddVertex(static_cast<LabelId>(label));
    } else if (kind == 'e') {
      if (current == nullptr) {
        return Status::IoError(
            StrCat("line ", line_no, ": edge before pattern header"));
      }
      int64_t u = -1;
      int64_t v = -1;
      fields >> u >> v;
      if (fields.fail() ||
          !current->AddEdge(static_cast<VertexId>(u),
                            static_cast<VertexId>(v))) {
        return Status::IoError(
            StrCat("line ", line_no, ": bad edge record '", stripped, "'"));
      }
    } else {
      return Status::IoError(
          StrCat("line ", line_no, ": unknown record '", stripped, "'"));
    }
  }
  SM_RETURN_NOT_OK(check_complete());
  return out;
}

Status SavePatternsText(const std::vector<Pattern>& patterns,
                        const std::string& path,
                        const std::vector<int64_t>* supports) {
  std::ofstream out(path);
  if (!out) return Status::IoError(StrCat("cannot open for write: ", path));
  out << PatternsToText(patterns, supports);
  if (!out) return Status::IoError(StrCat("write failed: ", path));
  return Status::Ok();
}

Result<std::vector<Pattern>> LoadPatternsText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError(StrCat("cannot open for read: ", path));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParsePatternsText(buffer.str());
}

}  // namespace spidermine
