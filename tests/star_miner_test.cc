#include "spider/star_miner.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_builder.h"

namespace spidermine {
namespace {

/// Two identical stars: center label 0 with leaves {1, 1, 2}; plus an
/// isolated label-3 vertex pair.
LabeledGraph TwoStars() {
  GraphBuilder b;
  // Star 1: center 0, leaves 1(1), 2(1), 3(2).
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(1);
  b.AddVertex(2);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  // Star 2: center 4, leaves 5(1), 6(1), 7(2).
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(1);
  b.AddVertex(2);
  b.AddEdge(4, 5);
  b.AddEdge(4, 6);
  b.AddEdge(4, 7);
  // Frequent label 3 singletons.
  b.AddVertex(3);
  b.AddVertex(3);
  return std::move(b.Build()).value();
}

const Spider* FindStar(const StarMineResult& result, LabelId head,
                       std::vector<LabelId> leaves) {
  std::sort(leaves.begin(), leaves.end());
  for (const Spider& s : result.spiders) {
    if (s.pattern.Label(0) == head && s.LeafLabels() == leaves) return &s;
  }
  return nullptr;
}

TEST(StarMinerTest, FindsAllFrequentStars) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  // Expected frequent stars with head 0 (anchors: vertices 0 and 4):
  // {}, {1}, {2}, {1,1}, {1,2}, {1,1,2}.
  EXPECT_NE(FindStar(*result, 0, {}), nullptr);
  EXPECT_NE(FindStar(*result, 0, {1}), nullptr);
  EXPECT_NE(FindStar(*result, 0, {2}), nullptr);
  EXPECT_NE(FindStar(*result, 0, {1, 1}), nullptr);
  EXPECT_NE(FindStar(*result, 0, {1, 2}), nullptr);
  EXPECT_NE(FindStar(*result, 0, {1, 1, 2}), nullptr);
  // Leaves of label 1 anchor stars with head 1 and leaf 0.
  EXPECT_NE(FindStar(*result, 1, {0}), nullptr);
  // Isolated label-3 vertices are single-vertex spiders only.
  const Spider* singleton3 = FindStar(*result, 3, {});
  ASSERT_NE(singleton3, nullptr);
  EXPECT_EQ(singleton3->support, 2);
}

TEST(StarMinerTest, AnchorListsAreCorrect) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  const Spider* full = FindStar(*result, 0, {1, 1, 2});
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(full->anchors, (std::vector<VertexId>{0, 4}));
  EXPECT_EQ(full->support, 2);
  EXPECT_TRUE(full->IsAnchoredAt(0));
  EXPECT_TRUE(full->IsAnchoredAt(4));
  EXPECT_FALSE(full->IsAnchoredAt(1));
}

TEST(StarMinerTest, InfrequentStarsExcluded) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 3;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  // Only heads with >= 3 anchors survive: label 1 has 4 vertices.
  EXPECT_EQ(FindStar(*result, 0, {}), nullptr);
  EXPECT_NE(FindStar(*result, 1, {}), nullptr);
}

TEST(StarMinerTest, ClosedFlagMarksMaximalStars) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  // {1} extends to {1,1} keeping both anchors => non-closed.
  const Spider* sub = FindStar(*result, 0, {1});
  ASSERT_NE(sub, nullptr);
  EXPECT_FALSE(sub->closed);
  // The maximal star is closed.
  const Spider* full = FindStar(*result, 0, {1, 1, 2});
  ASSERT_NE(full, nullptr);
  EXPECT_TRUE(full->closed);
}

TEST(StarMinerTest, MaxLeavesBoundsSize) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  config.max_leaves = 1;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  for (const Spider& s : result->spiders) {
    EXPECT_LE(s.pattern.NumVertices(), 2);
  }
  EXPECT_EQ(FindStar(*result, 0, {1, 1}), nullptr);
}

TEST(StarMinerTest, MaxSpidersTruncates) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  config.max_spiders = 3;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
  EXPECT_EQ(result->spiders.size(), 3u);
}

TEST(StarMinerTest, ExcludeSingleVertexSpiders) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  config.include_single_vertex = false;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  for (const Spider& s : result->spiders) {
    EXPECT_GE(s.pattern.NumVertices(), 2);
  }
}

TEST(StarMinerTest, InvalidConfigRejected) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 0;
  EXPECT_FALSE(MineStarSpiders(g, config).ok());
  config.min_support = 2;
  config.max_leaves = -1;
  EXPECT_FALSE(MineStarSpiders(g, config).ok());
}

TEST(StarMinerTest, StarPatternStructureIsStar) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  for (const Spider& s : result->spiders) {
    EXPECT_EQ(s.radius, 1);
    EXPECT_EQ(s.pattern.NumEdges(), s.pattern.NumVertices() - 1);
    for (VertexId v = 1; v < s.pattern.NumVertices(); ++v) {
      EXPECT_EQ(s.pattern.Degree(v), 1);
      EXPECT_TRUE(s.pattern.HasEdge(0, v));
    }
  }
}

TEST(StarMinerTest, EmptyGraphYieldsNothing) {
  GraphBuilder b;
  LabeledGraph g = std::move(b.Build()).value();
  Result<StarMineResult> result = MineStarSpiders(g, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->spiders.empty());
}

}  // namespace
}  // namespace spidermine
