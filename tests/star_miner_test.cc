#include "spider/star_miner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>

#include "graph/graph_builder.h"
#include "spider_test_util.h"

namespace spidermine {
namespace {

/// Two identical stars: center label 0 with leaves {1, 1, 2}; plus an
/// isolated label-3 vertex pair.
LabeledGraph TwoStars() {
  GraphBuilder b;
  // Star 1: center 0, leaves 1(1), 2(1), 3(2).
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(1);
  b.AddVertex(2);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  // Star 2: center 4, leaves 5(1), 6(1), 7(2).
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(1);
  b.AddVertex(2);
  b.AddEdge(4, 5);
  b.AddEdge(4, 6);
  b.AddEdge(4, 7);
  // Frequent label 3 singletons.
  b.AddVertex(3);
  b.AddVertex(3);
  return std::move(b.Build()).value();
}

TEST(StarMinerTest, FindsAllFrequentStars) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  // Expected frequent stars with head 0 (anchors: vertices 0 and 4):
  // {}, {1}, {2}, {1,1}, {1,2}, {1,1,2}.
  EXPECT_NE(FindStar(result->store, 0, {}), -1);
  EXPECT_NE(FindStar(result->store, 0, {1}), -1);
  EXPECT_NE(FindStar(result->store, 0, {2}), -1);
  EXPECT_NE(FindStar(result->store, 0, {1, 1}), -1);
  EXPECT_NE(FindStar(result->store, 0, {1, 2}), -1);
  EXPECT_NE(FindStar(result->store, 0, {1, 1, 2}), -1);
  // Leaves of label 1 anchor stars with head 1 and leaf 0.
  EXPECT_NE(FindStar(result->store, 1, {0}), -1);
  // Isolated label-3 vertices are single-vertex spiders only.
  int32_t singleton3 = FindStar(result->store, 3, {});
  ASSERT_NE(singleton3, -1);
  EXPECT_EQ(result->store.support(singleton3), 2);
}

TEST(StarMinerTest, AnchorListsAreCorrect) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  int32_t full = FindStar(result->store, 0, {1, 1, 2});
  ASSERT_NE(full, -1);
  const SpiderStore& store = result->store;
  std::span<const VertexId> anchors = store.anchors(full);
  EXPECT_EQ((std::vector<VertexId>(anchors.begin(), anchors.end())),
            (std::vector<VertexId>{0, 4}));
  EXPECT_EQ(store.support(full), 2);
  EXPECT_TRUE(store.IsAnchoredAt(full, 0));
  EXPECT_TRUE(store.IsAnchoredAt(full, 4));
  EXPECT_FALSE(store.IsAnchoredAt(full, 1));
}

TEST(StarMinerTest, InfrequentStarsExcluded) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 3;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  // Only heads with >= 3 anchors survive: label 1 has 4 vertices.
  EXPECT_EQ(FindStar(result->store, 0, {}), -1);
  EXPECT_NE(FindStar(result->store, 1, {}), -1);
}

TEST(StarMinerTest, ClosedFlagMarksMaximalStars) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  // {1} extends to {1,1} keeping both anchors => non-closed.
  int32_t sub = FindStar(result->store, 0, {1});
  ASSERT_NE(sub, -1);
  EXPECT_FALSE(result->store.closed(sub));
  // The maximal star is closed.
  int32_t full = FindStar(result->store, 0, {1, 1, 2});
  ASSERT_NE(full, -1);
  EXPECT_TRUE(result->store.closed(full));
}

TEST(StarMinerTest, MaxLeavesBoundsSize) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  config.max_leaves = 1;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  for (int32_t id = 0; id < static_cast<int32_t>(result->store.size());
       ++id) {
    EXPECT_LE(result->store.NumVerticesOf(id), 2);
  }
  EXPECT_EQ(FindStar(result->store, 0, {1, 1}), -1);
}

TEST(StarMinerTest, MaxSpidersTruncates) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  config.max_spiders = 3;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
  EXPECT_EQ(result->store.size(), 3);
}

TEST(StarMinerTest, ExcludeSingleVertexSpiders) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  config.include_single_vertex = false;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  for (int32_t id = 0; id < static_cast<int32_t>(result->store.size());
       ++id) {
    EXPECT_GE(result->store.NumVerticesOf(id), 2);
  }
}

TEST(StarMinerTest, InvalidConfigRejected) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 0;
  EXPECT_FALSE(MineStarSpiders(g, config).ok());
  config.min_support = 2;
  config.max_leaves = -1;
  EXPECT_FALSE(MineStarSpiders(g, config).ok());
}

TEST(StarMinerTest, StarPatternStructureIsStar) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  Result<StarMineResult> result = MineStarSpiders(g, config);
  ASSERT_TRUE(result.ok());
  for (const Spider& s : result->Spiders()) {
    EXPECT_EQ(s.radius, 1);
    EXPECT_EQ(s.pattern.NumEdges(), s.pattern.NumVertices() - 1);
    for (VertexId v = 1; v < s.pattern.NumVertices(); ++v) {
      EXPECT_EQ(s.pattern.Degree(v), 1);
      EXPECT_TRUE(s.pattern.HasEdge(0, v));
    }
  }
}

TEST(StarMinerTest, MaxSpidersIsExactGlobalPrefix) {
  // The global budget must return the exact prefix of the unlimited
  // enumeration in canonical order -- not a per-label truncation.
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  Result<StarMineResult> full = MineStarSpiders(g, config);
  ASSERT_TRUE(full.ok());
  const int64_t total = full->store.size();
  ASSERT_GT(total, 4);
  for (int64_t budget = 1; budget <= total; ++budget) {
    config.max_spiders = budget;
    Result<StarMineResult> capped = MineStarSpiders(g, config);
    ASSERT_TRUE(capped.ok());
    ASSERT_EQ(capped->store.size(), budget);
    // Closed flags of the last admitted spiders may differ (their closing
    // children can fall beyond the budget), so compare structure + anchors
    // field by field rather than the flag-bearing transcript.
    for (int32_t id = 0; id < static_cast<int32_t>(budget); ++id) {
      EXPECT_EQ(capped->store.head_label(id), full->store.head_label(id));
      std::span<const SpiderLeafKey> a = capped->store.leaves(id);
      std::span<const SpiderLeafKey> b = full->store.leaves(id);
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
      std::span<const VertexId> aa = capped->store.anchors(id);
      std::span<const VertexId> bb = full->store.anchors(id);
      EXPECT_TRUE(std::equal(aa.begin(), aa.end(), bb.begin(), bb.end()));
    }
    EXPECT_EQ(capped->truncated, budget < total);
  }
}

TEST(StarMinerTest, ExactBudgetInOneShardIsNotTruncated) {
  // Two disjoint label-0 edges: with roots excluded, exactly one frequent
  // star ({0}, leaf 0) in a single enumeration shard. A budget equal to
  // the full enumeration must not report truncation even though one shard
  // holds the entire budget.
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.AddVertex(0);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  LabeledGraph g = std::move(b.Build()).value();
  StarMinerConfig config;
  config.min_support = 2;
  config.include_single_vertex = false;
  Result<StarMineResult> full = MineStarSpiders(g, config);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->store.size(), 1);
  config.max_spiders = 1;
  Result<StarMineResult> capped = MineStarSpiders(g, config);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->store.size(), 1);
  EXPECT_FALSE(capped->truncated);
}

TEST(StarMinerTest, NonBindingBudgetKeepsAttemptsComparable) {
  // A budget the enumeration fits inside exactly must yield the same set
  // AND the same work counter as the unbudgeted run (the counting pass's
  // attempts, not the prefix-stopped emission pass's).
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  Result<StarMineResult> unbudgeted = MineStarSpiders(g, config);
  ASSERT_TRUE(unbudgeted.ok());
  config.max_spiders = unbudgeted->store.size();
  Result<StarMineResult> budgeted = MineStarSpiders(g, config);
  ASSERT_TRUE(budgeted.ok());
  EXPECT_FALSE(budgeted->truncated);
  EXPECT_EQ(budgeted->store.size(), unbudgeted->store.size());
  EXPECT_EQ(budgeted->extension_attempts, unbudgeted->extension_attempts);
}

TEST(StarMinerTest, ShardGrainDoesNotChangeResult) {
  LabeledGraph g = TwoStars();
  StarMinerConfig config;
  config.min_support = 2;
  Result<StarMineResult> reference = MineStarSpiders(g, config);
  ASSERT_TRUE(reference.ok());
  const std::string expected = StoreTranscript(reference->store);
  ThreadPool pool(4);
  for (int64_t grain : {int64_t{1}, int64_t{2}, int64_t{1} << 20}) {
    config.shard_grain = grain;
    Result<StarMineResult> run = MineStarSpiders(g, config, &pool);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(StoreTranscript(run->store), expected)
        << "diverged at shard_grain=" << grain;
    EXPECT_EQ(run->extension_attempts, reference->extension_attempts);
  }
}

TEST(StarMinerTest, EmptyGraphYieldsNothing) {
  GraphBuilder b;
  LabeledGraph g = std::move(b.Build()).value();
  Result<StarMineResult> result = MineStarSpiders(g, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->store.empty());
}

}  // namespace
}  // namespace spidermine
