#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "spider/spider_store.h"

/// \file spider_test_util.h
/// Shared SpiderStore test helpers. Transcripts are compared run-vs-run
/// (never against literal goldens), so every suite must agree on one
/// canonical format — keep the single definition here.

namespace spidermine {

/// Canonical text transcript of a mined store (order-sensitive): head
/// label, (edge label, leaf label) pairs, anchors (or just the support
/// when \p with_anchors is false — large-graph suites), closed flag.
inline std::string StoreTranscript(const SpiderStore& store,
                                   bool with_anchors = true) {
  std::string out;
  for (int32_t id = 0; id < static_cast<int32_t>(store.size()); ++id) {
    out += "h" + std::to_string(store.head_label(id));
    for (const SpiderLeafKey& key : store.leaves(id)) {
      out += "," + std::to_string(key.first) + ":" +
             std::to_string(key.second);
    }
    if (with_anchors) {
      out += "|a";
      for (VertexId v : store.anchors(id)) out += std::to_string(v) + ";";
    } else {
      out += "|s" + std::to_string(store.support(id));
    }
    out += store.closed(id) ? "|c" : "|o";
    out += "\n";
  }
  return out;
}

/// Store id of the star (head, leaf-label multiset), or -1 when absent.
inline int32_t FindStar(const SpiderStore& store, LabelId head,
                        std::vector<LabelId> leaves) {
  std::sort(leaves.begin(), leaves.end());
  for (int32_t id = 0; id < static_cast<int32_t>(store.size()); ++id) {
    if (store.head_label(id) != head) continue;
    std::vector<LabelId> labels;
    for (const SpiderLeafKey& key : store.leaves(id)) {
      labels.push_back(key.second);
    }
    std::sort(labels.begin(), labels.end());
    if (labels == leaves) return id;
  }
  return -1;
}

}  // namespace spidermine
