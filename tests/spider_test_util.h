#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/strings.h"
#include "pattern/dfs_code.h"
#include "spider/spider_store.h"
#include "spidermine/session.h"

/// \file spider_test_util.h
/// Shared SpiderStore / mined-result test helpers. Transcripts are compared
/// run-vs-run (never against literal goldens), so every suite must agree on
/// one canonical format — keep the single definitions here.

namespace spidermine {

/// Canonical transcript of a mined pattern list: per-pattern minimum DFS
/// code + support + embedding count, in result order. Two runs with
/// identical transcripts returned the same patterns, supports and ordering.
inline std::string PatternsTranscript(
    const std::vector<MinedPattern>& patterns) {
  std::string out;
  for (const MinedPattern& p : patterns) {
    out += StrCat("V=", p.NumVertices(), " E=", p.NumEdges(),
                  " sup=", p.support, " emb=", p.embeddings.size(), " ",
                  DfsCodeToString(MinimumDfsCode(p.pattern)), "\n");
  }
  return out;
}

/// Canonical text transcript of a mined store (order-sensitive): head
/// label, (edge label, leaf label) pairs, anchors (or just the support
/// when \p with_anchors is false — large-graph suites), closed flag.
inline std::string StoreTranscript(const SpiderStore& store,
                                   bool with_anchors = true) {
  std::string out;
  for (int32_t id = 0; id < static_cast<int32_t>(store.size()); ++id) {
    out += "h" + std::to_string(store.head_label(id));
    for (const SpiderLeafKey& key : store.leaves(id)) {
      out += "," + std::to_string(key.first) + ":" +
             std::to_string(key.second);
    }
    if (with_anchors) {
      out += "|a";
      for (VertexId v : store.anchors(id)) out += std::to_string(v) + ";";
    } else {
      out += "|s" + std::to_string(store.support(id));
    }
    out += store.closed(id) ? "|c" : "|o";
    out += "\n";
  }
  return out;
}

/// Store id of the star (head, leaf-label multiset), or -1 when absent.
inline int32_t FindStar(const SpiderStore& store, LabelId head,
                        std::vector<LabelId> leaves) {
  std::sort(leaves.begin(), leaves.end());
  for (int32_t id = 0; id < static_cast<int32_t>(store.size()); ++id) {
    if (store.head_label(id) != head) continue;
    std::vector<LabelId> labels;
    for (const SpiderLeafKey& key : store.leaves(id)) {
      labels.push_back(key.second);
    }
    std::sort(labels.begin(), labels.end());
    if (labels == leaves) return id;
  }
  return -1;
}

}  // namespace spidermine
