#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "gen/barabasi_albert.h"
#include "graph/graph_builder.h"
#include "spider/star_miner.h"
#include "spider_test_util.h"

/// Large-graph Stage I checks (ctest label: slow; CI runs `-LE slow`).
/// A hub-heavy scale-free graph two orders of magnitude past the unit
/// tests: the global budget must stay the exact canonical prefix and the
/// result must be identical across thread counts and shard grains.

namespace spidermine {
namespace {

/// Support-only transcript: anchors at this scale would dominate runtime.
std::string ScaleTranscript(const SpiderStore& store) {
  return StoreTranscript(store, /*with_anchors=*/false);
}

TEST(Stage1ScaleSlowTest, BudgetedMiningInvariantOnLargeScaleFreeGraph) {
  Rng rng(5);
  GraphBuilder builder = GenerateBarabasiAlbert(150000, 3, 24, &rng);
  LabeledGraph g = std::move(builder.Build()).value();

  StarMinerConfig config;
  config.min_support = 32;
  config.max_leaves = 4;
  config.max_spiders = 4000;

  ThreadPool pool1(1);
  Result<StarMineResult> reference = MineStarSpiders(g, config, &pool1);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_EQ(reference->store.size(), config.max_spiders);
  EXPECT_TRUE(reference->truncated);
  const std::string expected = ScaleTranscript(reference->store);
  // O(B): the budgeted store keeps B spiders, not num_labels x B.
  EXPECT_EQ(reference->store.size(), 4000);

  for (int32_t threads : {8}) {
    for (int64_t grain : {int64_t{1024}, int64_t{0}, int64_t{1} << 24}) {
      ThreadPool pool(threads);
      StarMinerConfig run_config = config;
      run_config.shard_grain = grain;
      Result<StarMineResult> run = MineStarSpiders(g, run_config, &pool);
      ASSERT_TRUE(run.ok()) << run.status();
      EXPECT_EQ(ScaleTranscript(run->store), expected)
          << "diverged at threads=" << threads << " grain=" << grain;
      EXPECT_EQ(run->extension_attempts, reference->extension_attempts);
    }
  }
}

}  // namespace
}  // namespace spidermine
