#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/bfs.h"
#include "graph/degree_stats.h"
#include "graph/diameter.h"
#include "graph/graph_builder.h"

namespace spidermine {
namespace {

LabeledGraph Path(int n) {
  GraphBuilder b;
  for (int i = 0; i < n; ++i) b.AddVertex(0);
  for (int i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  return std::move(b.Build()).value();
}

LabeledGraph TwoTriangles() {
  GraphBuilder b;
  for (int i = 0; i < 6; ++i) b.AddVertex(0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  b.AddEdge(3, 5);
  return std::move(b.Build()).value();
}

TEST(BfsTest, DistancesOnPath) {
  LabeledGraph g = Path(5);
  std::vector<int32_t> dist = BfsDistances(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(BfsTest, DistancesFromMiddle) {
  LabeledGraph g = Path(5);
  std::vector<int32_t> dist = BfsDistances(g, 2);
  EXPECT_EQ(dist[0], 2);
  EXPECT_EQ(dist[2], 0);
  EXPECT_EQ(dist[4], 2);
}

TEST(BfsTest, MaxDepthTruncates) {
  LabeledGraph g = Path(5);
  std::vector<int32_t> dist = BfsDistances(g, 0, 2);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], -1);
  EXPECT_EQ(dist[4], -1);
}

TEST(BfsTest, UnreachableIsMinusOne) {
  LabeledGraph g = TwoTriangles();
  std::vector<int32_t> dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[3], -1);
  EXPECT_EQ(dist[4], -1);
  EXPECT_EQ(dist[5], -1);
}

TEST(BfsTest, BallContainsExactlyRadiusNeighborhood) {
  LabeledGraph g = Path(7);
  std::vector<VertexId> ball = BfsBall(g, 3, 2);
  std::sort(ball.begin(), ball.end());
  EXPECT_EQ(ball, (std::vector<VertexId>{1, 2, 3, 4, 5}));
}

TEST(BfsTest, BallRadiusZeroIsCenter) {
  LabeledGraph g = Path(3);
  std::vector<VertexId> ball = BfsBall(g, 1, 0);
  EXPECT_EQ(ball, (std::vector<VertexId>{1}));
}

TEST(BfsTest, BallCenterFirst) {
  LabeledGraph g = Path(5);
  std::vector<VertexId> ball = BfsBall(g, 2, 2);
  EXPECT_EQ(ball[0], 2);
  EXPECT_EQ(ball.size(), 5u);
}

TEST(ComponentsTest, SingleComponent) {
  LabeledGraph g = Path(4);
  ComponentDecomposition d = ConnectedComponents(g);
  EXPECT_EQ(d.count, 1);
  for (int32_t c : d.component) EXPECT_EQ(c, 0);
}

TEST(ComponentsTest, TwoComponents) {
  LabeledGraph g = TwoTriangles();
  ComponentDecomposition d = ConnectedComponents(g);
  EXPECT_EQ(d.count, 2);
  EXPECT_EQ(d.component[0], d.component[1]);
  EXPECT_EQ(d.component[0], d.component[2]);
  EXPECT_EQ(d.component[3], d.component[4]);
  EXPECT_NE(d.component[0], d.component[3]);
}

TEST(ComponentsTest, IsolatedVerticesAreOwnComponents) {
  GraphBuilder b;
  b.AddVertices(3, 0);
  ComponentDecomposition d = ConnectedComponents(std::move(b.Build()).value());
  EXPECT_EQ(d.count, 3);
}

TEST(DiameterTest, PathDiameter) {
  EXPECT_EQ(ExactDiameter(Path(5)), 4);
  EXPECT_EQ(ExactDiameter(Path(2)), 1);
  EXPECT_EQ(ExactDiameter(Path(1)), 0);
}

TEST(DiameterTest, TriangleDiameterIsOne) {
  LabeledGraph g = TwoTriangles();
  // Disconnected: per-vertex eccentricities ignore unreachable vertices.
  EXPECT_EQ(ExactDiameter(g), 1);
}

TEST(DiameterTest, EccentricityOfPathEnds) {
  LabeledGraph g = Path(6);
  EXPECT_EQ(Eccentricity(g, 0), 5);
  EXPECT_EQ(Eccentricity(g, 2), 3);
}

TEST(DiameterTest, EffectiveDiameterBoundedByExact) {
  LabeledGraph g = Path(20);
  Rng rng(5);
  double eff = EffectiveDiameter(g, 0.9, 20, &rng);
  EXPECT_GT(eff, 0.0);
  EXPECT_LE(eff, 19.0);
}

TEST(DiameterTest, EffectiveDiameterOfCliqueIsOne) {
  GraphBuilder b;
  b.AddVertices(6, 0);
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) b.AddEdge(i, j);
  }
  Rng rng(5);
  EXPECT_EQ(EffectiveDiameter(std::move(b.Build()).value(), 0.9, 6, &rng),
            1.0);
}

TEST(DegreeStatsTest, PathStats) {
  DegreeStats s = ComputeDegreeStats(Path(5));
  EXPECT_EQ(s.max, 2);
  EXPECT_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.average, 8.0 / 5.0);
  ASSERT_EQ(s.histogram.size(), 3u);
  EXPECT_EQ(s.histogram[1], 2);  // two endpoints
  EXPECT_EQ(s.histogram[2], 3);  // three middles
}

TEST(DegreeStatsTest, EmptyGraph) {
  GraphBuilder b;
  DegreeStats s = ComputeDegreeStats(std::move(b.Build()).value());
  EXPECT_EQ(s.max, 0);
  EXPECT_DOUBLE_EQ(s.average, 0.0);
}

TEST(DegreeStatsTest, LabelHistogram) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(1);
  b.AddVertex(3);
  std::vector<int64_t> h = LabelHistogram(std::move(b.Build()).value());
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 1);
  EXPECT_EQ(h[1], 2);
  EXPECT_EQ(h[2], 0);
  EXPECT_EQ(h[3], 1);
}

}  // namespace
}  // namespace spidermine
