#include "spidermine/stage1_partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "gen/barabasi_albert.h"
#include "gen/erdos_renyi.h"
#include "graph/graph_builder.h"
#include "graph/graph_partition.h"
#include "spidermine/session.h"

/// The tentpole contract of partitioned Stage I: merging the per-partition
/// `.sm2p` partials yields a `.sm2` BYTE-IDENTICAL to a single-node
/// `stage1` run — at any partition count, any thread count, budgeted or
/// not. Plus: the `.sm2p` codec rejects corruption/truncation, and the
/// merge rejects mixed, duplicated or incomplete partial sets.

namespace spidermine {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

LabeledGraph ErGraph(uint64_t seed, int64_t n = 250) {
  Rng rng(seed);
  GraphBuilder builder = GenerateErdosRenyi(n, 3.0, 6, &rng);
  return std::move(builder.Build()).value();
}

LabeledGraph BaGraph(uint64_t seed, int64_t n = 250) {
  Rng rng(seed);
  GraphBuilder builder = GenerateBarabasiAlbert(n, 2, 6, &rng);
  return std::move(builder.Build()).value();
}

struct MineParams {
  int64_t min_support = 3;
  int32_t max_star_leaves = 4;
  int64_t max_spiders = 0;
};

/// The single-node reference: MiningSession::Create + SaveStage1.
std::string SingleNodeSm2Bytes(const LabeledGraph& graph,
                               const MineParams& params, int32_t threads) {
  SessionConfig config;
  config.min_support = params.min_support;
  config.max_star_leaves = params.max_star_leaves;
  config.max_spiders = params.max_spiders;
  config.num_threads = threads;
  Result<MiningSession> session = MiningSession::Create(&graph, config);
  EXPECT_TRUE(session.ok()) << session.status();
  const std::string path = TempPath("stage1_partition_single.sm2");
  EXPECT_TRUE(session->SaveStage1(path).ok());
  std::string bytes = ReadAll(path);
  std::filesystem::remove(path);
  return bytes;
}

/// The partitioned pipeline, in-process: partition, mine each partial,
/// save `.sm2p`s, merge to a `.sm2`.
std::string PartitionedSm2Bytes(const LabeledGraph& graph,
                                const MineParams& params, int32_t parts,
                                int32_t threads, const std::string& tag) {
  Result<PartitionPlan> plan = MakePartitionPlan(graph, parts, 1);
  EXPECT_TRUE(plan.ok()) << plan.status();
  ThreadPool pool(threads);
  std::vector<std::string> partial_paths;
  for (int32_t p = 0; p < parts; ++p) {
    Result<GraphPartition> part = BuildGraphPartition(graph, *plan, p);
    EXPECT_TRUE(part.ok()) << part.status();
    Stage1PartialConfig config;
    config.min_support = params.min_support;
    config.max_star_leaves = params.max_star_leaves;
    config.max_spiders = params.max_spiders;
    Result<Stage1PartialResult> partial =
        MineStage1Partial(*part, config, &pool);
    EXPECT_TRUE(partial.ok()) << partial.status();
    Stage1PartialMeta meta;
    meta.min_support = params.min_support;
    meta.max_star_leaves = params.max_star_leaves;
    meta.max_spiders = params.max_spiders;
    meta.num_graph_vertices = part->parent_num_vertices;
    meta.graph_hash = part->parent_hash;
    meta.partition_index = p;
    meta.num_partitions = parts;
    meta.owned_begin = part->owned_begin;
    meta.owned_end = part->owned_end;
    const std::string path =
        TempPath(StrCat("stage1_partition_", tag, "_", p, ".sm2p"));
    EXPECT_TRUE(SaveStage1Partial(partial->store, meta, path).ok());
    partial_paths.push_back(path);
  }
  const std::string out = TempPath(StrCat("stage1_partition_", tag, ".sm2"));
  Result<Stage1MergeStats> stats =
      MergeStage1PartialsToFile(partial_paths, out);
  EXPECT_TRUE(stats.ok()) << stats.status();
  std::string bytes = ReadAll(out);
  for (const std::string& path : partial_paths) {
    std::filesystem::remove(path);
  }
  std::filesystem::remove(out);
  return bytes;
}

TEST(Stage1PartitionTest, MergedArtifactIsByteIdenticalToSingleNode) {
  for (const LabeledGraph& graph : {ErGraph(51), BaGraph(53)}) {
    for (const int64_t budget : {int64_t{0}, int64_t{37}}) {
      MineParams params;
      params.max_spiders = budget;
      const std::string reference =
          SingleNodeSm2Bytes(graph, params, /*threads=*/1);
      ASSERT_FALSE(reference.empty());
      // The single-node result itself must not depend on threads.
      ASSERT_EQ(SingleNodeSm2Bytes(graph, params, /*threads=*/8),
                reference);
      for (const int32_t parts : {1, 2, 5}) {
        for (const int32_t threads : {1, 8}) {
          EXPECT_EQ(PartitionedSm2Bytes(graph, params, parts, threads,
                                        StrCat("ident_", parts, "_",
                                               threads, "_", budget)),
                    reference)
              << "parts=" << parts << " threads=" << threads
              << " budget=" << budget;
        }
      }
    }
  }
}

TEST(Stage1PartitionTest, BudgetPrefixIsExactAtEveryCutPoint) {
  // Sweep the budget across the whole frequent set on a small graph: the
  // admitted prefix AND the closed flags at the truncation boundary must
  // match the single-node run at every cut.
  const LabeledGraph graph = ErGraph(57, 60);
  MineParams unbudgeted;
  SessionConfig probe_config;
  probe_config.min_support = unbudgeted.min_support;
  probe_config.max_star_leaves = unbudgeted.max_star_leaves;
  Result<MiningSession> probe = MiningSession::Create(&graph, probe_config);
  ASSERT_TRUE(probe.ok()) << probe.status();
  const int64_t total = probe->store().size();
  ASSERT_GT(total, 5);
  for (int64_t budget = 1; budget <= total + 1;
       budget += std::max<int64_t>(1, total / 12)) {
    MineParams params;
    params.max_spiders = budget;
    EXPECT_EQ(PartitionedSm2Bytes(graph, params, 3, 1,
                                  StrCat("sweep_", budget)),
              SingleNodeSm2Bytes(graph, params, 1))
        << "budget=" << budget << " of " << total;
  }
}

TEST(Stage1PartitionTest, PartialRejectsCorruptionAndTruncation) {
  const LabeledGraph graph = ErGraph(61, 80);
  Result<PartitionPlan> plan = MakePartitionPlan(graph, 2, 1);
  ASSERT_TRUE(plan.ok()) << plan.status();
  Result<GraphPartition> part = BuildGraphPartition(graph, *plan, 0);
  ASSERT_TRUE(part.ok()) << part.status();
  Result<Stage1PartialResult> partial =
      MineStage1Partial(*part, Stage1PartialConfig{});
  ASSERT_TRUE(partial.ok()) << partial.status();
  ASSERT_GT(partial->store.size(), 0);
  Stage1PartialMeta meta;
  meta.num_graph_vertices = graph.NumVertices();
  meta.graph_hash = graph.ContentHash();
  meta.num_partitions = 2;
  meta.owned_begin = part->owned_begin;
  meta.owned_end = part->owned_end;
  const std::string bytes = Stage1PartialToBytes(partial->store, meta);
  const std::string path = TempPath("stage1_partial_corrupt.sm2p");

  WriteAll(path, bytes);
  EXPECT_TRUE(MappedStage1Partial::Open(path).ok());

  // Single corrupted bytes anywhere — header, offsets, pools — fail the
  // EAGER validation (the worker driver's truncation check relies on it).
  for (size_t offset : {size_t{9}, size_t{300}, bytes.size() / 2,
                        bytes.size() - 3}) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x10);
    WriteAll(path, corrupt);
    Result<std::unique_ptr<MappedStage1Partial>> r =
        MappedStage1Partial::Open(path);
    EXPECT_FALSE(r.ok()) << "corruption at byte " << offset;
  }
  // Truncations (the shape a killed worker leaves behind).
  for (size_t keep : {size_t{0}, size_t{12}, bytes.size() / 3,
                      bytes.size() - 1}) {
    WriteAll(path, bytes.substr(0, keep));
    EXPECT_FALSE(MappedStage1Partial::Open(path).ok())
        << "truncated to " << keep << " bytes";
  }
  std::filesystem::remove(path);
}

TEST(Stage1PartitionTest, MergeRejectsMixedOrIncompletePartialSets) {
  const LabeledGraph graph = ErGraph(67, 100);
  Result<PartitionPlan> plan = MakePartitionPlan(graph, 2, 1);
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::vector<std::string> paths;
  for (int32_t p = 0; p < 2; ++p) {
    Result<GraphPartition> part = BuildGraphPartition(graph, *plan, p);
    ASSERT_TRUE(part.ok()) << part.status();
    Result<Stage1PartialResult> partial =
        MineStage1Partial(*part, Stage1PartialConfig{});
    ASSERT_TRUE(partial.ok()) << partial.status();
    Stage1PartialMeta meta;
    meta.num_graph_vertices = graph.NumVertices();
    meta.graph_hash = graph.ContentHash();
    meta.partition_index = p;
    meta.num_partitions = 2;
    meta.owned_begin = part->owned_begin;
    meta.owned_end = part->owned_end;
    const std::string path =
        TempPath(StrCat("stage1_partial_merge_", p, ".sm2p"));
    ASSERT_TRUE(SaveStage1Partial(partial->store, meta, path).ok());
    paths.push_back(path);
  }
  // The complete set merges.
  EXPECT_TRUE(MergeStage1Partials(paths).ok());
  // An incomplete set does not (num_partitions says 2).
  EXPECT_FALSE(MergeStage1Partials({paths[0]}).ok());
  // A duplicated partition does not.
  EXPECT_FALSE(MergeStage1Partials({paths[0], paths[0]}).ok());
  // A partial mined with different parameters does not mix in.
  {
    Result<GraphPartition> part = BuildGraphPartition(graph, *plan, 1);
    ASSERT_TRUE(part.ok());
    Stage1PartialConfig other;
    other.max_star_leaves = 3;
    Result<Stage1PartialResult> partial = MineStage1Partial(*part, other);
    ASSERT_TRUE(partial.ok());
    Stage1PartialMeta meta;
    meta.max_star_leaves = 3;
    meta.num_graph_vertices = graph.NumVertices();
    meta.graph_hash = graph.ContentHash();
    meta.partition_index = 1;
    meta.num_partitions = 2;
    meta.owned_begin = part->owned_begin;
    meta.owned_end = part->owned_end;
    const std::string mixed = TempPath("stage1_partial_mixed.sm2p");
    ASSERT_TRUE(SaveStage1Partial(partial->store, meta, mixed).ok());
    EXPECT_FALSE(MergeStage1Partials({paths[0], mixed}).ok());
    std::filesystem::remove(mixed);
  }
  for (const std::string& path : paths) std::filesystem::remove(path);
}

TEST(Stage1PartitionTest, PartialMiningValidatesItsInputs) {
  const LabeledGraph graph = ErGraph(71, 40);
  Result<PartitionPlan> plan = MakePartitionPlan(graph, 2, 1);
  ASSERT_TRUE(plan.ok());
  Result<GraphPartition> part = BuildGraphPartition(graph, *plan, 0);
  ASSERT_TRUE(part.ok());
  Stage1PartialConfig bad;
  bad.min_support = 0;
  EXPECT_FALSE(MineStage1Partial(*part, bad).ok());
  GraphPartition no_halo = std::move(*part);
  no_halo.radius = 0;
  EXPECT_FALSE(MineStage1Partial(no_halo, Stage1PartialConfig{}).ok());
}

}  // namespace
}  // namespace spidermine
