#include "spidermine/variants.h"

#include <gtest/gtest.h>

namespace spidermine {
namespace {

// Path pattern 0-1-2-...-(n-1) with the given labels.
Pattern PathPattern(const std::vector<LabelId>& labels) {
  Pattern p(labels[0]);
  for (size_t i = 1; i < labels.size(); ++i) {
    VertexId v = p.AddVertex(labels[i]);
    p.AddEdge(static_cast<VertexId>(i - 1), v);
  }
  return p;
}

MinedPattern Make(Pattern pattern, int64_t support, size_t embeddings = 0) {
  MinedPattern mp;
  mp.pattern = std::move(pattern);
  mp.support = support;
  mp.embeddings.resize(embeddings);
  for (size_t i = 0; i < embeddings; ++i) {
    mp.embeddings[i] = Embedding(static_cast<size_t>(mp.NumVertices()), 0);
  }
  return mp;
}

TEST(VariantsTest, IsSubPatternBasics) {
  Pattern path2 = PathPattern({0, 1});
  Pattern path3 = PathPattern({0, 1, 2});
  Pattern other = PathPattern({3, 4});
  EXPECT_TRUE(IsSubPattern(path2, path3));
  EXPECT_FALSE(IsSubPattern(path3, path2));
  EXPECT_FALSE(IsSubPattern(other, path3));
  EXPECT_TRUE(IsSubPattern(path3, path3));
}

TEST(VariantsTest, IsSubPatternRespectsLabels) {
  Pattern a = PathPattern({0, 1});
  Pattern b = PathPattern({0, 2});
  EXPECT_FALSE(IsSubPattern(a, b));
}

TEST(VariantsTest, EmptyPatternIsSubOfAnything) {
  Pattern empty;
  Pattern path = PathPattern({0, 1});
  EXPECT_TRUE(IsSubPattern(empty, path));
}

TEST(VariantsTest, FilterMaximalDropsNestedPatterns) {
  // Size-descending list: path4 > path3 > path2 (all nested) + a disjointly
  // labeled edge that survives.
  std::vector<MinedPattern> patterns;
  patterns.push_back(Make(PathPattern({0, 1, 2, 3}), 3));
  patterns.push_back(Make(PathPattern({0, 1, 2}), 4));
  patterns.push_back(Make(PathPattern({7, 8}), 5));
  patterns.push_back(Make(PathPattern({0, 1}), 6));
  std::vector<MinedPattern> maximal = FilterMaximal(std::move(patterns));
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_EQ(maximal[0].NumVertices(), 4);
  EXPECT_EQ(maximal[1].pattern.Label(0), 7);
}

TEST(VariantsTest, FilterMaximalKeepsIncomparablePatterns) {
  std::vector<MinedPattern> patterns;
  patterns.push_back(Make(PathPattern({0, 1, 2}), 2));
  patterns.push_back(Make(PathPattern({3, 4, 5}), 2));
  std::vector<MinedPattern> maximal = FilterMaximal(std::move(patterns));
  EXPECT_EQ(maximal.size(), 2u);
}

TEST(VariantsTest, FilterMaximalEmptyInput) {
  EXPECT_TRUE(FilterMaximal({}).empty());
}

TEST(VariantsTest, GroupVariantsClustersAroundCore) {
  // Core path 0-1-2; two variants add one edge each; one unrelated pattern.
  Pattern core = PathPattern({0, 1, 2});

  Pattern variant1 = PathPattern({0, 1, 2});
  VertexId extra1 = variant1.AddVertex(5);
  variant1.AddEdge(2, extra1);

  Pattern variant2 = PathPattern({0, 1, 2});
  VertexId extra2 = variant2.AddVertex(6);
  variant2.AddEdge(0, extra2);

  Pattern unrelated = PathPattern({8, 9});

  std::vector<MinedPattern> patterns;
  patterns.push_back(Make(variant1, 3, 5));
  patterns.push_back(Make(variant2, 3, 4));
  patterns.push_back(Make(core, 4, 6));
  patterns.push_back(Make(unrelated, 2, 2));

  std::vector<VariantGroup> groups = GroupVariants(patterns);
  ASSERT_EQ(groups.size(), 2u);
  // Dominant group: core at index 2 covering 3 patterns.
  EXPECT_EQ(groups[0].core_index, 2u);
  EXPECT_EQ(groups[0].variant_indices, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(groups[0].total_embeddings, 15);
  // Singleton group for the unrelated pattern.
  EXPECT_EQ(groups[1].core_index, 3u);
  EXPECT_TRUE(groups[1].variant_indices.empty());
}

TEST(VariantsTest, GroupVariantsRespectsMaxExtraEdges) {
  Pattern core = PathPattern({0, 1});
  Pattern far = PathPattern({0, 1, 2, 3, 4});  // 3 extra edges

  std::vector<MinedPattern> patterns;
  patterns.push_back(Make(far, 2));
  patterns.push_back(Make(core, 3));

  VariantOptions tight;
  tight.max_extra_edges = 2;
  std::vector<VariantGroup> groups = GroupVariants(patterns, tight);
  EXPECT_EQ(groups.size(), 2u);

  VariantOptions loose;
  loose.max_extra_edges = 3;
  groups = GroupVariants(patterns, loose);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(patterns[groups[0].core_index].NumEdges(), 1);
}

TEST(VariantsTest, EveryPatternAssignedExactlyOnce) {
  std::vector<MinedPattern> patterns;
  for (int i = 0; i < 6; ++i) {
    patterns.push_back(Make(PathPattern({i, i + 1}), 2));
  }
  std::vector<VariantGroup> groups = GroupVariants(patterns);
  std::vector<int> seen(6, 0);
  for (const VariantGroup& g : groups) {
    ++seen[g.core_index];
    for (size_t v : g.variant_indices) ++seen[v];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(VariantsTest, ToStringMentionsEachGroup) {
  std::vector<MinedPattern> patterns;
  patterns.push_back(Make(PathPattern({0, 1}), 2, 3));
  patterns.push_back(Make(PathPattern({4, 5}), 2, 2));
  std::vector<VariantGroup> groups = GroupVariants(patterns);
  std::string text = VariantGroupsToString(patterns, groups);
  EXPECT_NE(text.find("group 0"), std::string::npos);
  EXPECT_NE(text.find("group 1"), std::string::npos);
  EXPECT_NE(text.find("total embeddings"), std::string::npos);
}

}  // namespace
}  // namespace spidermine
