#include "pattern/pattern.h"

#include <gtest/gtest.h>

namespace spidermine {
namespace {

Pattern PathPattern(int n, LabelId label = 0) {
  Pattern p;
  for (int i = 0; i < n; ++i) p.AddVertex(label);
  for (int i = 0; i + 1 < n; ++i) p.AddEdge(i, i + 1);
  return p;
}

TEST(PatternTest, SingleVertexConstructor) {
  Pattern p(7);
  EXPECT_EQ(p.NumVertices(), 1);
  EXPECT_EQ(p.NumEdges(), 0);
  EXPECT_EQ(p.Label(0), 7);
}

TEST(PatternTest, AddEdgeRejectsSelfLoopsAndDuplicates) {
  Pattern p = PathPattern(3);
  EXPECT_FALSE(p.AddEdge(1, 1));
  EXPECT_FALSE(p.AddEdge(0, 1));  // duplicate
  EXPECT_FALSE(p.AddEdge(1, 0));  // duplicate, reversed
  EXPECT_FALSE(p.AddEdge(0, 9));  // out of range
  EXPECT_EQ(p.NumEdges(), 2);
  EXPECT_TRUE(p.AddEdge(0, 2));
  EXPECT_EQ(p.NumEdges(), 3);
}

TEST(PatternTest, NeighborsSortedAndDegrees) {
  Pattern p;
  for (int i = 0; i < 4; ++i) p.AddVertex(0);
  p.AddEdge(2, 3);
  p.AddEdge(2, 0);
  p.AddEdge(2, 1);
  auto nbrs = p.Neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0);
  EXPECT_EQ(nbrs[1], 1);
  EXPECT_EQ(nbrs[2], 3);
  EXPECT_EQ(p.Degree(2), 3);
  EXPECT_EQ(p.Degree(0), 1);
}

TEST(PatternTest, BfsDistancesAndConnectivity) {
  Pattern p = PathPattern(4);
  std::vector<int32_t> dist = p.BfsDistances(0);
  EXPECT_EQ(dist[3], 3);
  EXPECT_TRUE(p.IsConnected());
  p.AddVertex(0);  // now disconnected
  EXPECT_FALSE(p.IsConnected());
}

TEST(PatternTest, EmptyAndSingletonAreConnected) {
  Pattern empty;
  EXPECT_TRUE(empty.IsConnected());
  Pattern single(0);
  EXPECT_TRUE(single.IsConnected());
}

TEST(PatternTest, DiameterAndEccentricity) {
  Pattern p = PathPattern(5);
  EXPECT_EQ(p.Diameter(), 4);
  EXPECT_EQ(p.Eccentricity(0), 4);
  EXPECT_EQ(p.Eccentricity(2), 2);
  EXPECT_TRUE(p.IsRBoundedFrom(2, 2));
  EXPECT_FALSE(p.IsRBoundedFrom(2, 1));
  EXPECT_TRUE(p.IsRBoundedFrom(0, 4));
}

TEST(PatternTest, DisconnectedDiameterIsUnbounded) {
  Pattern p = PathPattern(2);
  p.AddVertex(0);
  EXPECT_EQ(p.Diameter(), INT32_MAX);
  EXPECT_EQ(p.Eccentricity(0), INT32_MAX);
}

TEST(PatternTest, InducedSubgraph) {
  // Star: center 0 with leaves 1, 2, 3; leaf-leaf edge 1-2.
  Pattern p;
  p.AddVertex(9);
  for (int i = 0; i < 3; ++i) {
    VertexId leaf = p.AddVertex(i);
    p.AddEdge(0, leaf);
  }
  p.AddEdge(1, 2);
  std::vector<VertexId> keep{0, 1, 2};
  Pattern sub = p.InducedSubgraph(keep);
  EXPECT_EQ(sub.NumVertices(), 3);
  EXPECT_EQ(sub.NumEdges(), 3);  // 0-1, 0-2, 1-2
  EXPECT_EQ(sub.Label(0), 9);
  EXPECT_EQ(sub.Label(1), 0);
  EXPECT_EQ(sub.Label(2), 1);
}

TEST(PatternTest, InducedSubgraphDropsOutsideEdges) {
  Pattern p = PathPattern(4);
  std::vector<VertexId> keep{0, 2};
  Pattern sub = p.InducedSubgraph(keep);
  EXPECT_EQ(sub.NumVertices(), 2);
  EXPECT_EQ(sub.NumEdges(), 0);
}

TEST(PatternTest, SortedLabelsAndEdges) {
  Pattern p;
  p.AddVertex(5);
  p.AddVertex(1);
  p.AddVertex(3);
  p.AddEdge(2, 0);
  p.AddEdge(1, 2);
  EXPECT_EQ(p.SortedLabels(), (std::vector<LabelId>{1, 3, 5}));
  auto edges = p.Edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::pair<VertexId, VertexId>{0, 2}));
  EXPECT_EQ(edges[1], (std::pair<VertexId, VertexId>{1, 2}));
}

TEST(PatternTest, EqualityIsStructuralIdentity) {
  Pattern a = PathPattern(3, 1);
  Pattern b = PathPattern(3, 1);
  EXPECT_EQ(a, b);
  b.AddEdge(0, 2);
  EXPECT_FALSE(a == b);
}

TEST(PatternTest, ToStringIsInformative) {
  Pattern p = PathPattern(2, 4);
  std::string s = p.ToString();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("m=1"), std::string::npos);
  EXPECT_NE(s.find("0-1"), std::string::npos);
}

}  // namespace
}  // namespace spidermine
