#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "spidermine/miner.h"

// This suite exercises the deprecated SpiderMiner::Mine() shim on purpose
// (its compatibility contract is the thing under test); silence the
// session-API migration warning for the whole file.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include "spidermine/seed_count.h"

/// \file guarantee_test.cc
/// Empirical validation of the paper's probabilistic guarantee (Theorem 1):
/// with M seed spiders chosen per Lemma 2, SpiderMine returns the top-K
/// largest patterns with probability >= 1 - epsilon. These tests plant a
/// large pattern, run the miner across many independent seeds, and check
/// the empirical success rate against the bound (with slack for the finite
/// number of trials; the analytic value is a LOWER bound, so measured rates
/// sit well above it in practice).

namespace spidermine {
namespace {

struct PlantedInstance {
  LabeledGraph graph;
  int32_t planted_vertices = 0;
};

PlantedInstance MakePlantedInstance(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder = GenerateErdosRenyi(200, 1.8, 18, &rng);
  Pattern planted = RandomPatternWithDiameter(14, 4, 18, &rng);
  PatternInjector injector(&builder);
  Status status = injector.Inject(planted, 3, &rng);
  PlantedInstance instance{std::move(builder.Build()).value(),
                           planted.NumVertices()};
  EXPECT_TRUE(status.ok());
  return instance;
}

// Success: the miner recovered a pattern at least as large (in vertices) as
// the planted one. Recovered patterns may exceed the plant through
// background interconnections, which the paper explicitly notes.
bool RunOnce(const PlantedInstance& instance, uint64_t seed, double epsilon) {
  MineConfig config;
  config.min_support = 3;
  config.k = 5;
  config.dmax = 4;
  config.vmin = instance.planted_vertices;
  config.epsilon = epsilon;
  config.rng_seed = seed;
  Result<MineResult> result = SpiderMiner(&instance.graph, config).Mine();
  if (!result.ok() || result->patterns.empty()) return false;
  return result->patterns.front().NumVertices() >= instance.planted_vertices;
}

TEST(GuaranteeTest, SuccessRateMeetsEpsilonBound) {
  PlantedInstance instance = MakePlantedInstance(1234);
  const double epsilon = 0.1;
  const int trials = 20;
  int successes = 0;
  for (int t = 0; t < trials; ++t) {
    successes += RunOnce(instance, 1000 + static_cast<uint64_t>(t), epsilon)
                     ? 1
                     : 0;
  }
  // 1 - epsilon = 0.90; allow finite-sample slack down to 0.70 (a binomial
  // with p = 0.9, n = 20 is below 14 successes with probability < 1e-4).
  EXPECT_GE(successes, 14)
      << "success rate " << successes << "/" << trials
      << " is far below the 1 - epsilon = 0.9 guarantee";
}

TEST(GuaranteeTest, SmallerEpsilonDrawsMoreSeeds) {
  PlantedInstance instance = MakePlantedInstance(99);
  MineConfig config;
  config.min_support = 3;
  config.k = 5;
  config.dmax = 4;
  config.vmin = instance.planted_vertices;
  config.rng_seed = 7;

  config.epsilon = 0.4;
  Result<MineResult> loose = SpiderMiner(&instance.graph, config).Mine();
  config.epsilon = 0.02;
  Result<MineResult> strict = SpiderMiner(&instance.graph, config).Mine();
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(strict.ok());
  EXPECT_GT(strict->stats.seed_count_m, loose->stats.seed_count_m);
}

TEST(GuaranteeTest, StarvedSeedsFailMoreOftenThanLemma2Seeds) {
  // With M forced to 1 the "two spiders must land in the pattern" argument
  // cannot hold, so the planted pattern is recovered rarely; with the
  // Lemma 2 M it is recovered nearly always. This is the mechanism behind
  // Figure 1/Lemma 1 and the heart of the paper's design.
  PlantedInstance instance = MakePlantedInstance(4321);
  const int trials = 12;
  int starved = 0;
  int full = 0;
  for (int t = 0; t < trials; ++t) {
    MineConfig config;
    config.min_support = 3;
    config.k = 5;
    config.dmax = 4;
    config.vmin = instance.planted_vertices;
    config.rng_seed = 500 + static_cast<uint64_t>(t);

    config.seed_count_override = 1;
    Result<MineResult> starved_result =
        SpiderMiner(&instance.graph, config).Mine();
    if (starved_result.ok() && !starved_result->patterns.empty() &&
        starved_result->patterns.front().NumVertices() >=
            instance.planted_vertices) {
      ++starved;
    }

    config.seed_count_override = 0;  // Lemma 2 value
    Result<MineResult> full_result =
        SpiderMiner(&instance.graph, config).Mine();
    if (full_result.ok() && !full_result->patterns.empty() &&
        full_result->patterns.front().NumVertices() >=
            instance.planted_vertices) {
      ++full;
    }
  }
  EXPECT_GT(full, starved);
  EXPECT_GE(full, trials - 2);
}

TEST(GuaranteeTest, AnalyticBoundIsMonotoneInM) {
  // Sanity of the Lemma 2 arithmetic feeding the tests above: the bound
  // grows with M and shrinks with K.
  const int64_t n = 1000, vmin = 100;
  double previous = 0.0;
  for (int64_t m : {1, 5, 10, 20, 40, 80, 160}) {
    const double bound = SeedSuccessLowerBound(n, vmin, /*k=*/10, m);
    EXPECT_GE(bound, previous) << "m=" << m;
    previous = bound;
  }
  EXPECT_GE(SeedSuccessLowerBound(n, vmin, 1, 80),
            SeedSuccessLowerBound(n, vmin, 10, 80));
}

}  // namespace
}  // namespace spidermine
