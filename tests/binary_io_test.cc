#include "graph/binary_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "graph/graph_builder.h"
#include "pattern/vf2.h"

namespace spidermine {
namespace {

LabeledGraph SmallGraph() {
  GraphBuilder builder;
  builder.AddVertex(0);
  builder.AddVertex(1);
  builder.AddVertex(1);
  builder.AddVertex(2);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(0, 3);
  return std::move(builder.Build()).value();
}

void ExpectGraphsEqual(const LabeledGraph& a, const LabeledGraph& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    EXPECT_EQ(a.Label(v), b.Label(v));
    auto na = a.Neighbors(v);
    auto nb = b.Neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(BinaryIoTest, GraphRoundTripInMemory) {
  LabeledGraph g = SmallGraph();
  Result<LabeledGraph> back = GraphFromBinary(GraphToBinary(g));
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectGraphsEqual(g, *back);
}

TEST(BinaryIoTest, EmptyGraphRoundTrip) {
  LabeledGraph g = std::move(GraphBuilder().Build()).value();
  Result<LabeledGraph> back = GraphFromBinary(GraphToBinary(g));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->NumVertices(), 0);
  EXPECT_EQ(back->NumEdges(), 0);
}

TEST(BinaryIoTest, RandomGraphRoundTripThroughFile) {
  Rng rng(99);
  LabeledGraph g =
      std::move(GenerateErdosRenyi(500, 4.0, 12, &rng).Build()).value();
  const std::string path =
      (std::filesystem::temp_directory_path() / "sm_binary_io_test.smg")
          .string();
  ASSERT_TRUE(SaveGraphBinary(g, path).ok());
  Result<LabeledGraph> back = LoadGraphBinary(path);
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectGraphsEqual(g, *back);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, PatternRoundTrip) {
  Pattern p(3);
  VertexId b = p.AddVertex(1);
  VertexId c = p.AddVertex(4);
  p.AddEdge(0, b);
  p.AddEdge(b, c);
  Result<Pattern> back = PatternFromBinary(PatternToBinary(p));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(ArePatternsIsomorphic(p, *back));
  EXPECT_EQ(back->NumVertices(), 3);
  EXPECT_EQ(back->NumEdges(), 2);
}

TEST(BinaryIoTest, RejectsTruncatedHeader) {
  std::string bytes = GraphToBinary(SmallGraph()).substr(0, 10);
  Result<LabeledGraph> r = GraphFromBinary(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(BinaryIoTest, RejectsTruncatedPayload) {
  std::string bytes = GraphToBinary(SmallGraph());
  bytes.resize(bytes.size() - 3);
  Result<LabeledGraph> r = GraphFromBinary(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("length mismatch"), std::string::npos);
}

TEST(BinaryIoTest, RejectsBadMagic) {
  std::string bytes = GraphToBinary(SmallGraph());
  bytes[0] = 'X';
  Result<LabeledGraph> r = GraphFromBinary(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
}

TEST(BinaryIoTest, RejectsWrongVersion) {
  std::string bytes = GraphToBinary(SmallGraph());
  bytes[4] = 9;  // version field
  Result<LabeledGraph> r = GraphFromBinary(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("version"), std::string::npos);
}

TEST(BinaryIoTest, DetectsPayloadCorruption) {
  // Flip one byte in every payload position in turn; the CRC (or a decode
  // validity check) must reject every single-byte corruption.
  std::string bytes = GraphToBinary(SmallGraph());
  for (size_t pos = 20; pos < bytes.size(); ++pos) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x40);
    Result<LabeledGraph> r = GraphFromBinary(corrupted);
    EXPECT_FALSE(r.ok()) << "corruption at byte " << pos << " was accepted";
  }
}

TEST(BinaryIoTest, DetectsCrcFieldCorruption) {
  std::string bytes = GraphToBinary(SmallGraph());
  bytes[16] = static_cast<char>(bytes[16] ^ 0x01);  // CRC field
  Result<LabeledGraph> r = GraphFromBinary(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST(BinaryIoTest, GraphLoaderRejectsPatternFile) {
  Pattern p(0);
  p.AddVertex(1);
  p.AddEdge(0, 1);
  Result<LabeledGraph> r = GraphFromBinary(PatternToBinary(p));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
}

TEST(BinaryIoTest, LoadMissingFileFails) {
  Result<LabeledGraph> r = LoadGraphBinary("/nonexistent/dir/graph.smg");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(BinaryIoTest, SaveToUnwritablePathFails) {
  EXPECT_FALSE(SaveGraphBinary(SmallGraph(), "/nonexistent/dir/g.smg").ok());
}

}  // namespace
}  // namespace spidermine
