#include "pattern/vf2.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"

namespace spidermine {
namespace {

LabeledGraph TriangleChain() {
  // Two triangles sharing vertex 2: {0,1,2} and {2,3,4}; labels A=0 B=1.
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  b.AddEdge(2, 4);
  return std::move(b.Build()).value();
}

Pattern LabeledEdge(LabelId a, LabelId b) {
  Pattern p;
  p.AddVertex(a);
  p.AddVertex(b);
  p.AddEdge(0, 1);
  return p;
}

TEST(Vf2Test, SingleVertexEmbeddings) {
  LabeledGraph g = TriangleChain();
  Pattern p(0);
  std::vector<Embedding> embeddings = FindEmbeddings(p, g);
  EXPECT_EQ(embeddings.size(), 3u);  // vertices 0, 2, 4 carry label 0
}

TEST(Vf2Test, EdgeEmbeddingsCountBothOrientationsWhenLabelsEqual) {
  LabeledGraph g = TriangleChain();
  Pattern p = LabeledEdge(0, 0);
  // Edges between label-0 vertices: 0-2 and 2-4, each in two orientations.
  EXPECT_EQ(FindEmbeddings(p, g).size(), 4u);
}

TEST(Vf2Test, EdgeEmbeddingsLabelDirected) {
  LabeledGraph g = TriangleChain();
  Pattern p = LabeledEdge(1, 0);
  // B-A edges: 1-0, 1-2, 3-2, 3-4 (each once: orientation fixed by labels).
  EXPECT_EQ(FindEmbeddings(p, g).size(), 4u);
}

TEST(Vf2Test, TriangleEmbeddings) {
  LabeledGraph g = TriangleChain();
  Pattern triangle;
  triangle.AddVertex(0);
  triangle.AddVertex(0);
  triangle.AddVertex(1);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(0, 2);
  // Each geometric triangle matches twice (swap the two label-0 vertices).
  EXPECT_EQ(FindEmbeddings(triangle, g).size(), 4u);
}

TEST(Vf2Test, NoEmbeddingForMissingLabel) {
  LabeledGraph g = TriangleChain();
  Pattern p(9);
  EXPECT_TRUE(FindEmbeddings(p, g).empty());
  EXPECT_FALSE(ContainsEmbedding(p, g));
}

TEST(Vf2Test, MaxEmbeddingsCap) {
  LabeledGraph g = TriangleChain();
  Pattern p = LabeledEdge(0, 0);
  Vf2Options options;
  options.max_embeddings = 2;
  EXPECT_EQ(FindEmbeddings(p, g, options).size(), 2u);
}

TEST(Vf2Test, AnchoredSearchRestrictsHead) {
  LabeledGraph g = TriangleChain();
  Pattern p = LabeledEdge(0, 1);
  Vf2Options options;
  options.anchor_pattern_vertex = 0;
  options.anchor_graph_vertex = 4;
  std::vector<Embedding> embeddings = FindEmbeddings(p, g, options);
  ASSERT_EQ(embeddings.size(), 1u);  // 4 has one B-neighbor: 3
  EXPECT_EQ(embeddings[0][0], 4);
  EXPECT_EQ(embeddings[0][1], 3);
}

TEST(Vf2Test, MaxStatesAborts) {
  Rng rng(3);
  GraphBuilder b = GenerateErdosRenyi(200, 6.0, 1, &rng);
  LabeledGraph g = std::move(b.Build()).value();
  Pattern path;
  for (int i = 0; i < 6; ++i) path.AddVertex(0);
  for (int i = 0; i + 1 < 6; ++i) path.AddEdge(i, i + 1);
  Vf2Options options;
  options.max_states = 50;
  Vf2Stats stats = EnumerateEmbeddings(path, g, options,
                                       [](const Embedding&) { return true; });
  EXPECT_TRUE(stats.aborted);
  EXPECT_LE(stats.states_visited, 51);
}

TEST(Vf2Test, CallbackCanStopEarly) {
  LabeledGraph g = TriangleChain();
  Pattern p = LabeledEdge(0, 0);
  int seen = 0;
  EnumerateEmbeddings(p, g, {}, [&seen](const Embedding&) {
    ++seen;
    return false;
  });
  EXPECT_EQ(seen, 1);
}

TEST(Vf2Test, EmbeddingsAreInjective) {
  LabeledGraph g = TriangleChain();
  Pattern triangle;
  triangle.AddVertex(0);
  triangle.AddVertex(0);
  triangle.AddVertex(1);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(0, 2);
  for (const Embedding& e : FindEmbeddings(triangle, g)) {
    std::vector<VertexId> image = SortedImage(e);
    EXPECT_EQ(std::unique(image.begin(), image.end()), image.end());
  }
}

TEST(Vf2Test, EmbeddingsPreserveEdges) {
  LabeledGraph g = TriangleChain();
  Pattern p;
  p.AddVertex(0);
  p.AddVertex(1);
  p.AddVertex(0);
  p.AddEdge(0, 1);
  p.AddEdge(1, 2);
  for (const Embedding& e : FindEmbeddings(p, g)) {
    for (const auto& [u, v] : p.Edges()) {
      EXPECT_TRUE(g.HasEdge(e[u], e[v]));
    }
  }
}

TEST(IsomorphismTest, IdenticalPatternsIsomorphic) {
  Pattern p = LabeledEdge(0, 1);
  EXPECT_TRUE(ArePatternsIsomorphic(p, p));
}

TEST(IsomorphismTest, RelabeledVerticesIsomorphic) {
  Pattern a;
  a.AddVertex(0);
  a.AddVertex(1);
  a.AddVertex(2);
  a.AddEdge(0, 1);
  a.AddEdge(1, 2);
  Pattern b;
  b.AddVertex(2);
  b.AddVertex(1);
  b.AddVertex(0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  EXPECT_TRUE(ArePatternsIsomorphic(a, b));
}

TEST(IsomorphismTest, DifferentLabelsNotIsomorphic) {
  EXPECT_FALSE(ArePatternsIsomorphic(LabeledEdge(0, 1), LabeledEdge(0, 2)));
}

TEST(IsomorphismTest, DifferentStructureNotIsomorphic) {
  Pattern path;
  for (int i = 0; i < 4; ++i) path.AddVertex(0);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  Pattern star;
  for (int i = 0; i < 4; ++i) star.AddVertex(0);
  star.AddEdge(0, 1);
  star.AddEdge(0, 2);
  star.AddEdge(0, 3);
  EXPECT_FALSE(ArePatternsIsomorphic(path, star));
}

TEST(IsomorphismTest, EmptyAndSingletons) {
  Pattern empty;
  EXPECT_TRUE(ArePatternsIsomorphic(empty, empty));
  EXPECT_TRUE(ArePatternsIsomorphic(Pattern(3), Pattern(3)));
  EXPECT_FALSE(ArePatternsIsomorphic(Pattern(3), Pattern(4)));
}

TEST(IsomorphismTest, RandomPermutationProperty) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    Pattern p = RandomConnectedPattern(
        static_cast<int32_t>(rng.UniformInt(2, 12)), 0.3, 3, &rng);
    // Permute.
    std::vector<VertexId> perm(p.NumVertices());
    for (VertexId v = 0; v < p.NumVertices(); ++v) perm[v] = v;
    rng.Shuffle(&perm);
    Pattern q;
    std::vector<LabelId> labels(perm.size());
    for (VertexId v = 0; v < p.NumVertices(); ++v) labels[perm[v]] = p.Label(v);
    for (LabelId l : labels) q.AddVertex(l);
    for (const auto& [u, v] : p.Edges()) q.AddEdge(perm[u], perm[v]);
    EXPECT_TRUE(ArePatternsIsomorphic(p, q));
  }
}

TEST(PatternToLabeledGraphTest, PreservesStructure) {
  Pattern p;
  p.AddVertex(4);
  p.AddVertex(2);
  p.AddEdge(0, 1);
  LabeledGraph g = PatternToLabeledGraph(p);
  EXPECT_EQ(g.NumVertices(), 2);
  EXPECT_EQ(g.NumEdges(), 1);
  EXPECT_EQ(g.Label(0), 4);
  EXPECT_EQ(g.Label(1), 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
}

}  // namespace
}  // namespace spidermine
