#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace spidermine {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("missing thing").ToString(),
            "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status UsesReturnNotOk(int x) {
  SM_RETURN_NOT_OK(FailIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(*good, 5);

  Result<int> bad = ParsePositive(0);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(ParsePositive(3).ValueOr(-1), 3);
  EXPECT_EQ(ParsePositive(-3).ValueOr(-1), -1);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "payload");
}

Result<int> DoubleIfPositive(int x) {
  SM_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> good = DoubleIfPositive(4);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 8);
  EXPECT_FALSE(DoubleIfPositive(-4).ok());
}

}  // namespace
}  // namespace spidermine
