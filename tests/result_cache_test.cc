#include "spidermine/result_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "spidermine/session.h"
#include "tools/serve_loop.h"

/// The deterministic result cache: a hit replays byte-for-byte what a
/// recomputation would produce (the engine's determinism contract makes
/// that exact, not approximate), LRU eviction is a deterministic function
/// of the access sequence, keys isolate Stage I artifacts from each
/// other, and a 0-capacity cache is completely inert.

namespace spidermine::cli {
namespace {

LabeledGraph TestGraph(uint64_t seed = 11) {
  Rng rng(seed);
  GraphBuilder builder = GenerateErdosRenyi(200, 2.0, 14, &rng);
  Pattern planted = RandomConnectedPattern(10, 0.15, 14, &rng);
  PatternInjector injector(&builder);
  EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
  return std::move(builder.Build()).value();
}

Result<MiningSession> TestSession(const LabeledGraph* graph,
                                  int64_t min_support = 3) {
  SessionConfig config;
  config.min_support = min_support;
  config.num_threads = 2;
  return MiningSession::Create(graph, config);
}

std::vector<std::string> NormalizedResponses(const std::string& text) {
  std::vector<std::string> lines;
  for (std::string line : Split(text, '\n')) {
    if (line.empty()) continue;
    const size_t begin = line.find("\"seconds\":");
    const size_t end = line.find(",\"timed_out\"");
    if (begin != std::string::npos && end != std::string::npos) {
      line.replace(begin, end - begin, "\"seconds\":X");
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

ResultCache::Key Key(uint64_t query_hash, uint64_t stage1_key) {
  ResultCache::Key key;
  key.query_hash = query_hash;
  key.stage1_key = stage1_key;
  return key;
}

TEST(ResultCacheTest, HitReplaysRecomputationByteForByte) {
  LabeledGraph g = TestGraph();
  Result<MiningSession> session = TestSession(&g);
  ASSERT_TRUE(session.ok()) << session.status();
  ResultCache cache(ResultCacheConfig{});

  // The same request stream through the serve loop twice, sharing one
  // cache and one session. Run 2 is answered entirely from the cache:
  // responses are byte-identical (modulo the "seconds" timing) and
  // RunQuery is bypassed — queries_run does not advance.
  const std::string requests =
      "{\"id\": 1, \"k\": 3, \"seed\": 2, \"vmin\": 8, \"seed_count\": 10}\n"
      "{\"id\": 2, \"k\": 2, \"seed\": 5, \"vmin\": 8, \"seed_count\": 10}\n";
  auto run = [&] {
    std::istringstream in(requests);
    std::ostringstream out, err;
    ServeOptions options;
    options.max_inflight = 2;
    options.summary = false;
    options.cache = &cache;
    ServeStats stats;
    Status status = RunServeLoop(*session, in, out, err, options, &stats);
    EXPECT_TRUE(status.ok()) << status;
    EXPECT_EQ(stats.answered, 2);
    std::vector<std::string> lines = NormalizedResponses(out.str());
    std::sort(lines.begin(), lines.end());
    return lines;
  };

  std::vector<std::string> cold = run();
  EXPECT_EQ(session->queries_run(), 2);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().insertions, 2);

  std::vector<std::string> warm = run();
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(session->queries_run(), 2);  // both hits bypassed RunQuery
  EXPECT_EQ(cache.stats().hits, 2);
}

TEST(ResultCacheTest, LruEvictionIsDeterministic) {
  ResultCacheConfig config;
  config.max_entries = 3;
  config.max_bytes = 1024;
  ResultCache cache(config);
  const uint64_t artifact = 42;

  cache.Insert(Key(1, artifact), "one");
  cache.Insert(Key(2, artifact), "two");
  cache.Insert(Key(3, artifact), "three");
  // Touch 1 so 2 becomes the least recently used, then overflow: 2 (and
  // only 2) must be the victim.
  EXPECT_TRUE(cache.Lookup(Key(1, artifact)).has_value());
  cache.Insert(Key(4, artifact), "four");
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_FALSE(cache.Lookup(Key(2, artifact)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(1, artifact)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(3, artifact)).has_value());
  EXPECT_TRUE(cache.Lookup(Key(4, artifact)).has_value());
  EXPECT_EQ(cache.stats().entries, 3);

  // The byte cap evicts from the LRU tail until it holds, regardless of
  // the entry cap; the sequence is fully determined by the access order.
  ResultCacheConfig tight;
  tight.max_entries = 100;
  tight.max_bytes = 10;
  ResultCache small(tight);
  small.Insert(Key(1, artifact), "aaaa");  // 4 bytes
  small.Insert(Key(2, artifact), "bbbb");  // 8 bytes resident
  small.Insert(Key(3, artifact), "cccc");  // 12 > 10: evicts 1
  EXPECT_EQ(small.stats().evictions, 1);
  EXPECT_FALSE(small.Lookup(Key(1, artifact)).has_value());
  EXPECT_TRUE(small.Lookup(Key(2, artifact)).has_value());
  EXPECT_EQ(small.stats().bytes, 8);

  // A payload that could never fit is not cached (and evicts nothing).
  small.Insert(Key(9, artifact), std::string(64, 'x'));
  EXPECT_FALSE(small.Lookup(Key(9, artifact)).has_value());
  EXPECT_EQ(small.stats().entries, 2);
}

TEST(ResultCacheTest, KeysIsolateStage1Artifacts) {
  // Unit level: the same query hash under two artifact keys never aliases.
  ResultCache cache(ResultCacheConfig{});
  cache.Insert(Key(7, 1), "artifact-one");
  EXPECT_FALSE(cache.Lookup(Key(7, 2)).has_value());
  ASSERT_TRUE(cache.Lookup(Key(7, 1)).has_value());
  EXPECT_EQ(*cache.Lookup(Key(7, 1)), "artifact-one");

  // Session level: a different graph and a different mining floor both
  // change the Stage I content key, so cached responses for one artifact
  // can never answer for another.
  LabeledGraph g1 = TestGraph(11);
  LabeledGraph g2 = TestGraph(12);
  Result<MiningSession> s1 = TestSession(&g1);
  Result<MiningSession> s1_again = TestSession(&g1);
  Result<MiningSession> s2 = TestSession(&g2);
  Result<MiningSession> s1_floor4 = TestSession(&g1, /*min_support=*/4);
  ASSERT_TRUE(s1.ok() && s1_again.ok() && s2.ok() && s1_floor4.ok());
  EXPECT_EQ(s1->stage1_content_key(), s1_again->stage1_content_key());
  EXPECT_NE(s1->stage1_content_key(), s2->stage1_content_key());
  EXPECT_NE(s1->stage1_content_key(), s1_floor4->stage1_content_key());
}

TEST(ResultCacheTest, TransactionPayloadsSeparateStage1Keys) {
  // A transaction source changes kTransaction answers without changing the
  // spider set, so it must change the Stage I content key too — otherwise
  // a cached transaction-measure response from one payload could answer
  // for a session serving a different payload.
  LabeledGraph g = TestGraph(11);
  auto session_with = [&g](const VertexTxnMap* map) {
    SessionConfig config;
    config.min_support = 3;
    config.txn_map = map;
    return MiningSession::Create(&g, config);
  };

  VertexTxnMap map_a;
  map_a.num_transactions = 2;
  map_a.offsets.assign(static_cast<size_t>(g.NumVertices()) + 1, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    map_a.txn_ids.push_back(static_cast<int32_t>(v % 2));
    map_a.offsets[static_cast<size_t>(v) + 1] = v + 1;
  }
  VertexTxnMap map_b = map_a;
  map_b.txn_ids[0] ^= 1;  // one payload bit differs

  Result<MiningSession> bare = session_with(nullptr);
  Result<MiningSession> with_a = session_with(&map_a);
  Result<MiningSession> with_a_again = session_with(&map_a);
  Result<MiningSession> with_b = session_with(&map_b);
  ASSERT_TRUE(bare.ok() && with_a.ok() && with_a_again.ok() && with_b.ok());
  EXPECT_NE(bare->stage1_content_key(), with_a->stage1_content_key());
  EXPECT_NE(with_a->stage1_content_key(), with_b->stage1_content_key());
  // Same payload content -> same key: hits still work across restarts.
  EXPECT_EQ(with_a->stage1_content_key(), with_a_again->stage1_content_key());
}

TEST(ResultCacheTest, ZeroCapacityDisablesTheCache) {
  for (const auto& [entries, bytes] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 1 << 20}, {16, 0}, {0, 0}}) {
    ResultCacheConfig config;
    config.max_entries = entries;
    config.max_bytes = bytes;
    ResultCache cache(config);
    EXPECT_FALSE(cache.enabled());
    cache.Insert(Key(1, 1), "payload");
    EXPECT_FALSE(cache.Lookup(Key(1, 1)).has_value());
    // A disabled cache counts nothing: no phantom misses in summaries.
    EXPECT_EQ(cache.stats().hits, 0);
    EXPECT_EQ(cache.stats().misses, 0);
    EXPECT_EQ(cache.stats().entries, 0);
  }

  // End-to-end: a serve loop with a disabled cache recomputes every time.
  LabeledGraph g = TestGraph();
  Result<MiningSession> session = TestSession(&g);
  ASSERT_TRUE(session.ok());
  ResultCacheConfig disabled;
  disabled.max_entries = 0;
  ResultCache cache(disabled);
  const std::string requests =
      "{\"id\": 1, \"k\": 3, \"seed\": 2, \"vmin\": 8, \"seed_count\": 10}\n";
  for (int run = 0; run < 2; ++run) {
    std::istringstream in(requests);
    std::ostringstream out, err;
    ServeOptions options;
    options.summary = false;
    options.cache = &cache;
    ASSERT_TRUE(RunServeLoop(*session, in, out, err, options).ok());
  }
  EXPECT_EQ(session->queries_run(), 2);  // no bypass
}

TEST(ResultCacheTest, InsertUnderExistingKeyRefreshesInPlace) {
  ResultCacheConfig config;
  config.max_entries = 2;
  config.max_bytes = 1024;
  ResultCache cache(config);
  // Two workers computing the same deterministic query race to Insert;
  // the second insert must refresh, not duplicate (entries stays 1, bytes
  // track the refreshed payload).
  cache.Insert(Key(1, 1), "payload");
  cache.Insert(Key(1, 1), "payload");
  EXPECT_EQ(cache.stats().entries, 1);
  EXPECT_EQ(cache.stats().insertions, 1);
  EXPECT_EQ(cache.stats().bytes, 7);
  EXPECT_EQ(cache.stats().ToString(),
            "cache 0 hits / 0 misses, 1 entries (0 KiB), 0 evicted");
}

}  // namespace
}  // namespace spidermine::cli
