#include "common/timer.h"

#include <gtest/gtest.h>

namespace spidermine {
namespace {

TEST(WallTimerTest, ElapsedIsNonNegativeAndMonotone) {
  WallTimer timer;
  double t1 = timer.ElapsedSeconds();
  double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(WallTimerTest, RestartResetsEpoch) {
  WallTimer timer;
  // Burn a little time.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LE(timer.ElapsedSeconds(), before + 1e-3);
}

TEST(WallTimerTest, MillisMatchesSeconds) {
  WallTimer timer;
  double s = timer.ElapsedSeconds();
  double ms = timer.ElapsedMillis();
  EXPECT_GE(ms, s * 1e3 * 0.5);  // loose: separate clock reads
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  Deadline d = Deadline::Unlimited();
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 1e12);
}

TEST(DeadlineTest, TinyBudgetExpires) {
  Deadline d(1e-9);
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink += i;
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, GenerousBudgetDoesNotExpireImmediately) {
  Deadline d(3600.0);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 3500.0);
}

}  // namespace
}  // namespace spidermine
