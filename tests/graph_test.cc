#include "graph/labeled_graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/graph_io.h"

namespace spidermine {
namespace {

LabeledGraph TriangleWithTail() {
  // 0(A)-1(B)-2(A) triangle, tail 2-3(C).
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(0);
  b.AddVertex(2);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(2, 3);
  return std::move(b.Build()).value();
}

TEST(GraphBuilderTest, BuildsEmptyGraph) {
  GraphBuilder b;
  Result<LabeledGraph> g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 0);
  EXPECT_EQ(g->NumEdges(), 0);
  EXPECT_EQ(g->NumLabels(), 0);
}

TEST(GraphBuilderTest, CountsVerticesAndEdges) {
  LabeledGraph g = TriangleWithTail();
  EXPECT_EQ(g.NumVertices(), 4);
  EXPECT_EQ(g.NumEdges(), 4);
  EXPECT_EQ(g.NumLabels(), 3);
}

TEST(GraphBuilderTest, SelfLoopsIgnored) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddEdge(0, 0);
  Result<LabeledGraph> g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 0);
}

TEST(GraphBuilderTest, DuplicateEdgesCollapse) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddVertex(0);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(0, 1);
  Result<LabeledGraph> g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1);
  EXPECT_EQ(g->Degree(0), 1);
}

TEST(GraphBuilderTest, DanglingEdgeRejected) {
  GraphBuilder b;
  b.AddVertex(0);
  b.AddEdge(0, 5);
  Result<LabeledGraph> g = b.Build();
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, NegativeLabelRejected) {
  GraphBuilder b;
  b.AddVertex(-3);
  Result<LabeledGraph> g = b.Build();
  EXPECT_FALSE(g.ok());
}

TEST(GraphBuilderTest, AddVerticesBulk) {
  GraphBuilder b;
  VertexId first = b.AddVertices(5, 7);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(b.NumVertices(), 5);
  Result<LabeledGraph> g = b.Build();
  ASSERT_TRUE(g.ok());
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g->Label(v), 7);
}

TEST(GraphBuilderTest, SetLabelOverwrites) {
  GraphBuilder b;
  b.AddVertex(1);
  b.SetLabel(0, 9);
  EXPECT_EQ(b.Label(0), 9);
  Result<LabeledGraph> g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->Label(0), 9);
}

TEST(LabeledGraphTest, NeighborsAreSorted) {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddVertex(0);
  b.AddEdge(2, 4);
  b.AddEdge(2, 0);
  b.AddEdge(2, 3);
  LabeledGraph g = std::move(b.Build()).value();
  auto nbrs = g.Neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0);
  EXPECT_EQ(nbrs[1], 3);
  EXPECT_EQ(nbrs[2], 4);
}

TEST(LabeledGraphTest, HasEdgeSymmetric) {
  LabeledGraph g = TriangleWithTail();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(LabeledGraphTest, HasEdgeOutOfRangeIsFalse) {
  LabeledGraph g = TriangleWithTail();
  EXPECT_FALSE(g.HasEdge(-1, 0));
  EXPECT_FALSE(g.HasEdge(0, 99));
}

TEST(LabeledGraphTest, LabelIndex) {
  LabeledGraph g = TriangleWithTail();
  auto zeros = g.VerticesWithLabel(0);
  ASSERT_EQ(zeros.size(), 2u);
  EXPECT_EQ(zeros[0], 0);
  EXPECT_EQ(zeros[1], 2);
  EXPECT_EQ(g.LabelCount(0), 2);
  EXPECT_EQ(g.LabelCount(1), 1);
  EXPECT_EQ(g.LabelCount(2), 1);
}

TEST(LabeledGraphTest, DegreeMatchesNeighbors) {
  LabeledGraph g = TriangleWithTail();
  EXPECT_EQ(g.Degree(2), 3);
  EXPECT_EQ(g.Degree(3), 1);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(static_cast<size_t>(g.Degree(v)), g.Neighbors(v).size());
  }
}

TEST(GraphIoTest, RoundTripThroughText) {
  LabeledGraph g = TriangleWithTail();
  std::string text = GraphToText(g);
  Result<LabeledGraph> parsed = ParseGraphText(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumVertices(), g.NumVertices());
  EXPECT_EQ(parsed->NumEdges(), g.NumEdges());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(parsed->Label(v), g.Label(v));
    ASSERT_EQ(parsed->Degree(v), g.Degree(v));
  }
}

TEST(GraphIoTest, RoundTripThroughFile) {
  LabeledGraph g = TriangleWithTail();
  std::string path = testing::TempDir() + "/sm_graph_io_test.lg";
  ASSERT_TRUE(SaveGraphText(g, path).ok());
  Result<LabeledGraph> loaded = LoadGraphText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumVertices(), 4);
  EXPECT_EQ(loaded->NumEdges(), 4);
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  Result<LabeledGraph> g = ParseGraphText(
      "# header\n\nv 0 1\n  # indented comment\nv 1 2\ne 0 1\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 2);
  EXPECT_EQ(g->NumEdges(), 1);
}

TEST(GraphIoTest, NonDenseVertexIdsRejected) {
  Result<LabeledGraph> g = ParseGraphText("v 1 0\n");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST(GraphIoTest, MalformedRecordsRejected) {
  EXPECT_FALSE(ParseGraphText("x 0 0\n").ok());
  EXPECT_FALSE(ParseGraphText("v 0\n").ok());
  EXPECT_FALSE(ParseGraphText("v 0 1\ne 0\n").ok());
}

TEST(GraphIoTest, MissingFileIsIoError) {
  Result<LabeledGraph> g = LoadGraphText("/nonexistent/path/graph.lg");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace spidermine
