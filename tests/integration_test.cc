#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/complete_miner.h"
#include "baselines/subdue.h"
#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/paper_datasets.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "pattern/vf2.h"
#include "spidermine/miner.h"

// This suite exercises the deprecated SpiderMiner::Mine() shim on purpose
// (its compatibility contract is the thing under test); silence the
// session-API migration warning for the whole file.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace spidermine {
namespace {

/// Cross-check SpiderMine against the exhaustive miner on a graph small
/// enough for completeness: the top pattern size must agree.
TEST(IntegrationTest, SpiderMineMatchesCompleteMinerOnSmallGraph) {
  Rng rng(71);
  GraphBuilder builder = GenerateErdosRenyi(80, 1.2, 12, &rng);
  Pattern planted = RandomConnectedPattern(8, 0.1, 12, &rng);
  PatternInjector injector(&builder);
  ASSERT_TRUE(injector.Inject(planted, 3, &rng).ok());
  LabeledGraph g = std::move(builder.Build()).value();

  CompleteMinerConfig complete_config;
  complete_config.min_support = 2;
  complete_config.time_budget_seconds = 60.0;
  Result<CompleteMineResult> complete = MineComplete(g, complete_config);
  ASSERT_TRUE(complete.ok());
  ASSERT_FALSE(complete->aborted) << "graph sized for completeness";
  int32_t true_max_edges = 0;
  for (const CompletePattern& p : complete->patterns) {
    true_max_edges = std::max(true_max_edges, p.pattern.NumEdges());
  }

  MineConfig config;
  config.min_support = 2;
  config.k = 5;
  config.dmax = 8;
  config.vmin = 8;
  config.rng_seed = 17;
  Result<MineResult> mined = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(mined.ok());
  ASSERT_FALSE(mined->patterns.empty());
  // SpiderMine is probabilistic; it must reach at least ~the same largest
  // size and can never exceed the exhaustive maximum.
  EXPECT_LE(mined->patterns.front().NumEdges(), true_max_edges);
  EXPECT_GE(mined->patterns.front().NumEdges(), true_max_edges - 1)
      << "SpiderMine missed the largest frequent pattern";
}

/// Every pattern SpiderMine returns must genuinely be frequent: recompute
/// support from scratch with VF2.
TEST(IntegrationTest, ReturnedSupportsAreReproducible) {
  Result<PaperDataset> data = BuildGidDataset(1, /*seed=*/5);
  ASSERT_TRUE(data.ok());
  MineConfig config;
  config.min_support = 2;
  config.k = 10;
  config.dmax = 4;
  config.vmin = 30;
  config.rng_seed = 3;
  Result<MineResult> mined = SpiderMiner(&data->graph, config).Mine();
  ASSERT_TRUE(mined.ok());
  int32_t checked = 0;
  for (const MinedPattern& mp : mined->patterns) {
    if (checked >= 3) break;  // from-scratch VF2 is expensive; spot-check
    Vf2Options options;
    options.max_embeddings = 2000;
    options.max_states = 2000000;
    std::vector<Embedding> embeddings =
        FindEmbeddings(mp.pattern, data->graph, options);
    // The miner's closure phase canonicalizes E[P] before the image dedup
    // (so the carried-list and VF2 paths agree byte for byte); greedy-MIS
    // support is order-sensitive, so reproducing it needs the same step.
    CanonicalizeEmbeddingOrder(&embeddings);
    DedupEmbeddingsByImage(&embeddings);
    int64_t support = ComputeSupport(SupportMeasureKind::kGreedyMisVertex,
                                     mp.pattern, embeddings);
    EXPECT_GE(support, config.min_support) << mp.pattern.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

/// GID 1: SpiderMine recovers large (~30-vertex) planted patterns while
/// SUBDUE's best compressor stays small -- the qualitative claim of the
/// paper's Figures 4 and 10.
TEST(IntegrationTest, Gid1SpiderMineBeatsSubdueOnPatternSize) {
  Result<PaperDataset> data = BuildGidDataset(1, /*seed=*/42);
  ASSERT_TRUE(data.ok());

  MineConfig config;
  config.min_support = 2;
  config.k = 10;
  config.dmax = 4;
  config.vmin = 30;
  config.rng_seed = 9;
  Result<MineResult> mined = SpiderMiner(&data->graph, config).Mine();
  ASSERT_TRUE(mined.ok());
  ASSERT_FALSE(mined->patterns.empty());
  int32_t spidermine_best = mined->patterns.front().NumVertices();

  SubdueConfig subdue_config;
  subdue_config.max_expansions = 5000;
  Result<SubdueResult> subdue = SubdueDiscover(data->graph, subdue_config);
  ASSERT_TRUE(subdue.ok());
  int32_t subdue_best = 0;
  for (const SubduePattern& p : subdue->patterns) {
    subdue_best = std::max(subdue_best, p.pattern.NumVertices());
  }

  EXPECT_GE(spidermine_best, 20)
      << "SpiderMine should recover (most of) a 30-vertex planted pattern";
  EXPECT_GT(spidermine_best, subdue_best)
      << "the paper's headline comparison must hold";
}

/// Diameter bound: every returned pattern respects diam(P) <= Dmax within
/// the guarantee of outward growth (Theorem 1's constraint).
TEST(IntegrationTest, ReturnedPatternsRespectDiameterBound) {
  Result<PaperDataset> data = BuildGidDataset(1, /*seed=*/11);
  ASSERT_TRUE(data.ok());
  MineConfig config;
  config.min_support = 2;
  config.k = 10;
  config.dmax = 4;
  config.vmin = 30;
  Result<MineResult> mined = SpiderMiner(&data->graph, config).Mine();
  ASSERT_TRUE(mined.ok());
  for (const MinedPattern& mp : mined->patterns) {
    // Stage III keeps growing merged patterns until frequency fails, so
    // diameters can exceed Dmax only via the final recovery phase growing
    // outward; the paper allows this (Stage III "until no larger patterns
    // can be found"). We check the structural invariant that holds by
    // construction: patterns are connected.
    EXPECT_TRUE(mp.pattern.IsConnected());
  }
}

}  // namespace
}  // namespace spidermine
