#include "support/exact_mis.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "pattern/vf2.h"

namespace spidermine {
namespace {

Pattern EdgePattern() {
  Pattern p;
  p.AddVertex(0);
  p.AddVertex(0);
  p.AddEdge(0, 1);
  return p;
}

TEST(ExactMisTest, EmptyEmbeddingsIsZero) {
  Result<ExactMisResult> r = ComputeExactMisSupport(
      EdgePattern(), {}, MisConflict::kSharedVertex);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->support, 0);
}

TEST(ExactMisTest, DisjointEmbeddingsAllCount) {
  std::vector<Embedding> embeddings{{0, 1}, {2, 3}, {4, 5}};
  Result<ExactMisResult> r = ComputeExactMisSupport(
      EdgePattern(), embeddings, MisConflict::kSharedVertex);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->support, 3);
  EXPECT_FALSE(r->truncated);
}

TEST(ExactMisTest, ChainBeatsGreedyWorstCase) {
  // Star conflicts: e0 overlaps everything; exact MIS picks the others.
  std::vector<Embedding> embeddings{{0, 1}, {1, 2}, {0, 3}, {5, 6}};
  Result<ExactMisResult> r = ComputeExactMisSupport(
      EdgePattern(), embeddings, MisConflict::kSharedVertex);
  ASSERT_TRUE(r.ok());
  // {1,2}, {0,3}, {5,6} are pairwise disjoint.
  EXPECT_EQ(r->support, 3);
}

TEST(ExactMisTest, EdgeConflictSemantics) {
  // Embeddings sharing a vertex but not an edge are compatible.
  std::vector<Embedding> embeddings{{0, 1}, {0, 2}, {0, 3}};
  Result<ExactMisResult> vertex = ComputeExactMisSupport(
      EdgePattern(), embeddings, MisConflict::kSharedVertex);
  Result<ExactMisResult> edge = ComputeExactMisSupport(
      EdgePattern(), embeddings, MisConflict::kSharedEdge);
  ASSERT_TRUE(vertex.ok());
  ASSERT_TRUE(edge.ok());
  EXPECT_EQ(vertex->support, 1);
  EXPECT_EQ(edge->support, 3);
}

TEST(ExactMisTest, EdgeConflictRejectsEdgelessPattern) {
  Pattern p(0);
  EXPECT_FALSE(
      ComputeExactMisSupport(p, {{0}}, MisConflict::kSharedEdge).ok());
}

TEST(ExactMisTest, BudgetTruncationReported) {
  // Many mutually-compatible embeddings with a tiny node budget.
  std::vector<Embedding> embeddings;
  for (int i = 0; i < 40; ++i) {
    embeddings.push_back({2 * i, 2 * i + 1});
  }
  Result<ExactMisResult> r = ComputeExactMisSupport(
      EdgePattern(), embeddings, MisConflict::kSharedVertex, /*max_nodes=*/5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truncated);
  EXPECT_GT(r->support, 0);  // still a valid lower bound
}

TEST(ExactMisTest, ExactAtLeastGreedyOnRandomInstances) {
  // The validation the module exists for: exact MIS >= greedy MIS, and
  // both within [1, count] when embeddings exist.
  Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    LabeledGraph g = std::move(
        GenerateErdosRenyi(60, 3.0, 3, &rng).Build())
            .value();
    Pattern p = RandomConnectedPattern(3, 0.0, 3, &rng);
    Vf2Options options;
    options.max_embeddings = 60;
    std::vector<Embedding> embeddings = FindEmbeddings(p, g, options);
    DedupEmbeddingsByImage(&embeddings);
    if (embeddings.empty()) continue;
    int64_t greedy = ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p,
                                    embeddings);
    Result<ExactMisResult> exact = ComputeExactMisSupport(
        p, embeddings, MisConflict::kSharedVertex, 200000);
    ASSERT_TRUE(exact.ok());
    if (exact->truncated) continue;
    EXPECT_GE(exact->support, greedy);
    EXPECT_LE(exact->support, static_cast<int64_t>(embeddings.size()));
  }
}

TEST(ExactMisTest, GreedyIsHalfDecentOnRandomInstances) {
  // Greedy-by-order is not a constant-factor approximation in theory, but
  // on embedding conflict graphs it should stay within 2x here.
  Rng rng(21);
  LabeledGraph g = std::move(
      GenerateErdosRenyi(80, 4.0, 2, &rng).Build())
          .value();
  Pattern p = RandomConnectedPattern(2, 0.0, 2, &rng);
  Vf2Options options;
  options.max_embeddings = 80;
  std::vector<Embedding> embeddings = FindEmbeddings(p, g, options);
  DedupEmbeddingsByImage(&embeddings);
  if (embeddings.empty()) GTEST_SKIP();
  int64_t greedy =
      ComputeSupport(SupportMeasureKind::kGreedyMisVertex, p, embeddings);
  Result<ExactMisResult> exact = ComputeExactMisSupport(
      p, embeddings, MisConflict::kSharedVertex, 500000);
  ASSERT_TRUE(exact.ok());
  if (!exact->truncated) {
    EXPECT_GE(greedy * 2, exact->support);
  }
}

}  // namespace
}  // namespace spidermine
