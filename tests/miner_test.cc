#include "spidermine/miner.h"

// This suite exercises the deprecated SpiderMiner::Mine() shim on purpose
// (its compatibility contract is the thing under test); silence the
// session-API migration warning for the whole file.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "gen/transaction_gen.h"
#include "graph/graph_builder.h"
#include "pattern/vf2.h"
#include "spidermine/txn_adapter.h"

namespace spidermine {
namespace {

LabeledGraph TwoPaths() {
  GraphBuilder b;
  for (int copy = 0; copy < 2; ++copy) {
    VertexId base = b.AddVertex(0);
    for (LabelId l = 1; l <= 4; ++l) b.AddVertex(l);
    for (int i = 0; i < 4; ++i) b.AddEdge(base + i, base + i + 1);
  }
  return std::move(b.Build()).value();
}

TEST(MinerTest, RecoversFullPathPattern) {
  LabeledGraph g = TwoPaths();
  MineConfig config;
  config.min_support = 2;
  config.k = 3;
  config.dmax = 4;
  config.vmin = 5;
  config.rng_seed = 7;
  SpiderMiner miner(&g, config);
  Result<MineResult> result = miner.Mine();
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());
  const MinedPattern& top = result->patterns.front();
  EXPECT_EQ(top.NumVertices(), 5);
  EXPECT_EQ(top.NumEdges(), 4);
  EXPECT_GE(top.support, 2);
  // Results are sorted by size descending.
  for (size_t i = 1; i < result->patterns.size(); ++i) {
    EXPECT_GE(result->patterns[i - 1].NumEdges(),
              result->patterns[i].NumEdges());
  }
}

TEST(MinerTest, FindsInjectedPatternInNoise) {
  Rng rng(2024);
  GraphBuilder builder = GenerateErdosRenyi(200, 2.0, 20, &rng);
  Pattern planted = RandomConnectedPattern(12, 0.15, 20, &rng);
  PatternInjector injector(&builder);
  ASSERT_TRUE(injector.Inject(planted, 3, &rng).ok());
  LabeledGraph g = std::move(builder.Build()).value();

  MineConfig config;
  config.min_support = 2;
  config.k = 5;
  config.dmax = 8;
  config.vmin = 12;
  config.rng_seed = 31;
  SpiderMiner miner(&g, config);
  Result<MineResult> result = miner.Mine();
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());
  // The top pattern should capture (most of) the planted 12-vertex pattern.
  EXPECT_GE(result->patterns.front().NumVertices(), 10)
      << "top pattern too small: "
      << result->patterns.front().pattern.ToString();
  EXPECT_GT(result->stats.merges, 0);
  EXPECT_GT(result->stats.num_spiders, 0);
  EXPECT_GT(result->stats.seed_count_m, 0);
}

TEST(MinerTest, ReturnedEmbeddingsAreRealEmbeddings) {
  LabeledGraph g = TwoPaths();
  MineConfig config;
  config.min_support = 2;
  config.k = 2;
  config.dmax = 4;
  config.vmin = 5;
  SpiderMiner miner(&g, config);
  Result<MineResult> result = miner.Mine();
  ASSERT_TRUE(result.ok());
  for (const MinedPattern& mp : result->patterns) {
    for (const Embedding& e : mp.embeddings) {
      ASSERT_EQ(e.size(), static_cast<size_t>(mp.NumVertices()));
      for (VertexId pv = 0; pv < mp.NumVertices(); ++pv) {
        EXPECT_EQ(g.Label(e[pv]), mp.pattern.Label(pv));
      }
      for (const auto& [pu, pv] : mp.pattern.Edges()) {
        EXPECT_TRUE(g.HasEdge(e[pu], e[pv]));
      }
    }
  }
}

TEST(MinerTest, RespectsK) {
  LabeledGraph g = TwoPaths();
  MineConfig config;
  config.min_support = 2;
  config.k = 1;
  config.dmax = 4;
  config.vmin = 5;
  SpiderMiner miner(&g, config);
  Result<MineResult> result = miner.Mine();
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->patterns.size(), 1u);
}

TEST(MinerTest, SupportThresholdExcludesRarePatterns) {
  LabeledGraph g = TwoPaths();
  MineConfig config;
  config.min_support = 3;  // only two copies exist
  config.k = 5;
  config.dmax = 4;
  config.vmin = 5;
  SpiderMiner miner(&g, config);
  Result<MineResult> result = miner.Mine();
  ASSERT_TRUE(result.ok());
  for (const MinedPattern& mp : result->patterns) {
    EXPECT_GE(mp.support, 3);
  }
}

TEST(MinerTest, InvalidConfigsRejected) {
  LabeledGraph g = TwoPaths();
  MineConfig config;
  config.min_support = 0;
  EXPECT_FALSE(SpiderMiner(&g, config).Mine().ok());
  config = {};
  config.k = 0;
  EXPECT_FALSE(SpiderMiner(&g, config).Mine().ok());
  config = {};
  config.dmax = 0;
  EXPECT_FALSE(SpiderMiner(&g, config).Mine().ok());
  config = {};
  config.spider_radius = 3;
  EXPECT_FALSE(SpiderMiner(&g, config).Mine().ok());
  config = {};
  config.epsilon = 1.5;
  EXPECT_FALSE(SpiderMiner(&g, config).Mine().ok());
  config = {};
  config.support_measure = SupportMeasureKind::kTransaction;
  EXPECT_FALSE(SpiderMiner(&g, config).Mine().ok());
}

TEST(MinerTest, EmptyGraphYieldsEmptyResult) {
  GraphBuilder b;
  LabeledGraph g = std::move(b.Build()).value();
  MineConfig config;
  SpiderMiner miner(&g, config);
  Result<MineResult> result = miner.Mine();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->patterns.empty());
}

TEST(MinerTest, SeedOverrideIsHonored) {
  LabeledGraph g = TwoPaths();
  MineConfig config;
  config.min_support = 2;
  config.k = 2;
  config.dmax = 4;
  config.seed_count_override = 4;
  SpiderMiner miner(&g, config);
  Result<MineResult> result = miner.Mine();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.seed_count_m, 4);
}

TEST(MinerTest, DeterministicForFixedSeed) {
  LabeledGraph g = TwoPaths();
  MineConfig config;
  config.min_support = 2;
  config.k = 3;
  config.dmax = 4;
  config.vmin = 5;
  config.rng_seed = 99;
  Result<MineResult> a = SpiderMiner(&g, config).Mine();
  Result<MineResult> b = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->patterns.size(), b->patterns.size());
  for (size_t i = 0; i < a->patterns.size(); ++i) {
    EXPECT_TRUE(ArePatternsIsomorphic(a->patterns[i].pattern,
                                      b->patterns[i].pattern));
    EXPECT_EQ(a->patterns[i].support, b->patterns[i].support);
  }
}

TEST(MinerTest, KeepUnmergedAblationRetainsMore) {
  LabeledGraph g = TwoPaths();
  MineConfig config;
  config.min_support = 2;
  config.k = 10;
  config.dmax = 4;
  config.vmin = 5;
  Result<MineResult> pruned = SpiderMiner(&g, config).Mine();
  config.keep_unmerged = true;
  Result<MineResult> kept = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(kept.ok());
  EXPECT_GE(kept->patterns.size(), pruned->patterns.size());
}

TEST(TxnAdapterTest, DisjointUnionPreservesStructure) {
  std::vector<LabeledGraph> database;
  database.push_back(TwoPaths());
  database.push_back(TwoPaths());
  Result<TransactionGraph> txn = BuildTransactionGraph(database);
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ(txn->graph.NumVertices(), 20);
  EXPECT_EQ(txn->graph.NumEdges(), 16);
  EXPECT_EQ(txn->num_transactions, 2);
  ASSERT_EQ(txn->txn_of_vertex.size(), 20u);
  EXPECT_EQ(txn->txn_of_vertex[0], 0);
  EXPECT_EQ(txn->txn_of_vertex[10], 1);
  // No cross-transaction edges.
  for (VertexId v = 0; v < txn->graph.NumVertices(); ++v) {
    for (VertexId u : txn->graph.Neighbors(v)) {
      EXPECT_EQ(txn->txn_of_vertex[v], txn->txn_of_vertex[u]);
    }
  }
}

TEST(TxnAdapterTest, MineTransactionsFindsSharedPattern) {
  TransactionDatasetConfig gen_config;
  gen_config.num_graphs = 6;
  gen_config.vertices_per_graph = 60;
  gen_config.avg_degree = 2.0;
  gen_config.num_labels = 12;
  gen_config.num_large = 1;
  gen_config.large_vertices = 10;
  gen_config.large_txn_support = 4;
  gen_config.seed = 3;
  Result<TransactionDataset> data = GenerateTransactionDataset(gen_config);
  ASSERT_TRUE(data.ok());
  Result<TransactionGraph> txn = BuildTransactionGraph(data->database);
  ASSERT_TRUE(txn.ok());

  MineConfig config;
  config.min_support = 3;  // transactions
  config.k = 3;
  config.dmax = 8;
  config.vmin = 10;
  config.rng_seed = 5;
  Result<MineResult> result = MineTransactions(*txn, config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->patterns.empty());
  EXPECT_GE(result->patterns.front().NumVertices(), 8)
      << result->patterns.front().pattern.ToString();
  EXPECT_GE(result->patterns.front().support, 3);
}

}  // namespace
}  // namespace spidermine
