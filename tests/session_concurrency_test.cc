#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "spider_test_util.h"
#include "spidermine/session.h"

/// The concurrent-serving contract (docs/SERVING.md): RunQuery is const
/// and thread-safe, so N threads firing M queries at one session produce
/// results byte-identical to the same queries run serially — concurrency
/// moves wall-clock interleaving, never output — and every successful
/// query lands exactly once in the mutex-guarded serving aggregate. Run
/// under TSan in CI (the debug-tsan job), where any data race in the
/// query path is a hard failure.

namespace spidermine {
namespace {

LabeledGraph TestGraph(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder = GenerateErdosRenyi(200, 2.0, 14, &rng);
  Pattern planted = RandomConnectedPattern(10, 0.15, 14, &rng);
  PatternInjector injector(&builder);
  EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
  return std::move(builder.Build()).value();
}

SessionConfig BaseSessionConfig(int32_t threads) {
  SessionConfig config;
  config.min_support = 3;
  config.num_threads = threads;
  return config;
}

TopKQuery BaseQuery(uint64_t rng_seed) {
  TopKQuery query;
  query.k = 8;
  query.dmax = 4;
  query.vmin = 8;
  query.rng_seed = rng_seed;
  query.seed_count_override = 10;
  return query;
}

TEST(SessionConcurrencyTest, ConcurrentQueriesMatchSerialExecution) {
  LabeledGraph g = TestGraph(11);
  // The session pool has 2 workers shared by every in-flight query: the
  // contended configuration (queries outnumber workers) that the per-call
  // ThreadPool latches must keep independent.
  Result<MiningSession> session = MiningSession::Create(&g, BaseSessionConfig(2));
  ASSERT_TRUE(session.ok()) << session.status();

  const std::vector<uint64_t> seeds = {3, 5, 7, 1234};

  // Reference: the same queries, serialized on the same session.
  std::map<uint64_t, std::string> serial;
  for (uint64_t seed : seeds) {
    Result<QueryResult> result = session->RunQuery(BaseQuery(seed));
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->patterns.empty());
    serial[seed] = PatternsTranscript(result->patterns);
  }

  // 4 threads x 4 queries, all in flight together, repeated so each
  // thread also exercises back-to-back queries.
  constexpr int kThreads = 4;
  constexpr int kRounds = 2;
  std::vector<std::vector<std::string>> transcripts(
      kThreads, std::vector<std::string>(seeds.size() * kRounds));
  std::vector<std::thread> callers;
  callers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    callers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t s = 0; s < seeds.size(); ++s) {
          Result<QueryResult> result =
              session->RunQuery(BaseQuery(seeds[s]));
          ASSERT_TRUE(result.ok()) << result.status();
          transcripts[static_cast<size_t>(t)][round * seeds.size() + s] =
              PatternsTranscript(result->patterns);
        }
      }
    });
  }
  for (std::thread& caller : callers) caller.join();

  for (int t = 0; t < kThreads; ++t) {
    for (int round = 0; round < kRounds; ++round) {
      for (size_t s = 0; s < seeds.size(); ++s) {
        EXPECT_EQ(transcripts[static_cast<size_t>(t)]
                             [round * seeds.size() + s],
                  serial[seeds[s]])
            << "thread " << t << " round " << round << " seed " << seeds[s]
            << " diverged from the serialized run";
      }
    }
  }

  // Aggregate: the serial pass + every concurrent query, nothing lost to
  // racy increments.
  const int64_t expected =
      static_cast<int64_t>(seeds.size()) * (1 + kThreads * kRounds);
  EXPECT_EQ(session->queries_run(), expected);
  SessionServingStats stats = session->serving_stats();
  EXPECT_EQ(stats.queries_run, expected);
  EXPECT_GT(stats.patterns_returned, 0);
  EXPECT_GT(stats.total_query_seconds, 0.0);
  EXPECT_GE(stats.total_query_seconds, stats.max_query_seconds);
  EXPECT_EQ(stats.timed_out_queries, 0);
}

TEST(SessionConcurrencyTest, ConcurrentBadQueriesIsolateFromGoodOnes) {
  LabeledGraph g = TestGraph(22);
  Result<MiningSession> session = MiningSession::Create(&g, BaseSessionConfig(2));
  ASSERT_TRUE(session.ok()) << session.status();

  Result<QueryResult> reference = session->RunQuery(BaseQuery(5));
  ASSERT_TRUE(reference.ok());
  const std::string expected = PatternsTranscript(reference->patterns);

  // Half the threads fire invalid queries (rejected via Result<>), half
  // fire the reference query; the bad ones must neither crash, count, nor
  // perturb the good ones.
  constexpr int kPairs = 3;
  std::vector<std::string> good(kPairs);
  std::vector<std::thread> callers;
  for (int t = 0; t < kPairs; ++t) {
    callers.emplace_back([&, t] {
      TopKQuery bad = BaseQuery(5);
      bad.min_support = 2;  // below the mined floor of 3
      EXPECT_FALSE(session->RunQuery(bad).ok());
      Result<QueryResult> result = session->RunQuery(BaseQuery(5));
      ASSERT_TRUE(result.ok()) << result.status();
      good[static_cast<size_t>(t)] = PatternsTranscript(result->patterns);
    });
  }
  for (std::thread& caller : callers) caller.join();

  for (int t = 0; t < kPairs; ++t) {
    EXPECT_EQ(good[static_cast<size_t>(t)], expected);
  }
  // Only the successful queries count: 1 reference + kPairs good ones.
  EXPECT_EQ(session->queries_run(), 1 + kPairs);
}

TEST(SessionConcurrencyTest, SessionsShareACallerProvidedPool) {
  // Two sessions on one borrowed pool, queried concurrently: the
  // per-call latches must keep even cross-session parallel loops
  // independent (the bench/serving fleet configuration).
  LabeledGraph g1 = TestGraph(33);
  LabeledGraph g2 = TestGraph(44);
  ThreadPool pool(2);
  SessionConfig config = BaseSessionConfig(0);
  config.pool = &pool;
  Result<MiningSession> s1 = MiningSession::Create(&g1, config);
  Result<MiningSession> s2 = MiningSession::Create(&g2, config);
  ASSERT_TRUE(s1.ok()) << s1.status();
  ASSERT_TRUE(s2.ok()) << s2.status();

  std::string serial1 = PatternsTranscript(
      s1->RunQuery(BaseQuery(7)).value().patterns);
  std::string serial2 = PatternsTranscript(
      s2->RunQuery(BaseQuery(7)).value().patterns);

  std::string concurrent1, concurrent2;
  std::thread a([&] {
    concurrent1 =
        PatternsTranscript(s1->RunQuery(BaseQuery(7)).value().patterns);
  });
  std::thread b([&] {
    concurrent2 =
        PatternsTranscript(s2->RunQuery(BaseQuery(7)).value().patterns);
  });
  a.join();
  b.join();
  EXPECT_EQ(concurrent1, serial1);
  EXPECT_EQ(concurrent2, serial2);
}

}  // namespace
}  // namespace spidermine
