#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/rng.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "spider/spider_store_io.h"
#include "spider_test_util.h"
#include "spidermine/session.h"

/// SpiderStore / Stage I artifact persistence: save -> load must reproduce
/// the store (and therefore query results) byte-identically, and corrupted
/// or truncated artifacts must be rejected through Result<>, never
/// half-decoded.

namespace spidermine {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

LabeledGraph TestGraph(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder = GenerateErdosRenyi(180, 2.0, 12, &rng);
  Pattern planted = RandomConnectedPattern(9, 0.15, 12, &rng);
  PatternInjector injector(&builder);
  EXPECT_TRUE(injector.Inject(planted, 3, &rng).ok());
  return std::move(builder.Build()).value();
}

SessionConfig MinedConfig() {
  SessionConfig config;
  config.min_support = 3;
  return config;
}

TopKQuery SmallQuery(uint64_t seed) {
  TopKQuery query;
  query.k = 5;
  query.dmax = 4;
  query.vmin = 8;
  query.rng_seed = seed;
  query.seed_count_override = 8;
  return query;
}

Stage1Meta MetaFor(const LabeledGraph& g) {
  Stage1Meta meta;
  meta.min_support = 3;
  meta.num_graph_vertices = g.NumVertices();
  return meta;
}

TEST(SpiderStoreIoTest, RoundTripReproducesStoreByteIdentically) {
  LabeledGraph g = TestGraph(101);
  Result<MiningSession> session = MiningSession::Create(&g, MinedConfig());
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_GT(session->store().size(), 0);

  const std::string bytes =
      SpiderStoreToBinary(session->store(), MetaFor(g));
  Result<Stage1Artifact> back = SpiderStoreFromBinary(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  // Store content identical (canonical transcript), and re-serializing the
  // loaded store reproduces the exact bytes.
  EXPECT_EQ(StoreTranscript(back->store),
            StoreTranscript(session->store()));
  EXPECT_EQ(SpiderStoreToBinary(back->store, back->meta), bytes);
  EXPECT_EQ(back->meta.min_support, 3);
  EXPECT_EQ(back->meta.num_graph_vertices, g.NumVertices());
}

TEST(SpiderStoreIoTest, SaveLoadSessionServesByteIdenticalQueries) {
  LabeledGraph g = TestGraph(202);
  Result<MiningSession> mined = MiningSession::Create(&g, MinedConfig());
  ASSERT_TRUE(mined.ok()) << mined.status();
  const std::string path = TempPath("sm_stage1_roundtrip.sm1");
  ASSERT_TRUE(mined->SaveStage1(path).ok());

  Result<MiningSession> loaded =
      MiningSession::LoadStage1(&g, SessionConfig{}, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // The artifact's mining parameters override the default-constructed
  // SessionConfig guess.
  EXPECT_EQ(loaded->config().min_support, 3);
  EXPECT_EQ(loaded->store().size(), mined->store().size());

  for (uint64_t seed : {5, 6}) {
    Result<QueryResult> a = mined->RunQuery(SmallQuery(seed));
    Result<QueryResult> b = loaded->RunQuery(SmallQuery(seed));
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_FALSE(a->patterns.empty());
    EXPECT_EQ(PatternsTranscript(b->patterns),
              PatternsTranscript(a->patterns))
        << "loaded-session query diverged at seed=" << seed;
  }
  std::filesystem::remove(path);
}

TEST(SpiderStoreIoTest, RejectsCorruptHeader) {
  LabeledGraph g = TestGraph(303);
  Result<MiningSession> session = MiningSession::Create(&g, MinedConfig());
  ASSERT_TRUE(session.ok());
  std::string bytes = SpiderStoreToBinary(session->store(), MetaFor(g));

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  Result<Stage1Artifact> r1 = SpiderStoreFromBinary(bad_magic);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kIoError);
  EXPECT_NE(r1.status().message().find("magic"), std::string::npos);

  std::string bad_version = bytes;
  bad_version[4] = 9;
  Result<Stage1Artifact> r2 = SpiderStoreFromBinary(bad_version);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("version"), std::string::npos);

  std::string bad_crc = bytes;
  bad_crc[16] = static_cast<char>(bad_crc[16] ^ 0x01);
  Result<Stage1Artifact> r3 = SpiderStoreFromBinary(bad_crc);
  ASSERT_FALSE(r3.ok());
  EXPECT_NE(r3.status().message().find("checksum"), std::string::npos);
}

TEST(SpiderStoreIoTest, RejectsTruncatedFile) {
  LabeledGraph g = TestGraph(404);
  Result<MiningSession> session = MiningSession::Create(&g, MinedConfig());
  ASSERT_TRUE(session.ok());
  std::string bytes = SpiderStoreToBinary(session->store(), MetaFor(g));
  // Every truncation point must be rejected (header, meta, each column).
  for (size_t keep : {size_t{10}, size_t{25}, size_t{60},
                      bytes.size() / 2, bytes.size() - 3}) {
    Result<Stage1Artifact> r = SpiderStoreFromBinary(bytes.substr(0, keep));
    EXPECT_FALSE(r.ok()) << "accepted a " << keep << "-byte truncation of a "
                         << bytes.size() << "-byte artifact";
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  }
}

TEST(SpiderStoreIoTest, RejectsEveryPayloadByteFlip) {
  // Flip one byte at every payload position in turn; the CRC must reject
  // each corruption before any structural decoding happens.
  GraphBuilder b;
  for (int i = 0; i < 6; ++i) b.AddVertex(i % 2);
  for (int i = 0; i < 5; ++i) b.AddEdge(i, i + 1);
  LabeledGraph g = std::move(b.Build()).value();
  SessionConfig config;
  config.min_support = 1;
  Result<MiningSession> session = MiningSession::Create(&g, config);
  ASSERT_TRUE(session.ok());
  Stage1Meta meta = MetaFor(g);
  meta.min_support = 1;
  std::string bytes = SpiderStoreToBinary(session->store(), meta);
  for (size_t pos = 20; pos < bytes.size(); ++pos) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x40);
    Result<Stage1Artifact> r = SpiderStoreFromBinary(corrupted);
    EXPECT_FALSE(r.ok()) << "corruption at byte " << pos << " was accepted";
  }
}

TEST(SpiderStoreIoTest, LoadStage1RejectsGraphMismatch) {
  LabeledGraph g = TestGraph(505);
  Result<MiningSession> session = MiningSession::Create(&g, MinedConfig());
  ASSERT_TRUE(session.ok());
  const std::string path = TempPath("sm_stage1_mismatch.sm1");
  ASSERT_TRUE(session->SaveStage1(path).ok());

  Rng rng(99);
  LabeledGraph other =
      std::move(GenerateErdosRenyi(50, 2.0, 5, &rng).Build()).value();
  Result<MiningSession> loaded =
      MiningSession::LoadStage1(&other, SessionConfig{}, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("-vertex graph"),
            std::string::npos);
  std::filesystem::remove(path);
}

TEST(SpiderStoreIoTest, LoadStage1RejectsSameSizeDifferentGraph) {
  // Equal vertex counts must not be mistaken for the same network: the
  // artifact is bound to the graph's content hash.
  LabeledGraph a = TestGraph(606);
  Result<MiningSession> session = MiningSession::Create(&a, MinedConfig());
  ASSERT_TRUE(session.ok());
  const std::string path = TempPath("sm_stage1_samesize.sm1");
  ASSERT_TRUE(session->SaveStage1(path).ok());

  LabeledGraph b = TestGraph(607);  // same construction, different seed
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  Result<MiningSession> loaded =
      MiningSession::LoadStage1(&b, SessionConfig{}, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("hash mismatch"),
            std::string::npos);
  std::filesystem::remove(path);
}

TEST(SpiderStoreIoTest, LoadMissingFileFails) {
  Result<Stage1Artifact> r =
      LoadSpiderStoreBinary("/nonexistent/dir/stage1.sm1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace spidermine
