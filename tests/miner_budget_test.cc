#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/timer.h"
#include "gen/erdos_renyi.h"
#include "gen/injection.h"
#include "gen/pattern_factory.h"
#include "graph/graph_builder.h"
#include "spidermine/miner.h"

// This suite exercises the deprecated SpiderMiner::Mine() shim on purpose
// (its compatibility contract is the thing under test); silence the
// session-API migration warning for the whole file.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace spidermine {
namespace {

/// A low-label-diversity graph: the stress case where embedding lists and
/// growth branching explode (DBLP-like: 4 labels).
LabeledGraph DenseLowDiversityGraph(int64_t n, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder = GenerateErdosRenyi(n, 4.0, 4, &rng);
  return std::move(builder.Build()).value();
}

TEST(MinerBudgetTest, TimeBudgetIsRespectedWithinSingleRounds) {
  LabeledGraph g = DenseLowDiversityGraph(1500, 5);
  MineConfig config;
  config.min_support = 4;
  config.k = 5;
  config.dmax = 8;
  config.vmin = 150;
  config.rng_seed = 3;
  config.time_budget_seconds = 3.0;
  WallTimer timer;
  Result<MineResult> result = SpiderMiner(&g, config).Mine();
  double elapsed = timer.ElapsedSeconds();
  ASSERT_TRUE(result.ok());
  // The budget is polled inside rounds; allow slack for Stage I and for
  // finishing the current extension.
  EXPECT_LT(elapsed, 20.0) << "budget must bound even one heavy round";
  EXPECT_TRUE(result->stats.timed_out ||
              result->stats.total_seconds < config.time_budget_seconds + 1);
}

TEST(MinerBudgetTest, TruncatedRunStillReturnsPatterns) {
  LabeledGraph g = DenseLowDiversityGraph(800, 7);
  MineConfig config;
  config.min_support = 4;
  config.k = 5;
  config.dmax = 6;
  config.vmin = 80;
  config.rng_seed = 3;
  config.time_budget_seconds = 5.0;
  Result<MineResult> result = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(result.ok());
  // With 4 labels on a dense background, frequent structures abound: the
  // miner must surface some even when the budget truncates Stage II/III
  // (the prune-unmerged fallback).
  EXPECT_FALSE(result->patterns.empty());
  for (const MinedPattern& p : result->patterns) {
    EXPECT_GE(p.support, config.min_support);
  }
}

TEST(MinerBudgetTest, PatternCapsAreReported) {
  LabeledGraph g = DenseLowDiversityGraph(600, 11);
  MineConfig config;
  config.min_support = 3;
  config.k = 5;
  config.dmax = 6;
  config.vmin = 60;
  config.rng_seed = 3;
  config.max_patterns_per_round = 50;  // absurdly small: must trip
  config.time_budget_seconds = 20.0;
  Result<MineResult> result = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.pattern_cap_hits, 0);
}

TEST(MinerBudgetTest, EmbeddingCapIsReported) {
  LabeledGraph g = DenseLowDiversityGraph(600, 13);
  MineConfig config;
  config.min_support = 3;
  config.k = 3;
  config.dmax = 4;
  config.vmin = 60;
  config.rng_seed = 3;
  config.max_embeddings_per_pattern = 16;  // tiny: must trip on 4 labels
  config.time_budget_seconds = 20.0;
  Result<MineResult> result = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.embedding_cap_hits, 0);
}

}  // namespace
}  // namespace spidermine

namespace spidermine {
namespace {

// Definition 2 asks for diam(P) <= Dmax on returned patterns; Stage III
// growth can exceed it (the paper's own recovered patterns exceed the
// injected sizes). The strict filter enforces the definition on demand.
TEST(DmaxEnforcementTest, FilterDropsOverDiameterResults) {
  Rng rng(4242);
  GraphBuilder builder = GenerateErdosRenyi(150, 1.8, 10, &rng);
  Pattern planted = RandomPatternWithDiameter(10, 6, 10, &rng);
  PatternInjector injector(&builder);
  ASSERT_TRUE(injector.Inject(planted, 3, &rng).ok());
  LabeledGraph g = std::move(builder.Build()).value();

  MineConfig config;
  config.min_support = 2;
  config.k = 10;
  config.dmax = 4;
  config.vmin = 10;
  config.rng_seed = 9;

  config.enforce_dmax_on_results = true;
  Result<MineResult> strict = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(strict.ok());
  for (const MinedPattern& p : strict->patterns) {
    EXPECT_LE(p.pattern.Diameter(), config.dmax);
  }

  config.enforce_dmax_on_results = false;
  Result<MineResult> loose = SpiderMiner(&g, config).Mine();
  ASSERT_TRUE(loose.ok());
  EXPECT_GE(loose->patterns.size(), strict->patterns.size());
}

}  // namespace
}  // namespace spidermine
